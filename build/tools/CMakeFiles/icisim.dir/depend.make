# Empty dependencies file for icisim.
# This may be replaced when dependencies are built.
