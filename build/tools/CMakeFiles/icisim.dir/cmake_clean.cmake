file(REMOVE_RECURSE
  "CMakeFiles/icisim.dir/icisim.cpp.o"
  "CMakeFiles/icisim.dir/icisim.cpp.o.d"
  "icisim"
  "icisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
