file(REMOVE_RECURSE
  "CMakeFiles/exp04_comm_overhead.dir/exp04_comm_overhead.cpp.o"
  "CMakeFiles/exp04_comm_overhead.dir/exp04_comm_overhead.cpp.o.d"
  "exp04_comm_overhead"
  "exp04_comm_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp04_comm_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
