# Empty compiler generated dependencies file for exp04_comm_overhead.
# This may be replaced when dependencies are built.
