# Empty dependencies file for exp17_pruning.
# This may be replaced when dependencies are built.
