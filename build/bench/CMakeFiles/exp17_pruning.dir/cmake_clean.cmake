file(REMOVE_RECURSE
  "CMakeFiles/exp17_pruning.dir/exp17_pruning.cpp.o"
  "CMakeFiles/exp17_pruning.dir/exp17_pruning.cpp.o.d"
  "exp17_pruning"
  "exp17_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp17_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
