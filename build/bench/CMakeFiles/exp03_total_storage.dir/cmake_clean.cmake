file(REMOVE_RECURSE
  "CMakeFiles/exp03_total_storage.dir/exp03_total_storage.cpp.o"
  "CMakeFiles/exp03_total_storage.dir/exp03_total_storage.cpp.o.d"
  "exp03_total_storage"
  "exp03_total_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp03_total_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
