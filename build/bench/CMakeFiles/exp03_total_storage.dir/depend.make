# Empty dependencies file for exp03_total_storage.
# This may be replaced when dependencies are built.
