# Empty compiler generated dependencies file for exp02_storage_vs_nodes.
# This may be replaced when dependencies are built.
