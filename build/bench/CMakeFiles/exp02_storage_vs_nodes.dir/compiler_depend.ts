# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp02_storage_vs_nodes.
