file(REMOVE_RECURSE
  "CMakeFiles/exp02_storage_vs_nodes.dir/exp02_storage_vs_nodes.cpp.o"
  "CMakeFiles/exp02_storage_vs_nodes.dir/exp02_storage_vs_nodes.cpp.o.d"
  "exp02_storage_vs_nodes"
  "exp02_storage_vs_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp02_storage_vs_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
