# Empty compiler generated dependencies file for exp14_erasure.
# This may be replaced when dependencies are built.
