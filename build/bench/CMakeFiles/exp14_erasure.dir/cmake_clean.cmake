file(REMOVE_RECURSE
  "CMakeFiles/exp14_erasure.dir/exp14_erasure.cpp.o"
  "CMakeFiles/exp14_erasure.dir/exp14_erasure.cpp.o.d"
  "exp14_erasure"
  "exp14_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp14_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
