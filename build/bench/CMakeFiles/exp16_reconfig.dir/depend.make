# Empty dependencies file for exp16_reconfig.
# This may be replaced when dependencies are built.
