file(REMOVE_RECURSE
  "CMakeFiles/exp16_reconfig.dir/exp16_reconfig.cpp.o"
  "CMakeFiles/exp16_reconfig.dir/exp16_reconfig.cpp.o.d"
  "exp16_reconfig"
  "exp16_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp16_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
