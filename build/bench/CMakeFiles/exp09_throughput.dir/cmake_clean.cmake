file(REMOVE_RECURSE
  "CMakeFiles/exp09_throughput.dir/exp09_throughput.cpp.o"
  "CMakeFiles/exp09_throughput.dir/exp09_throughput.cpp.o.d"
  "exp09_throughput"
  "exp09_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp09_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
