# Empty dependencies file for exp09_throughput.
# This may be replaced when dependencies are built.
