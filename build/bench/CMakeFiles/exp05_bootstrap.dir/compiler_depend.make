# Empty compiler generated dependencies file for exp05_bootstrap.
# This may be replaced when dependencies are built.
