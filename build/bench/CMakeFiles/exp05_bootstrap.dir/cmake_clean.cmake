file(REMOVE_RECURSE
  "CMakeFiles/exp05_bootstrap.dir/exp05_bootstrap.cpp.o"
  "CMakeFiles/exp05_bootstrap.dir/exp05_bootstrap.cpp.o.d"
  "exp05_bootstrap"
  "exp05_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp05_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
