file(REMOVE_RECURSE
  "CMakeFiles/exp11_retrieval.dir/exp11_retrieval.cpp.o"
  "CMakeFiles/exp11_retrieval.dir/exp11_retrieval.cpp.o.d"
  "exp11_retrieval"
  "exp11_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp11_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
