# Empty compiler generated dependencies file for exp11_retrieval.
# This may be replaced when dependencies are built.
