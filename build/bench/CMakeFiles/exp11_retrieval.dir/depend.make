# Empty dependencies file for exp11_retrieval.
# This may be replaced when dependencies are built.
