# Empty compiler generated dependencies file for exp10_clustering_ablation.
# This may be replaced when dependencies are built.
