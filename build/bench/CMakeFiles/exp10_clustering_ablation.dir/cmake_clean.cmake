file(REMOVE_RECURSE
  "CMakeFiles/exp10_clustering_ablation.dir/exp10_clustering_ablation.cpp.o"
  "CMakeFiles/exp10_clustering_ablation.dir/exp10_clustering_ablation.cpp.o.d"
  "exp10_clustering_ablation"
  "exp10_clustering_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp10_clustering_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
