# Empty compiler generated dependencies file for exp13_micro.
# This may be replaced when dependencies are built.
