file(REMOVE_RECURSE
  "CMakeFiles/exp13_micro.dir/exp13_micro.cpp.o"
  "CMakeFiles/exp13_micro.dir/exp13_micro.cpp.o.d"
  "exp13_micro"
  "exp13_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp13_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
