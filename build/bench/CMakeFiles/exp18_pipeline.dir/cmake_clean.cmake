file(REMOVE_RECURSE
  "CMakeFiles/exp18_pipeline.dir/exp18_pipeline.cpp.o"
  "CMakeFiles/exp18_pipeline.dir/exp18_pipeline.cpp.o.d"
  "exp18_pipeline"
  "exp18_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp18_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
