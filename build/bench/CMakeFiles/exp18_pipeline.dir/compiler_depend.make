# Empty compiler generated dependencies file for exp18_pipeline.
# This may be replaced when dependencies are built.
