# Empty compiler generated dependencies file for exp12_balance.
# This may be replaced when dependencies are built.
