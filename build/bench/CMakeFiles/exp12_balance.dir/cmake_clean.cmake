file(REMOVE_RECURSE
  "CMakeFiles/exp12_balance.dir/exp12_balance.cpp.o"
  "CMakeFiles/exp12_balance.dir/exp12_balance.cpp.o.d"
  "exp12_balance"
  "exp12_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp12_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
