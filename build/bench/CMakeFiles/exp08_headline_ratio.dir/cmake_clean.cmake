file(REMOVE_RECURSE
  "CMakeFiles/exp08_headline_ratio.dir/exp08_headline_ratio.cpp.o"
  "CMakeFiles/exp08_headline_ratio.dir/exp08_headline_ratio.cpp.o.d"
  "exp08_headline_ratio"
  "exp08_headline_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp08_headline_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
