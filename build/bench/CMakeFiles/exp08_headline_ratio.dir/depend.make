# Empty dependencies file for exp08_headline_ratio.
# This may be replaced when dependencies are built.
