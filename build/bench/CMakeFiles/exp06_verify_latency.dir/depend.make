# Empty dependencies file for exp06_verify_latency.
# This may be replaced when dependencies are built.
