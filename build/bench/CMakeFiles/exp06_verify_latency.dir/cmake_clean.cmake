file(REMOVE_RECURSE
  "CMakeFiles/exp06_verify_latency.dir/exp06_verify_latency.cpp.o"
  "CMakeFiles/exp06_verify_latency.dir/exp06_verify_latency.cpp.o.d"
  "exp06_verify_latency"
  "exp06_verify_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp06_verify_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
