file(REMOVE_RECURSE
  "CMakeFiles/exp01_storage_vs_chain.dir/exp01_storage_vs_chain.cpp.o"
  "CMakeFiles/exp01_storage_vs_chain.dir/exp01_storage_vs_chain.cpp.o.d"
  "exp01_storage_vs_chain"
  "exp01_storage_vs_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp01_storage_vs_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
