# Empty compiler generated dependencies file for exp01_storage_vs_chain.
# This may be replaced when dependencies are built.
