file(REMOVE_RECURSE
  "CMakeFiles/exp07_availability.dir/exp07_availability.cpp.o"
  "CMakeFiles/exp07_availability.dir/exp07_availability.cpp.o.d"
  "exp07_availability"
  "exp07_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp07_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
