# Empty dependencies file for exp07_availability.
# This may be replaced when dependencies are built.
