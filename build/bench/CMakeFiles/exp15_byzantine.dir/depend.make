# Empty dependencies file for exp15_byzantine.
# This may be replaced when dependencies are built.
