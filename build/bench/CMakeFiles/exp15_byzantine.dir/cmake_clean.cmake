file(REMOVE_RECURSE
  "CMakeFiles/exp15_byzantine.dir/exp15_byzantine.cpp.o"
  "CMakeFiles/exp15_byzantine.dir/exp15_byzantine.cpp.o.d"
  "exp15_byzantine"
  "exp15_byzantine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp15_byzantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
