file(REMOVE_RECURSE
  "CMakeFiles/ici_erasure.dir/erasure/gf256.cpp.o"
  "CMakeFiles/ici_erasure.dir/erasure/gf256.cpp.o.d"
  "CMakeFiles/ici_erasure.dir/erasure/rs.cpp.o"
  "CMakeFiles/ici_erasure.dir/erasure/rs.cpp.o.d"
  "libici_erasure.a"
  "libici_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
