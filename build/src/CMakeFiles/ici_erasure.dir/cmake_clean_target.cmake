file(REMOVE_RECURSE
  "libici_erasure.a"
)
