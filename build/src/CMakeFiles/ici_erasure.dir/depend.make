# Empty dependencies file for ici_erasure.
# This may be replaced when dependencies are built.
