# Empty compiler generated dependencies file for ici_spv.
# This may be replaced when dependencies are built.
