file(REMOVE_RECURSE
  "libici_spv.a"
)
