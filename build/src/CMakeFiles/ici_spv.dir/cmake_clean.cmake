file(REMOVE_RECURSE
  "CMakeFiles/ici_spv.dir/spv/proof.cpp.o"
  "CMakeFiles/ici_spv.dir/spv/proof.cpp.o.d"
  "libici_spv.a"
  "libici_spv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_spv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
