# Empty dependencies file for ici_crypto.
# This may be replaced when dependencies are built.
