
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/hash.cpp" "src/CMakeFiles/ici_crypto.dir/crypto/hash.cpp.o" "gcc" "src/CMakeFiles/ici_crypto.dir/crypto/hash.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/ici_crypto.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/ici_crypto.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/CMakeFiles/ici_crypto.dir/crypto/merkle.cpp.o" "gcc" "src/CMakeFiles/ici_crypto.dir/crypto/merkle.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/ici_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/ici_crypto.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/sig.cpp" "src/CMakeFiles/ici_crypto.dir/crypto/sig.cpp.o" "gcc" "src/CMakeFiles/ici_crypto.dir/crypto/sig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ici_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
