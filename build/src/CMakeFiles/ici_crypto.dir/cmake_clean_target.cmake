file(REMOVE_RECURSE
  "libici_crypto.a"
)
