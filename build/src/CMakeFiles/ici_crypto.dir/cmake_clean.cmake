file(REMOVE_RECURSE
  "CMakeFiles/ici_crypto.dir/crypto/hash.cpp.o"
  "CMakeFiles/ici_crypto.dir/crypto/hash.cpp.o.d"
  "CMakeFiles/ici_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/ici_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/ici_crypto.dir/crypto/merkle.cpp.o"
  "CMakeFiles/ici_crypto.dir/crypto/merkle.cpp.o.d"
  "CMakeFiles/ici_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/ici_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/ici_crypto.dir/crypto/sig.cpp.o"
  "CMakeFiles/ici_crypto.dir/crypto/sig.cpp.o.d"
  "libici_crypto.a"
  "libici_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
