file(REMOVE_RECURSE
  "CMakeFiles/ici_metrics.dir/metrics/counters.cpp.o"
  "CMakeFiles/ici_metrics.dir/metrics/counters.cpp.o.d"
  "CMakeFiles/ici_metrics.dir/metrics/registry.cpp.o"
  "CMakeFiles/ici_metrics.dir/metrics/registry.cpp.o.d"
  "libici_metrics.a"
  "libici_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
