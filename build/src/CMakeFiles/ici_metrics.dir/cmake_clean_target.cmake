file(REMOVE_RECURSE
  "libici_metrics.a"
)
