# Empty dependencies file for ici_metrics.
# This may be replaced when dependencies are built.
