# Empty dependencies file for ici_sim.
# This may be replaced when dependencies are built.
