file(REMOVE_RECURSE
  "CMakeFiles/ici_sim.dir/sim/churn.cpp.o"
  "CMakeFiles/ici_sim.dir/sim/churn.cpp.o.d"
  "CMakeFiles/ici_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/ici_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/ici_sim.dir/sim/network.cpp.o"
  "CMakeFiles/ici_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/ici_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/ici_sim.dir/sim/simulator.cpp.o.d"
  "libici_sim.a"
  "libici_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
