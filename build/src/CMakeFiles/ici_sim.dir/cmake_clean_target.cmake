file(REMOVE_RECURSE
  "libici_sim.a"
)
