# Empty dependencies file for ici_baseline.
# This may be replaced when dependencies are built.
