file(REMOVE_RECURSE
  "libici_baseline.a"
)
