file(REMOVE_RECURSE
  "CMakeFiles/ici_baseline.dir/baseline/fullrep.cpp.o"
  "CMakeFiles/ici_baseline.dir/baseline/fullrep.cpp.o.d"
  "CMakeFiles/ici_baseline.dir/baseline/pruned.cpp.o"
  "CMakeFiles/ici_baseline.dir/baseline/pruned.cpp.o.d"
  "CMakeFiles/ici_baseline.dir/baseline/rapidchain.cpp.o"
  "CMakeFiles/ici_baseline.dir/baseline/rapidchain.cpp.o.d"
  "libici_baseline.a"
  "libici_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
