file(REMOVE_RECURSE
  "libici_cluster.a"
)
