file(REMOVE_RECURSE
  "CMakeFiles/ici_cluster.dir/cluster/assignment.cpp.o"
  "CMakeFiles/ici_cluster.dir/cluster/assignment.cpp.o.d"
  "CMakeFiles/ici_cluster.dir/cluster/clusterer.cpp.o"
  "CMakeFiles/ici_cluster.dir/cluster/clusterer.cpp.o.d"
  "CMakeFiles/ici_cluster.dir/cluster/directory.cpp.o"
  "CMakeFiles/ici_cluster.dir/cluster/directory.cpp.o.d"
  "CMakeFiles/ici_cluster.dir/cluster/kmeans.cpp.o"
  "CMakeFiles/ici_cluster.dir/cluster/kmeans.cpp.o.d"
  "CMakeFiles/ici_cluster.dir/cluster/node_info.cpp.o"
  "CMakeFiles/ici_cluster.dir/cluster/node_info.cpp.o.d"
  "CMakeFiles/ici_cluster.dir/cluster/repair.cpp.o"
  "CMakeFiles/ici_cluster.dir/cluster/repair.cpp.o.d"
  "libici_cluster.a"
  "libici_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
