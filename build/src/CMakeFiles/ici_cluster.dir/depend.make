# Empty dependencies file for ici_cluster.
# This may be replaced when dependencies are built.
