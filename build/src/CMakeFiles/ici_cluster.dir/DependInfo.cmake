
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/assignment.cpp" "src/CMakeFiles/ici_cluster.dir/cluster/assignment.cpp.o" "gcc" "src/CMakeFiles/ici_cluster.dir/cluster/assignment.cpp.o.d"
  "/root/repo/src/cluster/clusterer.cpp" "src/CMakeFiles/ici_cluster.dir/cluster/clusterer.cpp.o" "gcc" "src/CMakeFiles/ici_cluster.dir/cluster/clusterer.cpp.o.d"
  "/root/repo/src/cluster/directory.cpp" "src/CMakeFiles/ici_cluster.dir/cluster/directory.cpp.o" "gcc" "src/CMakeFiles/ici_cluster.dir/cluster/directory.cpp.o.d"
  "/root/repo/src/cluster/kmeans.cpp" "src/CMakeFiles/ici_cluster.dir/cluster/kmeans.cpp.o" "gcc" "src/CMakeFiles/ici_cluster.dir/cluster/kmeans.cpp.o.d"
  "/root/repo/src/cluster/node_info.cpp" "src/CMakeFiles/ici_cluster.dir/cluster/node_info.cpp.o" "gcc" "src/CMakeFiles/ici_cluster.dir/cluster/node_info.cpp.o.d"
  "/root/repo/src/cluster/repair.cpp" "src/CMakeFiles/ici_cluster.dir/cluster/repair.cpp.o" "gcc" "src/CMakeFiles/ici_cluster.dir/cluster/repair.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ici_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
