file(REMOVE_RECURSE
  "libici_storage.a"
)
