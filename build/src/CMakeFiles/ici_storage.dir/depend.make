# Empty dependencies file for ici_storage.
# This may be replaced when dependencies are built.
