file(REMOVE_RECURSE
  "CMakeFiles/ici_storage.dir/storage/block_store.cpp.o"
  "CMakeFiles/ici_storage.dir/storage/block_store.cpp.o.d"
  "CMakeFiles/ici_storage.dir/storage/shard_store.cpp.o"
  "CMakeFiles/ici_storage.dir/storage/shard_store.cpp.o.d"
  "CMakeFiles/ici_storage.dir/storage/storage_meter.cpp.o"
  "CMakeFiles/ici_storage.dir/storage/storage_meter.cpp.o.d"
  "libici_storage.a"
  "libici_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
