file(REMOVE_RECURSE
  "CMakeFiles/ici_chain.dir/chain/block.cpp.o"
  "CMakeFiles/ici_chain.dir/chain/block.cpp.o.d"
  "CMakeFiles/ici_chain.dir/chain/chain.cpp.o"
  "CMakeFiles/ici_chain.dir/chain/chain.cpp.o.d"
  "CMakeFiles/ici_chain.dir/chain/mempool.cpp.o"
  "CMakeFiles/ici_chain.dir/chain/mempool.cpp.o.d"
  "CMakeFiles/ici_chain.dir/chain/transaction.cpp.o"
  "CMakeFiles/ici_chain.dir/chain/transaction.cpp.o.d"
  "CMakeFiles/ici_chain.dir/chain/utxo.cpp.o"
  "CMakeFiles/ici_chain.dir/chain/utxo.cpp.o.d"
  "CMakeFiles/ici_chain.dir/chain/validator.cpp.o"
  "CMakeFiles/ici_chain.dir/chain/validator.cpp.o.d"
  "CMakeFiles/ici_chain.dir/chain/workload.cpp.o"
  "CMakeFiles/ici_chain.dir/chain/workload.cpp.o.d"
  "libici_chain.a"
  "libici_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
