file(REMOVE_RECURSE
  "libici_chain.a"
)
