# Empty dependencies file for ici_chain.
# This may be replaced when dependencies are built.
