file(REMOVE_RECURSE
  "CMakeFiles/ici_common.dir/common/bytes.cpp.o"
  "CMakeFiles/ici_common.dir/common/bytes.cpp.o.d"
  "CMakeFiles/ici_common.dir/common/flags.cpp.o"
  "CMakeFiles/ici_common.dir/common/flags.cpp.o.d"
  "CMakeFiles/ici_common.dir/common/hex.cpp.o"
  "CMakeFiles/ici_common.dir/common/hex.cpp.o.d"
  "CMakeFiles/ici_common.dir/common/rng.cpp.o"
  "CMakeFiles/ici_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/ici_common.dir/common/stats.cpp.o"
  "CMakeFiles/ici_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/ici_common.dir/common/table.cpp.o"
  "CMakeFiles/ici_common.dir/common/table.cpp.o.d"
  "libici_common.a"
  "libici_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
