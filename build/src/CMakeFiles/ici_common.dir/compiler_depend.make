# Empty compiler generated dependencies file for ici_common.
# This may be replaced when dependencies are built.
