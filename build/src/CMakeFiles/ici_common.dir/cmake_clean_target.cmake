file(REMOVE_RECURSE
  "libici_common.a"
)
