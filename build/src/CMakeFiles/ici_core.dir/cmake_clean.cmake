file(REMOVE_RECURSE
  "CMakeFiles/ici_core.dir/ici/bootstrap.cpp.o"
  "CMakeFiles/ici_core.dir/ici/bootstrap.cpp.o.d"
  "CMakeFiles/ici_core.dir/ici/codec.cpp.o"
  "CMakeFiles/ici_core.dir/ici/codec.cpp.o.d"
  "CMakeFiles/ici_core.dir/ici/config.cpp.o"
  "CMakeFiles/ici_core.dir/ici/config.cpp.o.d"
  "CMakeFiles/ici_core.dir/ici/messages.cpp.o"
  "CMakeFiles/ici_core.dir/ici/messages.cpp.o.d"
  "CMakeFiles/ici_core.dir/ici/network.cpp.o"
  "CMakeFiles/ici_core.dir/ici/network.cpp.o.d"
  "CMakeFiles/ici_core.dir/ici/node.cpp.o"
  "CMakeFiles/ici_core.dir/ici/node.cpp.o.d"
  "CMakeFiles/ici_core.dir/ici/retrieval.cpp.o"
  "CMakeFiles/ici_core.dir/ici/retrieval.cpp.o.d"
  "libici_core.a"
  "libici_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ici_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
