file(REMOVE_RECURSE
  "libici_core.a"
)
