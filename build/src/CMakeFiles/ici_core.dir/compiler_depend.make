# Empty compiler generated dependencies file for ici_core.
# This may be replaced when dependencies are built.
