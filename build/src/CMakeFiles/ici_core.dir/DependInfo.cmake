
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ici/bootstrap.cpp" "src/CMakeFiles/ici_core.dir/ici/bootstrap.cpp.o" "gcc" "src/CMakeFiles/ici_core.dir/ici/bootstrap.cpp.o.d"
  "/root/repo/src/ici/codec.cpp" "src/CMakeFiles/ici_core.dir/ici/codec.cpp.o" "gcc" "src/CMakeFiles/ici_core.dir/ici/codec.cpp.o.d"
  "/root/repo/src/ici/config.cpp" "src/CMakeFiles/ici_core.dir/ici/config.cpp.o" "gcc" "src/CMakeFiles/ici_core.dir/ici/config.cpp.o.d"
  "/root/repo/src/ici/messages.cpp" "src/CMakeFiles/ici_core.dir/ici/messages.cpp.o" "gcc" "src/CMakeFiles/ici_core.dir/ici/messages.cpp.o.d"
  "/root/repo/src/ici/network.cpp" "src/CMakeFiles/ici_core.dir/ici/network.cpp.o" "gcc" "src/CMakeFiles/ici_core.dir/ici/network.cpp.o.d"
  "/root/repo/src/ici/node.cpp" "src/CMakeFiles/ici_core.dir/ici/node.cpp.o" "gcc" "src/CMakeFiles/ici_core.dir/ici/node.cpp.o.d"
  "/root/repo/src/ici/retrieval.cpp" "src/CMakeFiles/ici_core.dir/ici/retrieval.cpp.o" "gcc" "src/CMakeFiles/ici_core.dir/ici/retrieval.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ici_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_spv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
