file(REMOVE_RECURSE
  "CMakeFiles/test_ici_properties.dir/test_ici_properties.cpp.o"
  "CMakeFiles/test_ici_properties.dir/test_ici_properties.cpp.o.d"
  "test_ici_properties"
  "test_ici_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ici_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
