# Empty dependencies file for test_ici_properties.
# This may be replaced when dependencies are built.
