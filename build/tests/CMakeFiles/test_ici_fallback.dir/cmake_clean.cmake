file(REMOVE_RECURSE
  "CMakeFiles/test_ici_fallback.dir/test_ici_fallback.cpp.o"
  "CMakeFiles/test_ici_fallback.dir/test_ici_fallback.cpp.o.d"
  "test_ici_fallback"
  "test_ici_fallback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ici_fallback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
