# Empty dependencies file for test_ici_fallback.
# This may be replaced when dependencies are built.
