file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_fullrep.dir/test_baseline_fullrep.cpp.o"
  "CMakeFiles/test_baseline_fullrep.dir/test_baseline_fullrep.cpp.o.d"
  "test_baseline_fullrep"
  "test_baseline_fullrep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_fullrep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
