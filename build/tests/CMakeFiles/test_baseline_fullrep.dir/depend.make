# Empty dependencies file for test_baseline_fullrep.
# This may be replaced when dependencies are built.
