# Empty compiler generated dependencies file for test_bytes.
# This may be replaced when dependencies are built.
