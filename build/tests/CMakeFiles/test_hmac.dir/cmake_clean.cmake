file(REMOVE_RECURSE
  "CMakeFiles/test_hmac.dir/test_hmac.cpp.o"
  "CMakeFiles/test_hmac.dir/test_hmac.cpp.o.d"
  "test_hmac"
  "test_hmac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hmac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
