# Empty compiler generated dependencies file for test_hmac.
# This may be replaced when dependencies are built.
