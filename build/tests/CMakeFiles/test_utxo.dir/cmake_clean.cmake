file(REMOVE_RECURSE
  "CMakeFiles/test_utxo.dir/test_utxo.cpp.o"
  "CMakeFiles/test_utxo.dir/test_utxo.cpp.o.d"
  "test_utxo"
  "test_utxo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_utxo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
