# Empty dependencies file for test_utxo.
# This may be replaced when dependencies are built.
