file(REMOVE_RECURSE
  "CMakeFiles/test_ici_network.dir/test_ici_network.cpp.o"
  "CMakeFiles/test_ici_network.dir/test_ici_network.cpp.o.d"
  "test_ici_network"
  "test_ici_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ici_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
