# Empty dependencies file for test_ici_network.
# This may be replaced when dependencies are built.
