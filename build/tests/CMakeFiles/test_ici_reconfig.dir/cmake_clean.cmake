file(REMOVE_RECURSE
  "CMakeFiles/test_ici_reconfig.dir/test_ici_reconfig.cpp.o"
  "CMakeFiles/test_ici_reconfig.dir/test_ici_reconfig.cpp.o.d"
  "test_ici_reconfig"
  "test_ici_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ici_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
