# Empty dependencies file for test_ici_reconfig.
# This may be replaced when dependencies are built.
