file(REMOVE_RECURSE
  "CMakeFiles/test_gf256.dir/test_gf256.cpp.o"
  "CMakeFiles/test_gf256.dir/test_gf256.cpp.o.d"
  "test_gf256"
  "test_gf256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
