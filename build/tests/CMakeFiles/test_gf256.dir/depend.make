# Empty dependencies file for test_gf256.
# This may be replaced when dependencies are built.
