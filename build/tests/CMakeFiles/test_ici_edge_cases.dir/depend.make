# Empty dependencies file for test_ici_edge_cases.
# This may be replaced when dependencies are built.
