file(REMOVE_RECURSE
  "CMakeFiles/test_assignment.dir/test_assignment.cpp.o"
  "CMakeFiles/test_assignment.dir/test_assignment.cpp.o.d"
  "test_assignment"
  "test_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
