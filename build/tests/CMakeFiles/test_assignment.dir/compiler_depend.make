# Empty compiler generated dependencies file for test_assignment.
# This may be replaced when dependencies are built.
