file(REMOVE_RECURSE
  "CMakeFiles/test_clusterer.dir/test_clusterer.cpp.o"
  "CMakeFiles/test_clusterer.dir/test_clusterer.cpp.o.d"
  "test_clusterer"
  "test_clusterer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clusterer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
