# Empty compiler generated dependencies file for test_clusterer.
# This may be replaced when dependencies are built.
