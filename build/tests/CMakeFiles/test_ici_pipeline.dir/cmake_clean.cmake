file(REMOVE_RECURSE
  "CMakeFiles/test_ici_pipeline.dir/test_ici_pipeline.cpp.o"
  "CMakeFiles/test_ici_pipeline.dir/test_ici_pipeline.cpp.o.d"
  "test_ici_pipeline"
  "test_ici_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ici_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
