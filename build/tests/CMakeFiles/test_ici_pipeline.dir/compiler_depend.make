# Empty compiler generated dependencies file for test_ici_pipeline.
# This may be replaced when dependencies are built.
