# Empty dependencies file for test_sig.
# This may be replaced when dependencies are built.
