file(REMOVE_RECURSE
  "CMakeFiles/test_sig.dir/test_sig.cpp.o"
  "CMakeFiles/test_sig.dir/test_sig.cpp.o.d"
  "test_sig"
  "test_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
