file(REMOVE_RECURSE
  "CMakeFiles/test_block.dir/test_block.cpp.o"
  "CMakeFiles/test_block.dir/test_block.cpp.o.d"
  "test_block"
  "test_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
