# Empty dependencies file for test_block.
# This may be replaced when dependencies are built.
