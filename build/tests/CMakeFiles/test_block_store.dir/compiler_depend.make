# Empty compiler generated dependencies file for test_block_store.
# This may be replaced when dependencies are built.
