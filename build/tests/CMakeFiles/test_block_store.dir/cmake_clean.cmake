file(REMOVE_RECURSE
  "CMakeFiles/test_block_store.dir/test_block_store.cpp.o"
  "CMakeFiles/test_block_store.dir/test_block_store.cpp.o.d"
  "test_block_store"
  "test_block_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
