# Empty dependencies file for test_merkle.
# This may be replaced when dependencies are built.
