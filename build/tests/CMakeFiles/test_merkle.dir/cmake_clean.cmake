file(REMOVE_RECURSE
  "CMakeFiles/test_merkle.dir/test_merkle.cpp.o"
  "CMakeFiles/test_merkle.dir/test_merkle.cpp.o.d"
  "test_merkle"
  "test_merkle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merkle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
