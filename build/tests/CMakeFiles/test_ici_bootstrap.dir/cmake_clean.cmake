file(REMOVE_RECURSE
  "CMakeFiles/test_ici_bootstrap.dir/test_ici_bootstrap.cpp.o"
  "CMakeFiles/test_ici_bootstrap.dir/test_ici_bootstrap.cpp.o.d"
  "test_ici_bootstrap"
  "test_ici_bootstrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ici_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
