# Empty dependencies file for test_spv.
# This may be replaced when dependencies are built.
