file(REMOVE_RECURSE
  "CMakeFiles/test_spv.dir/test_spv.cpp.o"
  "CMakeFiles/test_spv.dir/test_spv.cpp.o.d"
  "test_spv"
  "test_spv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
