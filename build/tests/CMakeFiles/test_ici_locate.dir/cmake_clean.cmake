file(REMOVE_RECURSE
  "CMakeFiles/test_ici_locate.dir/test_ici_locate.cpp.o"
  "CMakeFiles/test_ici_locate.dir/test_ici_locate.cpp.o.d"
  "test_ici_locate"
  "test_ici_locate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ici_locate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
