# Empty dependencies file for test_ici_locate.
# This may be replaced when dependencies are built.
