file(REMOVE_RECURSE
  "CMakeFiles/test_rs.dir/test_rs.cpp.o"
  "CMakeFiles/test_rs.dir/test_rs.cpp.o.d"
  "test_rs"
  "test_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
