# Empty compiler generated dependencies file for test_rs.
# This may be replaced when dependencies are built.
