file(REMOVE_RECURSE
  "CMakeFiles/test_mempool.dir/test_mempool.cpp.o"
  "CMakeFiles/test_mempool.dir/test_mempool.cpp.o.d"
  "test_mempool"
  "test_mempool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mempool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
