# Empty compiler generated dependencies file for test_mempool.
# This may be replaced when dependencies are built.
