# Empty compiler generated dependencies file for test_ici_config.
# This may be replaced when dependencies are built.
