file(REMOVE_RECURSE
  "CMakeFiles/test_ici_config.dir/test_ici_config.cpp.o"
  "CMakeFiles/test_ici_config.dir/test_ici_config.cpp.o.d"
  "test_ici_config"
  "test_ici_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ici_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
