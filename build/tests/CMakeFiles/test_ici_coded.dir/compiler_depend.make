# Empty compiler generated dependencies file for test_ici_coded.
# This may be replaced when dependencies are built.
