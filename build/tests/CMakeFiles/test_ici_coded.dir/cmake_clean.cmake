file(REMOVE_RECURSE
  "CMakeFiles/test_ici_coded.dir/test_ici_coded.cpp.o"
  "CMakeFiles/test_ici_coded.dir/test_ici_coded.cpp.o.d"
  "test_ici_coded"
  "test_ici_coded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ici_coded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
