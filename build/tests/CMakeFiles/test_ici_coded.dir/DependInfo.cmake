
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ici_coded.cpp" "tests/CMakeFiles/test_ici_coded.dir/test_ici_coded.cpp.o" "gcc" "tests/CMakeFiles/test_ici_coded.dir/test_ici_coded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ici_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ici_spv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
