file(REMOVE_RECURSE
  "CMakeFiles/test_validator.dir/test_validator.cpp.o"
  "CMakeFiles/test_validator.dir/test_validator.cpp.o.d"
  "test_validator"
  "test_validator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_validator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
