# Empty compiler generated dependencies file for test_validator.
# This may be replaced when dependencies are built.
