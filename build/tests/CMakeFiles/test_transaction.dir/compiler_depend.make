# Empty compiler generated dependencies file for test_transaction.
# This may be replaced when dependencies are built.
