# Empty dependencies file for test_ici_byzantine.
# This may be replaced when dependencies are built.
