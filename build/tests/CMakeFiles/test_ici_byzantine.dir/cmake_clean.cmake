file(REMOVE_RECURSE
  "CMakeFiles/test_ici_byzantine.dir/test_ici_byzantine.cpp.o"
  "CMakeFiles/test_ici_byzantine.dir/test_ici_byzantine.cpp.o.d"
  "test_ici_byzantine"
  "test_ici_byzantine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ici_byzantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
