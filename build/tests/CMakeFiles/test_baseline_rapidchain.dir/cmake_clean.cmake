file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_rapidchain.dir/test_baseline_rapidchain.cpp.o"
  "CMakeFiles/test_baseline_rapidchain.dir/test_baseline_rapidchain.cpp.o.d"
  "test_baseline_rapidchain"
  "test_baseline_rapidchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_rapidchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
