# Empty compiler generated dependencies file for test_baseline_rapidchain.
# This may be replaced when dependencies are built.
