file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_pruned.dir/test_baseline_pruned.cpp.o"
  "CMakeFiles/test_baseline_pruned.dir/test_baseline_pruned.cpp.o.d"
  "test_baseline_pruned"
  "test_baseline_pruned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_pruned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
