# Empty dependencies file for test_baseline_pruned.
# This may be replaced when dependencies are built.
