file(REMOVE_RECURSE
  "CMakeFiles/test_hash.dir/test_hash.cpp.o"
  "CMakeFiles/test_hash.dir/test_hash.cpp.o.d"
  "test_hash"
  "test_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
