# Empty compiler generated dependencies file for bootstrap_cost.
# This may be replaced when dependencies are built.
