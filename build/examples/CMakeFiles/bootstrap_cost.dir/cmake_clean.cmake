file(REMOVE_RECURSE
  "CMakeFiles/bootstrap_cost.dir/bootstrap_cost.cpp.o"
  "CMakeFiles/bootstrap_cost.dir/bootstrap_cost.cpp.o.d"
  "bootstrap_cost"
  "bootstrap_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootstrap_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
