file(REMOVE_RECURSE
  "CMakeFiles/light_wallet.dir/light_wallet.cpp.o"
  "CMakeFiles/light_wallet.dir/light_wallet.cpp.o.d"
  "light_wallet"
  "light_wallet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/light_wallet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
