# Empty dependencies file for light_wallet.
# This may be replaced when dependencies are built.
