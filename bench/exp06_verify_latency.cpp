// E06 [R] — Collaborative verification latency vs cluster size m.
//
// Larger clusters mean smaller verification slices per member (less CPU
// each) but more vote fan-in and more UTXO-lookup cross-talk; commit
// latency is governed by the slowest member round-trip. This bench sweeps
// m and reports cluster-commit and full-network-commit latency.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main() {
  constexpr std::size_t kNodes = 120;
  constexpr std::size_t kTxs = 100;
  constexpr int kBlocks = 5;

  print_experiment_header("E06", "block verification latency vs cluster size m");
  std::cout << "N=" << kNodes << ", txs/block=" << kTxs << ", averaged over " << kBlocks
            << " blocks\n\n";

  Table table({"m (cluster size)", "k", "cluster commit p50 (ms)", "cluster commit p99 (ms)",
               "full commit mean (ms)", "slice txs/member"});

  for (std::size_t m : {5u, 10u, 20u, 40u}) {
    const std::size_t k = kNodes / m;
    LiveIciRig rig(kNodes, k, kTxs);

    Histogram full_commit;
    for (int i = 0; i < kBlocks; ++i) {
      const sim::SimTime latency = rig.step();
      if (latency > 0) full_commit.add(static_cast<double>(latency));
    }
    const auto* cluster_lat =
        rig.net->metrics().find_distribution("commit.cluster_latency_us");

    table.row({std::to_string(m), std::to_string(k),
               format_double(cluster_lat ? cluster_lat->p50() / 1000 : 0, 1),
               format_double(cluster_lat ? cluster_lat->p99() / 1000 : 0, 1),
               format_double(full_commit.mean() / 1000, 1),
               format_double(static_cast<double>(kTxs + 1) / static_cast<double>(m), 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: per-member verification work falls as 1/m, but vote fan-in "
               "and head uplink serialization grow with m — latency is roughly flat-to-"
               "U-shaped across m, dominated by one slice round-trip.\n";
  return 0;
}
