// E06 [R] — Collaborative verification latency vs cluster size m.
//
// Larger clusters mean smaller verification slices per member (less CPU
// each) but more vote fan-in and more UTXO-lookup cross-talk; commit
// latency is governed by the slowest member round-trip. This bench sweeps
// m and reports cluster-commit and full-network-commit latency.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp06_verify_latency");
  const std::size_t kNodes = opts.smoke ? 30 : 120;
  const std::size_t kTxs = opts.smoke ? 30 : 100;
  const int kBlocks = opts.smoke ? 2 : 5;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> cluster_sizes =
      opts.smoke ? std::vector<std::size_t>{5, 10} : std::vector<std::size_t>{5, 10, 20, 40};

  obs::BenchReport report("exp06_verify_latency", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("txs_per_block", kTxs);
  report.set_config("blocks_averaged", kBlocks);

  print_experiment_header("E06", "block verification latency vs cluster size m");
  std::cout << "N=" << kNodes << ", txs/block=" << kTxs << ", averaged over " << kBlocks
            << " blocks\n\n";

  Table table({"m (cluster size)", "k", "cluster commit p50 (ms)", "cluster commit p99 (ms)",
               "full commit mean (ms)", "slice txs/member"});

  for (const std::size_t m : cluster_sizes) {
    const std::size_t k = kNodes / m;
    LiveIciRig rig(kNodes, k, kTxs, /*replication=*/1, kSeed);

    Histogram full_commit;
    for (int i = 0; i < kBlocks; ++i) {
      const sim::SimTime latency = rig.step();
      if (latency > 0) full_commit.add(static_cast<double>(latency));
    }
    const auto* cluster_lat =
        rig.net->metrics().find_distribution("commit.cluster_latency_us");

    const double p50_us = cluster_lat ? cluster_lat->p50() : 0;
    const double p99_us = cluster_lat ? cluster_lat->p99() : 0;
    table.row({std::to_string(m), std::to_string(k), format_double(p50_us / 1000, 1),
               format_double(p99_us / 1000, 1), format_double(full_commit.mean() / 1000, 1),
               format_double(static_cast<double>(kTxs + 1) / static_cast<double>(m), 1)});

    report.add_row("m=" + std::to_string(m))
        .set("cluster_size", m)
        .set("clusters", k)
        .set("cluster_commit_p50_us", p50_us)
        .set("cluster_commit_p99_us", p99_us)
        .set("full_commit_mean_us", full_commit.mean())
        .set("slice_txs_per_member", static_cast<double>(kTxs + 1) / static_cast<double>(m));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: per-member verification work falls as 1/m, but vote fan-in "
               "and head uplink serialization grow with m — latency is roughly flat-to-"
               "U-shaped across m, dominated by one slice round-trip.\n";
  finish_report(report, kNodes);
  return 0;
}
