// E10 [R] — Clustering ablation (DESIGN.md D1): latency-aware k-means vs
// random vs geographic grid.
//
// "via Clustering" is the paper's title claim — this bench shows why the
// clustering choice matters: k-means minimizes intra-cluster distance, so
// slice/vote round-trips (and therefore commit latency) shrink.
#include "bench_util.h"

#include "cluster/clusterer.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp10_clustering_ablation");
  const std::size_t kNodes = opts.smoke ? 48 : 150;
  const std::size_t kClusters = opts.smoke ? 3 : 6;
  const std::size_t kTxs = opts.smoke ? 30 : 60;
  const int kBlocks = opts.smoke ? 2 : 5;
  constexpr std::uint64_t kSeed = 42;

  obs::BenchReport report("exp10_clustering_ablation", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("clusters", kClusters);
  report.set_config("txs_per_block", kTxs);
  report.set_config("blocks", kBlocks);

  print_experiment_header("E10", "clustering ablation: kmeans vs random vs grid");
  std::cout << "N=" << kNodes << ", k=" << kClusters << ", txs/block=" << kTxs << "\n\n";

  Table table({"clustering", "intra-cluster dist", "cluster commit p50 (ms)",
               "full commit mean (ms)"});

  for (const std::string strategy : {"kmeans", "random", "grid"}) {
    LiveIciRig rig(kNodes, kClusters, kTxs, 1, kSeed, strategy);

    // Geometry metric over the actual clustering the network built.
    const auto infos = cluster::generate_topology(kNodes, 5, kSeed);
    cluster::Clustering clustering;
    clustering.clusters.resize(kClusters);
    for (const auto& info : infos) {
      clustering.clusters[rig.net->directory().cluster_of(info.id)].push_back(info.id);
    }
    const double dist = cluster::mean_intra_cluster_distance(infos, clustering);

    Histogram full_commit;
    for (int i = 0; i < kBlocks; ++i) {
      const sim::SimTime t = rig.step();
      if (t > 0) full_commit.add(static_cast<double>(t));
    }
    const auto* cluster_lat =
        rig.net->metrics().find_distribution("commit.cluster_latency_us");
    const double p50_us = cluster_lat ? cluster_lat->p50() : 0;

    table.row({strategy, format_double(dist, 1), format_double(p50_us / 1000, 1),
               format_double(full_commit.mean() / 1000, 1)});

    report.add_row("clustering=" + strategy)
        .set("clustering", strategy)
        .set("mean_intra_cluster_distance", dist)
        .set("cluster_commit_p50_us", p50_us)
        .set("full_commit_mean_us", full_commit.mean());
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: kmeans yields the tightest clusters and the lowest commit "
               "latency; random is the upper bound on intra-cluster distance; grid sits "
               "between (cells approximate locality but ignore density).\n";
  finish_report(report, kNodes);
  return 0;
}
