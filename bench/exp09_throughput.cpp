// E09 [R] — Dissemination throughput vs number of clusters.
//
// Blocks commit when every cluster has verified them; more clusters means
// more parallel verification units but a wider proposer fan-out (the
// proposer ships one full body per cluster over its uplink). Throughput is
// measured as committed blocks per simulated second of dissemination time.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main() {
  constexpr std::size_t kNodes = 120;
  constexpr std::size_t kTxs = 60;
  constexpr int kBlocks = 8;

  print_experiment_header("E09", "dissemination throughput vs number of clusters k");
  std::cout << "N=" << kNodes << ", txs/block=" << kTxs << ", " << kBlocks
            << " blocks disseminated back-to-back\n\n";

  Table table({"k", "m", "mean full-commit (ms)", "p99 (ms)", "blocks/s"});
  for (std::size_t k : {2u, 4u, 8u, 15u, 30u}) {
    LiveIciRig rig(kNodes, k, kTxs);
    Histogram latency;
    for (int i = 0; i < kBlocks; ++i) {
      const sim::SimTime t = rig.step();
      if (t > 0) latency.add(static_cast<double>(t));
    }
    const double mean_ms = latency.mean() / 1000.0;
    table.row({std::to_string(k), std::to_string(kNodes / k), format_double(mean_ms, 1),
               format_double(latency.p99() / 1000.0, 1),
               format_double(mean_ms > 0 ? 1000.0 / mean_ms : 0, 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: small k (huge clusters) suffers slice fan-out inside each "
               "cluster; very large k pays proposer uplink serialization (k full bodies). "
               "Throughput peaks at a moderate cluster count.\n";
  return 0;
}
