// E09 [R] — Dissemination throughput vs number of clusters.
//
// Blocks commit when every cluster has verified them; more clusters means
// more parallel verification units but a wider proposer fan-out (the
// proposer ships one full body per cluster over its uplink). Throughput is
// measured as committed blocks per simulated second of dissemination time.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp09_throughput");
  const std::size_t kNodes = opts.smoke ? 40 : 120;
  constexpr std::size_t kTxs = 60;
  const int kBlocks = opts.smoke ? 2 : 8;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> cluster_counts =
      opts.smoke ? std::vector<std::size_t>{2, 4} : std::vector<std::size_t>{2, 4, 8, 15, 30};

  obs::BenchReport report("exp09_throughput", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("txs_per_block", kTxs);
  report.set_config("blocks", kBlocks);

  print_experiment_header("E09", "dissemination throughput vs number of clusters k");
  std::cout << "N=" << kNodes << ", txs/block=" << kTxs << ", " << kBlocks
            << " blocks disseminated back-to-back\n\n";

  Table table({"k", "m", "mean full-commit (ms)", "p99 (ms)", "blocks/s"});
  for (const std::size_t k : cluster_counts) {
    LiveIciRig rig(kNodes, k, kTxs, /*replication=*/1, kSeed);
    Histogram latency;
    for (int i = 0; i < kBlocks; ++i) {
      const sim::SimTime t = rig.step();
      if (t > 0) latency.add(static_cast<double>(t));
    }
    const double mean_ms = latency.mean() / 1000.0;
    const double blocks_per_s = mean_ms > 0 ? 1000.0 / mean_ms : 0;
    table.row({std::to_string(k), std::to_string(kNodes / k), format_double(mean_ms, 1),
               format_double(latency.p99() / 1000.0, 1), format_double(blocks_per_s, 2)});

    report.add_row("k=" + std::to_string(k))
        .set("clusters", k)
        .set("cluster_size", kNodes / k)
        .set("full_commit_mean_us", latency.mean())
        .set("full_commit_p99_us", latency.p99())
        .set("blocks_per_s", blocks_per_s);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: small k (huge clusters) suffers slice fan-out inside each "
               "cluster; very large k pays proposer uplink serialization (k full bodies). "
               "Throughput peaks at a moderate cluster count.\n";
  finish_report(report, kNodes);
  return 0;
}
