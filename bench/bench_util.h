// Shared helpers for the experiment binaries: standard rig construction for
// the three network flavours over a common synthetic ledger, plus uniform
// headline printing. Every bench prints the rows of one paper table/figure
// (see DESIGN.md experiment index) through ici::Table.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>

#include "baseline/fullrep.h"
#include "baseline/rapidchain.h"
#include "chain/workload.h"
#include "common/cpudispatch.h"
#include "common/flags.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "ici/network.h"
#include "metrics/memstats.h"
#include "obs/bench_report.h"
#include "sim/shard.h"
#include "storage/storage_meter.h"
#include "storage/store_metrics.h"

namespace ici::bench {

inline void print_experiment_header(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

/// The shared command-line contract now lives in common/flags.h
/// (ici::BenchOptions / add_bench_flags): every experiment binary and
/// tools/icisim register --smoke/--threads/--cpu/--seed/--fault-plan from
/// one place, so a new shared flag registers once.
using ici::BenchOptions;

/// The store backend the bench actually constructed, stamped into the
/// artifact as config.store_backend (read by record_thread_config — same
/// process-global pattern as the shard count). Set by store_config_from,
/// NOT by flag parsing: a bench that ignores --store truthfully stamps
/// "mem", so an artifact claiming "disk" always carries the store.*
/// instrumentation the schema checker demands of disk captures.
inline std::string& current_store_backend() {
  static std::string backend = "mem";
  return backend;
}

/// Translates the shared --store/--io-write-us/--io-read-us flags into the
/// StoreConfig embedded in facade configs and core::StrategyConfig, and
/// records the choice for the artifact's config.store_backend stamp.
inline StoreConfig store_config_from(const BenchOptions& opts) {
  StoreConfig cfg;
  cfg.backend = opts.store;
  cfg.io_write_us = opts.io_write_us;
  cfg.io_read_us = opts.io_read_us;
  current_store_backend() = opts.store;
  return cfg;
}

inline BenchOptions parse_bench_options(int argc, char** argv, std::string_view name) {
  BenchOptions opts = parse_bench_options_or_exit(
      argc, argv, std::string(name),
      "paper experiment; writes BENCH_" + std::string(name) +
          ".json (schema ici-bench-v1) into the current directory or $ICI_BENCH_DIR");
  // --shards routes through sim/ (a layer common/flags.cpp cannot link):
  // every facade built after this picks the lane count up as its default.
  sim::set_default_shards(std::max<std::uint64_t>(1, opts.shards));
  return opts;
}

/// Attaches summed storage-backend tallies to the artifact as the store.*
/// counter block (docs/STORAGE.md). Storage-sensitive benches call this so
/// their --store disk captures carry the backend instrumentation the schema
/// checker requires (tools/check_bench_json.py).
inline void add_store_counters(obs::BenchReport& report, const StoreCounters& t) {
  report.add_counter("store.puts", t.puts);
  report.add_counter("store.dup_puts", t.dup_puts);
  report.add_counter("store.staged_puts", t.staged_puts);
  report.add_counter("store.wq_enqueued", t.wq_enqueued);
  report.add_counter("store.wq_retired", t.wq_retired);
  report.add_counter("store.wq_depth", t.wq_depth);
  report.add_counter("store.wq_depth_peak", t.wq_depth_peak);
  report.add_counter("store.warm_reads", t.warm_reads);
  report.add_counter("store.cold_reads", t.cold_reads);
  report.add_counter("store.cold_read_bytes", t.cold_read_bytes);
  report.add_counter("store.segments", t.segments);
  report.add_counter("store.segment_bytes", t.segment_bytes);
  report.add_counter("store.appended_bytes", t.appended_bytes);
  report.add_counter("store.tombstones", t.tombstones);
  report.add_counter("store.compactions", t.compactions);
  report.add_counter("store.reclaimed_bytes", t.reclaimed_bytes);
  report.add_counter("store.manifest_writes", t.manifest_writes);
  report.add_counter("store.recovered_blocks", t.recovered_blocks);
  report.add_counter("store.truncated_tail_bytes", t.truncated_tail_bytes);
}

/// Stamps the pool size and CPU dispatch tier every ici-bench-v1 artifact
/// must carry (the schema checker rejects files without them); call once
/// after building the report.
inline void record_thread_config(obs::BenchReport& report) {
  report.set_config("threads", ThreadPool::global().thread_count());
  report.set_config("cpu_backend", std::string(cpu::backend_name()));
  report.set_config("shards", sim::default_shards());
  report.set_config("store_backend", current_store_backend());
}

/// Stamps process memory counters: sim.rss_bytes / sim.peak_rss_bytes always
/// (when procfs is readable), and sim.bytes_per_node — peak RSS divided by
/// the bench's headline simulated-node count — when `sim_nodes` > 0. These
/// are environment measurements, deliberately NOT part of the deterministic
/// sim.* counter set the bit-identity tests pin down.
inline void record_memory_metrics(obs::BenchReport& report, std::size_t sim_nodes) {
  const metrics::MemoryStats mem = metrics::read_memory_stats();
  if (mem.rss_bytes == 0 && mem.peak_rss_bytes == 0) return;
  report.add_counter("sim.rss_bytes", mem.rss_bytes);
  report.add_counter("sim.peak_rss_bytes", mem.peak_rss_bytes);
  if (sim_nodes > 0) {
    report.add_counter("sim.bytes_per_node", mem.peak_rss_bytes / sim_nodes);
  }
}

/// Captures the global span aggregates and writes the artifact; every bench
/// main() ends with this. A bad $ICI_BENCH_DIR must not look like a crash
/// after the tables already printed, so write failures exit 1 cleanly.
/// Sim-driven benches pass their headline node count so the artifact carries
/// the per-node memory footprint (sim.bytes_per_node).
inline void finish_report(obs::BenchReport& report, std::size_t sim_nodes = 0) {
  record_thread_config(report);
  record_memory_metrics(report, sim_nodes);
  report.capture_spans();
  try {
    const std::string path = report.write();
    std::cout << "\nwrote " << path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(1);
  }
}

/// Builds a valid chain with the given shape (deterministic for a seed).
inline Chain make_chain(std::size_t blocks, std::size_t txs_per_block,
                        std::uint64_t seed = 42) {
  ChainGenConfig cfg;
  cfg.blocks = blocks;
  cfg.txs_per_block = txs_per_block;
  cfg.workload.seed = seed;
  cfg.workload.wallet_count = 64;
  cfg.workload.genesis_outputs_per_wallet = 8;
  return ChainGenerator(cfg).generate();
}

/// ICI network preloaded with `chain` (storage experiments fast path).
inline std::unique_ptr<core::IciNetwork> make_ici_preloaded(const Chain& chain,
                                                            std::size_t nodes,
                                                            std::size_t clusters,
                                                            std::size_t replication = 1,
                                                            const StoreConfig& store = {}) {
  core::IciNetworkConfig cfg;
  cfg.node_count = nodes;
  cfg.ici.cluster_count = clusters;
  cfg.ici.replication = replication;
  cfg.store = store;
  auto net = std::make_unique<core::IciNetwork>(cfg);
  net->init_with_genesis(chain.at_height(0));
  net->preload_chain(chain);
  return net;
}

inline std::unique_ptr<baseline::RapidChainNetwork> make_rapidchain_preloaded(
    const Chain& chain, std::size_t nodes, std::size_t committees,
    const StoreConfig& store = {}) {
  baseline::RapidChainConfig cfg;
  cfg.node_count = nodes;
  cfg.committee_count = committees;
  cfg.store = store;
  auto net = std::make_unique<baseline::RapidChainNetwork>(cfg);
  net->init_with_genesis(chain.at_height(0));
  net->preload_chain(chain);
  return net;
}

inline std::unique_ptr<baseline::FullRepNetwork> make_fullrep_preloaded(
    const Chain& chain, std::size_t nodes, const StoreConfig& store = {}) {
  baseline::FullRepConfig cfg;
  cfg.node_count = nodes;
  cfg.validate = false;  // storage-only runs skip the N UTXO copies
  cfg.store = store;
  auto net = std::make_unique<baseline::FullRepNetwork>(cfg);
  net->init_with_genesis(chain.at_height(0));
  net->preload_chain(chain);
  return net;
}

/// Mean per-node body bytes (headers excluded — shared constant).
inline double mean_body_bytes(const std::vector<const BlockStore*>& stores) {
  double total = 0;
  for (const BlockStore* s : stores) total += static_cast<double>(s->body_bytes());
  return stores.empty() ? 0.0 : total / static_cast<double>(stores.size());
}

/// A live (message-accurate) ICI rig: generator + chain + network share one
/// genesis so dissemination experiments can produce valid blocks on demand.
struct LiveIciRig {
  LiveIciRig(std::size_t nodes, std::size_t clusters, std::size_t txs_per_block,
             std::size_t replication = 1, std::uint64_t seed = 42,
             const std::string& clustering = "kmeans") {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = txs_per_block;
    ccfg.workload.seed = seed;
    ccfg.workload.wallet_count = 64;
    ccfg.workload.genesis_outputs_per_wallet = 8;
    gen = std::make_unique<ChainGenerator>(ccfg);

    core::IciNetworkConfig ncfg;
    ncfg.node_count = nodes;
    ncfg.ici.cluster_count = clusters;
    ncfg.ici.replication = replication;
    ncfg.ici.clustering = clustering;
    ncfg.seed = seed;
    net = std::make_unique<core::IciNetwork>(ncfg);

    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
  }

  /// Produces + disseminates one block; returns full-commit latency (µs).
  sim::SimTime step() {
    chain->append(gen->next_block(*chain));
    return net->disseminate_and_settle(chain->tip());
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<core::IciNetwork> net;
  std::unique_ptr<Chain> chain;
};

/// Live full-replication rig with the same workload shape.
struct LiveFullRepRig {
  LiveFullRepRig(std::size_t nodes, std::size_t txs_per_block, std::uint64_t seed = 42) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = txs_per_block;
    ccfg.workload.seed = seed;
    ccfg.workload.wallet_count = 64;
    ccfg.workload.genesis_outputs_per_wallet = 8;
    gen = std::make_unique<ChainGenerator>(ccfg);

    baseline::FullRepConfig cfg;
    cfg.node_count = nodes;
    net = std::make_unique<baseline::FullRepNetwork>(cfg);

    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
  }

  sim::SimTime step() {
    chain->append(gen->next_block(*chain));
    return net->disseminate_and_settle(chain->tip());
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<baseline::FullRepNetwork> net;
  std::unique_ptr<Chain> chain;
};

/// Live RapidChain rig with the same workload shape.
struct LiveRapidChainRig {
  LiveRapidChainRig(std::size_t nodes, std::size_t committees, std::size_t txs_per_block,
                    std::uint64_t seed = 42) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = txs_per_block;
    ccfg.workload.seed = seed;
    ccfg.workload.wallet_count = 64;
    ccfg.workload.genesis_outputs_per_wallet = 8;
    gen = std::make_unique<ChainGenerator>(ccfg);

    baseline::RapidChainConfig cfg;
    cfg.node_count = nodes;
    cfg.committee_count = committees;
    net = std::make_unique<baseline::RapidChainNetwork>(cfg);

    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
  }

  sim::SimTime step() {
    chain->append(gen->next_block(*chain));
    return net->disseminate_and_settle(chain->tip());
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<baseline::RapidChainNetwork> net;
  std::unique_ptr<Chain> chain;
};

}  // namespace ici::bench
