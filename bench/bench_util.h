// Shared helpers for the experiment binaries: standard rig construction for
// the three network flavours over a common synthetic ledger, plus uniform
// headline printing. Every bench prints the rows of one paper table/figure
// (see DESIGN.md experiment index) through ici::Table.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>

#include "baseline/fullrep.h"
#include "baseline/rapidchain.h"
#include "chain/workload.h"
#include "common/cpudispatch.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "ici/network.h"
#include "obs/bench_report.h"
#include "storage/storage_meter.h"

namespace ici::bench {

inline void print_experiment_header(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

/// Command-line contract shared by every experiment binary: `--smoke` runs a
/// tiny configuration (CTest exercises the BENCH_*.json path this way),
/// `--threads N` sizes the global worker pool driving the parallel hot
/// paths (0/default = hardware concurrency; --smoke pins 2 unless --threads
/// is explicit — see docs/THREADING.md), `--cpu scalar|native` pins the
/// SIMD dispatch tier (default: native when the host supports it, see
/// docs/CPU_BACKENDS.md), and `--help` documents it. Unknown flags abort so
/// typos cannot silently run the full-size configuration.
struct BenchOptions {
  bool smoke = false;
  std::uint64_t threads = 0;  // 0 = hardware concurrency
};

/// Applies a `--cpu` value; exits 2 on anything but scalar|native. Backend
/// choice only moves wall clock — sim metrics are bit-identical either way.
inline void apply_cpu_option(std::string_view value, std::string_view name) {
  if (!cpu::set_backend_name(value)) {
    std::cerr << name << ": invalid --cpu value '" << value << "' (expected scalar|native)\n";
    std::exit(2);
  }
}

/// Resolves the --smoke/--threads interaction and installs the global pool;
/// returns the lane count actually in effect (what config.threads reports).
inline std::size_t apply_thread_options(const BenchOptions& opts) {
  std::size_t threads = static_cast<std::size_t>(opts.threads);
  if (threads == 0 && opts.smoke) threads = 2;  // smoke pins 2 for reproducible CI
  ThreadPool::set_global_threads(threads);
  return ThreadPool::global().thread_count();
}

inline BenchOptions parse_bench_options(int argc, char** argv, std::string_view name) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      opts.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      opts.threads = std::strtoull(std::string(arg.substr(10)).c_str(), nullptr, 10);
    } else if (arg == "--cpu" && i + 1 < argc) {
      apply_cpu_option(argv[++i], name);
    } else if (arg.rfind("--cpu=", 0) == 0) {
      apply_cpu_option(arg.substr(6), name);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << name << " [--smoke] [--threads N] [--cpu scalar|native]\n"
                << "  --smoke      tiny configuration for CI (same tables, same BENCH_" << name
                << ".json schema)\n"
                << "  --threads N  worker-pool lanes for the parallel hot paths\n"
                << "               (default: hardware concurrency; --smoke pins 2)\n"
                << "  --cpu MODE   SIMD dispatch tier: scalar forces portable kernels,\n"
                << "               native uses SHA-NI/AVX2 when present (default; also\n"
                << "               settable via ICI_CPU — see docs/CPU_BACKENDS.md)\n"
                << "Writes BENCH_" << name << ".json (schema ici-bench-v1) into the current\n"
                << "directory, or $ICI_BENCH_DIR when set.\n";
      std::exit(0);
    } else {
      std::cerr << name << ": unknown flag " << arg << " (try --help)\n";
      std::exit(2);
    }
  }
  apply_thread_options(opts);
  return opts;
}

/// Stamps the pool size and CPU dispatch tier every ici-bench-v1 artifact
/// must carry (the schema checker rejects files without them); call once
/// after building the report.
inline void record_thread_config(obs::BenchReport& report) {
  report.set_config("threads", ThreadPool::global().thread_count());
  report.set_config("cpu_backend", std::string(cpu::backend_name()));
}

/// Captures the global span aggregates and writes the artifact; every bench
/// main() ends with this. A bad $ICI_BENCH_DIR must not look like a crash
/// after the tables already printed, so write failures exit 1 cleanly.
inline void finish_report(obs::BenchReport& report) {
  record_thread_config(report);
  report.capture_spans();
  try {
    const std::string path = report.write();
    std::cout << "\nwrote " << path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::exit(1);
  }
}

/// Builds a valid chain with the given shape (deterministic for a seed).
inline Chain make_chain(std::size_t blocks, std::size_t txs_per_block,
                        std::uint64_t seed = 42) {
  ChainGenConfig cfg;
  cfg.blocks = blocks;
  cfg.txs_per_block = txs_per_block;
  cfg.workload.seed = seed;
  cfg.workload.wallet_count = 64;
  cfg.workload.genesis_outputs_per_wallet = 8;
  return ChainGenerator(cfg).generate();
}

/// ICI network preloaded with `chain` (storage experiments fast path).
inline std::unique_ptr<core::IciNetwork> make_ici_preloaded(const Chain& chain,
                                                            std::size_t nodes,
                                                            std::size_t clusters,
                                                            std::size_t replication = 1) {
  core::IciNetworkConfig cfg;
  cfg.node_count = nodes;
  cfg.ici.cluster_count = clusters;
  cfg.ici.replication = replication;
  auto net = std::make_unique<core::IciNetwork>(cfg);
  net->init_with_genesis(chain.at_height(0));
  net->preload_chain(chain);
  return net;
}

inline std::unique_ptr<baseline::RapidChainNetwork> make_rapidchain_preloaded(
    const Chain& chain, std::size_t nodes, std::size_t committees) {
  baseline::RapidChainConfig cfg;
  cfg.node_count = nodes;
  cfg.committee_count = committees;
  auto net = std::make_unique<baseline::RapidChainNetwork>(cfg);
  net->init_with_genesis(chain.at_height(0));
  net->preload_chain(chain);
  return net;
}

inline std::unique_ptr<baseline::FullRepNetwork> make_fullrep_preloaded(const Chain& chain,
                                                                        std::size_t nodes) {
  baseline::FullRepConfig cfg;
  cfg.node_count = nodes;
  cfg.validate = false;  // storage-only runs skip the N UTXO copies
  auto net = std::make_unique<baseline::FullRepNetwork>(cfg);
  net->init_with_genesis(chain.at_height(0));
  net->preload_chain(chain);
  return net;
}

/// Mean per-node body bytes (headers excluded — shared constant).
inline double mean_body_bytes(const std::vector<const BlockStore*>& stores) {
  double total = 0;
  for (const BlockStore* s : stores) total += static_cast<double>(s->body_bytes());
  return stores.empty() ? 0.0 : total / static_cast<double>(stores.size());
}

/// A live (message-accurate) ICI rig: generator + chain + network share one
/// genesis so dissemination experiments can produce valid blocks on demand.
struct LiveIciRig {
  LiveIciRig(std::size_t nodes, std::size_t clusters, std::size_t txs_per_block,
             std::size_t replication = 1, std::uint64_t seed = 42,
             const std::string& clustering = "kmeans") {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = txs_per_block;
    ccfg.workload.seed = seed;
    ccfg.workload.wallet_count = 64;
    ccfg.workload.genesis_outputs_per_wallet = 8;
    gen = std::make_unique<ChainGenerator>(ccfg);

    core::IciNetworkConfig ncfg;
    ncfg.node_count = nodes;
    ncfg.ici.cluster_count = clusters;
    ncfg.ici.replication = replication;
    ncfg.ici.clustering = clustering;
    ncfg.seed = seed;
    net = std::make_unique<core::IciNetwork>(ncfg);

    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
  }

  /// Produces + disseminates one block; returns full-commit latency (µs).
  sim::SimTime step() {
    chain->append(gen->next_block(*chain));
    return net->disseminate_and_settle(chain->tip());
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<core::IciNetwork> net;
  std::unique_ptr<Chain> chain;
};

/// Live full-replication rig with the same workload shape.
struct LiveFullRepRig {
  LiveFullRepRig(std::size_t nodes, std::size_t txs_per_block, std::uint64_t seed = 42) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = txs_per_block;
    ccfg.workload.seed = seed;
    ccfg.workload.wallet_count = 64;
    ccfg.workload.genesis_outputs_per_wallet = 8;
    gen = std::make_unique<ChainGenerator>(ccfg);

    baseline::FullRepConfig cfg;
    cfg.node_count = nodes;
    net = std::make_unique<baseline::FullRepNetwork>(cfg);

    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
  }

  sim::SimTime step() {
    chain->append(gen->next_block(*chain));
    return net->disseminate_and_settle(chain->tip());
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<baseline::FullRepNetwork> net;
  std::unique_ptr<Chain> chain;
};

/// Live RapidChain rig with the same workload shape.
struct LiveRapidChainRig {
  LiveRapidChainRig(std::size_t nodes, std::size_t committees, std::size_t txs_per_block,
                    std::uint64_t seed = 42) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = txs_per_block;
    ccfg.workload.seed = seed;
    ccfg.workload.wallet_count = 64;
    ccfg.workload.genesis_outputs_per_wallet = 8;
    gen = std::make_unique<ChainGenerator>(ccfg);

    baseline::RapidChainConfig cfg;
    cfg.node_count = nodes;
    cfg.committee_count = committees;
    net = std::make_unique<baseline::RapidChainNetwork>(cfg);

    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
  }

  sim::SimTime step() {
    chain->append(gen->next_block(*chain));
    return net->disseminate_and_settle(chain->tip());
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<baseline::RapidChainNetwork> net;
  std::unique_ptr<Chain> chain;
};

}  // namespace ici::bench
