// E04 [A] — Communication overhead per disseminated block vs N.
//
// Message-accurate comparison of what it costs the network to get one new
// block stored and verified everywhere it must be:
//  * full replication: INV/GETDATA gossip ships the body to every node;
//  * RapidChain: IDA chunk-flood inside the block's committee;
//  * ICIStrategy: one body per cluster head + slice fan-out + UTXO lookups
//    + votes + commit deltas + r storer hand-offs.
#include <map>

#include "bench_util.h"
#include "strategy/strategy.h"

using namespace ici;
using namespace ici::bench;

namespace {

struct Sample {
  double bytes_per_block = 0;
  double msgs_per_block = 0;
  double body_bytes = 0;  // serialized size of the last disseminated block
};

/// Drives `blocks` live dissemination rounds through a registry strategy
/// over a fresh deterministic workload (same shape as the old per-system
/// rigs: one generator + chain + network sharing a genesis).
Sample measure(core::Strategy& strat, std::size_t txs_per_block, std::uint64_t seed,
               int blocks) {
  ChainGenConfig ccfg;
  ccfg.txs_per_block = txs_per_block;
  ccfg.workload.seed = seed;
  ccfg.workload.wallet_count = 64;
  ccfg.workload.genesis_outputs_per_wallet = 8;
  ChainGenerator gen(ccfg);

  Block genesis = gen.workload().make_genesis();
  gen.workload().confirm(genesis);
  Chain chain(genesis);
  strat.init(genesis);

  std::uint64_t bytes = 0, msgs = 0;
  for (int i = 0; i < blocks; ++i) {
    strat.reset_traffic();
    chain.append(gen.next_block(chain));
    strat.ingest(chain.tip());
    const core::StrategyTraffic t = strat.traffic();
    bytes += t.bytes_sent;
    msgs += t.msgs_sent;
  }
  return {static_cast<double>(bytes) / blocks, static_cast<double>(msgs) / blocks,
          static_cast<double>(chain.tip().serialized_size())};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp04_comm_overhead");
  constexpr std::size_t kTxs = 60;
  const int kBlocks = opts.smoke ? 2 : 5;
  constexpr std::size_t kClusterSize = 16;
  constexpr std::size_t kCommitteeSize = 24;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> sizes =
      opts.smoke ? std::vector<std::size_t>{48} : std::vector<std::size_t>{48, 96, 192};

  obs::BenchReport report("exp04_comm_overhead", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("txs_per_block", kTxs);
  report.set_config("blocks_averaged", kBlocks);
  report.set_config("ici_cluster_size", kClusterSize);
  report.set_config("rapidchain_committee_size", kCommitteeSize);

  print_experiment_header("E04", "communication per disseminated block vs N");
  std::cout << "txs/block=" << kTxs << ", averaged over " << kBlocks
            << " blocks; ICI m=" << kClusterSize << ", RapidChain committee size ~"
            << kCommitteeSize << "\n\n";

  Table table({"N", "system", "bytes/block", "msgs/block", "body-equivalents"});
  for (const std::size_t n : sizes) {
    // Registry order (fullrep, rapidchain, ici) matches the historical rig
    // order, so trace spans and JSON rows line up with pre-registry runs.
    // Pruned is static (zero dissemination traffic) — not part of this
    // comparison.
    std::map<std::string_view, Sample> samples;
    for (const std::string_view name : core::strategy_names()) {
      if (name == "pruned") continue;
      core::StrategyConfig scfg;
      scfg.node_count = n;
      scfg.groups = name == "rapidchain" ? std::max<std::size_t>(1, n / kCommitteeSize)
                                         : n / kClusterSize;
      // Historical rig seeds: the ICI rig keyed its topology off the
      // workload seed, the baselines used the facade default.
      scfg.topology_seed = name == "ici" ? kSeed : 1;
      const auto strat = core::make_strategy(name, scfg);
      samples[name] = measure(*strat, kTxs, kSeed, kBlocks);
    }
    const Sample& fr = samples.at("fullrep");
    const Sample& rc = samples.at("rapidchain");
    const Sample& ic = samples.at("ici");
    const double body = fr.body_bytes;

    table.row({std::to_string(n), "full-rep", format_bytes(fr.bytes_per_block),
               format_double(fr.msgs_per_block, 0), format_double(fr.bytes_per_block / body, 1)});
    table.row({std::to_string(n), "rapidchain", format_bytes(rc.bytes_per_block),
               format_double(rc.msgs_per_block, 0), format_double(rc.bytes_per_block / body, 1)});
    table.row({std::to_string(n), "ici", format_bytes(ic.bytes_per_block),
               format_double(ic.msgs_per_block, 0), format_double(ic.bytes_per_block / body, 1)});

    for (const auto& [system, s] :
         {std::pair<const char*, const Sample*>{"fullrep", &fr},
          std::pair<const char*, const Sample*>{"rapidchain", &rc},
          std::pair<const char*, const Sample*>{"ici", &ic}}) {
      report.add_row("N=" + std::to_string(n) + "/" + system)
          .set("nodes", n)
          .set("system", system)
          .set("bytes_per_block", s->bytes_per_block)
          .set("msgs_per_block", s->msgs_per_block)
          .set("body_equivalents", s->bytes_per_block / body);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: full-rep ships ≈N body-equivalents per block; ici ships "
               "≈(3.75+r) per cluster (N/m clusters) — several times less, with the gap "
               "growing in cluster size m. RapidChain only stores 1/k of blocks per "
               "committee but floods chunks with redundancy d within it.\n";
  finish_report(report, sizes.back());
  return 0;
}
