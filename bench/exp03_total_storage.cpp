// E03 [R] — Total network storage vs N (fixed ledger).
//
// Full replication burns N·D bytes network-wide. RapidChain burns
// (committee size)·D. ICIStrategy burns k·r·D — and with fixed cluster size
// m it is (N/m)·r·D, i.e. the network as a whole stores the ledger once per
// cluster instead of once per node.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp03_total_storage");
  const std::size_t kBlocks = opts.smoke ? 20 : 300;
  constexpr std::size_t kTxsPerBlock = 40;
  constexpr std::size_t kClusterSize = 20;
  constexpr std::size_t kCommitteeSize = 80;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> sizes =
      opts.smoke ? std::vector<std::size_t>{40, 80} : std::vector<std::size_t>{80, 160, 320, 640};

  obs::BenchReport report("exp03_total_storage", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("blocks", kBlocks);
  report.set_config("txs_per_block", kTxsPerBlock);
  report.set_config("ici_cluster_size", kClusterSize);
  report.set_config("rapidchain_committee_size", kCommitteeSize);

  print_experiment_header("E03", "total network storage vs N (fixed ledger)");
  const Chain chain = make_chain(kBlocks, kTxsPerBlock, kSeed);
  std::cout << "ledger D = " << format_bytes(static_cast<double>(chain.total_bytes()))
            << "\n\n";
  report.set_config("ledger_bytes", chain.total_bytes());

  Table table({"N", "full-rep total", "rapidchain total", "ici total", "ici/full"});
  for (const std::size_t n : sizes) {
    const std::size_t k_ici = n / kClusterSize;
    const std::size_t k_rc = std::max<std::size_t>(1, n / kCommitteeSize);

    const auto fullrep = make_fullrep_preloaded(chain, n);
    const auto rapidchain = make_rapidchain_preloaded(chain, n, k_rc);
    const auto ici = make_ici_preloaded(chain, n, k_ici);

    const double fr = static_cast<double>(StorageMeter::snapshot(fullrep->stores()).total_bytes);
    const double rc =
        static_cast<double>(StorageMeter::snapshot(rapidchain->stores()).total_bytes);
    const double ic = static_cast<double>(StorageMeter::snapshot(ici->stores()).total_bytes);

    table.row({std::to_string(n), format_bytes(fr), format_bytes(rc), format_bytes(ic),
               format_double(ic / fr * 100, 1) + "%"});

    report.add_row("N=" + std::to_string(n))
        .set("nodes", n)
        .set("fullrep_total_bytes", fr)
        .set("rapidchain_total_bytes", rc)
        .set("ici_total_bytes", ic)
        .set("ici_vs_fullrep_pct", ic / fr * 100);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: full-rep grows N·D; ici grows only with the number of "
               "clusters (N/m)·D — the gap widens linearly with N.\n";
  finish_report(report, sizes.back());
  return 0;
}
