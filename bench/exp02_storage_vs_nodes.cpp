// E02 [R] — Per-node storage vs network size N (fixed ledger).
//
// ICIStrategy keeps cluster size m fixed as N grows (more clusters), so
// per-node storage stays ≈ D·r/m — constant in N. RapidChain keeps the
// committee *size* fixed for security, so its committee count grows with N
// and per-node storage falls as D/k(N). Full replication is flat at D.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main() {
  constexpr std::size_t kBlocks = 300;
  constexpr std::size_t kTxsPerBlock = 40;
  constexpr std::size_t kClusterSize = 20;    // ICI: m fixed, k = N/m
  constexpr std::size_t kCommitteeSize = 80;  // RapidChain: fixed for security

  print_experiment_header("E02", "per-node storage vs network size N (fixed 300-block ledger)");
  std::cout << "ICI cluster size m=" << kClusterSize << " (k grows with N); RapidChain "
            << "committee size=" << kCommitteeSize << " (k_rc grows with N)\n\n";

  const Chain chain = make_chain(kBlocks, kTxsPerBlock);

  Table table({"N", "full-rep/node", "rapidchain/node", "ici/node", "ici clusters",
               "rc committees"});
  for (std::size_t n : {80u, 160u, 320u, 640u}) {
    const std::size_t k_ici = n / kClusterSize;
    const std::size_t k_rc = std::max<std::size_t>(1, n / kCommitteeSize);

    const auto fullrep = make_fullrep_preloaded(chain, n);
    const auto rapidchain = make_rapidchain_preloaded(chain, n, k_rc);
    const auto ici = make_ici_preloaded(chain, n, k_ici);

    table.row({std::to_string(n),
               format_bytes(StorageMeter::snapshot(fullrep->stores()).mean_bytes),
               format_bytes(StorageMeter::snapshot(rapidchain->stores()).mean_bytes),
               format_bytes(StorageMeter::snapshot(ici->stores()).mean_bytes),
               std::to_string(k_ici), std::to_string(k_rc)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: full-rep flat at D; rapidchain falls ~1/N (committee count "
               "grows); ici flat at ~D/m regardless of N — storage scales out.\n";
  return 0;
}
