// E02 [R] — Per-node storage vs network size N (fixed ledger).
//
// ICIStrategy keeps cluster size m fixed as N grows (more clusters), so
// per-node storage stays ≈ D·r/m — constant in N. RapidChain keeps the
// committee *size* fixed for security, so its committee count grows with N
// and per-node storage falls as D/k(N). Full replication is flat at D.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp02_storage_vs_nodes");
  const std::size_t kBlocks = opts.smoke ? 20 : 300;
  constexpr std::size_t kTxsPerBlock = 40;
  constexpr std::size_t kClusterSize = 20;    // ICI: m fixed, k = N/m
  constexpr std::size_t kCommitteeSize = 80;  // RapidChain: fixed for security
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> sizes =
      opts.smoke ? std::vector<std::size_t>{40, 80} : std::vector<std::size_t>{80, 160, 320, 640};

  obs::BenchReport report("exp02_storage_vs_nodes", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("blocks", kBlocks);
  report.set_config("txs_per_block", kTxsPerBlock);
  report.set_config("ici_cluster_size", kClusterSize);
  report.set_config("rapidchain_committee_size", kCommitteeSize);

  print_experiment_header("E02", "per-node storage vs network size N (fixed ledger)");
  std::cout << "ICI cluster size m=" << kClusterSize << " (k grows with N); RapidChain "
            << "committee size=" << kCommitteeSize << " (k_rc grows with N)\n\n";

  const Chain chain = make_chain(kBlocks, kTxsPerBlock, kSeed);

  Table table({"N", "full-rep/node", "rapidchain/node", "ici/node", "ici clusters",
               "rc committees"});
  for (const std::size_t n : sizes) {
    const std::size_t k_ici = n / kClusterSize;
    const std::size_t k_rc = std::max<std::size_t>(1, n / kCommitteeSize);

    const auto fullrep = make_fullrep_preloaded(chain, n);
    const auto rapidchain = make_rapidchain_preloaded(chain, n, k_rc);
    const auto ici = make_ici_preloaded(chain, n, k_ici);

    const double fr = StorageMeter::snapshot(fullrep->stores()).mean_bytes;
    const double rc = StorageMeter::snapshot(rapidchain->stores()).mean_bytes;
    const double ic = StorageMeter::snapshot(ici->stores()).mean_bytes;

    table.row({std::to_string(n), format_bytes(fr), format_bytes(rc), format_bytes(ic),
               std::to_string(k_ici), std::to_string(k_rc)});

    report.add_row("N=" + std::to_string(n))
        .set("nodes", n)
        .set("fullrep_node_bytes", fr)
        .set("rapidchain_node_bytes", rc)
        .set("ici_node_bytes", ic)
        .set("ici_clusters", k_ici)
        .set("rapidchain_committees", k_rc);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: full-rep flat at D; rapidchain falls ~1/N (committee count "
               "grows); ici flat at ~D/m regardless of N — storage scales out.\n";
  finish_report(report, sizes.back());
  return 0;
}
