// E16 [R, extension] — Epoch reconfiguration cost: migration traffic when
// the network re-clusters.
//
// Sharded blockchains must periodically reshuffle membership (RapidChain's
// Cuckoo-rule epochs). For ICIStrategy the epoch cost is the block
// migration needed so every new cluster regains the full ledger. This
// bench measures that cost for each clustering strategy — geometry-anchored
// k-means barely moves anyone; a random reshuffle moves almost everything.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp16_reconfig");
  const std::size_t kNodes = opts.smoke ? 40 : 120;
  const std::size_t kClusters = opts.smoke ? 2 : 6;
  const std::size_t kBlocks = opts.smoke ? 30 : 150;
  constexpr std::size_t kTxs = 30;
  constexpr std::uint64_t kSeed = 42;

  obs::BenchReport bench_report("exp16_reconfig", kSeed);
  bench_report.set_smoke(opts.smoke);
  bench_report.set_config("nodes", kNodes);
  bench_report.set_config("clusters", kClusters);
  bench_report.set_config("blocks", kBlocks);
  bench_report.set_config("txs_per_block", kTxs);

  print_experiment_header("E16", "epoch reconfiguration: migration cost by clustering strategy");
  const Chain chain = make_chain(kBlocks, kTxs, kSeed);
  std::cout << "N=" << kNodes << ", k=" << kClusters << ", ledger "
            << format_bytes(static_cast<double>(chain.total_bytes()))
            << "; one epoch change (new clustering seed)\n\n";
  bench_report.set_config("ledger_bytes", chain.total_bytes());

  Table table({"clustering", "nodes moved", "block copies", "bytes migrated",
               "bytes pruned", "vs ledger"});

  for (const std::string strategy : {"kmeans", "grid", "random"}) {
    core::IciNetworkConfig cfg;
    cfg.node_count = kNodes;
    cfg.ici.cluster_count = kClusters;
    cfg.ici.clustering = strategy;
    core::IciNetwork net(cfg);
    net.init_with_genesis(chain.at_height(0));
    net.preload_chain(chain);

    net.network().reset_traffic();
    const auto report = net.reconfigure(/*epoch_seed=*/20260705);
    net.settle();
    const std::uint64_t migrated = net.network().total_traffic().bytes_sent;
    const std::uint64_t pruned = net.prune_unassigned();
    const double vs_ledger =
        static_cast<double>(migrated) / static_cast<double>(chain.total_bytes()) * 100;

    table.row({strategy, std::to_string(report.nodes_moved),
               std::to_string(report.copies_started),
               format_bytes(static_cast<double>(migrated)),
               format_bytes(static_cast<double>(pruned)),
               format_double(vs_ledger, 1) + "%"});

    bench_report.add_row("clustering=" + strategy)
        .set("clustering", strategy)
        .set("nodes_moved", report.nodes_moved)
        .set("block_copies_started", report.copies_started)
        .set("bytes_migrated", migrated)
        .set("bytes_pruned", pruned)
        .set("migrated_vs_ledger_pct", vs_ledger);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: k-means re-clustering is anchored by geography, so few "
               "nodes change cluster and little data moves; random re-clustering moves "
               "most members and migrates a multiple of the ledger. Rendezvous assignment "
               "limits migration to blocks whose cluster membership actually changed.\n";
  finish_report(bench_report, kNodes);
  return 0;
}
