// E16 [R, extension] — Epoch reconfiguration cost: migration traffic when
// the network re-clusters.
//
// Sharded blockchains must periodically reshuffle membership (RapidChain's
// Cuckoo-rule epochs). For ICIStrategy the epoch cost is the block
// migration needed so every new cluster regains the full ledger. This
// bench measures that cost for each clustering strategy — geometry-anchored
// k-means barely moves anyone; a random reshuffle moves almost everything.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main() {
  constexpr std::size_t kNodes = 120;
  constexpr std::size_t kClusters = 6;
  constexpr std::size_t kBlocks = 150;
  constexpr std::size_t kTxs = 30;

  print_experiment_header("E16", "epoch reconfiguration: migration cost by clustering strategy");
  const Chain chain = make_chain(kBlocks, kTxs);
  std::cout << "N=" << kNodes << ", k=" << kClusters << ", ledger "
            << format_bytes(static_cast<double>(chain.total_bytes()))
            << "; one epoch change (new clustering seed)\n\n";

  Table table({"clustering", "nodes moved", "block copies", "bytes migrated",
               "bytes pruned", "vs ledger"});

  for (const std::string strategy : {"kmeans", "grid", "random"}) {
    core::IciNetworkConfig cfg;
    cfg.node_count = kNodes;
    cfg.ici.cluster_count = kClusters;
    cfg.ici.clustering = strategy;
    core::IciNetwork net(cfg);
    net.init_with_genesis(chain.at_height(0));
    net.preload_chain(chain);

    net.network().reset_traffic();
    const auto report = net.reconfigure(/*epoch_seed=*/20260705);
    net.settle();
    const std::uint64_t migrated = net.network().total_traffic().bytes_sent;
    const std::uint64_t pruned = net.prune_unassigned();

    table.row({strategy, std::to_string(report.nodes_moved),
               std::to_string(report.copies_started),
               format_bytes(static_cast<double>(migrated)),
               format_bytes(static_cast<double>(pruned)),
               format_double(static_cast<double>(migrated) /
                                 static_cast<double>(chain.total_bytes()) * 100,
                             1) +
                   "%"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: k-means re-clustering is anchored by geography, so few "
               "nodes change cluster and little data moves; random re-clustering moves "
               "most members and migrates a multiple of the ledger. Rendezvous assignment "
               "limits migration to blocks whose cluster membership actually changed.\n";
  return 0;
}
