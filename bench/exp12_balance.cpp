// E12 [R] — Intra-cluster storage balance (DESIGN.md D2 ablation).
//
// Compares the block→node assignment strategies on (a) storage balance in
// a homogeneous cluster, (b) capacity-proportional placement in a
// heterogeneous cluster, and (c) disruption when a member departs — the
// reason rendezvous hashing is the default.
#include "bench_util.h"

#include <map>

#include "cluster/assignment.h"

using namespace ici;
using namespace ici::bench;
using namespace ici::cluster;

namespace {

Hash256 block_hash(std::uint64_t i) {
  ByteWriter w;
  w.u64(i);
  return Hash256::of(ByteSpan(w.bytes().data(), w.bytes().size()));
}

struct BalanceResult {
  double cv = 0;
  double max_over_mean = 0;
  double moved_on_departure = 0;  // fraction of blocks that changed holder
};

BalanceResult evaluate(const BlockAssigner& assigner, std::vector<NodeInfo> members,
                       std::size_t blocks) {
  std::map<NodeId, int> load;
  std::vector<NodeId> placement(blocks);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    placement[b] = assigner.storers(block_hash(b), b, members, 1)[0];
    load[placement[b]]++;
  }
  RunningStat stat;
  for (const auto& m : members) {
    const auto it = load.find(m.id);
    stat.add(it == load.end() ? 0.0 : static_cast<double>(it->second));
  }

  // Remove one member, re-derive, count moves among blocks it did NOT hold.
  const NodeId removed = members.back().id;
  members.pop_back();
  std::size_t moved = 0;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const NodeId after = assigner.storers(block_hash(b), b, members, 1)[0];
    if (placement[b] != removed && after != placement[b]) ++moved;
  }

  BalanceResult r;
  r.cv = stat.cv();
  r.max_over_mean = stat.mean() > 0 ? stat.max() / stat.mean() : 0;
  r.moved_on_departure = static_cast<double>(moved) / static_cast<double>(blocks);
  return r;
}

std::vector<NodeInfo> cluster_members(std::size_t m, bool heterogeneous) {
  auto nodes = generate_topology(m, 1, 5, 100.0, heterogeneous);
  return nodes;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp12_balance");
  constexpr std::size_t kMembers = 20;
  const std::size_t kBlocks = opts.smoke ? 400 : 4000;
  constexpr std::uint64_t kSeed = 42;

  obs::BenchReport report("exp12_balance", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("cluster_members", kMembers);
  report.set_config("blocks", kBlocks);
  report.set_config("replication", 1);

  print_experiment_header("E12", "intra-cluster storage balance and churn disruption");
  std::cout << "cluster of " << kMembers << " members, " << kBlocks
            << " blocks, r=1; 'moved' counts blocks that changed holder when an\n"
            << "unrelated member departed (lower is better)\n\n";

  RendezvousAssigner rendezvous(false);
  RendezvousAssigner weighted(true);
  RoundRobinAssigner round_robin;

  Table table({"assigner", "capacity", "load CV", "max/mean", "moved on departure"});
  const auto add_row = [&](const char* name, const BlockAssigner& a, bool hetero) {
    const BalanceResult r = evaluate(a, cluster_members(kMembers, hetero), kBlocks);
    table.row({name, hetero ? "heterogeneous" : "uniform", format_double(r.cv, 3),
               format_double(r.max_over_mean, 2),
               format_double(r.moved_on_departure * 100, 1) + "%"});
    report.add_row(std::string(name) + "/" + (hetero ? "heterogeneous" : "uniform"))
        .set("assigner", name)
        .set("capacity", hetero ? "heterogeneous" : "uniform")
        .set("load_cv", r.cv)
        .set("max_over_mean", r.max_over_mean)
        .set("moved_on_departure_pct", r.moved_on_departure * 100);
  };
  add_row("rendezvous", rendezvous, false);
  add_row("rendezvous-weighted", weighted, false);
  add_row("round-robin", round_robin, false);
  add_row("rendezvous", rendezvous, true);
  add_row("rendezvous-weighted", weighted, true);
  table.print(std::cout);

  // Second table: does weighted assignment track capacity?
  std::cout << "\nCapacity tracking (heterogeneous cluster): per-member load / capacity "
               "should be ~constant for the weighted assigner\n\n";
  auto members = cluster_members(8, true);
  std::map<NodeId, int> load;
  for (std::uint64_t b = 0; b < kBlocks; ++b) {
    load[weighted.storers(block_hash(b), b, members, 1)[0]]++;
  }
  Table t2({"member", "capacity", "blocks", "blocks/capacity"});
  for (const auto& m : members) {
    const double got = static_cast<double>(load[m.id]);
    t2.row({std::to_string(m.id), format_double(m.capacity, 2), format_double(got, 0),
            format_double(got / m.capacity, 0)});
  }
  t2.print(std::cout);
  std::cout << "\nExpected shape: rendezvous CV near round-robin's (both balanced), but "
               "round-robin reshuffles nearly everything on departure while rendezvous "
               "moves ~0% of unaffected blocks; weighted tracks capacity within noise.\n";
  finish_report(report);
  return 0;
}
