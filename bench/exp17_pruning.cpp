// E17 [R, extension] — ICIStrategy vs pruned full replication.
//
// "Why not just prune?" is the obvious objection to collaborative storage.
// Pruning bounds per-node storage too — but the network *forgets*: once a
// body leaves every node's window, no one can serve it. ICIStrategy keeps
// per-node storage comparable while the network collectively retains the
// entire history. This bench puts the two side by side as the chain grows.
#include "bench_util.h"

#include "baseline/pruned.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp17_pruning");
  const std::size_t kNodes = opts.smoke ? 40 : 120;
  const std::size_t kClusters = opts.smoke ? 2 : 6;  // m = 20
  const std::size_t kWindow = opts.smoke ? 32 : 128;
  constexpr std::size_t kTxs = 40;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> block_counts =
      opts.smoke ? std::vector<std::size_t>{50} : std::vector<std::size_t>{100, 250, 500, 1000};

  obs::BenchReport report("exp17_pruning", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("clusters", kClusters);
  report.set_config("prune_window", kWindow);
  report.set_config("txs_per_block", kTxs);

  print_experiment_header("E17", "collaborative storage vs pruning (window=" +
                                     std::to_string(kWindow) + " blocks)");
  std::cout << "N=" << kNodes << "; ICI m=" << kNodes / kClusters
            << " r=1; pruned nodes keep headers + UTXO snapshot + last " << kWindow
            << " bodies\n\n";

  Table table({"blocks", "ici bytes/node", "pruned bytes/node", "ici history served",
               "pruned history served"});

  for (const std::size_t blocks : block_counts) {
    const Chain chain = make_chain(blocks, kTxs, kSeed);

    const auto ici = make_ici_preloaded(chain, kNodes, kClusters);

    baseline::PrunedConfig pcfg;
    pcfg.node_count = kNodes;
    pcfg.window = kWindow;
    baseline::PrunedNetwork pruned(pcfg);
    pruned.preload_chain(chain);

    // Count state the same way on both sides: the pruned node persists the
    // full UTXO snapshot; an ICI member holds ~1/m of its cluster's UTXO
    // set (preload skips shard state, so add it analytically: each cluster
    // collectively holds the full set → k·U entries network-wide).
    UtxoSet replayed;
    for (const Block& b : chain.blocks()) {
      for (const Transaction& tx : b.txs()) replayed.apply_tx(tx, b.header().height);
    }
    const double ici_state_per_node = static_cast<double>(replayed.size()) * (36 + 8 + 32) *
                                      static_cast<double>(kClusters) /
                                      static_cast<double>(kNodes);
    const double ici_bytes = ici->storage_snapshot().mean_bytes + ici_state_per_node;
    const double pruned_bytes = static_cast<double>(pruned.per_node_bytes());
    const double ici_avail = ici->availability();
    const double pruned_avail = pruned.historical_availability(chain);
    table.row({std::to_string(blocks), format_bytes(ici_bytes), format_bytes(pruned_bytes),
               format_double(ici_avail * 100, 1) + "%",
               format_double(pruned_avail * 100, 1) + "%"});

    report.add_row("blocks=" + std::to_string(blocks))
        .set("blocks", blocks)
        .set("ici_bytes_per_node", ici_bytes)
        .set("pruned_bytes_per_node", pruned_bytes)
        .set("ici_history_served", ici_avail)
        .set("pruned_history_served", pruned_avail);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: both bound per-node storage, but pruning's servable "
               "history collapses toward window/chain as the ledger grows, while "
               "ICIStrategy serves 100% of history from every cluster at a comparable "
               "per-node footprint (the pruned node's snapshot also grows with the UTXO "
               "set).\n";
  finish_report(report, kNodes);
  return 0;
}
