// E17 [R, extension] — ICIStrategy vs pruned full replication.
//
// "Why not just prune?" is the obvious objection to collaborative storage.
// Pruning bounds per-node storage too — but the network *forgets*: once a
// body leaves every node's window, no one can serve it. ICIStrategy keeps
// per-node storage comparable while the network collectively retains the
// entire history. This bench puts the two side by side as the chain grows.
#include "bench_util.h"

#include "baseline/pruned.h"

using namespace ici;
using namespace ici::bench;

int main() {
  constexpr std::size_t kNodes = 120;
  constexpr std::size_t kClusters = 6;  // m = 20
  constexpr std::size_t kWindow = 128;
  constexpr std::size_t kTxs = 40;

  print_experiment_header("E17", "collaborative storage vs pruning (window=" +
                                     std::to_string(kWindow) + " blocks)");
  std::cout << "N=" << kNodes << "; ICI m=" << kNodes / kClusters
            << " r=1; pruned nodes keep headers + UTXO snapshot + last " << kWindow
            << " bodies\n\n";

  Table table({"blocks", "ici bytes/node", "pruned bytes/node", "ici history served",
               "pruned history served"});

  for (std::size_t blocks : {100u, 250u, 500u, 1000u}) {
    const Chain chain = make_chain(blocks, kTxs);

    const auto ici = make_ici_preloaded(chain, kNodes, kClusters);

    baseline::PrunedConfig pcfg;
    pcfg.node_count = kNodes;
    pcfg.window = kWindow;
    baseline::PrunedNetwork pruned(pcfg);
    pruned.preload_chain(chain);

    // Count state the same way on both sides: the pruned node persists the
    // full UTXO snapshot; an ICI member holds ~1/m of its cluster's UTXO
    // set (preload skips shard state, so add it analytically: each cluster
    // collectively holds the full set → k·U entries network-wide).
    UtxoSet replayed;
    for (const Block& b : chain.blocks()) {
      for (const Transaction& tx : b.txs()) replayed.apply_tx(tx, b.header().height);
    }
    const double ici_state_per_node = static_cast<double>(replayed.size()) * (36 + 8 + 32) *
                                      static_cast<double>(kClusters) /
                                      static_cast<double>(kNodes);
    table.row({std::to_string(blocks),
               format_bytes(ici->storage_snapshot().mean_bytes + ici_state_per_node),
               format_bytes(static_cast<double>(pruned.per_node_bytes())),
               format_double(ici->availability() * 100, 1) + "%",
               format_double(pruned.historical_availability(chain) * 100, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: both bound per-node storage, but pruning's servable "
               "history collapses toward window/chain as the ledger grows, while "
               "ICIStrategy serves 100% of history from every cluster at a comparable "
               "per-node footprint (the pruned node's snapshot also grows with the UTXO "
               "set).\n";
  return 0;
}
