// E18 [R, extension] — Pipelined dissemination throughput vs depth.
//
// Sequential dissemination leaves the network idle between a block's commit
// and the next proposal. With the workload maturity window set at least as
// deep as the pipeline, several blocks can be verified concurrently; this
// bench sweeps the number of blocks in flight and reports effective
// throughput.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp18_pipeline");
  const std::size_t kNodes = opts.smoke ? 30 : 90;
  constexpr std::size_t kClusters = 3;
  constexpr std::size_t kTxs = 40;
  const int kBlocks = opts.smoke ? 4 : 8;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<int> depths =
      opts.smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  obs::BenchReport report("exp18_pipeline", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("clusters", kClusters);
  report.set_config("txs_per_block", kTxs);
  report.set_config("blocks", kBlocks);

  print_experiment_header("E18", "pipelined dissemination throughput vs depth");
  std::cout << "N=" << kNodes << ", k=" << kClusters << ", " << kBlocks
            << " blocks total, workload maturity = " << kBlocks
            << " (in-flight blocks never depend on each other)\n\n";

  Table table({"pipeline depth", "wall time (ms)", "blocks/s", "speedup vs depth 1"});
  double baseline_ms = 0;

  for (const int depth : depths) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = kTxs;
    ccfg.workload.maturity = kBlocks;
    ccfg.workload.genesis_outputs_per_wallet = 16;
    ChainGenerator gen(ccfg);

    core::IciNetworkConfig ncfg;
    ncfg.node_count = kNodes;
    ncfg.ici.cluster_count = kClusters;
    core::IciNetwork net(ncfg);
    Block genesis = gen.workload().make_genesis();
    gen.workload().confirm(genesis);
    Chain chain(genesis);
    net.init_with_genesis(genesis);

    // Dissemination in waves of `depth`; a wave's cost is first proposal →
    // last full commit (settle() afterwards only drains no-op timers).
    double total_ms = 0;
    int committed = 0;
    for (int done = 0; done < kBlocks; done += depth) {
      const int wave = std::min(depth, kBlocks - done);
      const sim::SimTime start = net.simulator().now();
      std::vector<Hash256> hashes;
      for (int i = 0; i < wave; ++i) {
        chain.append(gen.next_block(chain));
        hashes.push_back(chain.tip().hash());
        net.disseminate(chain.tip());
      }
      net.settle();
      sim::SimTime last = start;
      for (const Hash256& h : hashes) {
        const sim::SimTime t = net.full_commit_time(h);
        if (t > 0) {
          ++committed;
          last = std::max(last, t);
        }
      }
      total_ms += static_cast<double>(last - start) / 1000.0;
    }

    if (depth == 1) baseline_ms = total_ms;
    const double blocks_per_s = committed > 0 && total_ms > 0 ? committed * 1000.0 / total_ms : 0;
    const double speedup = total_ms > 0 && baseline_ms > 0 ? baseline_ms / total_ms : 0;
    table.row({std::to_string(depth), format_double(total_ms, 1),
               format_double(blocks_per_s, 2), format_double(speedup, 2) + "x"});

    report.add_row("depth=" + std::to_string(depth))
        .set("pipeline_depth", depth)
        .set("sim_time_ms", total_ms)
        .set("blocks_committed", committed)
        .set("blocks_per_s", blocks_per_s)
        .set("speedup_vs_depth1", speedup);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: throughput grows with depth while the proposer uplink and "
               "head fan-out have slack, then saturates — the verification rounds of "
               "consecutive blocks overlap almost entirely.\n";
  finish_report(report, kNodes);
  return 0;
}
