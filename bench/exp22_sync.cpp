// E22 — Streaming bulk-sync bootstrap under fault plans.
//
// Sweeps the ICI join protocol (docs/BOOTSTRAP.md) over chain heights and
// three fault plans:
//   none  — clean network; measures the protocol's baseline cost/latency.
//   crash — the joiner itself crashes mid-sync and restarts before the
//           clean run would have finished; the driver-owned checkpoint must
//           resume from the last verified range, and the resumed node must
//           end bit-identical (storage counters) to the uninterrupted run.
//   drop  — a lossy network (uniform message drop); per-range timeouts
//           reassign work, so the join completes with retries > 0.
//
// The crash window is derived from the measured clean-run duration (crash
// at ~40%, restart at ~90% of T_clean), so the interrupt always lands
// mid-sync regardless of chain height — no tuned magic constants.
#include "bench_util.h"

#include "ici/bootstrap.h"
#include "metrics/registry.h"
#include "sim/faults.h"

using namespace ici;
using namespace ici::bench;

namespace {

/// Joiner-side storage counters compared between the clean and the
/// crash-resumed run ("same final verified state, bit-identical").
struct JoinerState {
  std::size_t header_count = 0;
  std::size_t block_count = 0;
  std::uint64_t body_bytes = 0;
  std::uint64_t shard_bytes = 0;

  bool operator==(const JoinerState&) const = default;
};

JoinerState capture_state(const core::IciNetwork& net, cluster::NodeId joiner) {
  const auto& node = net.node(joiner);
  return {node.store().header_count(), node.store().block_count(),
          node.store().body_bytes(), node.shards().total_bytes()};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp22_sync");
  const std::size_t kNodes = opts.smoke ? 40 : 120;
  const std::size_t kClusters = opts.smoke ? 2 : 6;
  constexpr std::size_t kTxs = 40;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> heights =
      opts.smoke ? std::vector<std::size_t>{30} : std::vector<std::size_t>{200, 400, 800};

  obs::BenchReport report("exp22_sync", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("ici_clusters", kClusters);
  report.set_config("txs_per_block", kTxs);

  print_experiment_header("E22", "streaming bulk-sync bootstrap under fault plans");
  std::cout << "N=" << kNodes << "; ICI m=" << kNodes / kClusters
            << " r=1; plans none/crash/drop\n\n";

  Table table({"blocks", "plan", "synced", "time (s)", "bytes", "peers", "ranges",
               "retried", "resumes", "state=clean"});

  // sync.* metrics aggregated across all runs (each run has its own network
  // registry; the artifact carries the union).
  metrics::Registry agg;
  const StoreConfig store = store_config_from(opts);
  StoreCounters store_totals;

  for (const std::size_t blocks : heights) {
    const Chain chain = make_chain(blocks, kTxs, kSeed);
    JoinerState clean_state;
    sim::SimTime t_clean = 0;

    const auto run_plan = [&](const char* plan_name) {
      auto net = make_ici_preloaded(chain, kNodes, kClusters, /*replication=*/1, store);
      const cluster::NodeId joiner = core::Bootstrapper::add_joiner_nearest(*net, {50, 50});
      const sim::SimTime now = net->simulator().now();

      if (std::string_view(plan_name) == "crash") {
        // Interrupt mid-sync: down at 40% of the measured clean duration,
        // back up at 90% — always before an uninterrupted join would end.
        sim::FaultPlan plan;
        plan.seed = kSeed;
        plan.crashes.push_back(sim::CrashWindow{
            joiner, now + std::max<sim::SimTime>(1, t_clean * 2 / 5),
            now + std::max<sim::SimTime>(2, t_clean * 9 / 10)});
        net->start_faults(plan);
      } else if (std::string_view(plan_name) == "drop") {
        sim::FaultPlan plan;
        plan.seed = kSeed;
        plan.message.drop_prob = 0.05;
        net->start_faults(plan);
      }

      const auto r = core::Bootstrapper::run(*net, joiner, sync::SyncConfig{});
      const JoinerState state = capture_state(*net, joiner);
      store_totals += sum_store_counters(net->stores());
      if (std::string_view(plan_name) == "none") {
        clean_state = state;
        t_clean = r.sync.time_to_synced_us;
      }
      const bool matches = state == clean_state;

      if (r.complete) agg.counter("sync.joins_completed").inc();
      agg.counter("sync.ranges_committed").inc(r.sync.ranges_committed);
      agg.counter("sync.ranges_retried").inc(r.sync.ranges_retried);
      agg.counter("sync.bodies_committed").inc(r.sync.bodies_committed);
      agg.counter("sync.resumes").inc(r.sync.resume_count);
      agg.distribution("sync.time_to_synced_us")
          .add(static_cast<double>(r.sync.time_to_synced_us));
      for (const auto& p : r.sync.by_peer)
        agg.distribution("sync.bytes_per_peer").add(static_cast<double>(p.bytes));

      std::uint64_t peer_max = 0;
      std::uint64_t peer_min = r.sync.by_peer.empty() ? 0 : ~0ULL;
      for (const auto& p : r.sync.by_peer) {
        peer_max = std::max(peer_max, p.bytes);
        peer_min = std::min(peer_min, p.bytes);
      }

      table.row({std::to_string(blocks), plan_name, r.complete ? "yes" : "NO",
                 format_double(static_cast<double>(r.sync.time_to_synced_us) / 1e6, 2),
                 format_bytes(static_cast<double>(r.bytes_downloaded)),
                 std::to_string(r.sync.peers_used), std::to_string(r.sync.ranges_committed),
                 std::to_string(r.sync.ranges_retried), std::to_string(r.sync.resume_count),
                 matches ? "yes" : "NO"});
      report.add_row("blocks=" + std::to_string(blocks) + "/" + plan_name)
          .set("blocks", blocks)
          .set("plan", plan_name)
          .set("complete", r.complete)
          .set("time_to_synced_us", r.sync.time_to_synced_us)
          .set("frontier_us", r.sync.frontier_us)
          .set("bytes_downloaded", r.bytes_downloaded)
          .set("header_payload_bytes", r.sync.header_payload_bytes)
          .set("body_payload_bytes", r.sync.body_payload_bytes)
          .set("peers_used", r.sync.peers_used)
          .set("peer_bytes_max", peer_max)
          .set("peer_bytes_min", peer_min)
          .set("ranges_committed", r.sync.ranges_committed)
          .set("ranges_retried", r.sync.ranges_retried)
          .set("resumes", r.sync.resume_count)
          .set("resumed_matches_clean", matches);
    };

    run_plan("none");
    run_plan("crash");
    run_plan("drop");
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: time-to-synced grows with chain height; the crash plan "
               "resumes (resumes >= 1) and lands in the same verified state as the clean "
               "run; the drop plan completes with retried ranges; bytes spread across "
               "multiple source peers.\n";
  report.capture_registry(agg);
  // With --store disk every serve above read bodies off the segment logs;
  // the artifact carries the summed backend instrumentation the schema
  // checker requires of disk captures.
  add_store_counters(report, store_totals);
  finish_report(report, kNodes);
  return 0;
}
