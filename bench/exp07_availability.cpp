// E07 [R] — Block availability under churn vs intra-cluster replication r.
//
// Pure ICI (r=1) trades redundancy for storage: when the sole holder of a
// block is offline, that block is unavailable inside its cluster until the
// holder returns (other clusters still have it). r=2..3 plus the repair
// protocol keeps availability near 1 at a storage premium.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp07_availability");
  const std::size_t kNodes = opts.smoke ? 24 : 60;
  const std::size_t kClusters = opts.smoke ? 2 : 3;
  constexpr std::size_t kTxs = 20;
  const int kBlocks = opts.smoke ? 3 : 10;
  const int kMinutes = opts.smoke ? 3 : 30;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> replications =
      opts.smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 3};

  obs::BenchReport report("exp07_availability", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("clusters", kClusters);
  report.set_config("txs_per_block", kTxs);
  report.set_config("blocks", kBlocks);
  report.set_config("sim_minutes", kMinutes);
  report.set_config("churn_fraction", 0.3);

  print_experiment_header("E07", "availability under churn vs intra-cluster replication r");
  std::cout << "N=" << kNodes << ", k=" << kClusters << " (m=" << kNodes / kClusters
            << "), 30% of nodes churn (10 min up / 2 min down means), " << kMinutes
            << " min simulated\n\n";

  Table table({"r", "cluster-local avail", "network avail", "repair copies",
               "unavailable events", "mean bytes/node"});

  for (const std::size_t r : replications) {
    LiveIciRig rig(kNodes, kClusters, kTxs, r, kSeed);
    for (int i = 0; i < kBlocks; ++i) rig.step();

    sim::ChurnConfig churn;
    churn.churn_fraction = 0.3;
    churn.mean_uptime_us = 600'000'000;   // 10 min
    churn.mean_downtime_us = 120'000'000; // 2 min
    churn.seed = 7 + r;
    rig.net->start_churn(churn);

    // Sample availability every simulated minute.
    RunningStat availability;
    RunningStat network_availability;
    for (int minute = 0; minute < kMinutes; ++minute) {
      rig.net->simulator().run_until(rig.net->simulator().now() + 60'000'000);
      availability.add(rig.net->availability());
      network_availability.add(rig.net->network_availability());
    }

    const std::uint64_t copies =
        rig.net->metrics().counter_value("repair.copies_completed");
    const std::uint64_t unavailable =
        rig.net->metrics().counter_value("repair.unavailable_blocks");
    const double mean_bytes = StorageMeter::snapshot(rig.net->stores()).mean_bytes;

    table.row({std::to_string(r), format_double(availability.mean(), 4),
               format_double(network_availability.mean(), 4), std::to_string(copies),
               std::to_string(unavailable), format_bytes(mean_bytes)});

    report.add_row("r=" + std::to_string(r))
        .set("replication", r)
        .set("cluster_local_availability", availability.mean())
        .set("network_availability", network_availability.mean())
        .set("repair_copies_completed", copies)
        .set("unavailable_events", unavailable)
        .set("mean_bytes_per_node", mean_bytes);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: r=1 cluster-local service dips while sole holders are "
               "offline, but the network-wide copy-per-cluster redundancy keeps blocks "
               "servable (cross-cluster fallback turns local outages into latency); r≥2 "
               "with repair holds ≈1.0 locally at proportionally higher storage.\n";
  finish_report(report, kNodes);
  return 0;
}
