// E07 [R] — Block availability under churn vs intra-cluster replication r.
//
// Pure ICI (r=1) trades redundancy for storage: when the sole holder of a
// block is offline, that block is unavailable inside its cluster until the
// holder returns (other clusters still have it). r=2..3 plus the repair
// protocol keeps availability near 1 at a storage premium.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main() {
  constexpr std::size_t kNodes = 60;
  constexpr std::size_t kClusters = 3;
  constexpr std::size_t kTxs = 20;
  constexpr int kBlocks = 10;

  print_experiment_header("E07", "availability under churn vs intra-cluster replication r");
  std::cout << "N=" << kNodes << ", k=" << kClusters << " (m=" << kNodes / kClusters
            << "), 30% of nodes churn (10 min up / 2 min down means), 30 min simulated\n\n";

  Table table({"r", "cluster-local avail", "network avail", "repair copies",
               "unavailable events", "mean bytes/node"});

  for (std::size_t r : {1u, 2u, 3u}) {
    LiveIciRig rig(kNodes, kClusters, kTxs, r);
    for (int i = 0; i < kBlocks; ++i) rig.step();

    sim::ChurnConfig churn;
    churn.churn_fraction = 0.3;
    churn.mean_uptime_us = 600'000'000;   // 10 min
    churn.mean_downtime_us = 120'000'000; // 2 min
    churn.seed = 7 + r;
    rig.net->start_churn(churn);

    // Sample availability every simulated minute for 30 minutes.
    RunningStat availability;
    RunningStat network_availability;
    for (int minute = 0; minute < 30; ++minute) {
      rig.net->simulator().run_until(rig.net->simulator().now() + 60'000'000);
      availability.add(rig.net->availability());
      network_availability.add(rig.net->network_availability());
    }

    table.row({std::to_string(r), format_double(availability.mean(), 4),
               format_double(network_availability.mean(), 4),
               std::to_string(rig.net->metrics().counter_value("repair.copies_completed")),
               std::to_string(rig.net->metrics().counter_value("repair.unavailable_blocks")),
               format_bytes(StorageMeter::snapshot(rig.net->stores()).mean_bytes)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: r=1 cluster-local service dips while sole holders are "
               "offline, but the network-wide copy-per-cluster redundancy keeps blocks "
               "servable (cross-cluster fallback turns local outages into latency); r≥2 "
               "with repair holds ≈1.0 locally at proportionally higher storage.\n";
  return 0;
}
