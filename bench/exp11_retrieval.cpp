// E11 [R] — Historical block retrieval latency vs cluster size m.
//
// The cost ICIStrategy pays for not storing everything locally: reading an
// unassigned block means one intra-cluster fetch. With latency-aware
// clustering the holder is nearby, so the penalty stays near a single
// intra-cluster round trip regardless of m. Full replication's baseline is
// a local read (0 ms) — shown as the local-hit rate column.
#include "bench_util.h"

#include "ici/retrieval.h"

using namespace ici;
using namespace ici::bench;

int main() {
  constexpr std::size_t kNodes = 120;
  constexpr std::size_t kBlocks = 120;
  constexpr std::size_t kTxs = 30;
  constexpr std::size_t kFetches = 150;

  print_experiment_header("E11", "historical block retrieval latency vs cluster size m");
  const Chain chain = make_chain(kBlocks, kTxs);
  std::cout << "N=" << kNodes << ", " << kFetches
            << " random (node, block) fetches per configuration\n\n";

  Table table({"m", "k", "local hits", "remote p50 (ms)", "remote p99 (ms)", "misses"});
  for (std::size_t m : {10u, 20u, 40u, 60u}) {
    const std::size_t k = kNodes / m;
    auto net = make_ici_preloaded(chain, kNodes, k);
    const core::RetrievalStats stats = core::RetrievalDriver::run(*net, kFetches, 99);

    table.row({std::to_string(m), std::to_string(k), std::to_string(stats.local_hits),
               format_double(stats.latency_us.p50() / 1000, 2),
               format_double(stats.latency_us.p99() / 1000, 2),
               std::to_string(stats.misses)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: local-hit probability ~r/m falls with m, but the remote "
               "fetch stays ~one intra-cluster RTT + body transfer. Full replication always "
               "hits locally (0 ms) at m-times the storage.\n";
  return 0;
}
