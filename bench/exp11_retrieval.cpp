// E11 [R] — Historical block retrieval latency vs cluster size m.
//
// The cost ICIStrategy pays for not storing everything locally: reading an
// unassigned block means one intra-cluster fetch. With latency-aware
// clustering the holder is nearby, so the penalty stays near a single
// intra-cluster round trip regardless of m. Full replication's baseline is
// a local read (0 ms) — shown as the local-hit rate column.
#include "bench_util.h"

#include "ici/retrieval.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp11_retrieval");
  const std::size_t kNodes = opts.smoke ? 40 : 120;
  const std::size_t kBlocks = opts.smoke ? 30 : 120;
  constexpr std::size_t kTxs = 30;
  const std::size_t kFetches = opts.smoke ? 40 : 150;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> cluster_sizes =
      opts.smoke ? std::vector<std::size_t>{10, 20} : std::vector<std::size_t>{10, 20, 40, 60};

  obs::BenchReport report("exp11_retrieval", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("blocks", kBlocks);
  report.set_config("txs_per_block", kTxs);
  report.set_config("fetches", kFetches);

  print_experiment_header("E11", "historical block retrieval latency vs cluster size m");
  const Chain chain = make_chain(kBlocks, kTxs, kSeed);
  std::cout << "N=" << kNodes << ", " << kFetches
            << " random (node, block) fetches per configuration\n\n";

  Table table({"m", "k", "local hits", "remote p50 (ms)", "remote p99 (ms)", "misses",
               "timeouts", "not found"});
  StoreCounters store_totals;
  for (const std::size_t m : cluster_sizes) {
    const std::size_t k = kNodes / m;
    auto net = make_ici_preloaded(chain, kNodes, k, /*replication=*/1,
                                  store_config_from(opts));
    const core::RetrievalStats stats = core::RetrievalDriver::run(*net, kFetches, 99);
    store_totals += sum_store_counters(net->stores());

    table.row({std::to_string(m), std::to_string(k), std::to_string(stats.local_hits),
               format_double(stats.latency_us.p50() / 1000, 2),
               format_double(stats.latency_us.p99() / 1000, 2),
               std::to_string(stats.misses()), std::to_string(stats.timeouts),
               std::to_string(stats.not_found)});

    report.add_row("m=" + std::to_string(m))
        .set("cluster_size", m)
        .set("clusters", k)
        .set("local_hits", stats.local_hits)
        .set("remote_p50_us", stats.latency_us.p50())
        .set("remote_p99_us", stats.latency_us.p99())
        .set("misses", stats.misses())
        .set("timeouts", stats.timeouts)
        .set("not_found", stats.not_found);
  }
  // Disk-backed runs (--store disk) attach the backend instrumentation the
  // schema checker requires on such captures.
  if (opts.store == "disk") add_store_counters(report, store_totals);

  table.print(std::cout);
  std::cout << "\nExpected shape: local-hit probability ~r/m falls with m, but the remote "
               "fetch stays ~one intra-cluster RTT + body transfer. Full replication always "
               "hits locally (0 ms) at m-times the storage.\n";
  finish_report(report, kNodes);
  return 0;
}
