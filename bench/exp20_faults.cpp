// E20 [F] — Availability, repair traffic, and retrieval latency under
// faults: node churn × message drops, swept over every strategy in the
// registry at (approximately) equal per-node storage.
//
// The claim under test: at the same per-node storage budget (≈ D/8 here —
// ICI m=16 r=2, RapidChain k=8, pruned window = blocks·r/m), ICIStrategy's
// cluster-scoped redundancy plus its repair daemon keeps committed blocks
// servable under churn, where RapidChain loses whole shards when a
// committee empties out and pruning has already discarded deep history.
// Full replication is the (expensive) availability anchor.
//
// Every cell is driven by a seed-derived sim::FaultPlan, so reruns with the
// same --seed reproduce the JSON sim metrics bit-for-bit. Pass --fault-plan
// to replace the sweep with one custom cell (see docs/FAULTS.md).
#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/faults.h"
#include "strategy/strategy.h"

using namespace ici;
using namespace ici::bench;

namespace {

struct Cell {
  double churn = 0.0;  // fraction of nodes on a crash/restart schedule
  double drop = 0.0;   // per-message drop probability
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp20_faults");
  const std::size_t kNodes = opts.smoke ? 32 : 96;
  const std::size_t kIciClusters = opts.smoke ? 2 : 6;  // m = 16 either way
  constexpr std::size_t kIciReplication = 2;            // per-node ≈ D·r/m = D/8
  const std::size_t kRcCommittees = opts.smoke ? 4 : 8;  // per-node ≈ D/8
  const std::size_t kBlocks = opts.smoke ? 24 : 96;
  constexpr std::size_t kTxs = 24;
  const std::size_t kClusterSize = kNodes / kIciClusters;
  const std::size_t kPrunedWindow =
      std::max<std::size_t>(1, kBlocks * kIciReplication / kClusterSize);
  const std::size_t kFetches = opts.smoke ? 20 : 80;
  const std::uint64_t kMinutes = opts.smoke ? 4 : 10;
  constexpr sim::SimTime kSampleUs = 60'000'000;        // 1 sim minute
  constexpr sim::SimTime kRepairIntervalUs = 30'000'000;
  const sim::SimTime kWindowUs = static_cast<sim::SimTime>(kMinutes) * kSampleUs;

  // Sweep cells; --fault-plan replaces the sweep with the given plan.
  std::vector<Cell> cells;
  sim::FaultPlan custom_plan;
  const bool use_custom = !opts.fault_plan.empty();
  if (use_custom) {
    std::string error;
    if (!sim::FaultPlan::parse(opts.fault_plan, &custom_plan, &error)) {
      std::cerr << "exp20_faults: " << error << "\n";
      return 2;
    }
    cells.push_back({custom_plan.crash_fraction, custom_plan.message.drop_prob});
  } else if (opts.smoke) {
    cells = {{0.2, 0.1}};
  } else {
    for (const double churn : {0.0, 0.2, 0.4}) {
      for (const double drop : {0.0, 0.1, 0.3}) cells.push_back({churn, drop});
    }
  }

  obs::BenchReport report("exp20_faults", opts.seed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("blocks", kBlocks);
  report.set_config("txs_per_block", kTxs);
  report.set_config("ici_clusters", kIciClusters);
  report.set_config("ici_replication", kIciReplication);
  report.set_config("rapidchain_committees", kRcCommittees);
  report.set_config("pruned_window", kPrunedWindow);
  report.set_config("sim_minutes", kMinutes);
  report.set_config("fetches", kFetches);
  if (use_custom) report.set_config("fault_plan", custom_plan.describe());

  print_experiment_header("E20", "availability and repair under churn x message drops");
  std::cout << "N=" << kNodes << "  ICI: k=" << kIciClusters << " (m=" << kClusterSize
            << ", r=" << kIciReplication << ")  RapidChain: k=" << kRcCommittees
            << "  pruned window=" << kPrunedWindow << "  window=" << kMinutes
            << " sim min\n\n";

  const Chain chain = make_chain(kBlocks, kTxs, opts.seed);

  Table table({"churn", "drop", "system", "avail mean", "avail min", "node bytes",
               "repair copies", "dropped msgs"});

  std::size_t cell_index = 0;
  for (const Cell& cell : cells) {
    for (const std::string_view name : core::strategy_names()) {
      core::StrategyConfig scfg;
      scfg.node_count = kNodes;
      scfg.groups = name == "rapidchain" ? kRcCommittees : kIciClusters;
      scfg.replication = kIciReplication;
      scfg.pruned_window = kPrunedWindow;
      scfg.fullrep_validate = false;
      // E20 runs ICI with its lossy-network defenses on: retry-with-backoff
      // on fetches and cross-cluster repair for cluster-wiped blocks.
      scfg.fetch_retry_rounds = 2;
      scfg.cross_cluster_repair = true;
      const auto strat = core::make_strategy(name, scfg);
      strat->init(chain.at_height(0));
      strat->preload(chain);
      strat->reset_traffic();

      sim::FaultPlan plan = use_custom ? custom_plan : sim::FaultPlan{};
      plan.crash_fraction = cell.churn;
      plan.message.drop_prob = cell.drop;
      if (!use_custom) {
        // Session dynamics sized to the window: nodes crash and return a
        // few times over the run instead of once.
        plan.mean_uptime_us = 120'000'000;
        plan.mean_downtime_us = 60'000'000;
        plan.seed = opts.seed + 1000 * cell_index;
      }
      if (plan.enabled()) {
        strat->start_faults(plan);
        if (name == "ici") strat->start_repair(kRepairIntervalUs, kWindowUs);
      }

      // Advance minute by minute, sampling network-wide serveability.
      double sum = 0.0;
      double avail_min = 1.0;
      for (std::uint64_t minute = 0; minute < kMinutes; ++minute) {
        strat->run_for(kSampleUs);
        const double a = strat->availability();
        sum += a;
        avail_min = std::min(avail_min, a);
      }
      const double avail_mean = sum / static_cast<double>(kMinutes);
      const core::StrategyTraffic traffic = strat->traffic();
      const double node_bytes = strat->storage().mean_bytes;

      std::uint64_t repair_copies = 0, repair_bytes = 0, cross_copies = 0;
      std::uint64_t dropped = 0, crashes = 0, restarts = 0;
      if (metrics::Registry* reg = strat->metrics_registry()) {
        repair_copies = reg->counter_value("repair.copies_started");
        repair_bytes = reg->counter_value("repair.bytes_copied");
        cross_copies = reg->counter_value("repair.cross_cluster_copies");
        dropped = reg->counter_value("faults.msgs_dropped");
        crashes = reg->counter_value("faults.crashes");
        restarts = reg->counter_value("faults.restarts");
      }

      table.row({format_double(cell.churn, 1), format_double(cell.drop, 1),
                 std::string(name), format_double(avail_mean, 3),
                 format_double(avail_min, 3), format_bytes(node_bytes),
                 std::to_string(repair_copies), std::to_string(dropped)});

      auto& row = report
                      .add_row("churn=" + format_double(cell.churn, 1) +
                               "/drop=" + format_double(cell.drop, 1) + "/" +
                               std::string(name))
                      .set("strategy", name)
                      .set("churn", cell.churn)
                      .set("drop", cell.drop)
                      .set("avail_mean", avail_mean)
                      .set("avail_min", avail_min)
                      .set("per_node_bytes", node_bytes)
                      .set("window_bytes_sent", traffic.bytes_sent)
                      .set("window_msgs_sent", traffic.msgs_sent)
                      .set("repair_copies_started", repair_copies)
                      .set("repair_bytes_copied", repair_bytes)
                      .set("repair_cross_cluster_copies", cross_copies)
                      .set("faults_msgs_dropped", dropped)
                      .set("faults_crashes", crashes)
                      .set("faults_restarts", restarts);

      // Retry-latency distribution through the fetch path (ICI only — the
      // baselines have no block-fetch protocol in this harness).
      if (const auto probe = strat->probe_retrieval(kFetches, opts.seed + 99)) {
        row.set("retrieval_p50_us", probe->latency_us.p50())
            .set("retrieval_p99_us", probe->latency_us.p99())
            .set("retrieval_local_hits", probe->local_hits)
            .set("retrieval_remote_hits", probe->remote_hits)
            .set("retrieval_timeouts", probe->timeouts)
            .set("retrieval_not_found", probe->not_found)
            .set("retrieval_retry_rounds", probe->retry_rounds)
            .set("retrieval_attempt_timeouts", probe->attempt_timeouts);
      }
    }
    ++cell_index;
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: at churn=0 every system serves everything except pruned "
               "(window only). Under churn, ICI's repair daemon holds availability near "
               "full replication at ~1/8 the storage; RapidChain degrades when committees "
               "thin out, and message drops stretch ICI retrieval tails (retry rounds) "
               "without sinking availability.\n";
  finish_report(report, kNodes);
  return 0;
}
