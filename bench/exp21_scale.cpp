// E21 [extension] — The headline ratio at 100k+ nodes.
//
// The flattened node state (shared HeaderIndex, SoA FleetTally, ObjectArena
// node storage, dense ClusterDirectory) exists so the simulator can hold
// fleets far beyond the paper's 320-node tables. This bench re-verifies the
// two headline claims at 10k/50k/100k nodes — per-node storage ≈ 25% of
// RapidChain's (m = 16, k_rc = 4, r = 1) and availability 1.000 with every
// node online — and records the memory-per-node trajectory as it scales.
//
// Clustering is "random": k-means is O(iters·N·k) and k = N/16 makes that
// quadratic in N, while the storage ratio is placement-invariant (rendezvous
// assignment spreads blocks evenly over whichever members a cluster has).
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp21_scale");
  constexpr std::size_t kClusterSize = 16;  // paper headline m
  constexpr std::size_t kRcCommittees = 4;  // theory ratio r*k_rc/m = 25%
  const std::size_t kBlocks = opts.smoke ? 12 : 48;
  const std::size_t kTxs = opts.smoke ? 8 : 32;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> sizes = opts.smoke
                                             ? std::vector<std::size_t>{400, 800}
                                             : std::vector<std::size_t>{10'000, 50'000, 100'000};

  obs::BenchReport report("exp21_scale", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", sizes.back());
  report.set_config("cluster_size", kClusterSize);
  report.set_config("rapidchain_committees", kRcCommittees);
  report.set_config("blocks", kBlocks);
  report.set_config("txs_per_block", kTxs);
  report.set_config("clustering", "random");

  print_experiment_header("E21", "headline ratio and memory footprint at 100k+ nodes");
  std::cout << "m=" << kClusterSize << ", RapidChain k=" << kRcCommittees << ", " << kBlocks
            << " blocks x " << kTxs << " txs; tiers:";
  for (const std::size_t n : sizes) std::cout << " " << n;
  std::cout << "\n\n";

  const Chain chain = make_chain(kBlocks, kTxs, kSeed);

  Table table({"nodes", "ici k", "ici bytes/node", "rc bytes/node", "measured ici/rc",
               "theory", "availability", "rss/node"});
  for (const std::size_t n : sizes) {
    const std::size_t k = n / kClusterSize;
    const std::uint64_t rss_before = metrics::read_memory_stats().rss_bytes;

    core::IciNetworkConfig cfg;
    cfg.node_count = n;
    cfg.ici.cluster_count = k;
    cfg.ici.replication = 1;
    cfg.ici.clustering = "random";
    auto ici = std::make_unique<core::IciNetwork>(cfg);
    ici->init_with_genesis(chain.at_height(0));
    ici->preload_chain(chain);

    // Fleet resident cost attributable to this tier's ICI network: the RSS
    // growth across its construction + preload, amortised per node. Tiers
    // run ascending, so earlier tiers' freed pages recycle first and the
    // delta stays an upper bound on this tier's own footprint.
    const std::uint64_t rss_after = metrics::read_memory_stats().rss_bytes;
    const std::uint64_t rss_delta = rss_after > rss_before ? rss_after - rss_before : 0;
    const double rss_per_node = static_cast<double>(rss_delta) / static_cast<double>(n);

    const double ici_bodies = mean_body_bytes(ici->stores());
    const double avail = ici->availability();
    ici.reset();

    const auto rapidchain = make_rapidchain_preloaded(chain, n, kRcCommittees);
    const double rc_bodies = mean_body_bytes(rapidchain->stores());

    const double measured_pct = ici_bodies / rc_bodies * 100;
    const double theory_pct =
        static_cast<double>(kRcCommittees) / static_cast<double>(kClusterSize) * 100;

    table.row({std::to_string(n), std::to_string(k), format_bytes(ici_bodies),
               format_bytes(rc_bodies), format_double(measured_pct, 1) + "%",
               format_double(theory_pct, 1) + "%", format_double(avail, 3),
               format_bytes(rss_per_node)});
    report.add_row("n=" + std::to_string(n))
        .set("nodes", n)
        .set("clusters", k)
        .set("ici_body_bytes_per_node", ici_bodies)
        .set("rc_body_bytes_per_node", rc_bodies)
        .set("measured_ici_vs_rc_pct", measured_pct)
        .set("theory_ici_vs_rc_pct", theory_pct)
        .set("availability", avail)
        .set("rss_delta_bytes_per_node", rss_per_node);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the measured ratio stays ~25% at every tier (it is a "
               "property of m and k_rc, not N), availability stays 1.000 with all nodes "
               "online, and rss/node falls with N as shared state amortises.\n";
  finish_report(report, sizes.back());
  return 0;
}
