// E08 [A] — Headline table: ICIStrategy storage as a fraction of RapidChain.
//
// The abstract's quantitative claim: "our strategy just needs 25% of the
// storage space needed by Rapidchain". Per-node body storage is D·r/m for
// ICI and D/k_rc for RapidChain, so the ratio is r·k_rc/m. The paper's
// configuration corresponds to m = 4·k_rc; this bench sweeps m around that
// point and prints the measured ratio next to the theoretical one.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp08_headline_ratio");
  const std::size_t kNodes = opts.smoke ? 64 : 320;
  constexpr std::size_t kRcCommittees = 4;
  const std::size_t kBlocks = opts.smoke ? 25 : 250;
  constexpr std::size_t kTxs = 40;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> cluster_sizes =
      opts.smoke ? std::vector<std::size_t>{8, 16} : std::vector<std::size_t>{8, 16, 32, 64};

  obs::BenchReport report("exp08_headline_ratio", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("rapidchain_committees", kRcCommittees);
  report.set_config("blocks", kBlocks);
  report.set_config("txs_per_block", kTxs);

  print_experiment_header("E08", "headline: ICI per-node storage as % of RapidChain");
  const Chain chain = make_chain(kBlocks, kTxs, kSeed);
  const auto rapidchain = make_rapidchain_preloaded(chain, kNodes, kRcCommittees);
  const double rc_bodies = mean_body_bytes(rapidchain->stores());
  std::cout << "N=" << kNodes << ", RapidChain k=" << kRcCommittees
            << " -> per-node shard = " << format_bytes(rc_bodies) << " (bodies)\n\n";
  report.set_config("rapidchain_body_bytes_per_node", rc_bodies);

  Table table({"ici m", "ici k", "ici bytes/node", "measured ici/rc", "theory r*k_rc/m"});
  for (const std::size_t m : cluster_sizes) {
    const std::size_t k = kNodes / m;
    const auto ici = make_ici_preloaded(chain, kNodes, k);
    const double ic_bodies = mean_body_bytes(ici->stores());
    const double measured_pct = ic_bodies / rc_bodies * 100;
    const double theory_pct =
        static_cast<double>(kRcCommittees) / static_cast<double>(m) * 100;
    table.row({std::to_string(m), std::to_string(k), format_bytes(ic_bodies),
               format_double(measured_pct, 1) + "%", format_double(theory_pct, 1) + "%"});

    report.add_row("m=" + std::to_string(m))
        .set("cluster_size", m)
        .set("clusters", k)
        .set("ici_body_bytes_per_node", ic_bodies)
        .set("measured_ici_vs_rc_pct", measured_pct)
        .set("theory_ici_vs_rc_pct", theory_pct);
  }
  table.print(std::cout);
  std::cout << "\nThe m = 16 row (= 4 x k_rc) is the paper's headline configuration: "
               "ICIStrategy needs ~25% of RapidChain's per-node storage.\n";
  finish_report(report, kNodes);
  return 0;
}
