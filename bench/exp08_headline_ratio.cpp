// E08 [A] — Headline table: ICIStrategy storage as a fraction of RapidChain.
//
// The abstract's quantitative claim: "our strategy just needs 25% of the
// storage space needed by Rapidchain". Per-node body storage is D·r/m for
// ICI and D/k_rc for RapidChain, so the ratio is r·k_rc/m. The paper's
// configuration corresponds to m = 4·k_rc; this bench sweeps m around that
// point and prints the measured ratio next to the theoretical one.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main() {
  constexpr std::size_t kNodes = 320;
  constexpr std::size_t kRcCommittees = 4;
  constexpr std::size_t kBlocks = 250;
  constexpr std::size_t kTxs = 40;

  print_experiment_header("E08", "headline: ICI per-node storage as % of RapidChain");
  const Chain chain = make_chain(kBlocks, kTxs);
  const auto rapidchain = make_rapidchain_preloaded(chain, kNodes, kRcCommittees);
  const double rc_bodies = mean_body_bytes(rapidchain->stores());
  std::cout << "N=" << kNodes << ", RapidChain k=" << kRcCommittees
            << " -> per-node shard = " << format_bytes(rc_bodies) << " (bodies)\n\n";

  Table table({"ici m", "ici k", "ici bytes/node", "measured ici/rc", "theory r*k_rc/m"});
  for (std::size_t m : {8u, 16u, 32u, 64u}) {
    const std::size_t k = kNodes / m;
    const auto ici = make_ici_preloaded(chain, kNodes, k);
    const double ic_bodies = mean_body_bytes(ici->stores());
    table.row({std::to_string(m), std::to_string(k), format_bytes(ic_bodies),
               format_double(ic_bodies / rc_bodies * 100, 1) + "%",
               format_double(static_cast<double>(kRcCommittees) / static_cast<double>(m) * 100,
                             1) +
                   "%"});
  }
  table.print(std::cout);
  std::cout << "\nThe m = 16 row (= 4 x k_rc) is the paper's headline configuration: "
               "ICIStrategy needs ~25% of RapidChain's per-node storage.\n";
  return 0;
}
