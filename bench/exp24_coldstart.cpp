// E24 [S] — Cold-start cost of persistent storage: disk vs mem backend.
//
// The pluggable storage backend (docs/STORAGE.md) lets the same ICI
// deployment run with bodies in memory (the seed behaviour) or in
// log-structured on-disk segment files behind an async write queue whose IO
// completions are simulated-time events. This experiment measures what that
// persistence costs where it actually shows up:
//
//   - bootstrap: a joiner bulk-syncs its assigned bodies from disk-backed
//     servers, so every served range pays the servers' cold-read time;
//   - retrieval: random historical fetches hit cold bodies (the owner reads
//     from its segment log before answering) instead of warm pointers.
//
// Both backends run the identical protocol schedule — the disk rows differ
// only by the simulated IO service times (--io-write-us / --io-read-us).
#include "bench_util.h"

#include "ici/bootstrap.h"
#include "ici/retrieval.h"
#include "storage/store_metrics.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp24_coldstart");
  const std::size_t kNodes = opts.smoke ? 40 : 120;
  const std::size_t kClusters = opts.smoke ? 2 : 6;  // m = 20
  const std::size_t kBlocks = opts.smoke ? 25 : 200;
  constexpr std::size_t kTxs = 40;
  const std::size_t kFetches = opts.smoke ? 40 : 150;
  constexpr std::uint64_t kSeed = 42;

  obs::BenchReport report("exp24_coldstart", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("ici_clusters", kClusters);
  report.set_config("blocks", kBlocks);
  report.set_config("txs_per_block", kTxs);
  report.set_config("fetches", kFetches);
  report.set_config("io_write_us", opts.io_write_us);
  report.set_config("io_read_us", opts.io_read_us);

  print_experiment_header("E24", "cold-start cost of persistent storage (disk vs mem)");
  const Chain chain = make_chain(kBlocks, kTxs, kSeed);
  std::cout << "N=" << kNodes << ", m=" << kNodes / kClusters << ", " << kBlocks
            << " blocks; disk IO: write=" << opts.io_write_us
            << "µs read=" << opts.io_read_us << "µs\n\n";

  Table table({"backend", "bootstrap (s)", "bytes downloaded", "bodies", "retr p50 (ms)",
               "retr p99 (ms)", "cold reads", "warm reads"});

  StoreCounters disk_totals;
  for (const std::string_view backend : {std::string_view("mem"), std::string_view("disk")}) {
    StoreConfig store = store_config_from(opts);
    store.backend = std::string(backend);

    auto net = make_ici_preloaded(chain, kNodes, kClusters, /*replication=*/1, store);
    const core::BootstrapReport join = core::Bootstrapper::join(*net, {50, 50});
    const core::RetrievalStats stats = core::RetrievalDriver::run(*net, kFetches, 99);
    const StoreCounters sc = sum_store_counters(net->stores());
    if (backend == "disk") disk_totals = sc;

    table.row({std::string(backend), format_double(static_cast<double>(join.elapsed_us) / 1e6, 3),
               format_bytes(static_cast<double>(join.bytes_downloaded)),
               std::to_string(join.bodies_fetched),
               format_double(stats.latency_us.p50() / 1000, 2),
               format_double(stats.latency_us.p99() / 1000, 2), std::to_string(sc.cold_reads),
               std::to_string(sc.warm_reads)});

    report.add_row("backend=" + std::string(backend))
        .set("backend", backend)
        .set("bootstrap_us", join.elapsed_us)
        .set("bytes_downloaded", join.bytes_downloaded)
        .set("bodies_fetched", join.bodies_fetched)
        .set("bootstrap_complete", join.complete)
        .set("retrieval_p50_us", stats.latency_us.p50())
        .set("retrieval_p99_us", stats.latency_us.p99())
        .set("local_hits", stats.local_hits)
        .set("remote_hits", stats.remote_hits)
        .set("cold_reads", sc.cold_reads)
        .set("warm_reads", sc.warm_reads)
        .set("cold_read_bytes", sc.cold_read_bytes)
        .set("staged_puts", sc.staged_puts)
        .set("wq_depth_peak", sc.wq_depth_peak)
        .set("segments", sc.segments)
        .set("appended_bytes", sc.appended_bytes);
  }
  table.print(std::cout);

  // The artifact always carries the disk run's store.* instrumentation
  // (tools/check_bench_json.py requires it for this experiment).
  add_store_counters(report, disk_totals);

  std::cout << "\nExpected shape: identical bytes downloaded and bodies fetched (the protocol "
               "schedule does not depend on the backend); the disk rows pay the simulated "
               "cold-read and append times in bootstrap and retrieval latency, and the "
               "cold/warm split shows which fetches actually touched the segment log.\n";
  finish_report(report, kNodes);
  return 0;
}
