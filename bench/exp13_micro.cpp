// E13 [R] — Substrate micro-benchmarks (google-benchmark).
//
// Throughput of the primitives every experiment leans on: SHA-256, Merkle
// trees, transaction validation, block serialization, message codec,
// k-means clustering, and rendezvous assignment. A custom main (instead of
// benchmark_main) adds the repo-wide --smoke/--help contract and writes
// each benchmark's timing into BENCH_exp13_micro.json alongside the
// console table; other google-benchmark flags pass through unchanged.
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string_view>
#include <vector>

#include "chain/validator.h"
#include "chain/workload.h"
#include "cluster/assignment.h"
#include "cluster/kmeans.h"
#include "common/cpudispatch.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "erasure/gf256.h"
#include "erasure/rs.h"
#include "ici/codec.h"
#include "obs/bench_report.h"
#include "sim/lbts.h"
#include "sim/network.h"
#include "sim/shard.h"
#include "sim/simulator.h"

namespace {

using namespace ici;

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(ByteSpan(data.data(), data.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

std::vector<Hash256> leaves(std::size_t n) {
  std::vector<Hash256> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ByteWriter w;
    w.u64(i);
    out.push_back(Hash256::of(ByteSpan(w.bytes().data(), w.bytes().size())));
  }
  return out;
}

void BM_MerkleRoot(benchmark::State& state) {
  const auto ls = leaves(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(MerkleTree::compute_root(ls));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MerkleRoot)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MerkleProveVerify(benchmark::State& state) {
  const auto ls = leaves(1024);
  const MerkleTree tree(ls);
  const Hash256 root = tree.root();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto proof = tree.prove(i % ls.size());
    benchmark::DoNotOptimize(MerkleTree::verify(ls[i % ls.size()], i % ls.size(), proof, root));
    ++i;
  }
}
BENCHMARK(BM_MerkleProveVerify);

void BM_TxStatelessValidation(benchmark::State& state) {
  WorkloadGenerator gen;
  Block genesis = gen.make_genesis();
  gen.confirm(genesis);
  const auto txs = gen.batch(256);
  Validator v;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.check_tx_stateless(txs[i % txs.size()]));
    ++i;
  }
}
BENCHMARK(BM_TxStatelessValidation);

void BM_BlockSerializeRoundTrip(benchmark::State& state) {
  ChainGenConfig cfg;
  cfg.blocks = 1;
  cfg.txs_per_block = static_cast<std::size_t>(state.range(0));
  const Chain chain = ChainGenerator(cfg).generate();
  const Block& block = chain.at_height(1);
  for (auto _ : state) {
    const Bytes enc = block.serialize();
    benchmark::DoNotOptimize(Block::deserialize(ByteSpan(enc.data(), enc.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block.serialized_size()));
}
BENCHMARK(BM_BlockSerializeRoundTrip)->Arg(10)->Arg(100)->Arg(1000);

void BM_MessageCodecRoundTrip(benchmark::State& state) {
  ChainGenConfig cfg;
  cfg.blocks = 1;
  cfg.txs_per_block = static_cast<std::size_t>(state.range(0));
  const Chain chain = ChainGenerator(cfg).generate();
  const Block& block = chain.at_height(1);
  core::SliceMsg msg;
  msg.header = block.header();
  msg.block_hash = block.hash();
  msg.first_index = 0;
  msg.total_txs = static_cast<std::uint32_t>(block.txs().size());
  msg.txs = block.txs();
  for (auto _ : state) {
    const Bytes enc = core::encode_message(msg);
    benchmark::DoNotOptimize(core::decode_message(ByteSpan(enc.data(), enc.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(msg.wire_size() + 1));
}
BENCHMARK(BM_MessageCodecRoundTrip)->Arg(10)->Arg(100);

void BM_KMeans(benchmark::State& state) {
  Rng rng(2);
  std::vector<sim::Coord> pts;
  for (int i = 0; i < state.range(0); ++i) {
    pts.push_back({rng.uniform01() * 100, rng.uniform01() * 100});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::kmeans(pts, 10, {.max_iterations = 50, .seed = 1}));
  }
}
BENCHMARK(BM_KMeans)->Arg(100)->Arg(1000)->Arg(4000);

void BM_RendezvousAssignment(benchmark::State& state) {
  const auto nodes = cluster::generate_topology(static_cast<std::size_t>(state.range(0)), 3, 1);
  cluster::RendezvousAssigner assigner;
  std::uint64_t i = 0;
  for (auto _ : state) {
    ByteWriter w;
    w.u64(i++);
    const Hash256 h = Hash256::of(ByteSpan(w.bytes().data(), w.bytes().size()));
    benchmark::DoNotOptimize(assigner.storers(h, i, nodes, 3));
  }
}
BENCHMARK(BM_RendezvousAssignment)->Arg(16)->Arg(64)->Arg(256);

// GF(256) row kernels in isolation — the byte loops every RS encode and
// reconstruct spends its time in. These are what the SSSE3/AVX2 dispatch
// accelerates (docs/CPU_BACKENDS.md); comparing --cpu scalar vs native here
// gives the kernel speedup without RS framing overhead in the way.
void BM_GfMulAddRow(benchmark::State& state) {
  Rng rng(5);
  const Bytes src = rng.bytes(static_cast<std::size_t>(state.range(0)));
  Bytes dst = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    erasure::GF256::mul_add_row(dst.data(), src.data(), src.size(), 0x57);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_GfMulAddRow)->Arg(4096)->Arg(65536)->Arg(1048576);

void BM_GfMulRowInto(benchmark::State& state) {
  Rng rng(6);
  const Bytes src = rng.bytes(static_cast<std::size_t>(state.range(0)));
  Bytes dst(src.size(), 0);
  for (auto _ : state) {
    erasure::GF256::mul_row_into(dst.data(), src.data(), src.size(), 0x8e);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_GfMulRowInto)->Arg(4096)->Arg(65536)->Arg(1048576);

void BM_ReedSolomonEncode(benchmark::State& state) {
  Rng rng(3);
  const Bytes payload = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const erasure::ReedSolomon rs(8, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(ByteSpan(payload.data(), payload.size())));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ReedSolomonEncode)->Arg(4096)->Arg(65536)->Arg(1048576);

void BM_ReedSolomonReconstructWithErasures(benchmark::State& state) {
  Rng rng(4);
  const Bytes payload = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const erasure::ReedSolomon rs(8, 2);
  auto shards = rs.encode(ByteSpan(payload.data(), payload.size()));
  // Worst case: both parity shards needed (two data shards lost).
  shards.erase(shards.begin());
  shards.erase(shards.begin() + 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.reconstruct(shards));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ReedSolomonReconstructWithErasures)->Arg(4096)->Arg(65536)->Arg(1048576);

// Multicast fan-out through the event engine: a driver node repeatedly
// multicasts a fixed message to 32 recipients, recipients are sinks. At
// --shards 1 (Arg 1) this measures the plain unsharded delivery path; with
// 2 lanes (Arg 2) the driver sits alone on lane 0 and every recipient on
// lane 1, so each fan-out executed inside a parallel window exercises the
// DeliveryBatch lane-hoist: one mailbox lock per multicast instead of one
// per recipient (Simulator::schedule_for_batched).
struct FanoutMsg final : sim::MessageBase {
  [[nodiscard]] std::size_t wire_size() const override { return 256; }
  [[nodiscard]] const char* type_name() const override { return "fanout"; }
};

class FanoutSink final : public sim::INode {
 public:
  void on_message(sim::NodeId, const sim::MessagePtr&) override {}
};

class FanoutDriver final : public sim::INode {
 public:
  FanoutDriver(sim::Network& net, std::vector<sim::NodeId> targets, std::size_t rounds)
      : net_(&net), targets_(std::move(targets)), rounds_(rounds) {}
  void on_message(sim::NodeId, const sim::MessagePtr& msg) override {
    if (rounds_ == 0) return;
    --rounds_;
    net_->multicast(0, targets_, msg);
    if (rounds_ > 0) net_->send(0, 0, msg);  // chain the next round
  }

 private:
  sim::Network* net_;
  std::vector<sim::NodeId> targets_;
  std::size_t rounds_;
};

void BM_MulticastFanoutLaneHoist(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kNodes = 64;
  constexpr std::size_t kFanout = 32;
  constexpr std::size_t kRounds = 64;
  for (auto _ : state) {
    sim::Simulator simulator;
    sim::NetworkConfig net_cfg;
    if (shards > 1) simulator.configure_shards(shards, sim::lookahead_from(net_cfg));
    sim::Network net(simulator, net_cfg);
    std::vector<FanoutSink> sinks(kNodes - 1);
    std::vector<sim::NodeId> targets;  // ids are dense: driver 0, sinks 1..63
    for (sim::NodeId id = 1; id <= kFanout; ++id) targets.push_back(id);
    FanoutDriver driver(net, targets, kRounds);
    const sim::NodeId driver_id = net.add_node(&driver, {0, 0});
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      net.add_node(&sinks[i], {static_cast<double>(i % 8), 0});
    }
    if (shards > 1) {
      // Driver alone on lane 0; every recipient on lane 1 — the shape the
      // batch hoist is built for (all parcels share one foreign mailbox).
      simulator.set_node_lane(driver_id, 0);
      for (std::size_t i = 0; i < sinks.size(); ++i) {
        simulator.set_node_lane(static_cast<sim::NodeId>(driver_id + 1 + i), 1);
      }
    }
    net.send(driver_id, driver_id, std::make_shared<FanoutMsg>());
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kRounds * kFanout);
}
BENCHMARK(BM_MulticastFanoutLaneHoist)->Arg(1)->Arg(2);

void BM_ChainGeneration(benchmark::State& state) {
  for (auto _ : state) {
    ChainGenConfig cfg;
    cfg.blocks = 10;
    cfg.txs_per_block = static_cast<std::size_t>(state.range(0));
    benchmark::DoNotOptimize(ChainGenerator(cfg).generate());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10 * state.range(0));
}
BENCHMARK(BM_ChainGeneration)->Arg(10)->Arg(100);

// Console output stays exactly google-benchmark's; this shim additionally
// keeps every per-iteration run so main() can serialize them as JSON rows.
class CollectingReporter final : public benchmark::ConsoleReporter {
 public:
  std::vector<Run> runs;

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) runs.push_back(run);
    ConsoleReporter::ReportRuns(report);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::uint64_t threads = 0;  // 0 = hardware concurrency; --smoke pins 2
  std::uint64_t shards = 1;   // default event-lane count for sim-driven entries
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::strtoull(std::string(arg.substr(10)).c_str(), nullptr, 10);
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::strtoull(std::string(arg.substr(9)).c_str(), nullptr, 10);
    } else if ((arg == "--cpu" && i + 1 < argc) || arg.rfind("--cpu=", 0) == 0) {
      const std::string_view value = arg == "--cpu" ? std::string_view(argv[++i]) : arg.substr(6);
      if (!ici::cpu::set_backend_name(value)) {
        std::cerr << "exp13_micro: invalid --cpu value '" << value
                  << "' (expected scalar|native)\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "exp13_micro: substrate micro-benchmarks (google-benchmark)\n\n"
                   "  --smoke      run each benchmark briefly (--benchmark_min_time=0.01)\n"
                   "  --threads N  worker-pool lanes for the parallel hot paths\n"
                   "               (default: hardware concurrency; --smoke pins 2)\n"
                   "  --cpu MODE   SIMD dispatch tier: scalar | native (default native;\n"
                   "               also settable via ICI_CPU — see docs/CPU_BACKENDS.md)\n"
                   "  --shards K   default event shards for sim-driven entries (the\n"
                   "               fan-out entry also sweeps 1 and 2 explicitly)\n"
                   "  --help       this message\n\n"
                   "Any --benchmark_* flag is forwarded to google-benchmark.\n"
                   "Writes BENCH_exp13_micro.json to the working directory\n"
                   "(or $ICI_BENCH_DIR if set).\n";
      return 0;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (threads == 0 && smoke) threads = 2;
  ici::ThreadPool::set_global_threads(threads);
  ici::sim::set_default_shards(shards == 0 ? 1 : shards);
  static char min_time_flag[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time_flag);

  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 2;

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  obs::BenchReport report("exp13_micro", /*seed=*/42);
  report.set_smoke(smoke);
  report.set_config("benchmark_min_time_s", smoke ? 0.01 : 0.5);
  report.set_config("threads", ThreadPool::global().thread_count());
  report.set_config("shards", ici::sim::default_shards());
  // Primitive microbenches build no block store; record the default backend
  // so the artifact satisfies the uniform ici-bench-v1 config schema.
  report.set_config("store_backend", "mem");
  // Requested tier plus the effective per-primitive kernels (the selection
  // intersected with what this CPU actually supports).
  report.set_config("cpu_backend", std::string(ici::cpu::backend_name()));
  report.set_config("sha256_backend", std::string(ici::cpu::sha256_backend_name()));
  report.set_config("gf256_backend", std::string(ici::cpu::gf256_backend_name()));
  for (const auto& run : reporter.runs) {
    if (run.run_type != benchmark::BenchmarkReporter::Run::RT_Iteration) continue;
    if (run.error_occurred) continue;
    auto& row = report.add_row(run.benchmark_name());
    row.set("iterations", run.iterations);
    if (run.iterations > 0) {
      row.set("real_ns_per_iter",
              run.real_accumulated_time / static_cast<double>(run.iterations) * 1e9);
      row.set("cpu_ns_per_iter",
              run.cpu_accumulated_time / static_cast<double>(run.iterations) * 1e9);
    }
    for (const auto& [name, counter] : run.counters) {
      row.set(name, counter.value);
    }
  }
  report.capture_spans();
  try {
    const std::string path = report.write();
    std::cout << "\nwrote " << path << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
