// E01 [A] — Per-node storage vs chain length.
//
// The paper's core storage figure: as the ledger grows, a full-replication
// node stores all of D, a RapidChain member stores its committee's shard
// (≈ D/k_rc), and an ICIStrategy member stores only its intra-cluster
// assignment (≈ D·r/m). All three grow linearly; the slopes differ.
//
// Configuration mirrors the headline setting: ICI cluster size m = 20 with
// r = 1, RapidChain committee count k_rc = 5, so ICI/RapidChain = k_rc/m = 25%.
#include <map>

#include "bench_util.h"
#include "strategy/strategy.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp01_storage_vs_chain");
  const std::size_t kNodes = opts.smoke ? 40 : 240;
  const std::size_t kIciClusters = opts.smoke ? 2 : 12;  // m = 20
  const std::size_t kRcCommittees = opts.smoke ? 2 : 5;  // shard = D/k_rc
  constexpr std::size_t kTxsPerBlock = 40;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> block_counts =
      opts.smoke ? std::vector<std::size_t>{20} : std::vector<std::size_t>{100, 250, 500, 1000};

  obs::BenchReport report("exp01_storage_vs_chain", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("ici_clusters", kIciClusters);
  report.set_config("rapidchain_committees", kRcCommittees);
  report.set_config("txs_per_block", kTxsPerBlock);

  print_experiment_header("E01", "per-node storage vs chain length (blocks)");
  std::cout << "N=" << kNodes << "  ICI: k=" << kIciClusters << " (m="
            << kNodes / kIciClusters << ", r=1)  RapidChain: k=" << kRcCommittees
            << "  txs/block=" << kTxsPerBlock << "\n\n";

  Table table({"blocks", "ledger D", "full-rep/node", "rapidchain/node", "ici/node",
               "ici vs rc", "ici vs full"});

  StoreCounters store_totals;
  for (const std::size_t blocks : block_counts) {
    const Chain chain = make_chain(blocks, kTxsPerBlock, kSeed);

    // One pass over the strategy registry (pruned has its own experiment,
    // E17 — this figure compares the three unbounded-retention systems).
    std::map<std::string_view, double> per_node;
    for (const std::string_view name : core::strategy_names()) {
      if (name == "pruned") continue;
      core::StrategyConfig scfg;
      scfg.node_count = kNodes;
      scfg.groups = name == "rapidchain" ? kRcCommittees : kIciClusters;
      scfg.fullrep_validate = false;  // storage-only run skips the N UTXO copies
      scfg.store = store_config_from(opts);
      const auto strat = core::make_strategy(name, scfg);
      strat->init(chain.at_height(0));
      strat->preload(chain);
      // Retire any in-flight disk appends before reading the tallies (a
      // no-op for the default mem backend: preload adds zero events).
      strat->settle();
      per_node[name] = strat->storage().mean_bytes;
      store_totals += strat->store_counters();
    }
    const double fr = per_node.at("fullrep");
    const double rc = per_node.at("rapidchain");
    const double ic = per_node.at("ici");

    table.row({std::to_string(blocks), format_bytes(static_cast<double>(chain.total_bytes())),
               format_bytes(fr), format_bytes(rc), format_bytes(ic),
               format_double(ic / rc * 100, 1) + "%", format_double(ic / fr * 100, 1) + "%"});

    report.add_row("blocks=" + std::to_string(blocks))
        .set("blocks", blocks)
        .set("ledger_bytes", chain.total_bytes())
        .set("fullrep_node_bytes", fr)
        .set("rapidchain_node_bytes", rc)
        .set("ici_node_bytes", ic)
        .set("ici_vs_rapidchain_pct", ic / rc * 100)
        .set("ici_vs_fullrep_pct", ic / fr * 100);
  }
  // Disk-backed runs (--store disk) attach the backend instrumentation the
  // schema checker requires on such captures.
  if (opts.store == "disk") add_store_counters(report, store_totals);

  table.print(std::cout);
  std::cout << "\nExpected shape: all linear in blocks; ici/node ≈ 25% of rapidchain/node "
               "(paper's headline), and a small fraction of full replication.\n"
               "Note: ICI nodes keep ALL headers (every row includes them), so the printed "
               "ratio sits a few points above 25%; on body bytes alone it is exactly "
               "k_rc/m = 25% (see E08).\n";
  finish_report(report, kNodes);
  return 0;
}
