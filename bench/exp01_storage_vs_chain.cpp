// E01 [A] — Per-node storage vs chain length.
//
// The paper's core storage figure: as the ledger grows, a full-replication
// node stores all of D, a RapidChain member stores its committee's shard
// (≈ D/k_rc), and an ICIStrategy member stores only its intra-cluster
// assignment (≈ D·r/m). All three grow linearly; the slopes differ.
//
// Configuration mirrors the headline setting: ICI cluster size m = 20 with
// r = 1, RapidChain committee count k_rc = 5, so ICI/RapidChain = k_rc/m = 25%.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp01_storage_vs_chain");
  const std::size_t kNodes = opts.smoke ? 40 : 240;
  const std::size_t kIciClusters = opts.smoke ? 2 : 12;  // m = 20
  const std::size_t kRcCommittees = opts.smoke ? 2 : 5;  // shard = D/k_rc
  constexpr std::size_t kTxsPerBlock = 40;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> block_counts =
      opts.smoke ? std::vector<std::size_t>{20} : std::vector<std::size_t>{100, 250, 500, 1000};

  obs::BenchReport report("exp01_storage_vs_chain", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("ici_clusters", kIciClusters);
  report.set_config("rapidchain_committees", kRcCommittees);
  report.set_config("txs_per_block", kTxsPerBlock);

  print_experiment_header("E01", "per-node storage vs chain length (blocks)");
  std::cout << "N=" << kNodes << "  ICI: k=" << kIciClusters << " (m="
            << kNodes / kIciClusters << ", r=1)  RapidChain: k=" << kRcCommittees
            << "  txs/block=" << kTxsPerBlock << "\n\n";

  Table table({"blocks", "ledger D", "full-rep/node", "rapidchain/node", "ici/node",
               "ici vs rc", "ici vs full"});

  for (const std::size_t blocks : block_counts) {
    const Chain chain = make_chain(blocks, kTxsPerBlock, kSeed);

    const auto fullrep = make_fullrep_preloaded(chain, kNodes);
    const auto rapidchain = make_rapidchain_preloaded(chain, kNodes, kRcCommittees);
    const auto ici = make_ici_preloaded(chain, kNodes, kIciClusters);

    const double fr = StorageMeter::snapshot(fullrep->stores()).mean_bytes;
    const double rc = StorageMeter::snapshot(rapidchain->stores()).mean_bytes;
    const double ic = StorageMeter::snapshot(ici->stores()).mean_bytes;

    table.row({std::to_string(blocks), format_bytes(static_cast<double>(chain.total_bytes())),
               format_bytes(fr), format_bytes(rc), format_bytes(ic),
               format_double(ic / rc * 100, 1) + "%", format_double(ic / fr * 100, 1) + "%"});

    report.add_row("blocks=" + std::to_string(blocks))
        .set("blocks", blocks)
        .set("ledger_bytes", chain.total_bytes())
        .set("fullrep_node_bytes", fr)
        .set("rapidchain_node_bytes", rc)
        .set("ici_node_bytes", ic)
        .set("ici_vs_rapidchain_pct", ic / rc * 100)
        .set("ici_vs_fullrep_pct", ic / fr * 100);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: all linear in blocks; ici/node ≈ 25% of rapidchain/node "
               "(paper's headline), and a small fraction of full replication.\n"
               "Note: ICI nodes keep ALL headers (every row includes them), so the printed "
               "ratio sits a few points above 25%; on body bytes alone it is exactly "
               "k_rc/m = 25% (see E08).\n";
  finish_report(report);
  return 0;
}
