// E01 [A] — Per-node storage vs chain length.
//
// The paper's core storage figure: as the ledger grows, a full-replication
// node stores all of D, a RapidChain member stores its committee's shard
// (≈ D/k_rc), and an ICIStrategy member stores only its intra-cluster
// assignment (≈ D·r/m). All three grow linearly; the slopes differ.
//
// Configuration mirrors the headline setting: ICI cluster size m = 20 with
// r = 1, RapidChain committee count k_rc = 5, so ICI/RapidChain = k_rc/m = 25%.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main() {
  constexpr std::size_t kNodes = 240;
  constexpr std::size_t kIciClusters = 12;     // m = 20
  constexpr std::size_t kRcCommittees = 5;     // shard = D/5
  constexpr std::size_t kTxsPerBlock = 40;

  print_experiment_header("E01", "per-node storage vs chain length (blocks)");
  std::cout << "N=" << kNodes << "  ICI: k=" << kIciClusters << " (m="
            << kNodes / kIciClusters << ", r=1)  RapidChain: k=" << kRcCommittees
            << "  txs/block=" << kTxsPerBlock << "\n\n";

  Table table({"blocks", "ledger D", "full-rep/node", "rapidchain/node", "ici/node",
               "ici vs rc", "ici vs full"});

  for (std::size_t blocks : {100u, 250u, 500u, 1000u}) {
    const Chain chain = make_chain(blocks, kTxsPerBlock);

    const auto fullrep = make_fullrep_preloaded(chain, kNodes);
    const auto rapidchain = make_rapidchain_preloaded(chain, kNodes, kRcCommittees);
    const auto ici = make_ici_preloaded(chain, kNodes, kIciClusters);

    const double fr = StorageMeter::snapshot(fullrep->stores()).mean_bytes;
    const double rc = StorageMeter::snapshot(rapidchain->stores()).mean_bytes;
    const double ic = StorageMeter::snapshot(ici->stores()).mean_bytes;

    table.row({std::to_string(blocks), format_bytes(static_cast<double>(chain.total_bytes())),
               format_bytes(fr), format_bytes(rc), format_bytes(ic),
               format_double(ic / rc * 100, 1) + "%", format_double(ic / fr * 100, 1) + "%"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: all linear in blocks; ici/node ≈ 25% of rapidchain/node "
               "(paper's headline), and a small fraction of full replication.\n"
               "Note: ICI nodes keep ALL headers (every row includes them), so the printed "
               "ratio sits a few points above 25%; on body bytes alone it is exactly "
               "k_rc/m = 25% (see E08).\n";
  return 0;
}
