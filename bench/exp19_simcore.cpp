// E19 [perf] — Simulator-core throughput: calendar queue + inplace events.
//
// Two parts. (1) A pure sim-core microbench: the identical randomized
// schedule — bursty deliveries, same-time cascades, timeouts, churn-scale
// timers, events chained from inside events — driven through the production
// EventQueue (calendar buckets + InplaceEvent) and through the pre-overhaul
// ReferenceEventQueue (std::priority_queue + std::function), reporting
// events/sec for each and the speedup. (2) An end-to-end ICIStrategy scale
// sweep at N ∈ {1000, 2500, 5000, 10000} nodes: full message-accurate block
// dissemination, reporting the sim core's deterministic counters
// (events executed, peak pending, far-heap spills) next to wall clock.
// Sim metrics are bit-reproducible; only wall_* and events_per_sec move
// between runs.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "sim/event_queue.h"
#include "sim/reference_queue.h"

using namespace ici;
using namespace ici::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct MicroResult {
  std::uint64_t executed = 0;
  double wall_s = 0;
  [[nodiscard]] double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(executed) / wall_s : 0.0;
  }
};

/// The capture every scheduled event carries: the shape of the network's
/// delivery closure (this + from + to + wire size + message pointer,
/// ~40 bytes). This is what makes the comparison honest — real captures
/// spill std::function's small-buffer optimization (16 bytes in libstdc++)
/// and cost the reference queue one heap round trip per event, while
/// InplaceEvent keeps them in its 64-byte inline buffer.
struct DeliveryPayload {
  void* self;
  std::uint32_t from, to;
  std::uint64_t wire;
  const void* msg;
  std::uint64_t tag;
};

/// Delay mix the networks actually schedule: sub-ms deliveries (55%),
/// equal-time cascades (20%), second-scale timeouts (20%), minute-scale
/// churn timers (5%). Precomputed into a table so the timed loop pays one
/// uniform draw per delay instead of branches + a log() — driver overhead
/// is shared by both queues and would otherwise dilute the measured ratio.
constexpr std::size_t kDelayTableSize = 1 << 16;

std::vector<sim::SimTime> make_delay_table() {
  Rng rng(7);
  std::vector<sim::SimTime> delays(kDelayTableSize);
  for (auto& d : delays) {
    const double pick = rng.uniform01();
    if (pick < 0.55) {
      d = 2000 + static_cast<sim::SimTime>(rng.exponential(4000.0));
    } else if (pick < 0.75) {
      d = rng.uniform(3);
    } else if (pick < 0.95) {
      d = 1'000'000 + rng.uniform(3'000'000);
    } else {
      d = 60'000'000 + rng.uniform(600'000'000);
    }
  }
  return delays;
}

/// Drives one queue through the protocol-shaped schedule: every executed
/// event may chain 0-2 more relative to its own firing time. Both queue
/// types get the same RNG seed and draw sequence, so they run the exact
/// same schedule.
template <typename Queue>
MicroResult drive_micro(Queue& q, std::uint64_t seed_events, std::uint64_t spawn_limit,
                        const std::vector<sim::SimTime>& delays) {
  struct Driver {
    Queue& q;
    const std::vector<sim::SimTime>& delays;
    std::uint64_t spawn_limit;
    Rng rng{20260806};
    sim::SimTime now = 0;
    std::uint64_t spawned = 0;
    std::uint64_t checksum = 0;

    sim::SimTime delay_draw() { return delays[rng.uniform(kDelayTableSize)]; }
    void schedule(sim::SimTime at) {
      const DeliveryPayload payload{this, static_cast<std::uint32_t>(spawned & 0xffff),
                                    static_cast<std::uint32_t>((spawned >> 16) & 0xffff),
                                    4096 + (spawned & 255), nullptr, spawned};
      q.schedule_at(at, [this, payload] { fire(payload); });
      ++spawned;
    }
    void fire(const DeliveryPayload& p) {
      checksum += p.tag + p.wire;
      if (spawned >= spawn_limit) return;
      const std::uint64_t children = rng.uniform(3);
      for (std::uint64_t c = 0; c < children; ++c) schedule(now + delay_draw());
    }
  };

  Driver drv{q, delays, spawn_limit};
  for (std::uint64_t i = 0; i < seed_events; ++i) drv.schedule(drv.delay_draw());

  MicroResult res;
  const auto start = Clock::now();
  while (!q.empty()) {
    drv.now = q.run_next();
    ++res.executed;
  }
  res.wall_s = seconds_since(start);
  if (drv.checksum == 0) std::exit(3);  // keeps the payload observable to the optimizer
  return res;
}

std::uint64_t counter_or_zero(const metrics::Registry& reg, const std::string& name) {
  const auto& counters = reg.counters();
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second.value();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp19_simcore");
  constexpr std::uint64_t kSeed = 42;
  constexpr std::size_t kClusterSize = 20;  // ICI: m fixed, k = N/m (exp02 shape)
  constexpr std::size_t kTxsPerBlock = 8;   // small bodies: measure the core, not codecs
  const std::size_t kBlocks = opts.smoke ? 2 : 3;
  const std::uint64_t kMicroSeeds = opts.smoke ? 5'000 : 200'000;
  const std::uint64_t kMicroLimit = opts.smoke ? 30'000 : 1'200'000;
  const std::vector<std::size_t> sizes = opts.smoke
                                             ? std::vector<std::size_t>{40, 80}
                                             : std::vector<std::size_t>{1000, 2500, 5000, 10000};

  obs::BenchReport report("exp19_simcore", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", sizes.back());  // headline scale of the sweep
  report.set_config("ici_cluster_size", kClusterSize);
  report.set_config("txs_per_block", kTxsPerBlock);
  report.set_config("blocks", kBlocks);
  report.set_config("micro_seed_events", kMicroSeeds);

  print_experiment_header("E19", "simulator-core throughput (calendar queue + inplace events)");

  // --- Part 1: pure sim-core microbench vs the pre-overhaul queue ----------
  const std::vector<sim::SimTime> delays = make_delay_table();
  MicroResult fast_res;
  MicroResult ref_res;
  sim::EventQueue::Stats fast_stats;
  {
    obs::Span span("sim/core");
    sim::EventQueue fast;
    fast_res = drive_micro(fast, kMicroSeeds, kMicroLimit, delays);
    fast_stats = fast.stats();
  }
  {
    sim::ReferenceEventQueue ref;
    ref_res = drive_micro(ref, kMicroSeeds, kMicroLimit, delays);
  }
  const double speedup =
      ref_res.events_per_sec() > 0 ? fast_res.events_per_sec() / ref_res.events_per_sec() : 0.0;

  Table micro({"core", "events", "events/sec", "peak pending", "far spills", "inline misses"});
  micro.row({"calendar+inplace", std::to_string(fast_res.executed),
             std::to_string(static_cast<std::uint64_t>(fast_res.events_per_sec())),
             std::to_string(fast_stats.peak_pending), std::to_string(fast_stats.far_events),
             std::to_string(fast_stats.heap_fallback_events)});
  micro.row({"heap+std::function", std::to_string(ref_res.executed),
             std::to_string(static_cast<std::uint64_t>(ref_res.events_per_sec())), "-", "-", "-"});
  micro.print(std::cout);
  std::cout << "microbench speedup: " << speedup << "x\n\n";

  report.add_row("micro:calendar")
      .set("events_per_sec", fast_res.events_per_sec())
      .set("events", fast_res.executed)
      .set("peak_pending", fast_stats.peak_pending)
      .set("far_events", fast_stats.far_events)
      .set("heap_fallback_events", fast_stats.heap_fallback_events)
      .set("speedup_vs_reference", speedup);
  report.add_row("micro:reference_heap")
      .set("events_per_sec", ref_res.events_per_sec())
      .set("events", ref_res.executed);

  // --- Part 2: end-to-end ICIStrategy dissemination scale sweep ------------
  Table table({"N", "clusters", "events", "events/sec", "peak pending", "commit ms", "wall ms"});
  for (const std::size_t n : sizes) {
    const std::size_t clusters = n / kClusterSize;
    LiveIciRig rig(n, clusters, kTxsPerBlock, /*replication=*/1, kSeed);

    sim::SimTime commit_total = 0;
    const auto start = Clock::now();
    double wall_s = 0;
    {
      obs::Span span("sim/core");
      for (std::size_t b = 0; b < kBlocks; ++b) commit_total += rig.step();
      wall_s = seconds_since(start);
    }

    const auto& reg = rig.net->metrics();
    const std::uint64_t events = counter_or_zero(reg, "sim.events_executed");
    const std::uint64_t peak = counter_or_zero(reg, "sim.peak_pending");
    const std::uint64_t far = counter_or_zero(reg, "sim.far_events");
    const std::uint64_t spills = counter_or_zero(reg, "sim.event_heap_fallbacks");
    const std::uint64_t late = counter_or_zero(reg, "sim.late_events");
    const double eps = wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
    const double commit_ms =
        static_cast<double>(commit_total) / 1000.0 / static_cast<double>(kBlocks);

    table.row({std::to_string(n), std::to_string(clusters), std::to_string(events),
               std::to_string(static_cast<std::uint64_t>(eps)), std::to_string(peak),
               std::to_string(commit_ms), std::to_string(wall_s * 1000.0)});

    report.add_row("N=" + std::to_string(n))
        .set("nodes", n)
        .set("clusters", clusters)
        .set("blocks", kBlocks)
        .set("sim_events", events)
        .set("events_per_sec", eps)
        .set("peak_pending", peak)
        .set("far_events", far)
        .set("heap_fallback_events", spills)
        .set("late_events", late)
        .set("mean_commit_ms", commit_ms)
        .set("wall_ms", wall_s * 1000.0);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: events/sec roughly flat in N (O(1) amortized schedule/pop, "
               "no per-event heap traffic); peak pending grows with the fan-out, and inline "
               "misses stay 0 on the network path.\n";

  // --- Part 3: sharded-engine sweep (per-cluster event lanes) --------------
  // Same workload as Part 2's largest cell, at K ∈ {1, 2, 4, 8} event
  // shards. sim.events_executed is bit-identical across K (the determinism
  // contract, tests/test_shard_determinism.cpp); what changes is wall
  // clock, barrier count, and how much traffic crosses lanes. A fullrep
  // cell rides along for the cross-shard contrast: ICI's cluster-aligned
  // lanes keep most messages lane-local, gossip does not.
  std::cout << "\n";
  const std::size_t shard_n = sizes.back();
  const std::size_t fullrep_n = opts.smoke ? 40 : 1000;
  Table shard_table({"strategy", "K", "events", "events/sec", "rounds", "barriers",
                     "xshard msgs", "xshard frac", "wall ms"});
  bool shard_counters_recorded = false;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    sim::set_default_shards(k);
    LiveIciRig rig(shard_n, shard_n / kClusterSize, kTxsPerBlock, /*replication=*/1, kSeed);
    const auto start = Clock::now();
    for (std::size_t b = 0; b < kBlocks; ++b) rig.step();
    const double wall_s = seconds_since(start);

    const auto& reg = rig.net->metrics();
    const std::uint64_t events = counter_or_zero(reg, "sim.events_executed");
    const std::uint64_t rounds = counter_or_zero(reg, "sim.shard_rounds");
    const std::uint64_t barriers = counter_or_zero(reg, "sim.shard_barriers");
    const std::uint64_t local = counter_or_zero(reg, "sim.shard_local_msgs");
    const std::uint64_t xshard = counter_or_zero(reg, "sim.shard_xshard_msgs");
    const double xfrac =
        local + xshard > 0 ? static_cast<double>(xshard) / static_cast<double>(local + xshard)
                           : 0.0;
    const double eps = wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;

    shard_table.row({"ici", std::to_string(k), std::to_string(events),
                     std::to_string(static_cast<std::uint64_t>(eps)), std::to_string(rounds),
                     std::to_string(barriers), std::to_string(xshard),
                     format_double(xfrac, 4), format_double(wall_s * 1000.0, 1)});
    report.add_row("shards:ici:K=" + std::to_string(k))
        .set("strategy", "ici")
        .set("shards", k)
        .set("nodes", shard_n)
        .set("sim_events", events)
        .set("events_per_sec", eps)
        .set("shard_rounds", rounds)
        .set("shard_barriers", barriers)
        .set("local_msgs", local)
        .set("xshard_msgs", xshard)
        .set("xshard_fraction", xfrac)
        .set("wall_ms", wall_s * 1000.0);
    if (k > 1 && !shard_counters_recorded) {
      // Mirror one sharded run's sim.shard_* counters into the artifact's
      // counter block so the schema checker can require them for exp19.
      report.add_counter("sim.shards", counter_or_zero(reg, "sim.shards"));
      report.add_counter("sim.shard_rounds", rounds);
      report.add_counter("sim.shard_barriers", barriers);
      report.add_counter("sim.shard_lookahead_us", counter_or_zero(reg, "sim.shard_lookahead_us"));
      report.add_counter("sim.shard_local_msgs", local);
      report.add_counter("sim.shard_xshard_msgs", xshard);
      shard_counters_recorded = true;
    }
  }
  for (const std::size_t k : {std::size_t{2}, std::size_t{8}}) {
    sim::set_default_shards(k);
    LiveFullRepRig rig(fullrep_n, kTxsPerBlock, kSeed);
    const auto start = Clock::now();
    for (std::size_t b = 0; b < kBlocks; ++b) rig.step();
    const double wall_s = seconds_since(start);

    const auto& reg = rig.net->metrics();
    const std::uint64_t events = counter_or_zero(reg, "sim.events_executed");
    const std::uint64_t rounds = counter_or_zero(reg, "sim.shard_rounds");
    const std::uint64_t barriers = counter_or_zero(reg, "sim.shard_barriers");
    const std::uint64_t local = counter_or_zero(reg, "sim.shard_local_msgs");
    const std::uint64_t xshard = counter_or_zero(reg, "sim.shard_xshard_msgs");
    const double xfrac =
        local + xshard > 0 ? static_cast<double>(xshard) / static_cast<double>(local + xshard)
                           : 0.0;
    const double eps = wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
    shard_table.row({"fullrep", std::to_string(k), std::to_string(events),
                     std::to_string(static_cast<std::uint64_t>(eps)), std::to_string(rounds),
                     std::to_string(barriers), std::to_string(xshard),
                     format_double(xfrac, 4), format_double(wall_s * 1000.0, 1)});
    report.add_row("shards:fullrep:K=" + std::to_string(k))
        .set("strategy", "fullrep")
        .set("shards", k)
        .set("nodes", fullrep_n)
        .set("sim_events", events)
        .set("events_per_sec", eps)
        .set("shard_rounds", rounds)
        .set("shard_barriers", barriers)
        .set("local_msgs", local)
        .set("xshard_msgs", xshard)
        .set("xshard_fraction", xfrac)
        .set("wall_ms", wall_s * 1000.0);
  }
  sim::set_default_shards(std::max<std::uint64_t>(1, opts.shards));  // restore --shards
  shard_table.print(std::cout);
  std::cout << "\nExpected shape: ICI's cluster-aligned lanes keep the cross-shard fraction "
               "near zero (head-to-head commits only), while fullrep gossip crosses lanes "
               "roughly (K-1)/K of the time; events is identical at every K.\n";
  finish_report(report, sizes.back());
  return 0;
}
