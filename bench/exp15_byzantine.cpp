// E15 [R, extension] — Commit robustness vs byzantine fraction.
//
// Collaborative verification commits on a 2/3 approval quorum per cluster.
// This bench poisons a growing fraction of every cluster with reject-voting
// members and reports the commit success rate and latency: the protocol
// must hold up to (but not beyond) the quorum margin.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main() {
  constexpr std::size_t kNodes = 90;
  constexpr std::size_t kClusters = 3;
  constexpr std::size_t kTxs = 30;
  constexpr int kBlocks = 6;

  print_experiment_header("E15", "commit success vs byzantine (reject-voting) fraction");
  std::cout << "N=" << kNodes << ", k=" << kClusters << " (m=" << kNodes / kClusters
            << "), 2/3 quorum, " << kBlocks << " blocks per point\n\n";

  Table table({"byzantine fraction", "blocks committed", "commit rate", "mean latency (ms)",
               "rejected/aborted rounds"});

  for (double fraction : {0.0, 0.1, 0.2, 0.30, 0.4, 0.5}) {
    LiveIciRig rig(kNodes, kClusters, kTxs);
    auto& dir = rig.net->directory();
    for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
      const auto& members = dir.members(c);
      const auto count =
          static_cast<std::size_t>(fraction * static_cast<double>(members.size()));
      for (std::size_t i = 0; i < count; ++i) {
        rig.net->set_fault(members[i], core::FaultProfile{.vote_reject = true});
      }
    }

    int committed = 0;
    Histogram latency;
    for (int i = 0; i < kBlocks; ++i) {
      const sim::SimTime t = rig.step();
      if (t > 0) {
        ++committed;
        latency.add(static_cast<double>(t));
      }
    }
    const std::uint64_t failures = rig.net->metrics().counter_value("verify.rejected") +
                                   rig.net->metrics().counter_value("verify.aborted");
    table.row({format_double(fraction * 100, 0) + "%", std::to_string(committed),
               format_double(100.0 * committed / kBlocks, 0) + "%",
               committed > 0 ? format_double(latency.mean() / 1000, 1) : "-",
               std::to_string(failures)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: 100% commit rate while the byzantine fraction stays below "
               "the 1/3 quorum margin; a cliff to 0% once rejectors can veto the 2/3 "
               "approval threshold in any cluster.\n";
  return 0;
}
