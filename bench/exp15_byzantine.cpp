// E15 [R, extension] — Commit robustness vs byzantine fraction.
//
// Collaborative verification commits on a 2/3 approval quorum per cluster.
// This bench poisons a growing fraction of every cluster with reject-voting
// members and reports the commit success rate and latency: the protocol
// must hold up to (but not beyond) the quorum margin.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp15_byzantine");
  const std::size_t kNodes = opts.smoke ? 30 : 90;
  constexpr std::size_t kClusters = 3;
  constexpr std::size_t kTxs = 30;
  const int kBlocks = opts.smoke ? 2 : 6;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<double> fractions =
      opts.smoke ? std::vector<double>{0.0, 0.4} : std::vector<double>{0.0, 0.1, 0.2, 0.30, 0.4, 0.5};

  obs::BenchReport report("exp15_byzantine", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("clusters", kClusters);
  report.set_config("txs_per_block", kTxs);
  report.set_config("blocks", kBlocks);

  print_experiment_header("E15", "commit success vs byzantine (reject-voting) fraction");
  std::cout << "N=" << kNodes << ", k=" << kClusters << " (m=" << kNodes / kClusters
            << "), 2/3 quorum, " << kBlocks << " blocks per point\n\n";

  Table table({"byzantine fraction", "blocks committed", "commit rate", "mean latency (ms)",
               "rejected/aborted rounds"});

  for (const double fraction : fractions) {
    LiveIciRig rig(kNodes, kClusters, kTxs, /*replication=*/1, kSeed);
    auto& dir = rig.net->directory();
    for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
      const auto& members = dir.members(c);
      const auto count =
          static_cast<std::size_t>(fraction * static_cast<double>(members.size()));
      for (std::size_t i = 0; i < count; ++i) {
        rig.net->set_fault(members[i], core::FaultProfile{.vote_reject = true});
      }
    }

    int committed = 0;
    Histogram latency;
    for (int i = 0; i < kBlocks; ++i) {
      const sim::SimTime t = rig.step();
      if (t > 0) {
        ++committed;
        latency.add(static_cast<double>(t));
      }
    }
    const std::uint64_t failures = rig.net->metrics().counter_value("verify.rejected") +
                                   rig.net->metrics().counter_value("verify.aborted");
    table.row({format_double(fraction * 100, 0) + "%", std::to_string(committed),
               format_double(100.0 * committed / kBlocks, 0) + "%",
               committed > 0 ? format_double(latency.mean() / 1000, 1) : "-",
               std::to_string(failures)});

    report.add_row("byzantine=" + format_double(fraction, 2))
        .set("byzantine_fraction", fraction)
        .set("blocks_committed", committed)
        .set("commit_rate", static_cast<double>(committed) / kBlocks)
        .set("commit_mean_us", committed > 0 ? latency.mean() : 0.0)
        .set("rejected_or_aborted_rounds", failures);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: 100% commit rate while the byzantine fraction stays below "
               "the 1/3 quorum margin; a cliff to 0% once rejectors can veto the 2/3 "
               "approval threshold in any cluster.\n";
  finish_report(report, kNodes);
  return 0;
}
