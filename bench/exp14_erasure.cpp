// E14 [R, extension] — Erasure-coded intra-cluster storage vs whole-copy
// replication: the storage/availability frontier.
//
// Whole-copy replication pays integer multiples of the block for
// redundancy; a (d, p) Reed-Solomon code pays (d+p)/d — e.g. (4,2) delivers
// 2-failure tolerance at 1.5× instead of 3×. This bench runs identical
// churn over both modes and tabulates the frontier.
#include "bench_util.h"

using namespace ici;
using namespace ici::bench;

namespace {

struct ModeConfig {
  std::size_t nodes = 60;
  int blocks = 10;
  int minutes = 30;
};

struct ModeResult {
  double bytes_per_node = 0;
  double availability = 0;
  std::uint64_t repair_actions = 0;
};

ModeResult run_mode(const ModeConfig& mc, std::size_t replication, std::size_t data,
                    std::size_t parity) {
  ChainGenConfig ccfg;
  ccfg.txs_per_block = 20;
  ChainGenerator gen(ccfg);

  core::IciNetworkConfig cfg;
  cfg.node_count = mc.nodes;
  cfg.ici.cluster_count = 3;
  cfg.ici.replication = replication;
  cfg.ici.erasure_data = data;
  cfg.ici.erasure_parity = parity;
  core::IciNetwork net(cfg);

  Block genesis = gen.workload().make_genesis();
  gen.workload().confirm(genesis);
  Chain chain(genesis);
  net.init_with_genesis(genesis);
  for (int i = 0; i < mc.blocks; ++i) {
    chain.append(gen.next_block(chain));
    net.disseminate_and_settle(chain.tip());
  }

  sim::ChurnConfig churn;
  churn.churn_fraction = 0.3;
  churn.mean_uptime_us = 600'000'000;
  churn.mean_downtime_us = 120'000'000;
  churn.seed = 11;
  net.start_churn(churn);

  RunningStat availability;
  for (int minute = 0; minute < mc.minutes; ++minute) {
    net.simulator().run_until(net.simulator().now() + 60'000'000);
    availability.add(net.availability());
  }

  ModeResult r;
  r.bytes_per_node = net.storage_snapshot().mean_bytes;
  r.availability = availability.mean();
  r.repair_actions = net.metrics().counter_value("repair.copies_completed") +
                     net.metrics().counter_value("repair.shards_completed");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp14_erasure");
  ModeConfig mc;
  if (opts.smoke) {
    mc.nodes = 30;
    mc.blocks = 3;
    mc.minutes = 4;
  }
  constexpr std::uint64_t kSeed = 42;

  obs::BenchReport report("exp14_erasure", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", mc.nodes);
  report.set_config("clusters", 3);
  report.set_config("blocks", mc.blocks);
  report.set_config("sim_minutes", mc.minutes);
  report.set_config("churn_fraction", 0.3);

  print_experiment_header("E14", "erasure coding vs replication: storage/availability frontier");
  std::cout << "N=" << mc.nodes << ", k=3 (m=" << mc.nodes / 3 << "), " << mc.blocks
            << " blocks, 30% churn, " << mc.minutes << " simulated minutes\n\n";

  Table table({"mode", "redundancy factor", "bytes/node", "availability", "repairs"});
  const auto add = [&](const char* name, const char* factor, double factor_num, std::size_t r,
                       std::size_t d, std::size_t p) {
    const ModeResult res = run_mode(mc, r, d, p);
    table.row({name, factor, format_bytes(res.bytes_per_node),
               format_double(res.availability, 4), std::to_string(res.repair_actions)});
    report.add_row(name)
        .set("mode", name)
        .set("redundancy_factor", factor_num)
        .set("replication", r)
        .set("erasure_data", d)
        .set("erasure_parity", p)
        .set("bytes_per_node", res.bytes_per_node)
        .set("availability", res.availability)
        .set("repair_actions", res.repair_actions);
  };
  add("replication r=1", "1.0x", 1.0, 1, 0, 0);
  add("replication r=2", "2.0x", 2.0, 2, 0, 0);
  if (!opts.smoke) add("replication r=3", "3.0x", 3.0, 3, 0, 0);
  add("coded (4,2)", "1.5x", 1.5, 1, 4, 2);
  if (!opts.smoke) {
    add("coded (8,2)", "1.25x", 1.25, 1, 8, 2);
    add("coded (8,4)", "1.5x", 1.5, 1, 8, 4);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: coded (4,2) matches r=3's two-failure tolerance at half "
               "the storage; (8,2) undercuts even r=2 while tolerating two holders down. "
               "The cost is reconstruction reads (d shard fetches) instead of one copy.\n";
  finish_report(report, mc.nodes);
  return 0;
}
