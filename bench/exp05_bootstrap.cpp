// E05 [A] — Bootstrap cost for a new node vs chain length.
//
// The abstract claims ICIStrategy "greatly saves the overhead of
// bootstrapping": a joiner downloads all headers plus only its assigned
// share of bodies (≈ D/m), instead of the full chain (full replication) or
// a whole committee shard (RapidChain, ≈ D/k).
#include "bench_util.h"

#include "ici/bootstrap.h"

using namespace ici;
using namespace ici::bench;

int main() {
  constexpr std::size_t kNodes = 120;
  constexpr std::size_t kIciClusters = 6;   // m = 20
  constexpr std::size_t kRcCommittees = 5;  // shard = D/5
  constexpr std::size_t kTxs = 40;

  print_experiment_header("E05", "new-node bootstrap cost vs chain length");
  std::cout << "N=" << kNodes << "; ICI m=" << kNodes / kIciClusters
            << " r=1; RapidChain k=" << kRcCommittees << "\n\n";

  Table table({"blocks", "system", "bytes downloaded", "sim time (s)", "bodies fetched",
               "vs full-rep"});

  for (std::size_t blocks : {100u, 200u, 400u}) {
    const Chain chain = make_chain(blocks, kTxs);

    auto fullrep = make_fullrep_preloaded(chain, kNodes);
    const auto fr = fullrep->bootstrap({50, 50});

    auto rapidchain = make_rapidchain_preloaded(chain, kNodes, kRcCommittees);
    const auto rc = rapidchain->bootstrap({50, 50});

    auto ici = make_ici_preloaded(chain, kNodes, kIciClusters);
    const auto ic = core::Bootstrapper::join(*ici, {50, 50});

    const auto row = [&](const char* name, std::uint64_t bytes, sim::SimTime t,
                         std::size_t bodies) {
      table.row({std::to_string(blocks), name, format_bytes(static_cast<double>(bytes)),
                 format_double(static_cast<double>(t) / 1e6, 2), std::to_string(bodies),
                 format_double(static_cast<double>(bytes) /
                                   static_cast<double>(fr.bytes_downloaded) * 100,
                               1) +
                     "%"});
    };
    row("full-rep", fr.bytes_downloaded, fr.elapsed_us, fr.bodies_fetched);
    row("rapidchain", rc.bytes_downloaded, rc.elapsed_us, rc.bodies_fetched);
    row("ici", ic.bytes_downloaded, ic.elapsed_us, ic.bodies_fetched);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: full-rep downloads the whole ledger; rapidchain one shard "
               "(D/k); ici only headers + ~1/m of bodies — the cheapest join, and the gap "
               "grows with chain length.\n";
  return 0;
}
