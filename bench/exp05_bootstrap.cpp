// E05 [A] — Bootstrap cost for a new node vs chain length.
//
// The abstract claims ICIStrategy "greatly saves the overhead of
// bootstrapping": a joiner downloads all headers plus only its assigned
// share of bodies (≈ D/m), instead of the full chain (full replication) or
// a whole committee shard (RapidChain, ≈ D/k).
//
// Since the streaming bulk-sync protocol landed (docs/BOOTSTRAP.md), every
// number here is measured from simulated protocol traffic — frontier
// exchange, windowed multi-peer range pulls, per-range verification — not
// computed from a closed form. The rows carry the protocol detail (frontier
// latency, ranges, retries, peers used) alongside the headline bytes.
#include "bench_util.h"

#include "ici/bootstrap.h"

using namespace ici;
using namespace ici::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp05_bootstrap");
  const std::size_t kNodes = opts.smoke ? 40 : 120;
  const std::size_t kIciClusters = opts.smoke ? 2 : 6;  // m = 20
  const std::size_t kRcCommittees = opts.smoke ? 2 : 5;
  constexpr std::size_t kTxs = 40;
  constexpr std::uint64_t kSeed = 42;
  const std::vector<std::size_t> block_counts =
      opts.smoke ? std::vector<std::size_t>{25} : std::vector<std::size_t>{100, 200, 400};

  obs::BenchReport report("exp05_bootstrap", kSeed);
  report.set_smoke(opts.smoke);
  report.set_config("nodes", kNodes);
  report.set_config("ici_clusters", kIciClusters);
  report.set_config("rapidchain_committees", kRcCommittees);
  report.set_config("txs_per_block", kTxs);

  print_experiment_header("E05", "new-node bootstrap cost vs chain length");
  std::cout << "N=" << kNodes << "; ICI m=" << kNodes / kIciClusters
            << " r=1; RapidChain k=" << kRcCommittees << "\n\n";

  Table table({"blocks", "system", "bytes downloaded", "sim time (s)", "bodies fetched",
               "peers", "ranges", "vs full-rep"});

  const StoreConfig store = store_config_from(opts);
  StoreCounters store_totals;
  for (const std::size_t blocks : block_counts) {
    const Chain chain = make_chain(blocks, kTxs, kSeed);

    auto fullrep = make_fullrep_preloaded(chain, kNodes, store);
    const auto fr = fullrep->bootstrap({50, 50});
    store_totals += sum_store_counters(fullrep->stores());

    auto rapidchain = make_rapidchain_preloaded(chain, kNodes, kRcCommittees, store);
    const auto rc = rapidchain->bootstrap({50, 50});
    store_totals += sum_store_counters(rapidchain->stores());

    auto ici = make_ici_preloaded(chain, kNodes, kIciClusters, /*replication=*/1, store);
    const auto ic = core::Bootstrapper::join(*ici, {50, 50});
    store_totals += sum_store_counters(ici->stores());

    const auto row = [&](const char* name, std::uint64_t bytes, sim::SimTime t,
                         std::size_t bodies, const sync::SyncReport& sync) {
      const double vs_full =
          static_cast<double>(bytes) / static_cast<double>(fr.bytes_downloaded) * 100;
      table.row({std::to_string(blocks), name, format_bytes(static_cast<double>(bytes)),
                 format_double(static_cast<double>(t) / 1e6, 2), std::to_string(bodies),
                 std::to_string(sync.peers_used), std::to_string(sync.ranges_committed),
                 format_double(vs_full, 1) + "%"});
      report.add_row("blocks=" + std::to_string(blocks) + "/" + name)
          .set("blocks", blocks)
          .set("system", name)
          .set("bytes_downloaded", bytes)
          .set("elapsed_us", t)
          .set("bodies_fetched", bodies)
          .set("vs_fullrep_pct", vs_full)
          .set("protocol", sync.protocol)
          .set("complete", sync.complete)
          .set("frontier_us", sync.frontier_us)
          .set("header_payload_bytes", sync.header_payload_bytes)
          .set("body_payload_bytes", sync.body_payload_bytes)
          .set("peers_used", sync.peers_used)
          .set("ranges_committed", sync.ranges_committed)
          .set("ranges_retried", sync.ranges_retried)
          .set("resumes", sync.resume_count);
    };
    row("full-rep", fr.bytes_downloaded, fr.elapsed_us, fr.bodies_fetched, fr.sync);
    row("rapidchain", rc.bytes_downloaded, rc.elapsed_us, rc.bodies_fetched, rc.sync);
    row("ici", ic.bytes_downloaded, ic.elapsed_us, ic.bodies_fetched, ic.sync);
  }
  table.print(std::cout);
  // With --store disk the joins above served every body off the segment
  // logs; the artifact carries the summed backend instrumentation the
  // schema checker requires of disk captures.
  add_store_counters(report, store_totals);
  std::cout << "\nExpected shape: full-rep downloads the whole ledger; rapidchain one shard "
               "(D/k); ici only headers + ~1/m of bodies — the cheapest join, and the gap "
               "grows with chain length. All rows are protocol-measured (bulk-sync ranges "
               "over multiple peers), not closed-form.\n";
  finish_report(report, kNodes);
  return 0;
}
