// E23 [I] — Million-user transaction ingestion: sustained tx/s and
// submit→verified-block latency per strategy under skewed client load
// (docs/INGEST.md).
//
// The pipeline under test: a Zipf/burst/diurnal TrafficGenerator drives
// 100k simulated users (2k in --smoke) through the TxAcceptor — bounded
// submission queue, fixed-budget batches, recent-seen dedup, chunk-ordered
// fee/validity prescreen on the worker pool — into a fee-prioritized,
// capacity-bounded mempool; every block interval the IngestDriver fills a
// template from the pool and disseminates it through the strategy. The
// sweep raises offered load past block capacity so each strategy shows a
// measured saturation point: sustained tx/s flattens while backpressure
// rejects and fee-evictions absorb the excess, and the submit→commit tail
// stretches with queueing delay.
//
// Every ingest.*/mempool.* number is deterministic — bit-identical at any
// --threads/--shards (tests/test_ingest.cpp) — so the artifact doubles as a
// cross-configuration fingerprint. A final non-smoke pass reruns one cell
// at 1/2/4 worker lanes to demonstrate it inside the artifact (identical
// counters, wall clock free to move).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ingest/driver.h"
#include "sim/faults.h"
#include "strategy/strategy.h"

using namespace ici;
using namespace ici::bench;

namespace {

struct CellResult {
  ingest::DriverReport report;
  double wall_ms = 0;
};

CellResult run_cell(std::string_view strategy_name, const core::StrategyConfig& scfg,
                    const ingest::DriverConfig& dcfg, const TrafficConfig& tcfg) {
  const auto start = std::chrono::steady_clock::now();
  const auto strat = core::make_strategy(strategy_name, scfg);
  ingest::IngestDriver driver(dcfg, tcfg);
  CellResult out;
  out.report = driver.run(*strat);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(argc, argv, "exp23_ingest");
  const std::size_t kUsers = opts.smoke ? 2'000 : 100'000;
  const std::size_t kNodes = opts.smoke ? 24 : 48;
  const std::size_t kGroups = opts.smoke ? 2 : 4;
  const std::size_t kBlocks = opts.smoke ? 6 : 12;
  const std::uint64_t kIntervalUs = opts.smoke ? 250'000 : 500'000;
  const std::size_t kMaxBlockTxs = opts.smoke ? 400 : 4'000;
  const std::size_t kMempoolCap =
      opts.mempool_cap > 0 ? static_cast<std::size_t>(opts.mempool_cap)
                           : (opts.smoke ? 2'048 : 16'384);
  const std::size_t kQueueCap = opts.smoke ? 1'024 : 8'192;
  const std::size_t kBatchBudget = opts.smoke ? 256 : 1'024;
  const std::uint64_t kBatchIntervalUs = 50'000;

  // Offered-load ladder: below, at, and far past block capacity
  // (capacity = max_block_txs / interval). --tx-rate pins a single cell.
  std::vector<double> rates;
  if (opts.tx_rate > 0) {
    rates = {opts.tx_rate};
  } else if (opts.smoke) {
    rates = {800, 3'200};
  } else {
    rates = {2'000, 8'000, 32'000};
  }

  sim::FaultPlan plan;
  if (!opts.fault_plan.empty()) {
    std::string error;
    if (!sim::FaultPlan::parse(opts.fault_plan, &plan, &error)) {
      std::cerr << "exp23_ingest: " << error << "\n";
      return 2;
    }
    if (plan.crash_fraction > 0) {
      std::cerr << "exp23_ingest: crash plans never quiesce a settle-driven run; "
                   "use message faults (drop/dup/delay)\n";
      return 2;
    }
  }

  obs::BenchReport report("exp23_ingest", opts.seed);
  report.set_smoke(opts.smoke);
  report.set_config("users", kUsers);
  report.set_config("nodes", kNodes);
  report.set_config("groups", kGroups);
  report.set_config("blocks", kBlocks);
  report.set_config("block_interval_us", kIntervalUs);
  report.set_config("max_block_txs", kMaxBlockTxs);
  report.set_config("tx_rate", rates.back());
  report.set_config("mempool_cap", kMempoolCap);
  report.set_config("queue_capacity", kQueueCap);
  report.set_config("batch_budget", kBatchBudget);
  report.set_config("batch_interval_us", kBatchIntervalUs);
  if (plan.enabled()) report.set_config("fault_plan", plan.describe());

  print_experiment_header("E23", "transaction ingestion: sustained tx/s and latency");
  std::cout << "users=" << kUsers << "  N=" << kNodes << "  groups=" << kGroups
            << "  blocks=" << kBlocks << " @ " << kIntervalUs / 1000 << " ms"
            << "  block cap=" << kMaxBlockTxs << " txs"
            << "  mempool cap=" << kMempoolCap << "\n\n";

  const auto make_traffic = [&](double rate) {
    TrafficConfig tcfg;
    tcfg.user_count = kUsers;
    tcfg.tx_rate_tps = rate;
    tcfg.hot_account_count = std::max<std::size_t>(16, kUsers / 1000);
    tcfg.hot_account_outputs = 16;
    tcfg.seed = opts.seed;
    return tcfg;
  };
  const auto make_driver_cfg = [&] {
    ingest::DriverConfig dcfg;
    dcfg.block_interval_us = kIntervalUs;
    dcfg.blocks = kBlocks;
    dcfg.max_block_txs = kMaxBlockTxs;
    dcfg.mempool.capacity = kMempoolCap;
    dcfg.acceptor.queue_capacity = kQueueCap;
    dcfg.acceptor.batch_budget = kBatchBudget;
    dcfg.acceptor.batch_interval_us = kBatchIntervalUs;
    dcfg.acceptor.min_fee = 1;
    if (plan.enabled()) {
      dcfg.after_init = [&plan](core::Strategy& s) { s.start_faults(plan); };
    }
    return dcfg;
  };
  const auto make_strategy_cfg = [&] {
    core::StrategyConfig scfg;
    scfg.node_count = kNodes;
    scfg.groups = kGroups;
    scfg.pruned_window = kBlocks + 1;
    scfg.fullrep_validate = false;  // N full UTXO copies of a 100k-output genesis
    return scfg;
  };

  Table table({"rate tx/s", "system", "sustained", "p50 ms", "p99 ms", "accepted",
               "backpressure", "evicted", "pool peak"});

  ingest::AcceptorCounters totals;
  std::uint64_t total_evictions = 0, peak_pool = 0, total_batch_budget_slots = 0;
  struct Best {
    double sustained = 0;
    double at_rate = 0;
  };
  std::map<std::string, Best, std::less<>> saturation;

  for (const double rate : rates) {
    for (const std::string_view name : core::strategy_names()) {
      const CellResult cell = run_cell(name, make_strategy_cfg(), make_driver_cfg(),
                                       make_traffic(rate));
      const ingest::DriverReport& r = cell.report;

      totals.submitted += r.ingest.submitted;
      totals.accepted += r.ingest.accepted;
      totals.deduped += r.ingest.deduped;
      totals.rejected_backpressure += r.ingest.rejected_backpressure;
      totals.prescreen_failed += r.ingest.prescreen_failed;
      totals.batches += r.ingest.batches;
      totals.batched_txs += r.ingest.batched_txs;
      total_evictions += r.mempool.evictions;
      peak_pool = std::max(peak_pool, r.mempool.size_peak);
      total_batch_budget_slots += r.ingest.batches * kBatchBudget;

      auto& best = saturation[std::string(name)];
      if (r.sustained_tps > best.sustained) best = {r.sustained_tps, rate};

      table.row({format_double(rate, 0), std::string(name),
                 format_double(r.sustained_tps, 0),
                 format_double(r.submit_to_commit_us.p50() / 1000, 1),
                 format_double(r.submit_to_commit_us.p99() / 1000, 1),
                 std::to_string(r.ingest.accepted),
                 std::to_string(r.ingest.rejected_backpressure),
                 std::to_string(r.mempool.evictions),
                 std::to_string(r.mempool.size_peak)});

      const std::string label =
          "rate=" + format_double(rate, 0) + "/" + std::string(name);
      report.add_row(label)
          .set("strategy", name)
          .set("offered_tps", rate)
          .set("offered_tps_measured", r.offered_tps)
          .set("sustained_tps", r.sustained_tps)
          .set("submit_commit_p50_us", r.submit_to_commit_us.p50())
          .set("submit_commit_p99_us", r.submit_to_commit_us.p99())
          .set("submitted", r.ingest.submitted)
          .set("accepted", r.ingest.accepted)
          .set("deduped", r.ingest.deduped)
          .set("rejected_backpressure", r.ingest.rejected_backpressure)
          .set("prescreen_failed", r.ingest.prescreen_failed)
          .set("batches", r.ingest.batches)
          .set("batch_occupancy_pct", r.batch_occupancy_pct)
          .set("mempool_evictions", r.mempool.evictions)
          .set("mempool_size_peak", r.mempool.size_peak)
          .set("template_skipped_confirmed", r.template_skipped_confirmed)
          .set("txs_confirmed", r.txs_confirmed)
          .set("generated", r.generated)
          .set("skipped_no_funds", r.skipped_no_funds)
          .set("final_time_us", r.final_time_us)
          .set("wall_ms", cell.wall_ms);
      report.add_distribution("ingest.submit_commit_us." + label, r.submit_to_commit_us);
      if (r.retry_after_us.count() > 0) {
        report.add_distribution("ingest.retry_after_us." + label, r.retry_after_us);
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nMeasured saturation (max sustained tx/s per strategy):\n";
  for (const auto& [name, best] : saturation) {
    std::cout << "  " << name << ": " << format_double(best.sustained, 0)
              << " tx/s (offered " << format_double(best.at_rate, 0) << ")\n";
    report.add_row("saturation/" + name)
        .set("strategy", name)
        .set("sustained_tps_max", best.sustained)
        .set("at_offered_tps", best.at_rate);
  }

  // Cross-thread invariance pass: same cell, 1/2/4 worker lanes — the
  // deterministic tallies must not move (wall clock may). Demonstrated in
  // the artifact; enforced by tests/test_ingest.cpp.
  if (!opts.smoke) {
    const std::size_t restore_threads = ThreadPool::global().thread_count();
    const double rate = rates[rates.size() / 2];
    std::cout << "\nThread invariance (ici @ " << format_double(rate, 0)
              << " tx/s offered):\n";
    for (const std::size_t threads : {1, 2, 4}) {
      ThreadPool::set_global_threads(threads);
      const CellResult cell =
          run_cell("ici", make_strategy_cfg(), make_driver_cfg(), make_traffic(rate));
      std::cout << "  threads=" << threads << ": accepted=" << cell.report.ingest.accepted
                << " sustained=" << format_double(cell.report.sustained_tps, 0)
                << " tx/s  wall=" << format_double(cell.wall_ms, 0) << " ms\n";
      report.add_row("threads=" + std::to_string(threads) + "/ici")
          .set("strategy", "ici")
          .set("threads", threads)
          .set("offered_tps", rate)
          .set("sustained_tps", cell.report.sustained_tps)
          .set("accepted", cell.report.ingest.accepted)
          .set("rejected_backpressure", cell.report.ingest.rejected_backpressure)
          .set("submit_commit_p99_us", cell.report.submit_to_commit_us.p99())
          .set("wall_ms", cell.wall_ms);
    }
    ThreadPool::set_global_threads(restore_threads);
  }

  report.add_counter("ingest.submitted", totals.submitted);
  report.add_counter("ingest.accepted", totals.accepted);
  report.add_counter("ingest.deduped", totals.deduped);
  report.add_counter("ingest.rejected_backpressure", totals.rejected_backpressure);
  report.add_counter("ingest.prescreen_failed", totals.prescreen_failed);
  report.add_counter("ingest.batches", totals.batches);
  report.add_counter("ingest.batch_occupancy_pct",
                     total_batch_budget_slots > 0
                         ? totals.batched_txs * 100 / total_batch_budget_slots
                         : 0);
  report.add_counter("mempool.evictions", total_evictions);
  report.add_counter("mempool.size_peak", peak_pool);

  std::cout << "\nExpected shape: below block capacity every live strategy sustains the "
               "offered load with batch-cadence latency; past capacity sustained tx/s "
               "flattens at the block budget while backpressure and fee-eviction absorb "
               "the excess and the p99 stretches toward the queueing limit. Pruned "
               "commits instantly (no dissemination), so its latency floor is the batch "
               "cadence itself.\n";
  finish_report(report, kNodes);
  return 0;
}
