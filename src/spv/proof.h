// SPV (light client) support: transaction-inclusion proofs against the
// header chain.
//
// ICIStrategy keeps every header on every node, which is exactly the state
// a light client needs: a wallet can track the header chain and verify
// that a transaction is committed with one Merkle path from any single
// body- (or shard-) holding member — no trust in the serving node
// required.
#pragma once

#include <optional>
#include <vector>

#include "chain/block.h"

namespace ici::spv {

struct TxInclusionProof {
  Hash256 txid;
  Hash256 block_hash;
  std::uint64_t height = 0;
  std::uint32_t tx_index = 0;
  MerkleProof path;

  /// Serialized size on the wire.
  [[nodiscard]] std::size_t wire_size() const { return 32 + 32 + 8 + 4 + path.size() * 33; }
};

/// Builds the proof for `txid` inside `block`, or nullopt when absent.
[[nodiscard]] std::optional<TxInclusionProof> build_proof(const Block& block,
                                                          const Hash256& txid);

/// Verifies a proof against the header it claims: the path must hash up to
/// the header's Merkle root and the header must match the claimed block.
[[nodiscard]] bool verify_proof(const TxInclusionProof& proof, const BlockHeader& header);

/// A header-only chain follower: accepts headers in order, enforcing parent
/// linkage, then validates inclusion proofs offline.
class LightClient {
 public:
  /// Starts from a trusted genesis header.
  explicit LightClient(const BlockHeader& genesis);

  /// Appends the next header; rejects (returns false) on broken linkage or
  /// wrong height.
  bool add_header(const BlockHeader& header);

  /// Bulk sync convenience; stops at the first rejected header and returns
  /// how many were accepted.
  std::size_t sync(const std::vector<BlockHeader>& headers);

  [[nodiscard]] std::uint64_t tip_height() const { return headers_.back().height; }
  [[nodiscard]] std::size_t size() const { return headers_.size(); }
  [[nodiscard]] const BlockHeader* header_at(std::uint64_t height) const;

  /// Full light-client check: the proof's block must be in the followed
  /// chain at the claimed height, and the Merkle path must verify.
  [[nodiscard]] bool validate(const TxInclusionProof& proof) const;

 private:
  std::vector<BlockHeader> headers_;
  std::vector<Hash256> hashes_;  // parallel, avoids re-hashing
};

}  // namespace ici::spv
