#include "spv/proof.h"

namespace ici::spv {

std::optional<TxInclusionProof> build_proof(const Block& block, const Hash256& txid) {
  const std::vector<Hash256> ids = block.txids();
  std::size_t index = ids.size();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == txid) {
      index = i;
      break;
    }
  }
  if (index == ids.size()) return std::nullopt;

  MerkleTree tree(ids);
  TxInclusionProof proof;
  proof.txid = txid;
  proof.block_hash = block.hash();
  proof.height = block.header().height;
  proof.tx_index = static_cast<std::uint32_t>(index);
  proof.path = tree.prove(index);
  return proof;
}

bool verify_proof(const TxInclusionProof& proof, const BlockHeader& header) {
  if (header.hash() != proof.block_hash) return false;
  if (header.height != proof.height) return false;
  return MerkleTree::verify(proof.txid, proof.tx_index, proof.path, header.merkle_root);
}

LightClient::LightClient(const BlockHeader& genesis) {
  headers_.push_back(genesis);
  hashes_.push_back(genesis.hash());
}

bool LightClient::add_header(const BlockHeader& header) {
  if (header.parent != hashes_.back()) return false;
  if (header.height != headers_.back().height + 1) return false;
  headers_.push_back(header);
  hashes_.push_back(header.hash());
  return true;
}

std::size_t LightClient::sync(const std::vector<BlockHeader>& headers) {
  std::size_t accepted = 0;
  for (const BlockHeader& h : headers) {
    if (h.height <= tip_height()) continue;  // already have it / genesis
    if (!add_header(h)) break;
    ++accepted;
  }
  return accepted;
}

const BlockHeader* LightClient::header_at(std::uint64_t height) const {
  if (height >= headers_.size()) return nullptr;
  return &headers_[height];
}

bool LightClient::validate(const TxInclusionProof& proof) const {
  const BlockHeader* header = header_at(proof.height);
  if (header == nullptr) return false;
  if (hashes_[proof.height] != proof.block_hash) return false;
  return verify_proof(proof, *header);
}

}  // namespace ici::spv
