// Arithmetic over GF(2^8) with the 0x11d reduction polynomial (the field
// used by classic Reed-Solomon storage codes). Log/antilog tables make
// multiplication two lookups and an add; the row operations additionally
// dispatch to SSSE3/AVX2 split-nibble `pshufb` kernels when the CPU has
// them (ISA-L-style low/high nibble product tables, 16/32 bytes per step
// — see docs/CPU_BACKENDS.md). All backends are bit-identical.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ici::erasure {

class GF256 {
 public:
  /// Field addition/subtraction (both XOR).
  [[nodiscard]] static std::uint8_t add(std::uint8_t a, std::uint8_t b) {
    return static_cast<std::uint8_t>(a ^ b);
  }

  [[nodiscard]] static std::uint8_t mul(std::uint8_t a, std::uint8_t b);
  /// Division a / b. Throws std::domain_error when b == 0.
  [[nodiscard]] static std::uint8_t div(std::uint8_t a, std::uint8_t b);
  /// Multiplicative inverse. Throws std::domain_error for 0.
  [[nodiscard]] static std::uint8_t inv(std::uint8_t a);
  /// a^n with a in the field, n a machine integer.
  [[nodiscard]] static std::uint8_t pow(std::uint8_t a, std::uint32_t n);
  /// The generator element (2) raised to n — used to build Vandermonde rows.
  [[nodiscard]] static std::uint8_t exp(std::uint32_t n);

  /// dst[i] ^= c * src[i] for all i — the row operation encode/decode uses.
  /// Scalar path: one expanded-table lookup + one XOR per byte, no per-byte
  /// zero branch. Native path: 16/32 bytes per `pshufb` step.
  static void mul_add_row(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                          std::uint8_t c);

  /// dst[i] = c * src[i] (overwrite form of mul_add_row). Saves the read of
  /// a known-zero destination on the first column of an RS row combination.
  static void mul_row_into(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                           std::uint8_t c);

  /// The 256-byte row {c·0, c·1, ..., c·255} of the expanded multiply
  /// table (built once, 64 KiB). Lets callers hoist the row lookup out of
  /// inner loops the way mul_add_row does.
  [[nodiscard]] static const std::uint8_t* mul_row(std::uint8_t c);

 private:
  struct Tables {
    std::array<std::uint8_t, 256> log{};
    std::array<std::uint8_t, 512> exp{};
  };
  static const Tables& tables();
  static const std::uint8_t* mul_table();  // 256×256, row-major by multiplier
  // 256 × 32 bytes: for each c, the products of all low nibbles then all
  // high nibbles — the two shuffle tables the SIMD kernels index with
  // `pshufb` (product = lo[s & 0xf] ^ hi[s >> 4]).
  static const std::uint8_t* nibble_tables();
};

namespace detail {

// SIMD row kernels (gf256_simd.cpp), dispatched by cpu::gf256_native_level.
// `tbl32` is the 32-byte {lo,hi} nibble-product pair for the coefficient;
// `row` the 256-byte product row used for the sub-vector scalar tail.
void mul_add_row_ssse3(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                       const std::uint8_t* tbl32, const std::uint8_t* row);
void mul_add_row_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                      const std::uint8_t* tbl32, const std::uint8_t* row);
void mul_row_into_ssse3(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                        const std::uint8_t* tbl32, const std::uint8_t* row);
void mul_row_into_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                       const std::uint8_t* tbl32, const std::uint8_t* row);

}  // namespace detail

}  // namespace ici::erasure
