// SSSE3/AVX2 kernels for the GF(256) row operations: split each source
// byte into nibbles, look both up in 16-byte product tables with `pshufb`
// (`vpshufb` across two lanes under AVX2), XOR the halves — 16 or 32
// products per instruction group instead of one table load per byte.
// Sub-vector tails reuse the 256-byte expanded-table row so every length
// is bit-identical to the scalar path (tests/test_cpu_backends.cpp).
//
// Only compiled with real bodies on x86; elsewhere the symbols fall back
// to the scalar row loop so gf256.cpp links unchanged (the dispatcher
// never selects them there anyway).
#include "erasure/gf256.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace ici::erasure::detail {

namespace {

inline void scalar_tail_add(std::uint8_t* dst, const std::uint8_t* src, std::size_t i,
                            std::size_t n, const std::uint8_t* row) {
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

inline void scalar_tail_into(std::uint8_t* dst, const std::uint8_t* src, std::size_t i,
                             std::size_t n, const std::uint8_t* row) {
  for (; i < n; ++i) dst[i] = row[src[i]];
}

}  // namespace

__attribute__((target("ssse3"))) void mul_add_row_ssse3(std::uint8_t* dst,
                                                        const std::uint8_t* src,
                                                        std::size_t n,
                                                        const std::uint8_t* tbl32,
                                                        const std::uint8_t* row) {
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tbl32));
  const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tbl32 + 16));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i ph = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, _mm_xor_si128(pl, ph)));
  }
  scalar_tail_add(dst, src, i, n, row);
}

__attribute__((target("ssse3"))) void mul_row_into_ssse3(std::uint8_t* dst,
                                                         const std::uint8_t* src,
                                                         std::size_t n,
                                                         const std::uint8_t* tbl32,
                                                         const std::uint8_t* row) {
  const __m128i lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tbl32));
  const __m128i hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tbl32 + 16));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i ph = _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(pl, ph));
  }
  scalar_tail_into(dst, src, i, n, row);
}

__attribute__((target("avx2"))) void mul_add_row_avx2(std::uint8_t* dst,
                                                      const std::uint8_t* src, std::size_t n,
                                                      const std::uint8_t* tbl32,
                                                      const std::uint8_t* row) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tbl32)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tbl32 + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i ph =
        _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, _mm256_xor_si256(pl, ph)));
  }
  scalar_tail_add(dst, src, i, n, row);
}

__attribute__((target("avx2"))) void mul_row_into_avx2(std::uint8_t* dst,
                                                       const std::uint8_t* src,
                                                       std::size_t n,
                                                       const std::uint8_t* tbl32,
                                                       const std::uint8_t* row) {
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tbl32)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tbl32 + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i ph =
        _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(pl, ph));
  }
  scalar_tail_into(dst, src, i, n, row);
}

}  // namespace ici::erasure::detail

#else  // non-x86: scalar bodies so the symbols always link.

namespace ici::erasure::detail {

void mul_add_row_ssse3(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                       const std::uint8_t*, const std::uint8_t* row) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void mul_add_row_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                      const std::uint8_t* tbl32, const std::uint8_t* row) {
  mul_add_row_ssse3(dst, src, n, tbl32, row);
}

void mul_row_into_ssse3(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                        const std::uint8_t*, const std::uint8_t* row) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

void mul_row_into_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                       const std::uint8_t* tbl32, const std::uint8_t* row) {
  mul_row_into_ssse3(dst, src, n, tbl32, row);
}

}  // namespace ici::erasure::detail

#endif
