#include "erasure/rs.h"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.h"
#include "erasure/gf256.h"
#include "obs/trace.h"

namespace ici::erasure {

namespace {

// Output rows (shards on encode, recovered data rows on decode) are fully
// independent — each is a GF(256) combination of read-only inputs — so they
// fan out across the pool. Rows are grouped so one chunk carries at least
// this many bytes of row operations; below that, dispatch overhead beats
// the d×per_shard byte loop and everything runs as one chunk. Grouping
// depends only on the row cost, never the thread count (determinism
// contract, docs/THREADING.md).
constexpr std::size_t kMinRowBytesPerChunk = 64 * 1024;

std::size_t rows_per_chunk(std::size_t row_cost_bytes) {
  if (row_cost_bytes == 0) return 1;
  return std::max<std::size_t>(1, kMinRowBytesPerChunk / row_cost_bytes);
}

}  // namespace

ReedSolomon::ReedSolomon(std::size_t data, std::size_t parity)
    : data_(data), parity_(parity) {
  if (data == 0) throw std::invalid_argument("ReedSolomon: data must be >= 1");
  if (data + parity > 255) throw std::invalid_argument("ReedSolomon: data+parity must be <= 255");

  // Systematic generator: V · V_top⁻¹ where V is Vandermonde. The top k
  // rows become the identity; the bottom p rows stay MDS.
  Matrix v = vandermonde(data + parity, data);
  Matrix top(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(data));
  gen_ = multiply(v, invert(std::move(top)));
}

ReedSolomon::Matrix ReedSolomon::vandermonde(std::size_t rows, std::size_t cols) {
  Matrix m(rows, std::vector<std::uint8_t>(cols));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      // Element base r ensures distinct evaluation points; use exp(r) so
      // row 0 is all-ones and points never repeat for r < 255.
      m[r][c] = GF256::pow(GF256::exp(static_cast<std::uint32_t>(r)),
                           static_cast<std::uint32_t>(c));
    }
  }
  return m;
}

ReedSolomon::Matrix ReedSolomon::invert(Matrix m) {
  const std::size_t n = m.size();
  // Augment with identity, run Gauss-Jordan over GF(256).
  for (std::size_t r = 0; r < n; ++r) {
    m[r].resize(2 * n, 0);
    m[r][n + r] = 1;
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Pivot.
    std::size_t pivot = col;
    while (pivot < n && m[pivot][col] == 0) ++pivot;
    if (pivot == n) throw std::logic_error("ReedSolomon: singular matrix");
    std::swap(m[col], m[pivot]);
    // Normalize pivot row.
    const std::uint8_t inv = GF256::inv(m[col][col]);
    for (auto& x : m[col]) x = GF256::mul(x, inv);
    // Eliminate.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col || m[r][col] == 0) continue;
      const std::uint8_t factor = m[r][col];
      GF256::mul_add_row(m[r].data(), m[col].data(), 2 * n, factor);
    }
  }
  Matrix out(n, std::vector<std::uint8_t>(n));
  for (std::size_t r = 0; r < n; ++r) {
    std::copy(m[r].begin() + static_cast<std::ptrdiff_t>(n), m[r].end(), out[r].begin());
  }
  return out;
}

ReedSolomon::Matrix ReedSolomon::multiply(const Matrix& a, const Matrix& b) {
  const std::size_t rows = a.size();
  const std::size_t inner = b.size();
  const std::size_t cols = b[0].size();
  Matrix out(rows, std::vector<std::uint8_t>(cols, 0));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < inner; ++i) {
      GF256::mul_add_row(out[r].data(), b[i].data(), cols, a[r][i]);
    }
  }
  return out;
}

std::size_t ReedSolomon::shard_size(std::size_t payload_size) const {
  // 4-byte length prefix, then pad to a multiple of data shards.
  const std::size_t framed = payload_size + 4;
  return (framed + data_ - 1) / data_;
}

std::vector<Shard> ReedSolomon::encode(ByteSpan payload) const {
  const obs::Span span("encode/rs");
  const std::size_t per_shard = shard_size(payload.size());

  // Frame: u32 length || payload || zero padding.
  Bytes framed(per_shard * data_, 0);
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) framed[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(len >> (8 * i));
  std::copy(payload.begin(), payload.end(), framed.begin() + 4);

  std::vector<Shard> shards(total_shards());
  for (std::size_t i = 0; i < total_shards(); ++i) {
    shards[i].index = static_cast<std::uint32_t>(i);
    shards[i].bytes.assign(per_shard, 0);
  }
  // Systematic rows are direct copies; parity rows are row-combinations.
  // Each output shard is written by exactly one chunk, so rows parallelize
  // with no merging beyond the fixed shard order.
  ThreadPool::global().parallel_for(
      0, total_shards(), rows_per_chunk(data_ * per_shard),
      [&](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t r = row_begin; r < row_end; ++r) {
          // First column overwrites (the destination is known-zero), the
          // rest accumulate — one fewer pass over each output row.
          GF256::mul_row_into(shards[r].bytes.data(), framed.data(), per_shard,
                              gen_[r][0]);
          for (std::size_t c = 1; c < data_; ++c) {
            GF256::mul_add_row(shards[r].bytes.data(), framed.data() + c * per_shard,
                               per_shard, gen_[r][c]);
          }
        }
      });
  return shards;
}

std::optional<Bytes> ReedSolomon::reconstruct(const std::vector<Shard>& shards) const {
  const obs::Span span("decode/rs");
  // Pick the first `data_` distinct, in-range shards of consistent size.
  std::vector<const Shard*> chosen;
  std::vector<bool> seen(total_shards(), false);
  std::size_t per_shard = 0;
  for (const Shard& s : shards) {
    if (s.index >= total_shards() || seen[s.index]) continue;
    if (per_shard == 0) {
      per_shard = s.bytes.size();
      if (per_shard == 0) continue;
    }
    if (s.bytes.size() != per_shard) continue;
    seen[s.index] = true;
    chosen.push_back(&s);
    if (chosen.size() == data_) break;
  }
  if (chosen.size() < data_) return std::nullopt;

  // Decode matrix: the generator rows of the chosen shards, inverted.
  Matrix rows(data_, std::vector<std::uint8_t>(data_));
  for (std::size_t i = 0; i < data_; ++i) rows[i] = gen_[chosen[i]->index];
  Matrix decode;
  try {
    decode = invert(std::move(rows));
  } catch (const std::logic_error&) {
    return std::nullopt;  // should not happen for an MDS code
  }

  Bytes framed(per_shard * data_, 0);
  ThreadPool::global().parallel_for(
      0, data_, rows_per_chunk(data_ * per_shard),
      [&](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t r = row_begin; r < row_end; ++r) {
          GF256::mul_row_into(framed.data() + r * per_shard, chosen[0]->bytes.data(),
                              per_shard, decode[r][0]);
          for (std::size_t i = 1; i < data_; ++i) {
            GF256::mul_add_row(framed.data() + r * per_shard, chosen[i]->bytes.data(),
                               per_shard, decode[r][i]);
          }
        }
      });

  if (framed.size() < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(framed[static_cast<std::size_t>(i)])
                                    << (8 * i);
  if (len > framed.size() - 4) return std::nullopt;  // corrupt framing
  return Bytes(framed.begin() + 4, framed.begin() + 4 + len);
}

}  // namespace ici::erasure
