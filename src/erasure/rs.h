// Systematic Reed-Solomon erasure code over GF(2^8).
//
// encode() splits a payload into `data` equal shards and derives `parity`
// extra shards; reconstruct() recovers the payload from ANY `data` of the
// `data + parity` shards. The generator matrix is a Vandermonde matrix made
// systematic (top k×k reduced to identity), the standard storage-code
// construction.
//
// ICIStrategy uses this for the fractional-redundancy storage mode: a
// cluster stores each block as d+p shards on d+p distinct members —
// (d+p)/d× the block's bytes instead of r× for whole-copy replication,
// while tolerating any p holders being offline.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"

namespace ici::erasure {

struct Shard {
  std::uint32_t index = 0;  // 0..data+parity-1; < data means systematic
  Bytes bytes;
};

class ReedSolomon {
 public:
  /// data ≥ 1, parity ≥ 0, data + parity ≤ 255.
  ReedSolomon(std::size_t data, std::size_t parity);

  [[nodiscard]] std::size_t data_shards() const { return data_; }
  [[nodiscard]] std::size_t parity_shards() const { return parity_; }
  [[nodiscard]] std::size_t total_shards() const { return data_ + parity_; }

  /// Splits `payload` into shards. The payload length is prepended
  /// internally so reconstruct() can strip padding. Every shard has size
  /// shard_size(payload.size()).
  [[nodiscard]] std::vector<Shard> encode(ByteSpan payload) const;

  /// Bytes per shard for a payload of `payload_size` bytes.
  [[nodiscard]] std::size_t shard_size(std::size_t payload_size) const;

  /// Recovers the payload from any `data` distinct shards (more are
  /// ignored). Returns nullopt when fewer than `data` distinct valid-sized
  /// shards are supplied or indices are out of range.
  [[nodiscard]] std::optional<Bytes> reconstruct(const std::vector<Shard>& shards) const;

 private:
  using Matrix = std::vector<std::vector<std::uint8_t>>;

  /// Row `r` of the systematic generator matrix (r in [0, data+parity)).
  [[nodiscard]] const Matrix& generator() const { return gen_; }
  [[nodiscard]] static Matrix vandermonde(std::size_t rows, std::size_t cols);
  [[nodiscard]] static Matrix invert(Matrix m);
  [[nodiscard]] static Matrix multiply(const Matrix& a, const Matrix& b);

  std::size_t data_;
  std::size_t parity_;
  Matrix gen_;  // (data+parity) × data, top block = identity
};

}  // namespace ici::erasure
