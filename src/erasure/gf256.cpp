#include "erasure/gf256.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/cpudispatch.h"

namespace ici::erasure {

const GF256::Tables& GF256::tables() {
  static const Tables t = [] {
    Tables tables;
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      tables.exp[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(x);
      tables.log[static_cast<std::size_t>(x)] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11d;
    }
    // Duplicate so exp[i + j] never needs a mod for i, j < 255.
    for (int i = 255; i < 512; ++i) {
      tables.exp[static_cast<std::size_t>(i)] = tables.exp[static_cast<std::size_t>(i - 255)];
    }
    return tables;
  }();
  return t;
}

std::uint8_t GF256::mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + t.log[b]];
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) {
  if (b == 0) throw std::domain_error("GF256: division by zero");
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[static_cast<std::size_t>(t.log[a]) + 255 - t.log[b]];
}

std::uint8_t GF256::inv(std::uint8_t a) {
  if (a == 0) throw std::domain_error("GF256: zero has no inverse");
  const Tables& t = tables();
  return t.exp[static_cast<std::size_t>(255 - t.log[a]) % 255];
}

std::uint8_t GF256::pow(std::uint8_t a, std::uint32_t n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  const std::uint32_t l = (static_cast<std::uint32_t>(t.log[a]) * n) % 255;
  return t.exp[l];
}

std::uint8_t GF256::exp(std::uint32_t n) { return tables().exp[n % 255]; }

const std::uint8_t* GF256::mul_table() {
  // 64 KiB, built once from the log/exp tables: table[c*256 + s] = c·s.
  // Thread-safe via static-local initialization; read-only afterwards, so
  // pool workers share it freely.
  static const std::vector<std::uint8_t> table = [] {
    std::vector<std::uint8_t> t(256 * 256, 0);
    for (std::size_t c = 1; c < 256; ++c) {
      for (std::size_t s = 1; s < 256; ++s) {
        t[c * 256 + s] = mul(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(s));
      }
    }
    return t;
  }();
  return table.data();
}

const std::uint8_t* GF256::mul_row(std::uint8_t c) { return mul_table() + c * 256u; }

const std::uint8_t* GF256::nibble_tables() {
  // 8 KiB, built once: tables[c*32 + i]     = c · i          (low nibbles)
  //                    tables[c*32 + 16+i]  = c · (i << 4)   (high nibbles)
  // so c·s == lo[s & 0xf] ^ hi[s >> 4] — XOR is field addition and the
  // nibble split is linear over GF(2).
  static const std::vector<std::uint8_t> tables = [] {
    std::vector<std::uint8_t> t(256 * 32, 0);
    for (std::size_t c = 0; c < 256; ++c) {
      for (std::size_t i = 0; i < 16; ++i) {
        t[c * 32 + i] = mul(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(i));
        t[c * 32 + 16 + i] =
            mul(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(i << 4));
      }
    }
    return t;
  }();
  return tables.data();
}

void GF256::mul_add_row(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                        std::uint8_t c) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  switch (cpu::gf256_native_level()) {
    case 2:
      detail::mul_add_row_avx2(dst, src, n, nibble_tables() + c * 32u, mul_row(c));
      return;
    case 1:
      detail::mul_add_row_ssse3(dst, src, n, nibble_tables() + c * 32u, mul_row(c));
      return;
    default:
      break;
  }
  const std::uint8_t* row = mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void GF256::mul_row_into(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                         std::uint8_t c) {
  if (c == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (c == 1) {
    std::memcpy(dst, src, n);
    return;
  }
  switch (cpu::gf256_native_level()) {
    case 2:
      detail::mul_row_into_avx2(dst, src, n, nibble_tables() + c * 32u, mul_row(c));
      return;
    case 1:
      detail::mul_row_into_ssse3(dst, src, n, nibble_tables() + c * 32u, mul_row(c));
      return;
    default:
      break;
  }
  const std::uint8_t* row = mul_row(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

}  // namespace ici::erasure
