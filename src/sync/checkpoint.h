// Crash-safe sync state. A `SyncCheckpoint` lives OUTSIDE the joining node
// (with the driver that owns the join — `Bootstrapper` or a facade), so when
// a FaultPlan crash window destroys the node's in-memory `BulkPullSession`,
// the verified prefix survives. On restart the driver opens a fresh session
// from the checkpoint and the joiner resumes at `next_height` instead of
// height 0. Only *verified* progress is checkpointed: fields advance at
// range-commit points, never on raw message arrival.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hash.h"
#include "sim/network.h"

namespace ici::sync {

/// Tuning knobs of a bulk-pull session. Defaults match exp22; icisim
/// exposes them as `--sync-*` flags.
struct SyncConfig {
  /// Blocks per RangeRequest (and cap on a listed-body batch).
  std::uint32_t range_blocks = 16;
  /// Outstanding requests allowed per peer at any instant.
  std::uint32_t per_peer_window = 2;
  /// Pull peers used in parallel (frontier may probe more candidates).
  std::uint32_t max_peers = 4;
  /// Frontier round deadline before a retry.
  sim::SimTime frontier_timeout_us = 300'000;
  /// Per-range deadline before the range is reassigned to another peer.
  sim::SimTime range_timeout_us = 2'000'000;
  /// Retries per range / per body / per frontier round before the
  /// session gives up.
  std::uint32_t max_retries = 8;
};

/// A body (or assigned shard) whose header range already committed but
/// whose payload has not landed yet. Persisted so a resume re-requests
/// exactly these instead of re-pulling the whole range.
struct PendingBody {
  Hash256 hash;
  std::uint64_t height = 0;
};

/// Download attribution for one source peer (wire bytes as charged by the
/// simulator: payload + per-message overhead).
struct PeerBytes {
  sim::NodeId peer = 0;
  std::uint64_t bytes = 0;
  std::uint32_t responses = 0;
};

struct SyncCheckpoint {
  // ---- verified prefix -------------------------------------------------
  /// First height not yet verified+committed; ranges resume here.
  std::uint64_t next_height = 0;
  /// Hash of the last committed header — the linkage anchor a resumed
  /// session verifies its first range against.
  Hash256 tail_hash{};
  /// Sync target learned from the frontier exchange (monotone across
  /// resumes; re-probed on every restart).
  std::uint64_t target_height = 0;
  bool have_target = false;
  /// Committed-range bodies/shards still owed to the store.
  std::vector<PendingBody> pending_bodies;
  bool complete = false;

  // ---- cumulative tallies (survive resumes, feed SyncReport) -----------
  std::uint64_t bytes_downloaded = 0;  ///< wire bytes incl. overhead
  std::uint64_t header_payload_bytes = 0;
  std::uint64_t body_payload_bytes = 0;
  std::uint64_t headers_committed = 0;
  std::uint64_t bodies_committed = 0;
  std::uint32_t bodies_failed = 0;
  std::uint32_t ranges_committed = 0;
  std::uint32_t ranges_retried = 0;
  std::uint32_t resume_count = 0;
  std::vector<PeerBytes> by_peer;

  // ---- timing ----------------------------------------------------------
  sim::SimTime started_at_us = 0;
  bool timing_started = false;
  sim::SimTime frontier_us = 0;  ///< accumulated frontier-phase sim time

  PeerBytes& peer_tally(sim::NodeId peer) {
    for (auto& p : by_peer)
      if (p.peer == peer) return p;
    by_peer.push_back(PeerBytes{peer, 0, 0});
    return by_peer.back();
  }
};

/// Final outcome of a join, built from the checkpoint when the session
/// finishes (or fails). `protocol` is false for the pruned baseline, whose
/// join cost stays closed-form (it has no sim network to speak over).
struct SyncReport {
  bool complete = false;
  bool protocol = true;
  std::uint64_t target_height = 0;
  sim::SimTime time_to_synced_us = 0;
  sim::SimTime frontier_us = 0;
  std::uint64_t bytes_downloaded = 0;
  std::uint64_t header_payload_bytes = 0;
  std::uint64_t body_payload_bytes = 0;
  std::uint64_t headers_committed = 0;
  std::uint64_t bodies_committed = 0;
  std::uint32_t bodies_failed = 0;
  std::uint32_t ranges_committed = 0;
  std::uint32_t ranges_retried = 0;
  std::uint32_t resume_count = 0;
  std::uint32_t peers_used = 0;
  std::vector<PeerBytes> by_peer;
};

}  // namespace ici::sync
