// Join driver shared by the three protocol facades (ICI, full-replication,
// RapidChain). Owns the crash-safe checkpoint, wires crash/resume through
// the facade's status observer, and advances the simulation in bounded
// windows (a faulted run never quiesces, so settle() is not an option).
//
// `Net` must provide: simulator(), metrics(), run_for(us),
// set_status_observer(cb), node(id) — where the node type exposes
// start_streaming_sync / abandon_sync (i.e. implements BulkPullSession::Env).
#pragma once

#include <functional>
#include <vector>

#include "metrics/registry.h"
#include "obs/trace.h"
#include "sync/checkpoint.h"

namespace ici::sync {

/// Upper bound on how long a driver keeps the simulation running for one
/// join. Only reached when the joiner crashes and never restarts; a healthy
/// sync exits the drive loop at its completion callback.
inline constexpr sim::SimTime kDriveCapUs = 600'000'000;  // 10 min of sim time
/// Drive-loop window. Small enough that the loop notices completion (and a
/// capped run samples fault counters) promptly; exact timing comes from the
/// completion callback, not the window edge.
inline constexpr sim::SimTime kDriveStepUs = 250'000;

/// Folds a finished join into the facade's registry (`sync.*` metrics) and
/// emits the bootstrap spans.
inline void record_join(metrics::Registry& m, const SyncReport& r) {
  m.counter("sync.ranges_committed").inc(r.ranges_committed);
  m.counter("sync.ranges_retried").inc(r.ranges_retried);
  m.counter("sync.bodies_committed").inc(r.bodies_committed);
  if (r.complete) {
    m.counter("sync.joins_completed").inc();
    obs::TraceSink::global().record_sim("bootstrap/join",
                                        static_cast<double>(r.time_to_synced_us));
    obs::TraceSink::global().record_sim(
        "bootstrap/fetch", static_cast<double>(r.time_to_synced_us - r.frontier_us));
  }
  m.distribution("sync.time_to_synced_us").add(static_cast<double>(r.time_to_synced_us));
  for (const PeerBytes& p : r.by_peer)
    m.distribution("sync.bytes_per_peer").add(static_cast<double>(p.bytes));
}

template <typename Net>
SyncReport drive_join(Net& net, sim::NodeId joiner, const SyncConfig& cfg,
                      const std::vector<sim::NodeId>& candidates) {
  SyncCheckpoint checkpoint;
  SyncReport result;
  bool done = false;
  auto& node = net.node(joiner);

  std::function<void(const SyncReport&)> on_done = [&](const SyncReport& r) {
    done = true;
    result = r;
  };

  // Crash/resume wiring: a FaultPlan crash on the joiner drops its session
  // (outstanding timers become inert); the restart opens a fresh one over
  // the same checkpoint. Peers flipping state are the session's own
  // problem — per-range timeouts reassign their work.
  net.set_status_observer([&](sim::NodeId id, bool online) {
    if (id != joiner || done) return;
    if (!online) {
      node.abandon_sync();
      return;
    }
    if (!checkpoint.complete) {
      checkpoint.resume_count += 1;
      net.metrics().counter("sync.resumes").inc();
      node.start_streaming_sync(cfg, &checkpoint, candidates, on_done);
    }
  });

  const sim::SimTime started = net.simulator().now();
  node.start_streaming_sync(cfg, &checkpoint, candidates, on_done);
  while (!done && net.simulator().now() - started < kDriveCapUs)
    net.run_for(kDriveStepUs);
  net.set_status_observer(nullptr);

  record_join(net.metrics(), result);
  return result;
}

}  // namespace ici::sync
