// BulkPullSession — the joiner side of the streaming bootstrap protocol.
//
// One session drives one attempt to sync a node from its checkpoint to the
// cluster frontier:
//
//   frontier  probe candidate peers for tip heights + inventories, pick the
//             target height and up to `max_peers` pull peers;
//   pull      pipeline windowed RangeRequests across the pull peers
//             (per-peer in-flight cap, out-of-order landing into a
//             reassembly buffer);
//   verify    per range, before commit: internal parent linkage (contiguous
//             flavours), height bounds, body hash ∈ served headers +
//             Merkle-root recomputation;
//   commit    strictly in height order — commit advances the externally
//             held SyncCheckpoint, which is the only state that survives a
//             crash;
//   resume    a crashed node's session dies with it; the driver opens a new
//             session over the same checkpoint (frontier re-probes, ranges
//             restart at `next_height`, owed bodies are re-requested).
//
// The session is strategy-agnostic via `Env`, implemented privately by
// IciNode / FullRepNode / RapidChainNode. It draws NO random numbers: peer
// choice, range assignment, retry rotation, and batch grouping are all
// deterministic functions of (config, checkpoint, message arrival order),
// so the determinism contract holds — identical seeds replay bit-identically.
//
// Timers are armed through weak_ptr self-references: when the driver drops
// the session (crash) every outstanding deadline becomes inert, so an
// abandoned sync leaves nothing behind but the checkpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "chain/block.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sync/checkpoint.h"
#include "sync/messages.h"

namespace ici::sync {

class BulkPullSession : public std::enable_shared_from_this<BulkPullSession> {
 public:
  /// Everything the session needs from its host node. All hooks must be
  /// deterministic and draw no randomness.
  class Env {
   public:
    virtual ~Env() = default;
    [[nodiscard]] virtual sim::NodeId sync_self() const = 0;
    [[nodiscard]] virtual sim::Simulator& sync_simulator() = 0;
    virtual void sync_send(sim::NodeId to, sim::MessagePtr msg) = 0;
    /// Per-message overhead the network charges (for byte attribution).
    [[nodiscard]] virtual std::size_t sync_message_overhead() const = 0;
    /// True when the flavour stores a contiguous chain (parent linkage is
    /// verified per range). RapidChain committee stores are gapped.
    [[nodiscard]] virtual bool sync_linked_headers() const = 0;
    /// Range payload the flavour wants: kHeaders (ICI, bodies out of band)
    /// or kHeadersAndBodies (full-rep / RapidChain).
    [[nodiscard]] virtual PullMode sync_range_mode() const = 0;
    /// True when assigned payloads are RS shards (fetched+reconstructed by
    /// the node's coded machinery instead of listed-body pulls).
    [[nodiscard]] virtual bool sync_coded() const = 0;
    virtual void sync_commit_header(const BlockHeader& header, const Hash256& hash) = 0;
    /// Is this block (or its shard) assigned to the joiner?
    [[nodiscard]] virtual bool sync_wants_body(const Hash256& hash, std::uint64_t height) = 0;
    virtual void sync_commit_body(const std::shared_ptr<const Block>& block) = 0;
    /// Holders to ask for a listed body, best first (replication only).
    [[nodiscard]] virtual std::vector<sim::NodeId> sync_body_candidates(
        const Hash256& hash, std::uint64_t height) = 0;
    /// Coded flavours: collect ≥d shards, reconstruct, keep the assigned
    /// shard; calls `done` with the block on success, nullptr on failure.
    virtual void sync_fetch_assigned_shard(
        const Hash256& hash, std::uint64_t height,
        std::function<void(std::shared_ptr<const Block>)> done) = 0;
  };

  using DoneFn = std::function<void(const SyncReport&)>;

  /// Opens a session over `checkpoint` (which must outlive it) and starts
  /// the frontier exchange. `candidates` are frontier probe targets in
  /// preference order (typically cluster peers by distance).
  static std::shared_ptr<BulkPullSession> start(Env& env, const SyncConfig& cfg,
                                                SyncCheckpoint* checkpoint,
                                                std::vector<sim::NodeId> candidates,
                                                std::uint64_t session_id, DoneFn on_done);

  /// Host node forwards matching sync messages here.
  void on_sync_message(sim::NodeId from, const SyncMessage& msg);

  [[nodiscard]] std::uint64_t session_id() const { return id_; }
  [[nodiscard]] bool finished() const { return finished_; }

 private:
  BulkPullSession(Env& env, const SyncConfig& cfg, SyncCheckpoint* checkpoint,
                  std::vector<sim::NodeId> candidates, std::uint64_t session_id,
                  DoneFn on_done);

  // -- frontier ----------------------------------------------------------
  void begin_frontier();
  void on_frontier_response(sim::NodeId from, const FrontierResponseMsg& msg);
  void finish_frontier();

  // -- pull / reassembly -------------------------------------------------
  struct RangeState {
    std::uint64_t from = 0;
    std::uint32_t count = 0;
    sim::NodeId peer = 0;
    std::uint32_t attempts = 0;
    std::uint64_t token = 0;  ///< invalidates stale deadline timers
    bool issued = false;
    bool landed = false;
    std::vector<BlockHeader> headers;  // reassembly buffer
    std::vector<std::shared_ptr<const Block>> bodies;
  };
  struct BodyWant {
    Hash256 hash;
    std::uint64_t height = 0;
    std::uint32_t attempts = 0;
  };
  struct BodyPull {
    std::vector<BodyWant> want;
    sim::NodeId peer = 0;
    std::uint64_t token = 0;
    bool done = false;
  };

  void pump();
  void issue_range(std::size_t index, sim::NodeId peer);
  void retry_range(std::size_t index);
  void on_range_response(sim::NodeId from, const RangeResponseMsg& msg);
  void on_range_timeout(std::size_t index, std::uint64_t token);
  [[nodiscard]] bool range_payload_ok(const RangeState& r,
                                      const RangeResponseMsg& msg) const;
  void try_commit();
  void want_body(const Hash256& hash, std::uint64_t height, bool checkpointed);
  void issue_body_pull(std::uint32_t pull_id, sim::NodeId peer,
                       std::vector<BodyWant> want);
  void on_body_response(sim::NodeId from, const RangeResponseMsg& msg);
  void on_body_timeout(std::uint32_t pull_id, std::uint64_t token);
  void requeue_body(BodyWant want);
  void start_shard_fetch(const Hash256& hash, std::uint64_t height);
  void erase_pending(const Hash256& hash);

  void arm(sim::SimTime delay, std::function<void()> fn);
  void tally_bytes(sim::NodeId from, const SyncMessage& msg);
  void check_done();
  void finish(bool ok);

  Env& env_;
  SyncConfig cfg_;
  SyncCheckpoint* cp_;
  std::vector<sim::NodeId> candidates_;
  std::uint64_t id_;
  DoneFn on_done_;
  bool finished_ = false;

  // frontier
  bool frontier_done_ = false;
  std::uint32_t frontier_attempts_ = 0;
  std::size_t frontier_awaiting_ = 0;
  std::uint64_t frontier_token_ = 0;
  sim::SimTime frontier_started_ = 0;
  /// (candidate order, tip) for responders claiming a tip.
  std::vector<std::pair<sim::NodeId, std::uint64_t>> frontier_tips_;
  std::vector<sim::NodeId> pull_peers_;

  // ranges
  std::vector<RangeState> ranges_;
  std::size_t next_unissued_ = 0;
  std::size_t commit_cursor_ = 0;
  sim::SimTime pull_started_ = 0;

  // listed-body phase (replication) / shard phase (coded)
  std::vector<BodyWant> body_queue_;
  std::map<std::uint32_t, BodyPull> body_pulls_;
  std::uint32_t next_pull_id_ = 0;
  std::size_t shards_outstanding_ = 0;

  std::map<sim::NodeId, std::uint32_t> inflight_;
  std::uint64_t token_counter_ = 0;
};

}  // namespace ici::sync
