// Wire messages of the streaming bulk-sync bootstrap protocol (see
// docs/BOOTSTRAP.md). The protocol is flavour-agnostic: ICI clusters,
// full-replication peer graphs, and RapidChain committees all speak it, so
// the messages live outside any one protocol namespace and every message
// reports a realistic serialized size the simulator charges byte-accurately.
//
// Flow (joiner's view):
//   joiner --FrontierRequest--> each candidate peer
//   peer   --FrontierResponse-- tip height + body/shard inventory summary
//   joiner --RangeRequest-----> pull peers, windowed + pipelined
//   peer   --RangeResponse----- headers (and bodies, mode-dependent)
#pragma once

#include <memory>
#include <vector>

#include "chain/block.h"
#include "sim/network.h"

namespace ici::sync {

enum class SyncMsgKind : std::uint8_t {
  kFrontierRequest,
  kFrontierResponse,
  kRangeRequest,
  kRangeResponse,
};

/// What a RangeRequest asks the peer to stream back.
enum class PullMode : std::uint8_t {
  /// Headers for every height in [from, from+count). The ICI flavour pulls
  /// bodies separately (rendezvous assignment scatters them across peers).
  kHeaders,
  /// Headers plus every body the peer holds in the range — full-replication
  /// and RapidChain peers hold everything the joiner wants.
  kHeadersAndBodies,
  /// Exactly the listed bodies (ICI body phase: the joiner already verified
  /// the headers and asks the rendezvous holders for its assigned blocks).
  kListedBodies,
};

struct SyncMessage : sim::MessageBase {
  std::uint64_t session_id = 0;
  [[nodiscard]] virtual SyncMsgKind sync_kind() const = 0;
};

/// "What is your tip, and how much of the ledger can you serve me?"
struct FrontierRequestMsg final : SyncMessage {
  /// The joiner's verified prefix — a resumed sync advertises its
  /// checkpoint so peers could, in a real deployment, prune their answer.
  std::uint64_t from_height = 0;

  [[nodiscard]] SyncMsgKind sync_kind() const override {
    return SyncMsgKind::kFrontierRequest;
  }
  [[nodiscard]] std::size_t wire_size() const override { return 8 + 8; }
  [[nodiscard]] const char* type_name() const override { return "FrontierRequest"; }
};

struct FrontierResponseMsg final : SyncMessage {
  bool has_tip = false;
  std::uint64_t tip_height = 0;
  /// Bodies (replication) or shards (coded) this peer can serve — the
  /// inventory summary the joiner uses to rank pull peers.
  std::uint64_t inventory = 0;
  /// True when the peer stores Reed-Solomon shards rather than bodies.
  bool serves_shards = false;

  [[nodiscard]] SyncMsgKind sync_kind() const override {
    return SyncMsgKind::kFrontierResponse;
  }
  [[nodiscard]] std::size_t wire_size() const override { return 8 + 1 + 8 + 8 + 1; }
  [[nodiscard]] const char* type_name() const override { return "FrontierResponse"; }
};

/// One windowed pull: a height range (kHeaders / kHeadersAndBodies) or an
/// explicit want-list (kListedBodies). `range_index` echoes back in the
/// response so out-of-order landings find their reassembly slot.
struct RangeRequestMsg final : SyncMessage {
  std::uint32_t range_index = 0;
  PullMode mode = PullMode::kHeaders;
  std::uint64_t from_height = 0;
  std::uint32_t count = 0;
  std::vector<Hash256> want;  // kListedBodies only

  [[nodiscard]] SyncMsgKind sync_kind() const override {
    return SyncMsgKind::kRangeRequest;
  }
  [[nodiscard]] std::size_t wire_size() const override {
    return 8 + 4 + 1 + 8 + 4 + 4 + want.size() * 32;
  }
  [[nodiscard]] const char* type_name() const override { return "RangeRequest"; }
};

struct RangeResponseMsg final : SyncMessage {
  std::uint32_t range_index = 0;
  PullMode mode = PullMode::kHeaders;
  std::uint64_t from_height = 0;
  std::uint32_t count = 0;
  std::vector<BlockHeader> headers;
  std::vector<std::shared_ptr<const Block>> bodies;

  [[nodiscard]] SyncMsgKind sync_kind() const override {
    return SyncMsgKind::kRangeResponse;
  }
  [[nodiscard]] std::size_t wire_size() const override {
    std::size_t sz = 8 + 4 + 1 + 8 + 4 + 4 + 4;
    sz += headers.size() * BlockHeader::kWireSize;
    for (const auto& b : bodies) sz += 4 + b->serialized_size();
    return sz;
  }
  [[nodiscard]] const char* type_name() const override { return "RangeResponse"; }
};

}  // namespace ici::sync
