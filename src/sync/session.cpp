#include "sync/session.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace ici::sync {

std::shared_ptr<BulkPullSession> BulkPullSession::start(
    Env& env, const SyncConfig& cfg, SyncCheckpoint* checkpoint,
    std::vector<sim::NodeId> candidates, std::uint64_t session_id, DoneFn on_done) {
  auto session = std::shared_ptr<BulkPullSession>(new BulkPullSession(
      env, cfg, checkpoint, std::move(candidates), session_id, std::move(on_done)));
  if (!checkpoint->timing_started) {
    checkpoint->started_at_us = env.sync_simulator().now();
    checkpoint->timing_started = true;
  }
  session->begin_frontier();
  return session;
}

BulkPullSession::BulkPullSession(Env& env, const SyncConfig& cfg,
                                 SyncCheckpoint* checkpoint,
                                 std::vector<sim::NodeId> candidates,
                                 std::uint64_t session_id, DoneFn on_done)
    : env_(env),
      cfg_(cfg),
      cp_(checkpoint),
      candidates_(std::move(candidates)),
      id_(session_id),
      on_done_(std::move(on_done)) {
  if (cfg_.range_blocks == 0) cfg_.range_blocks = 1;
  if (cfg_.per_peer_window == 0) cfg_.per_peer_window = 1;
  if (cfg_.max_peers == 0) cfg_.max_peers = 1;
}

void BulkPullSession::arm(sim::SimTime delay, std::function<void()> fn) {
  std::weak_ptr<BulkPullSession> weak = weak_from_this();
  env_.sync_simulator().after(delay, [weak, fn = std::move(fn)]() {
    // A crashed joiner's session was dropped by the driver: the weak_ptr
    // no longer locks and the deadline is inert.
    if (auto self = weak.lock(); self && !self->finished_) fn();
  });
}

void BulkPullSession::tally_bytes(sim::NodeId from, const SyncMessage& msg) {
  const std::uint64_t wire = msg.wire_size() + env_.sync_message_overhead();
  cp_->bytes_downloaded += wire;
  auto& tally = cp_->peer_tally(from);
  tally.bytes += wire;
  tally.responses += 1;
}

// ---------------------------------------------------------------------------
// Frontier exchange
// ---------------------------------------------------------------------------

void BulkPullSession::begin_frontier() {
  frontier_started_ = env_.sync_simulator().now();
  frontier_tips_.clear();
  frontier_awaiting_ = candidates_.size();
  if (frontier_awaiting_ == 0) {
    finish(false);
    return;
  }
  for (sim::NodeId peer : candidates_) {
    auto req = std::make_shared<FrontierRequestMsg>();
    req->session_id = id_;
    req->from_height = cp_->next_height;
    env_.sync_send(peer, std::move(req));
  }
  const std::uint64_t token = ++token_counter_;
  frontier_token_ = token;
  arm(cfg_.frontier_timeout_us, [this, token] {
    if (frontier_done_ || frontier_token_ != token) return;
    finish_frontier();
  });
}

void BulkPullSession::on_frontier_response(sim::NodeId from,
                                           const FrontierResponseMsg& msg) {
  if (frontier_done_) return;
  if (msg.has_tip) frontier_tips_.emplace_back(from, msg.tip_height);
  if (frontier_awaiting_ > 0) --frontier_awaiting_;
  if (frontier_awaiting_ == 0) finish_frontier();
}

void BulkPullSession::finish_frontier() {
  if (frontier_done_ || finished_) return;
  if (frontier_tips_.empty()) {
    // Nobody answered in time — retry the whole round or give up.
    if (++frontier_attempts_ > cfg_.max_retries) {
      finish(false);
      return;
    }
    begin_frontier();
    return;
  }
  frontier_done_ = true;
  const sim::SimTime now = env_.sync_simulator().now();
  cp_->frontier_us += now - frontier_started_;
  obs::TraceSink::global().record_sim("sync/frontier",
                                      static_cast<double>(now - frontier_started_));

  std::uint64_t target = cp_->have_target ? cp_->target_height : 0;
  for (const auto& [peer, tip] : frontier_tips_) target = std::max(target, tip);
  cp_->target_height = target;
  cp_->have_target = true;

  // Pull peers: responders at the target tip, in candidate (distance)
  // order; if the tip is contested, fall back to every responder.
  pull_peers_.clear();
  for (const auto& [peer, tip] : frontier_tips_)
    if (tip == target && pull_peers_.size() < cfg_.max_peers)
      pull_peers_.push_back(peer);
  if (pull_peers_.empty())
    for (const auto& [peer, tip] : frontier_tips_)
      if (pull_peers_.size() < cfg_.max_peers) pull_peers_.push_back(peer);

  // Range grid over the unverified suffix [next_height, target].
  ranges_.clear();
  next_unissued_ = 0;
  commit_cursor_ = 0;
  for (std::uint64_t from = cp_->next_height; from <= target;
       from += cfg_.range_blocks) {
    RangeState r;
    r.from = from;
    r.count = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(cfg_.range_blocks, target - from + 1));
    ranges_.push_back(std::move(r));
  }

  // A resume re-requests the bodies its committed ranges still owe.
  body_queue_.clear();
  std::vector<PendingBody> owed = cp_->pending_bodies;
  for (const auto& pb : owed) {
    if (env_.sync_coded())
      start_shard_fetch(pb.hash, pb.height);
    else
      body_queue_.push_back(BodyWant{pb.hash, pb.height, 0});
  }

  pull_started_ = now;
  pump();
  check_done();
}

// ---------------------------------------------------------------------------
// Pull scheduling
// ---------------------------------------------------------------------------

void BulkPullSession::pump() {
  if (finished_ || !frontier_done_) return;

  // Header ranges: prefer the round-robin peer, else the first peer with
  // window capacity — deterministic in (range index, peer order).
  while (next_unissued_ < ranges_.size()) {
    const std::size_t idx = next_unissued_;
    sim::NodeId chosen = 0;
    bool found = false;
    const std::size_t n = pull_peers_.size();
    for (std::size_t probe = 0; probe < n; ++probe) {
      sim::NodeId peer = pull_peers_[(idx + probe) % n];
      if (inflight_[peer] < cfg_.per_peer_window) {
        chosen = peer;
        found = true;
        break;
      }
    }
    if (!found) break;
    issue_range(idx, chosen);
    ++next_unissued_;
  }

  // Listed-body batches: group the queue by responsible holder (rotating
  // through each block's candidate list on retries), one request per
  // holder with capacity, batch capped at range_blocks.
  if (!body_queue_.empty()) {
    std::map<sim::NodeId, std::vector<BodyWant>> groups;
    std::vector<BodyWant> keep;
    for (auto& want : body_queue_) {
      auto holders = env_.sync_body_candidates(want.hash, want.height);
      if (holders.empty()) {
        // Nobody can serve it right now — retry later rounds, then fail.
        if (want.attempts >= cfg_.max_retries) {
          cp_->bodies_failed += 1;
          erase_pending(want.hash);
        } else {
          want.attempts += 1;
          keep.push_back(want);
        }
        continue;
      }
      sim::NodeId holder = holders[want.attempts % holders.size()];
      groups[holder].push_back(want);
    }
    body_queue_ = std::move(keep);
    for (auto& [peer, wants] : groups) {
      std::size_t taken = 0;
      while (taken < wants.size() && inflight_[peer] < cfg_.per_peer_window) {
        const std::size_t batch =
            std::min<std::size_t>(cfg_.range_blocks, wants.size() - taken);
        std::vector<BodyWant> slice(wants.begin() + taken,
                                    wants.begin() + taken + batch);
        taken += batch;
        issue_body_pull(next_pull_id_++, peer, std::move(slice));
      }
      // Whatever didn't fit a window goes back to the queue untouched.
      for (std::size_t i = taken; i < wants.size(); ++i)
        body_queue_.push_back(wants[i]);
    }
  }
}

void BulkPullSession::issue_range(std::size_t index, sim::NodeId peer) {
  RangeState& r = ranges_[index];
  r.peer = peer;
  r.issued = true;
  r.token = ++token_counter_;
  inflight_[peer] += 1;

  auto req = std::make_shared<RangeRequestMsg>();
  req->session_id = id_;
  req->range_index = static_cast<std::uint32_t>(index);
  req->mode = env_.sync_range_mode();
  req->from_height = r.from;
  req->count = r.count;
  env_.sync_send(peer, std::move(req));

  const std::uint64_t token = r.token;
  arm(cfg_.range_timeout_us, [this, index, token] { on_range_timeout(index, token); });
}

void BulkPullSession::on_range_timeout(std::size_t index, std::uint64_t token) {
  RangeState& r = ranges_[index];
  if (r.landed || r.token != token) return;
  retry_range(index);
}

void BulkPullSession::retry_range(std::size_t index) {
  RangeState& r = ranges_[index];
  auto it = inflight_.find(r.peer);
  if (it != inflight_.end() && it->second > 0) it->second -= 1;
  cp_->ranges_retried += 1;
  r.attempts += 1;
  if (r.attempts > cfg_.max_retries) {
    finish(false);
    return;
  }
  // Reassign to the next pull peer in rotation; retries bypass the window
  // so a stalled range can't deadlock behind its own peer's backlog.
  // issue_range stamps a fresh token, so any outstanding deadline timer
  // for the previous attempt becomes a no-op.
  sim::NodeId peer = pull_peers_[(index + r.attempts) % pull_peers_.size()];
  issue_range(index, peer);
}

bool BulkPullSession::range_payload_ok(const RangeState& r,
                                       const RangeResponseMsg& msg) const {
  if (msg.from_height != r.from || msg.count != r.count) return false;
  const std::uint64_t lo = r.from;
  const std::uint64_t hi = r.from + r.count;  // exclusive
  if (env_.sync_linked_headers()) {
    // Contiguous flavours must return the full dense run, parent-linked.
    if (msg.headers.size() != r.count) return false;
    for (std::size_t i = 0; i < msg.headers.size(); ++i) {
      if (msg.headers[i].height != lo + i) return false;
      if (i > 0 && msg.headers[i].parent != msg.headers[i - 1].hash()) return false;
    }
  } else {
    // Gapped stores (RapidChain committees): heights in bounds, ascending.
    std::uint64_t prev = 0;
    bool first = true;
    for (const auto& h : msg.headers) {
      if (h.height < lo || h.height >= hi) return false;
      if (!first && h.height <= prev) return false;
      prev = h.height;
      first = false;
    }
  }
  return true;
}

void BulkPullSession::on_range_response(sim::NodeId /*from*/,
                                        const RangeResponseMsg& msg) {
  if (msg.range_index >= ranges_.size()) return;
  RangeState& r = ranges_[msg.range_index];
  if (!r.issued || r.landed) return;  // stale duplicate
  if (!range_payload_ok(r, msg)) {
    // Treat a malformed payload like a timeout: release the slot and
    // reassign the range to another peer.
    retry_range(msg.range_index);
    return;
  }
  r.landed = true;
  r.headers = msg.headers;
  r.bodies = msg.bodies;
  auto it = inflight_.find(r.peer);
  if (it != inflight_.end() && it->second > 0) it->second -= 1;
  try_commit();
  pump();
  check_done();
}

// ---------------------------------------------------------------------------
// Verify + commit
// ---------------------------------------------------------------------------

void BulkPullSession::try_commit() {
  while (commit_cursor_ < ranges_.size() && ranges_[commit_cursor_].landed) {
    RangeState& r = ranges_[commit_cursor_];

    // Anchor the first header of the range against the verified prefix.
    if (env_.sync_linked_headers() && cp_->next_height > 0 &&
        !r.headers.empty() && r.headers.front().parent != cp_->tail_hash) {
      // The peer served a fork off our verified prefix — refetch elsewhere.
      r.landed = false;
      r.headers.clear();
      r.bodies.clear();
      retry_range(commit_cursor_);
      return;
    }

    // Index the bodies that rode along (kHeadersAndBodies) by hash.
    std::vector<std::pair<Hash256, const std::shared_ptr<const Block>*>> by_hash;
    by_hash.reserve(r.bodies.size());
    for (const auto& b : r.bodies) by_hash.emplace_back(b->hash(), &b);

    for (const auto& header : r.headers) {
      const Hash256 hash = header.hash();
      env_.sync_commit_header(header, hash);
      cp_->header_payload_bytes += BlockHeader::kWireSize;
      cp_->headers_committed += 1;
      if (env_.sync_linked_headers()) cp_->tail_hash = hash;

      if (!env_.sync_wants_body(hash, header.height)) continue;
      bool committed = false;
      for (const auto& [bh, bptr] : by_hash) {
        if (bh != hash) continue;
        const auto& block = *bptr;
        if (block->merkle_ok()) {
          env_.sync_commit_body(block);
          cp_->body_payload_bytes += block->serialized_size();
          cp_->bodies_committed += 1;
          committed = true;
        }
        break;
      }
      if (!committed) {
        // Owed: either the flavour pulls bodies out of band (ICI), the
        // shard machinery reconstructs it (coded), or the riding body was
        // missing/corrupt and the listed-body path retries it.
        want_body(hash, header.height, /*checkpointed=*/true);
      }
    }

    cp_->next_height = r.from + r.count;
    cp_->ranges_committed += 1;
    r.headers.clear();
    r.headers.shrink_to_fit();
    r.bodies.clear();
    r.bodies.shrink_to_fit();
    ++commit_cursor_;
  }
}

void BulkPullSession::want_body(const Hash256& hash, std::uint64_t height,
                                bool checkpointed) {
  if (checkpointed) cp_->pending_bodies.push_back(PendingBody{hash, height});
  if (env_.sync_coded())
    start_shard_fetch(hash, height);
  else
    body_queue_.push_back(BodyWant{hash, height, 0});
}

// ---------------------------------------------------------------------------
// Listed-body pulls (replication flavours)
// ---------------------------------------------------------------------------

void BulkPullSession::issue_body_pull(std::uint32_t pull_id, sim::NodeId peer,
                                      std::vector<BodyWant> want) {
  auto req = std::make_shared<RangeRequestMsg>();
  req->session_id = id_;
  req->range_index = pull_id;
  req->mode = PullMode::kListedBodies;
  req->count = static_cast<std::uint32_t>(want.size());
  req->want.reserve(want.size());
  for (const auto& w : want) req->want.push_back(w.hash);

  BodyPull pull;
  pull.want = std::move(want);
  pull.peer = peer;
  pull.token = ++token_counter_;
  inflight_[peer] += 1;
  const std::uint64_t token = pull.token;
  body_pulls_.emplace(pull_id, std::move(pull));

  env_.sync_send(peer, std::move(req));
  arm(cfg_.range_timeout_us, [this, pull_id, token] { on_body_timeout(pull_id, token); });
}

void BulkPullSession::on_body_response(sim::NodeId /*from*/,
                                       const RangeResponseMsg& msg) {
  auto it = body_pulls_.find(msg.range_index);
  if (it == body_pulls_.end() || it->second.done) return;
  BodyPull& pull = it->second;
  pull.done = true;
  auto inflight = inflight_.find(pull.peer);
  if (inflight != inflight_.end() && inflight->second > 0) inflight->second -= 1;

  for (auto& want : pull.want) {
    bool committed = false;
    for (const auto& block : msg.bodies) {
      if (block->hash() != want.hash) continue;
      if (block->merkle_ok()) {
        env_.sync_commit_body(block);
        cp_->body_payload_bytes += block->serialized_size();
        cp_->bodies_committed += 1;
        erase_pending(want.hash);
        committed = true;
      }
      break;
    }
    if (!committed) requeue_body(want);
  }
  body_pulls_.erase(it);
  pump();
  check_done();
}

void BulkPullSession::on_body_timeout(std::uint32_t pull_id, std::uint64_t token) {
  auto it = body_pulls_.find(pull_id);
  if (it == body_pulls_.end() || it->second.done || it->second.token != token) return;
  BodyPull& pull = it->second;
  pull.done = true;
  auto inflight = inflight_.find(pull.peer);
  if (inflight != inflight_.end() && inflight->second > 0) inflight->second -= 1;
  cp_->ranges_retried += 1;
  for (auto& want : pull.want) requeue_body(want);
  body_pulls_.erase(it);
  pump();
  check_done();
}

void BulkPullSession::requeue_body(BodyWant want) {
  want.attempts += 1;
  if (want.attempts > cfg_.max_retries) {
    cp_->bodies_failed += 1;
    erase_pending(want.hash);
    return;
  }
  body_queue_.push_back(want);
}

// ---------------------------------------------------------------------------
// Coded shard fetches (delegated to the node's RS machinery)
// ---------------------------------------------------------------------------

void BulkPullSession::start_shard_fetch(const Hash256& hash, std::uint64_t height) {
  shards_outstanding_ += 1;
  std::weak_ptr<BulkPullSession> weak = weak_from_this();
  env_.sync_fetch_assigned_shard(
      hash, height, [weak, hash](std::shared_ptr<const Block> block) {
        auto self = weak.lock();
        if (!self || self->finished_) return;
        self->shards_outstanding_ -= 1;
        if (block) {
          self->cp_->body_payload_bytes += block->serialized_size();
          self->cp_->bodies_committed += 1;
          self->erase_pending(hash);
        } else {
          self->cp_->bodies_failed += 1;
          self->erase_pending(hash);
        }
        self->check_done();
      });
}

void BulkPullSession::erase_pending(const Hash256& hash) {
  auto& pending = cp_->pending_bodies;
  for (auto it = pending.begin(); it != pending.end(); ++it) {
    if (it->hash == hash) {
      pending.erase(it);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch + completion
// ---------------------------------------------------------------------------

void BulkPullSession::on_sync_message(sim::NodeId from, const SyncMessage& msg) {
  if (finished_ || msg.session_id != id_) return;
  switch (msg.sync_kind()) {
    case SyncMsgKind::kFrontierResponse:
      tally_bytes(from, msg);
      on_frontier_response(from, static_cast<const FrontierResponseMsg&>(msg));
      break;
    case SyncMsgKind::kRangeResponse: {
      tally_bytes(from, msg);
      const auto& resp = static_cast<const RangeResponseMsg&>(msg);
      if (resp.mode == PullMode::kListedBodies)
        on_body_response(from, resp);
      else
        on_range_response(from, resp);
      break;
    }
    case SyncMsgKind::kFrontierRequest:
    case SyncMsgKind::kRangeRequest:
      break;  // server-side kinds; nodes handle these outside the session
  }
}

void BulkPullSession::check_done() {
  if (finished_ || !frontier_done_) return;
  if (commit_cursor_ < ranges_.size()) return;
  if (!body_queue_.empty() || !body_pulls_.empty() || shards_outstanding_ > 0) return;
  finish(cp_->bodies_failed == 0);
}

void BulkPullSession::finish(bool ok) {
  if (finished_) return;
  finished_ = true;
  const sim::SimTime now = env_.sync_simulator().now();
  if (frontier_done_)
    obs::TraceSink::global().record_sim("sync/pull",
                                        static_cast<double>(now - pull_started_));
  cp_->complete = ok;

  SyncReport report;
  report.complete = ok;
  report.target_height = cp_->target_height;
  report.time_to_synced_us = now - cp_->started_at_us;
  report.frontier_us = cp_->frontier_us;
  report.bytes_downloaded = cp_->bytes_downloaded;
  report.header_payload_bytes = cp_->header_payload_bytes;
  report.body_payload_bytes = cp_->body_payload_bytes;
  report.headers_committed = cp_->headers_committed;
  report.bodies_committed = cp_->bodies_committed;
  report.bodies_failed = cp_->bodies_failed;
  report.ranges_committed = cp_->ranges_committed;
  report.ranges_retried = cp_->ranges_retried;
  report.resume_count = cp_->resume_count;
  report.peers_used = static_cast<std::uint32_t>(pull_peers_.size());
  report.by_peer = cp_->by_peer;
  std::sort(report.by_peer.begin(), report.by_peer.end(),
            [](const PeerBytes& a, const PeerBytes& b) { return a.peer < b.peer; });
  if (on_done_) on_done_(report);
}

}  // namespace ici::sync
