#include "sync/serve.h"

#include <algorithm>

namespace ici::sync {

std::uint64_t ServeThrottle::delay_for(std::uint32_t server, std::uint32_t peer,
                                       std::uint64_t bytes, std::uint64_t now) {
  if (rate_bps_ <= 0.0) return 0;
  const double cost_us = static_cast<double>(bytes) / rate_bps_ * 1e6;
  const std::uint64_t key = (std::uint64_t{server} << 32) | peer;
  const std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t& busy = busy_until_[key];
  const std::uint64_t start = std::max(busy, now);
  busy = start + static_cast<std::uint64_t>(cost_us);
  // The response leaves once its own serialization completes: even an idle
  // bucket delays by the transfer cost, and back-to-back responses queue
  // behind each other.
  return busy - now;
}

sim::MessagePtr serve_frontier(BlockReader store,
                               const FrontierRequestMsg& req,
                               std::uint64_t inventory, bool serves_shards) {
  auto resp = std::make_shared<FrontierResponseMsg>();
  resp->session_id = req.session_id;
  if (auto tip = store.tip_height()) {
    resp->has_tip = true;
    resp->tip_height = *tip;
  }
  resp->inventory = inventory;
  resp->serves_shards = serves_shards;
  return resp;
}

ServedRange serve_range(BlockReader store, const RangeRequestMsg& req) {
  auto resp = std::make_shared<RangeResponseMsg>();
  resp->session_id = req.session_id;
  resp->range_index = req.range_index;
  resp->mode = req.mode;
  resp->from_height = req.from_height;
  resp->count = req.count;
  std::uint64_t io_delay = 0;

  // Each fetch's io_delay_us is completion-relative: the backend's
  // serialized read clock already queues this read behind every earlier
  // read issued at the same sim instant, so the delay of the *last* cold
  // read is when all of them are off the media. Aggregate with max —
  // summing would charge the queueing twice (quadratic in batch size).
  if (req.mode == PullMode::kListedBodies) {
    resp->bodies.reserve(req.want.size());
    for (const auto& hash : req.want) {
      if (BlockRef ref = store.block_by_hash(hash)) {
        io_delay = std::max(io_delay, ref.io_delay_us);
        resp->bodies.push_back(ref.share());
      }
    }
    return {std::move(resp), io_delay};
  }

  resp->headers.reserve(req.count);
  for (std::uint64_t h = req.from_height; h < req.from_height + req.count; ++h) {
    auto header = store.header_at(h);
    if (!header) continue;
    resp->headers.push_back(*header);
    if (req.mode == PullMode::kHeadersAndBodies) {
      if (BlockRef ref = store.block_by_hash(header->hash())) {
        io_delay = std::max(io_delay, ref.io_delay_us);
        resp->bodies.push_back(ref.share());
      }
    }
  }
  return {std::move(resp), io_delay};
}

}  // namespace ici::sync
