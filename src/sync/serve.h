// Server side of the streaming bootstrap protocol — shared by every node
// flavour. A serving peer answers from its BlockStore: frontier summaries
// from the tip/occupancy, ranges from the height index, listed bodies from
// the body map. Stateless: each request produces exactly one response (or
// none if addressed wrong), so serving never perturbs the server's own
// protocol machine.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "storage/block_store.h"
#include "sync/messages.h"

namespace ici::sync {

/// Per-peer token bucket on the serve side of bulk sync. Each
/// (server, peer) pair gets a serialization clock: a response of B bytes
/// occupies the server's uplink to that peer for B / rate seconds of sim
/// time, and a response arriving while the clock is ahead of `now` is
/// deferred by the remainder. Stateless protocol on top is untouched — a
/// throttled server sends the same responses, just later — so a throttled
/// join resumes bit-identical (tests/test_sync.cpp).
///
/// Thread-safe: delay_for is called from serving nodes' event handlers,
/// which may run on concurrent event lanes (docs/THREADING.md). Each
/// (server, peer) pair is only ever touched from the server's own lane, so
/// the mutex just guards the map structure.
class ServeThrottle {
 public:
  explicit ServeThrottle(double rate_bps) : rate_bps_(rate_bps) {}

  [[nodiscard]] double rate_bps() const { return rate_bps_; }

  /// Sim-time delay (µs) to apply before sending `bytes` from `server` to
  /// `peer` at sim time `now`; advances the pair's busy-until clock. The
  /// delay covers the response's own serialization (B / rate) plus any
  /// backlog already on the clock, so with a rate configured every served
  /// response is delayed at least its transfer cost.
  [[nodiscard]] std::uint64_t delay_for(std::uint32_t server, std::uint32_t peer,
                                        std::uint64_t bytes, std::uint64_t now);

 private:
  double rate_bps_;
  std::mutex mu_;
  // (server << 32 | peer) -> sim time (µs) the pair's uplink is busy until.
  std::unordered_map<std::uint64_t, std::uint64_t> busy_until_;
};

/// Builds the frontier answer for `req`. `inventory` is the count of
/// bodies (replication) or shards (coded) the peer can serve;
/// `serves_shards` marks coded peers. Takes a read-only store view — the
/// serve side never writes.
[[nodiscard]] sim::MessagePtr serve_frontier(BlockReader store,
                                             const FrontierRequestMsg& req,
                                             std::uint64_t inventory,
                                             bool serves_shards);

/// A built range response plus the simulated IO cost of assembling it:
/// the completion delay of the batch's cold reads (each fetch's delay is
/// relative to now and already includes queueing behind the earlier reads
/// on the node's serialized read head, so the batch completes at the max;
/// always 0 with the in-memory backend). The caller defers the send by
/// `io_delay_us` so disk-backed serving pays for its reads in sim time.
struct ServedRange {
  sim::MessagePtr msg;
  std::uint64_t io_delay_us = 0;
};

/// Builds the range answer for `req`.
///  - kHeaders / kHeadersAndBodies: headers for every height in
///    [from, from+count) the store holds; in kHeadersAndBodies mode, every
///    held body in the range rides along.
///  - kListedBodies: exactly the wanted bodies the store holds.
[[nodiscard]] ServedRange serve_range(BlockReader store, const RangeRequestMsg& req);

}  // namespace ici::sync
