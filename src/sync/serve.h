// Server side of the streaming bootstrap protocol — shared by every node
// flavour. A serving peer answers from its BlockStore: frontier summaries
// from the tip/occupancy, ranges from the height index, listed bodies from
// the body map. Stateless: each request produces exactly one response (or
// none if addressed wrong), so serving never perturbs the server's own
// protocol machine.
#pragma once

#include <functional>

#include "storage/block_store.h"
#include "sync/messages.h"

namespace ici::sync {

/// Builds the frontier answer for `req`. `inventory` is the count of
/// bodies (replication) or shards (coded) the peer can serve;
/// `serves_shards` marks coded peers.
[[nodiscard]] sim::MessagePtr serve_frontier(const BlockStore& store,
                                             const FrontierRequestMsg& req,
                                             std::uint64_t inventory,
                                             bool serves_shards);

/// Builds the range answer for `req`.
///  - kHeaders / kHeadersAndBodies: headers for every height in
///    [from, from+count) the store holds; in kHeadersAndBodies mode, every
///    held body in the range rides along.
///  - kListedBodies: exactly the wanted bodies the store holds.
[[nodiscard]] sim::MessagePtr serve_range(const BlockStore& store,
                                          const RangeRequestMsg& req);

}  // namespace ici::sync
