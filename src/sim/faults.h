// Deterministic fault injection for the simulator core.
//
// A FaultPlan is a declarative, seed-driven description of everything that
// goes wrong in a run: crash/restart schedules per node (random sessions
// and/or scripted windows), message-level faults (drop / duplicate / extra
// delay, globally or per message class), and group-scoped network
// partitions. A FaultInjector executes the plan against a sim::Network; all
// randomness comes from one Rng seeded by the plan, so identical plans
// replay bit-identically (docs/FAULTS.md documents the contract).
//
// With no injector installed the network send path draws zero fault RNG
// values and behaves byte-identically to a fault-free build.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "sim/network.h"

namespace ici::sim {

/// Message-level fault rates. An empty type_name applies to every message
/// class; per-class entries in FaultPlan::per_type override the default for
/// their class entirely (rates are not additive).
struct MessageFaultRule {
  std::string type_name;  // MessageBase::type_name(); "" = all classes
  /// Probability a sent message is silently lost in flight (the sender is
  /// still charged: the bytes left its uplink).
  double drop_prob = 0.0;
  /// Probability the receiver sees the message twice (retransmission-style).
  double duplicate_prob = 0.0;
  /// When > 0, every delivery gains exponential extra latency of this mean.
  double extra_delay_mean_us = 0.0;

  [[nodiscard]] bool active() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 || extra_delay_mean_us > 0.0;
  }
};

/// A scripted crash: `node` goes down at `at_us` and (optionally) returns at
/// `restart_at_us` (0 = never restarts). Used by tests that need exact
/// casualty sets rather than random churn.
struct CrashWindow {
  NodeId node = kNoNode;
  SimTime at_us = 0;
  SimTime restart_at_us = 0;
};

/// A network partition: for [start_us, end_us) the member set is isolated
/// from the rest of the network (messages crossing the cut are dropped,
/// intra-group traffic flows). end_us = 0 means "until the end of the run".
/// Cluster-scoped partitions pass a cluster's member list here.
struct PartitionWindow {
  std::vector<NodeId> members;
  SimTime start_us = 0;
  SimTime end_us = 0;
};

struct FaultPlan {
  /// Seeds the injector's private Rng; the whole schedule derives from it.
  std::uint64_t seed = 1;

  /// Random crash/restart sessions, churn-style: each candidate node joins
  /// the crash set with this probability, then alternates exponential
  /// up/down sessions.
  double crash_fraction = 0.0;
  SimTime mean_uptime_us = 600'000'000;   // 10 min
  SimTime mean_downtime_us = 60'000'000;  // 1 min

  /// Class-independent message fault rates (type_name ignored).
  MessageFaultRule message;
  /// Per-class overrides keyed by MessageBase::type_name().
  std::vector<MessageFaultRule> per_type;

  /// Scripted crash windows (applied in addition to the random sessions).
  std::vector<CrashWindow> crashes;
  std::vector<PartitionWindow> partitions;

  [[nodiscard]] bool has_message_faults() const;
  /// True when the plan injects anything at all.
  [[nodiscard]] bool enabled() const;

  /// Parses a compact spec string — comma-separated key=value pairs:
  ///   seed=7,crash=0.3,up_s=600,down_s=60,drop=0.1,dup=0.02,delay_us=5000
  /// Unknown keys and out-of-range probabilities fail with a message in
  /// *error. An empty spec parses to a disabled plan. Scripted crashes,
  /// partitions, and per-class rules are programmatic-only.
  static bool parse(std::string_view spec, FaultPlan* out, std::string* error);

  /// Canonical spec string (round-trips through parse).
  [[nodiscard]] std::string describe() const;
};

/// Deterministic tallies of everything the injector did.
struct FaultStats {
  std::uint64_t msgs_dropped = 0;     // random drops + partition drops
  std::uint64_t msgs_duplicated = 0;
  std::uint64_t msgs_delayed = 0;
  std::uint64_t partition_drops = 0;  // subset of msgs_dropped
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
};

/// Executes a FaultPlan against a Network. Construction installs the
/// message-fault hook; start() arms the crash schedule. The injector must
/// outlive all scheduled simulation events that reference it (own it next
/// to the Simulator/Network it drives, as the network facades do).
class FaultInjector {
 public:
  using Callback = std::function<void(NodeId, bool /*online*/)>;

  FaultInjector(Network& net, FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Selects the random crash set from `candidates` and schedules their
  /// sessions plus every scripted CrashWindow. `on_change` fires after each
  /// network state flip (protocols hook repair here, exactly like churn).
  void start(const std::vector<NodeId>& candidates, Callback on_change);

  /// Verdict for one scheduled delivery. duplicate_delay_us < 0 means "no
  /// duplicate"; otherwise a second copy arrives that much after the first.
  struct SendVerdict {
    bool drop = false;
    double extra_delay_us = 0.0;
    double duplicate_delay_us = -1.0;
  };
  /// Called by Network::schedule_delivery for every non-loopback message.
  /// Safe from concurrent event lanes: randomness comes from the *sender's*
  /// private fault stream (draw order = the sender's send order, which the
  /// determinism contract fixes for every lane count) and tallies are
  /// atomic.
  SendVerdict on_send(NodeId from, NodeId to, const MessageBase& msg);

  /// Grows the per-sender fault streams to cover node ids < n. Called by
  /// Network::add_node (harness-only contexts); each stream is a pure
  /// function of (plan seed, sender id).
  void ensure_nodes(std::size_t n);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// Snapshot of the deterministic tallies.
  [[nodiscard]] FaultStats stats() const;
  /// Nodes the random schedule selected for crash/restart sessions.
  [[nodiscard]] const std::vector<NodeId>& crash_set() const { return crash_set_; }

 private:
  [[nodiscard]] const MessageFaultRule& rule_for(const char* type_name) const;
  [[nodiscard]] bool partitioned(NodeId a, NodeId b, SimTime now) const;
  void flip(NodeId id, bool online);
  void schedule_crash(NodeId id);
  void schedule_restart(NodeId id);

  Network& net_;
  FaultPlan plan_;
  /// Crash/restart schedule stream: drawn only from sequential contexts
  /// (start() + global flip events), so it stays shared.
  ici::Rng rng_;
  /// Per-sender message-fault streams, indexed by node id.
  std::vector<ici::Rng> msg_rngs_;
  Callback on_change_;
  std::vector<NodeId> crash_set_;
  struct AtomicStats {
    std::atomic<std::uint64_t> msgs_dropped{0};
    std::atomic<std::uint64_t> msgs_duplicated{0};
    std::atomic<std::uint64_t> msgs_delayed{0};
    std::atomic<std::uint64_t> partition_drops{0};
    std::atomic<std::uint64_t> crashes{0};
    std::atomic<std::uint64_t> restarts{0};
  };
  AtomicStats stats_;
};

}  // namespace ici::sim
