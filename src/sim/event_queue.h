// Discrete-event core: a simulated microsecond clock and a stable-ordered
// event queue. Everything time-dependent in the project (message delivery,
// block production, churn) runs on this.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>

namespace ici::sim {

/// Simulated time in microseconds since simulation start.
using SimTime = std::uint64_t;

constexpr SimTime operator""_us(unsigned long long v) { return static_cast<SimTime>(v); }
constexpr SimTime operator""_ms(unsigned long long v) { return static_cast<SimTime>(v) * 1000; }
constexpr SimTime operator""_s(unsigned long long v) {
  return static_cast<SimTime>(v) * 1'000'000;
}

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at`. Events at equal times run in
  /// insertion order (the sequence number breaks ties), which keeps whole
  /// simulations deterministic.
  void schedule_at(SimTime at, Action action);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] SimTime next_time() const;

  /// Pops and runs the earliest event; returns its time.
  SimTime run_next();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ici::sim
