// Discrete-event core: a simulated microsecond clock and a stable-ordered
// event queue. Everything time-dependent in the project (message delivery,
// block production, churn) runs on this.
//
// The queue is a deterministic calendar/ladder structure (docs/SIMULATOR.md):
//
//   near_   the *active* bucket, sorted descending by (at, seq) so the
//           earliest event sits at the back — the only part of the queue
//           that is ever ordered; popping is O(1).
//   wheel_  ring of kBucketCount unsorted buckets, each kBucketWidthUs of
//           sim time wide, covering the window starting at the active
//           bucket. Scheduling into the window is an O(1) vector append.
//   far_    min-heap fallback for events beyond the window horizon
//           (counted in Stats::far_events); drained into the wheel as the
//           window advances.
//
// The execution order is EXACTLY total order by (at, seq) — identical to
// the old single binary heap — because the active bucket is sorted by
// (at, seq) before anything pops from it, and window bookkeeping guarantees
// nothing outside near_ can precede its back (differential-tested against
// the reference heap queue in tests/test_event_queue_determinism.cpp).
// Events at equal times therefore run in insertion order, which keeps whole
// simulations deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event.h"

namespace ici::sim {

/// Simulated time in microseconds since simulation start.
using SimTime = std::uint64_t;

constexpr SimTime operator""_us(unsigned long long v) { return static_cast<SimTime>(v); }
constexpr SimTime operator""_ms(unsigned long long v) { return static_cast<SimTime>(v) * 1000; }
constexpr SimTime operator""_s(unsigned long long v) {
  return static_cast<SimTime>(v) * 1'000'000;
}

class EventQueue {
 public:
  using Event = InplaceEvent;

  /// Owner id for entries scheduled outside any node context (harness code,
  /// global timers). Sorts after every real node at equal (at, key) prefix
  /// because keys embed the owner in their high bits.
  static constexpr std::uint32_t kNoOwner = 0xFFFFFFFFu;

  /// Calendar geometry. ~1 ms buckets × 4096 slots ≈ 4.2 s of sim time in
  /// the O(1) window. Buckets are deliberately *narrower* than a typical
  /// message delivery (transfer + propagation, a few ms) so chained sends
  /// land in unsorted ring slots ahead of the active bucket — an O(1)
  /// append — instead of being push_heap'd into it; protocol timeouts sit
  /// near the horizon, and only multi-minute timers (churn, block cadence
  /// at the tail) take the far-heap fallback. See docs/SIMULATOR.md for
  /// the sizing rationale.
  static constexpr SimTime kBucketWidthUs = 1024;
  static constexpr std::size_t kBucketCount = 4096;  // power of two

  /// Per-slot capacity reserved up front (~16 entries ≈ 1.5 KiB/slot,
  /// <1 MiB/queue). Buckets that grow past it keep the larger capacity —
  /// prepare() recycles bucket storage by swapping, never shrinking — so
  /// steady-state scheduling stays allocation-free even when a round lands
  /// in a ring slot that never held an event before
  /// (tests/test_sim_alloc.cpp pins this down).
  static constexpr std::size_t kInitialSlotCapacity = 16;

  EventQueue() : wheel_(kBucketCount), occupied_(kBucketCount / 64, 0) {
    for (auto& slot : wheel_) slot.reserve(kInitialSlotCapacity);
    near_.reserve(kInitialSlotCapacity);  // swapped into the ring on first prepare()
  }

  /// Schedules `ev` at absolute time `at`. Events at equal times run in
  /// insertion order (the sequence number breaks ties). Legacy single-lane
  /// API: never mix with schedule_keyed() on the same queue instance — the
  /// auto-assigned sequence numbers and caller-provided keys share one tie
  /// break space.
  void schedule_at(SimTime at, Event ev) {
    const std::uint32_t idx = pool_acquire();
    *pool_at(idx) = std::move(ev);
    schedule_entry(at, next_seq_++, kNoOwner, idx);
  }

  /// Callable overload: constructs the closure directly in its pool slot,
  /// skipping the relocate a temporary Event would cost.
  template <typename F, typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Event>>>
  void schedule_at(SimTime at, F&& action) {
    const std::uint32_t idx = pool_acquire();
    pool_at(idx)->emplace(std::forward<F>(action));
    schedule_entry(at, next_seq_++, kNoOwner, idx);
  }

  /// Keyed variant used by the sharded Simulator: the caller supplies the
  /// tie-break key (unique per (at, key) across ALL lanes — Simulator packs
  /// (source node, per-source counter) into it) and the owning node, which
  /// run_next()/peek_next() hand back so the engine can establish the
  /// execution context before invoking the closure.
  void schedule_keyed(SimTime at, std::uint64_t key, std::uint32_t owner, Event ev) {
    const std::uint32_t idx = pool_acquire();
    *pool_at(idx) = std::move(ev);
    schedule_entry(at, key, owner, idx);
  }

  template <typename F, typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Event>>>
  void schedule_keyed(SimTime at, std::uint64_t key, std::uint32_t owner, F&& action) {
    const std::uint32_t idx = pool_acquire();
    pool_at(idx)->emplace(std::forward<F>(action));
    schedule_entry(at, key, owner, idx);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Earliest pending time. Lazily advances the calendar window (a mutating
  /// but order-neutral operation, hence non-const). Throws when empty.
  [[nodiscard]] SimTime next_time();

  /// Pops and runs the earliest event; returns its time.
  SimTime run_next();

  /// (at, key, owner) of the earliest pending event without popping it.
  /// Same window-advancing behaviour as next_time(). Throws when empty.
  struct NextRef {
    SimTime at;
    std::uint64_t key;
    std::uint32_t owner;
  };
  [[nodiscard]] NextRef peek_next();

  /// Structural instrumentation for the sim/core observability surface.
  /// Everything here is deterministic for a deterministic schedule sequence
  /// (no wall clock), so values may appear in bench artifacts.
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::uint64_t peak_pending = 0;
    /// Events past the calendar horizon that took the far-heap fallback.
    std::uint64_t far_events = 0;
    /// Events whose capture spilled the InplaceEvent inline buffer.
    std::uint64_t heap_fallback_events = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// Queue entry: trivially copyable on purpose. The event itself lives in
  /// the chunked pool (stable addresses, constructed once, invoked and
  /// destroyed in place); heap sifts and vector growth shuffle only these
  /// 24-byte PODs via memmove instead of running an indirect relocate call
  /// per 80-byte InplaceEvent — the dominant cost in the profile before
  /// this split.
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t pool_idx;
    std::uint32_t owner;  // executing node (kNoOwner for harness/global) — fills former padding
  };
  static_assert(std::is_trivially_copyable_v<Entry>);
  /// Ordering predicate: "a runs later than b" — an exact total order
  /// ((at, seq) pairs are unique). Sorting near_ with it puts the earliest
  /// event at the back; far_ uses it as a std::*_heap comparator (max-heap
  /// on "later" = min-heap on firing order).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Ensures near_/overflow_ hold the globally-earliest pending event
  /// (advances the window / drains far_ as needed). Precondition: size_ > 0.
  void prepare();
  /// True when the next event to run is overflow_.front() (else near_.back()).
  [[nodiscard]] bool pop_from_overflow() const;
  /// Pops far_ entries that fit the current window into their wheel slots.
  void drain_far();
  void push_wheel(Entry e);
  [[nodiscard]] std::uint64_t next_occupied_after(std::uint64_t bucket) const;

  /// Event pool: fixed-size chunks (never reallocated, so event addresses
  /// are stable) plus a free list of slot indices. Slots recycle, so the
  /// steady state allocates nothing.
  static constexpr std::size_t kChunkSize = 1024;  // events per chunk, power of two
  /// Pops a free pool slot (growing the pool by a chunk when none remain).
  [[nodiscard]] std::uint32_t pool_acquire();
  /// Files the already-populated slot `pool_idx` under (at, seq, owner).
  void schedule_entry(SimTime at, std::uint64_t seq, std::uint32_t owner,
                      std::uint32_t pool_idx);
  [[nodiscard]] Event* pool_at(std::uint32_t idx) {
    return &chunks_[idx / kChunkSize][idx % kChunkSize];
  }

  [[nodiscard]] static std::uint64_t bucket_of(SimTime at) { return at / kBucketWidthUs; }
  [[nodiscard]] SimTime window_end_us() const {
    return (cur_bucket_ + kBucketCount) * kBucketWidthUs;
  }

  std::vector<Entry> near_;      // active bucket, sorted desc (earliest at back)
  std::vector<Entry> overflow_;  // min-heap: late arrivals into buckets <= cur_bucket_
  std::vector<std::vector<Entry>> wheel_;  // ring slots, unsorted
  std::vector<std::uint64_t> occupied_;    // bitmap over ring slots
  std::vector<Entry> far_;                 // min-heap by (at, seq), beyond window
  std::vector<std::unique_ptr<Event[]>> chunks_;  // stable event storage
  std::vector<std::uint32_t> free_;               // recyclable pool slots
  std::uint64_t cur_bucket_ = 0;           // absolute index of the active bucket
  std::size_t wheel_count_ = 0;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  Stats stats_;
};

}  // namespace ici::sim
