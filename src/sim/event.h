// InplaceEvent: the move-only callable the discrete-event core stores per
// scheduled event. The old core type-erased through std::function, whose
// small-buffer optimisation (16 bytes on libstdc++) is far smaller than a
// delivery closure (`this` + two NodeIds + a shared_ptr + a size ≈ 40
// bytes), so every scheduled event paid a heap allocation. InplaceEvent
// reserves a 64-byte inline buffer — every closure the simulator schedules
// today fits — and type-erases through a static vtable, so the steady-state
// network path schedules and dispatches with zero heap traffic
// (tests/test_sim_alloc.cpp pins this down with a counting operator new).
//
// Captures that outgrow the buffer (or are not nothrow-move-constructible)
// still work: they fall back to a heap box, and the queue counts them
// (EventQueue::Stats::heap_fallback_events) so a regression shows up in the
// sim/core instrumentation instead of silently re-slowing the hot loop.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ici::sim {

class InplaceEvent {
 public:
  /// Inline capture budget. Sized for the largest closure on the hot paths
  /// (message delivery, protocol timeouts carrying a Hash256) with headroom.
  static constexpr std::size_t kInlineCapacity = 64;

  InplaceEvent() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceEvent> &&
                                        std::is_invocable_r_v<void, D&>>>
  InplaceEvent(F&& fn) {  // NOLINT(google-explicit-constructor): callable wrapper
    emplace(std::forward<F>(fn));
  }

  /// Replaces the held callable, constructing the new one directly in the
  /// buffer (the event pool uses this to skip a relocate per schedule).
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceEvent> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& fn) {
    reset();
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &kInlineVTable<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      vtable_ = &kBoxedVTable<D>;
    }
  }

  InplaceEvent(InplaceEvent&& other) noexcept { steal(other); }
  InplaceEvent& operator=(InplaceEvent&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InplaceEvent(const InplaceEvent&) = delete;
  InplaceEvent& operator=(const InplaceEvent&) = delete;

  ~InplaceEvent() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

  /// True when the capture spilled past the inline buffer into a heap box.
  [[nodiscard]] bool heap_backed() const noexcept { return vtable_ != nullptr && vtable_->boxed; }

  /// Invokes the callable; undefined on an empty/moved-from event.
  void operator()() { vtable_->invoke(storage_); }

  /// Invokes the callable, then destroys it, leaving the event empty — one
  /// indirect call instead of two on the dispatch hot path. The event is
  /// marked empty *before* the call, so the callable may safely re-emplace
  /// this slot's owner (the pool recycles it only afterwards).
  void invoke_and_reset() {
    const VTable* vt = vtable_;
    vtable_ = nullptr;
    vt->invoke_destroy(storage_);
  }

 private:
  struct VTable {
    void (*invoke)(void* self);
    /// Invoke followed by destroy, fused to save an indirect call.
    void (*invoke_destroy)(void* self);
    /// Move-constructs dst from src, then destroys src. noexcept by
    /// construction: inline storage requires nothrow-move, boxes memcpy a
    /// pointer.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* self) noexcept;
    bool boxed;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineCapacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr VTable kInlineVTable{
      [](void* self) { (*static_cast<D*>(self))(); },
      [](void* self) {
        D* d = static_cast<D*>(self);
        (*d)();
        d->~D();
      },
      [](void* src, void* dst) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* self) noexcept { static_cast<D*>(self)->~D(); },
      /*boxed=*/false,
  };

  template <typename D>
  static constexpr VTable kBoxedVTable{
      [](void* self) { (**static_cast<D**>(self))(); },
      [](void* self) {
        D* d = *static_cast<D**>(self);
        (*d)();
        delete d;
      },
      [](void* src, void* dst) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* self) noexcept { delete *static_cast<D**>(self); },
      /*boxed=*/true,
  };

  void steal(InplaceEvent& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(other.storage_, storage_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineCapacity];
  const VTable* vtable_ = nullptr;
};

}  // namespace ici::sim
