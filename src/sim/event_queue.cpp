#include "sim/event_queue.h"

#include <stdexcept>

namespace ici::sim {

void EventQueue::schedule_at(SimTime at, Action action) {
  heap_.push(Entry{at, next_seq_++, std::move(action)});
}

SimTime EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.top().at;
}

SimTime EventQueue::run_next() {
  if (heap_.empty()) throw std::logic_error("EventQueue::run_next: empty");
  // priority_queue::top returns const&; move via const_cast is safe because
  // the entry is popped immediately after.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  entry.action();
  return entry.at;
}

}  // namespace ici::sim
