#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace ici::sim {

std::uint32_t EventQueue::pool_acquire() {
  if (free_.empty()) {
    const auto base = static_cast<std::uint32_t>(chunks_.size() * kChunkSize);
    chunks_.push_back(std::make_unique<Event[]>(kChunkSize));
    for (std::uint32_t i = kChunkSize; i > 0; --i) free_.push_back(base + i - 1);
  }
  const std::uint32_t idx = free_.back();
  free_.pop_back();
  return idx;
}

void EventQueue::schedule_entry(SimTime at, std::uint64_t seq, std::uint32_t owner,
                                std::uint32_t pool_idx) {
  ++stats_.scheduled;
  if (pool_at(pool_idx)->heap_backed()) ++stats_.heap_fallback_events;
  Entry e{at, seq, pool_idx, owner};

  if (size_ == 0) {
    // Empty queue: re-anchor the window on this event so it lands in the
    // active bucket no matter how far the previous run drifted.
    cur_bucket_ = bucket_of(at);
  }

  const std::uint64_t b = bucket_of(at);
  if (b <= cur_bucket_) {
    // Active bucket — or scheduled behind the drain position (possible when
    // the queue is driven directly rather than through Simulator, which
    // clamps). Late arrivals go to the overflow min-heap rather than a
    // sorted insert into near_ (which would memmove O(bucket) per event
    // under same-time cascades); run_next() pops whichever of
    // near_.back() / overflow_.front() is earlier. Every wheel/far event
    // sits in a strictly later bucket, so that minimum is global.
    overflow_.push_back(e);
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  } else if (b < cur_bucket_ + kBucketCount) {
    push_wheel(e);
  } else {
    ++stats_.far_events;
    far_.push_back(e);
    std::push_heap(far_.begin(), far_.end(), Later{});
  }
  ++size_;
  if (size_ > stats_.peak_pending) stats_.peak_pending = size_;
}

void EventQueue::push_wheel(Entry e) {
  const std::uint64_t slot = bucket_of(e.at) % kBucketCount;
  wheel_[slot].push_back(e);
  occupied_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
  ++wheel_count_;
}

std::uint64_t EventQueue::next_occupied_after(std::uint64_t bucket) const {
  for (std::size_t off = 1; off < kBucketCount; ++off) {
    const std::uint64_t slot = (bucket + off) % kBucketCount;
    if (occupied_[slot >> 6] & (std::uint64_t{1} << (slot & 63))) return bucket + off;
  }
  throw std::logic_error("EventQueue: occupancy bitmap disagrees with wheel_count_");
}

void EventQueue::drain_far() {
  while (!far_.empty() && far_.front().at < window_end_us()) {
    std::pop_heap(far_.begin(), far_.end(), Later{});
    const Entry e = far_.back();
    far_.pop_back();
    push_wheel(e);
  }
}

void EventQueue::prepare() {
  // Window may only advance once both views of the active bucket drained;
  // overflow events live in buckets <= cur_bucket_, so they precede
  // everything in the wheel and far heap.
  if (!near_.empty() || !overflow_.empty()) return;
  // The active bucket drained; advance to the next populated one. Window
  // invariant: every wheel event lies in (cur_bucket_, cur_bucket_ +
  // kBucketCount), every far event at or past the window end — so the next
  // wheel bucket (when one exists) precedes everything in far_.
  if (wheel_count_ > 0) {
    cur_bucket_ = next_occupied_after(cur_bucket_);
  } else {
    cur_bucket_ = bucket_of(far_.front().at);
  }
  drain_far();

  std::vector<Entry>& slot = wheel_[cur_bucket_ % kBucketCount];
  std::swap(near_, slot);  // swap keeps both capacities alive for reuse
  occupied_[(cur_bucket_ % kBucketCount) >> 6] &=
      ~(std::uint64_t{1} << ((cur_bucket_ % kBucketCount) & 63));
  wheel_count_ -= near_.size();
  // Sort descending so run_next() is a pop_back: O(k log k) once per bucket
  // beats a per-pop heap sift — entries are 24-byte PODs, so the sort is
  // memmove-bound and branch-friendly.
  std::sort(near_.begin(), near_.end(), Later{});
}

bool EventQueue::pop_from_overflow() const {
  if (overflow_.empty()) return false;
  return near_.empty() || Later{}(near_.back(), overflow_.front());
}

SimTime EventQueue::next_time() {
  if (size_ == 0) throw std::logic_error("EventQueue::next_time: empty");
  prepare();
  return pop_from_overflow() ? overflow_.front().at : near_.back().at;
}

EventQueue::NextRef EventQueue::peek_next() {
  if (size_ == 0) throw std::logic_error("EventQueue::peek_next: empty");
  prepare();
  const Entry& e = pop_from_overflow() ? overflow_.front() : near_.back();
  return NextRef{e.at, e.seq, e.owner};
}

SimTime EventQueue::run_next() {
  if (size_ == 0) throw std::logic_error("EventQueue::run_next: empty");
  prepare();
  Entry entry;  // NOLINT(cppcoreguidelines-pro-type-member-init): set below
  if (pop_from_overflow()) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    entry = overflow_.back();
    overflow_.pop_back();
  } else {
    entry = near_.back();
    near_.pop_back();
  }
  --size_;
  ++stats_.executed;
  // Bucket entries fire back-to-back but their closures live scattered in
  // the pool; start pulling the next one's cache lines while this event
  // runs.
  if (!near_.empty()) __builtin_prefetch(pool_at(near_.back().pool_idx));
  // Invoke and destroy in place (one fused indirect call); the chunk
  // address stays valid even if the event schedules more events (chunks
  // are never reallocated). The slot is recycled only after the invoke,
  // so an executing event cannot have its own storage reused underneath
  // it.
  pool_at(entry.pool_idx)->invoke_and_reset();
  free_.push_back(entry.pool_idx);
  return entry.at;
}

}  // namespace ici::sim
