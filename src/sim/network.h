// Simulated point-to-point network.
//
// Latency model per message:
//   arrival = departure + size/uplink_bw + propagation(dist) + jitter
// where departure respects the sender's uplink serialization (back-to-back
// sends queue behind each other), so fan-out cost is modelled realistically:
// a full-replication node gossiping a 1 MiB block to 8 peers pays 8 transfer
// times on its uplink.
//
// Traffic accounting is byte-accurate per node and global; the experiment
// harnesses read it directly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace ici::sim {

class FaultInjector;

using NodeId = std::uint32_t;
constexpr NodeId kNoNode = UINT32_MAX;

/// 2-D network coordinate; Euclidean distance maps to propagation delay.
struct Coord {
  double x = 0.0;
  double y = 0.0;
};

[[nodiscard]] double distance(const Coord& a, const Coord& b);

/// Base class for wire messages. wire_size() is what the network charges;
/// subclasses report their realistic serialized size.
struct MessageBase {
  virtual ~MessageBase() = default;
  [[nodiscard]] virtual std::size_t wire_size() const = 0;
  [[nodiscard]] virtual const char* type_name() const = 0;
};

using MessagePtr = std::shared_ptr<const MessageBase>;

/// Protocol endpoint. Implementations downcast the message by type_name or
/// dynamic_cast.
class INode {
 public:
  virtual ~INode() = default;
  virtual void on_message(NodeId from, const MessagePtr& msg) = 0;
};

struct NetworkConfig {
  /// Propagation: delay_us = base + dist * us_per_unit.
  double base_propagation_us = 2'000;   // 2 ms floor
  double us_per_distance_unit = 1'000;  // coordinate space in "ms"
  /// Lognormal-ish jitter: gaussian stddev, clamped at 0.
  double jitter_stddev_us = 500;
  /// Default node uplink, bytes/second (20 Mbit/s ≈ typical paper setting).
  double default_uplink_bps = 2.5e6;
  /// Fixed per-message framing overhead added to wire_size.
  std::size_t per_message_overhead = 64;
  std::uint64_t seed = 7;
};

struct NodeTraffic {
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class Network {
 public:
  Network(Simulator& simulator, NetworkConfig cfg = {});

  /// Registers a node; returns its id (dense, starting at 0).
  NodeId add_node(INode* node, Coord coord, double uplink_bps = 0.0);

  /// Pre-sizes the slot table: a facade that knows its node count up front
  /// avoids the O(log N) reallocation copies of 100k+ NodeSlots.
  void reserve_nodes(std::size_t n) { nodes_.reserve(n); }

  /// Rebinds an id to a (new) endpoint — used when a node restarts.
  void rebind(NodeId id, INode* node);

  void set_online(NodeId id, bool online);
  [[nodiscard]] bool online(NodeId id) const;

  /// Sends msg from → to. Messages to offline nodes are charged to the
  /// sender and then dropped (the sender cannot know yet). Self-sends are
  /// delivered with zero network cost after a minimal delay.
  ///
  /// The const& overload copies the pointer exactly once (into the delivery
  /// event); the && overload moves it there, so a send of a moved-in
  /// message touches the shared_ptr control block zero times.
  void send(NodeId from, NodeId to, const MessagePtr& msg) { send_impl(from, to, MessagePtr(msg)); }
  void send(NodeId from, NodeId to, MessagePtr&& msg) { send_impl(from, to, std::move(msg)); }

  /// Convenience fan-out; uplink serialization makes order matter slightly,
  /// recipients are contacted in the given order. Wire size and transfer
  /// time are computed once for the whole fan-out, and each recipient costs
  /// one shared_ptr copy (one control-block touch), one jitter draw — in
  /// recipient order, exactly as repeated send() calls would draw — and one
  /// inline event.
  void multicast(NodeId from, const std::vector<NodeId>& to, const MessagePtr& msg);

  [[nodiscard]] const Coord& coord(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Round-trip-ish latency estimate between two nodes ignoring bandwidth —
  /// used by clustering quality metrics.
  [[nodiscard]] double propagation_us(NodeId a, NodeId b) const;

  [[nodiscard]] const NodeTraffic& traffic(NodeId id) const;
  [[nodiscard]] NodeTraffic total_traffic() const;
  void reset_traffic();

  [[nodiscard]] Simulator& simulator() { return sim_; }
  [[nodiscard]] const NetworkConfig& config() const { return cfg_; }

  /// Installs (or, with nullptr, removes) the fault-injection hook consulted
  /// on every scheduled non-loopback delivery (sim/faults.h). With no
  /// injector the send path draws zero fault RNG values and is bit-identical
  /// to a build without the hook. Owned by the caller; FaultInjector
  /// installs/uninstalls itself on construction/destruction.
  void install_faults(FaultInjector* faults) { faults_ = faults; }
  [[nodiscard]] FaultInjector* faults() const { return faults_; }

 private:
  void send_impl(NodeId from, NodeId to, MessagePtr msg);
  /// Computes departure/arrival for one recipient (advancing the sender's
  /// uplink and drawing the sender's jitter stream in call order) and
  /// schedules the delivery event on the *receiver's* lane. `transfer_us`
  /// is hoisted by the caller since it only depends on the sender and the
  /// wire size. `batch` (optional) coalesces same-lane mailbox appends
  /// during sharded fan-outs.
  void schedule_delivery(NodeId from, NodeId to, std::size_t wire, double transfer_us,
                         MessagePtr msg, Simulator::DeliveryBatch* batch = nullptr);
  void deliver(NodeId from, NodeId to, std::size_t wire, const MessagePtr& msg);

  /// Per-node slot. Hot fields are touched only from the owning node's
  /// event lane (uplink_busy_until + jitter_rng by its sends, traffic rx
  /// by its deliveries), or from sequential contexts (online flips), so
  /// sharded execution needs no per-slot locking. The jitter stream is
  /// per-*sender* — splitmix-derived from the network seed and node id —
  /// so draw order is the sender's send order, invariant under the lane
  /// count (the old shared stream would interleave nondeterministically).
  struct NodeSlot {
    INode* endpoint = nullptr;
    Coord coord;
    double uplink_bps = 0.0;
    bool online = true;
    SimTime uplink_busy_until = 0;
    NodeTraffic traffic;
    ici::Rng jitter_rng{0};
  };

  Simulator& sim_;
  NetworkConfig cfg_;
  FaultInjector* faults_ = nullptr;
  std::vector<NodeSlot> nodes_;
};

}  // namespace ici::sim
