#include "sim/shard.h"

namespace ici::sim {

namespace {
std::size_t g_default_shards = 1;
}  // namespace

void set_default_shards(std::size_t shards) { g_default_shards = shards == 0 ? 1 : shards; }

std::size_t default_shards() { return g_default_shards; }

}  // namespace ici::sim
