#include "sim/churn.h"

namespace ici::sim {

ChurnModel::ChurnModel(Network& net, ChurnConfig cfg) : net_(net), cfg_(cfg), rng_(cfg.seed) {}

void ChurnModel::start(const std::vector<NodeId>& candidates, Callback on_change) {
  on_change_ = std::move(on_change);
  for (NodeId id : candidates) {
    if (rng_.chance(cfg_.churn_fraction)) {
      churned_.push_back(id);
      schedule_down(id);
    }
  }
}

void ChurnModel::schedule_down(NodeId id) {
  const auto delay =
      static_cast<SimTime>(rng_.exponential(static_cast<double>(cfg_.mean_uptime_us)));
  net_.simulator().after(delay, [this, id] {
    if (!net_.online(id)) return;
    net_.set_online(id, false);
    if (on_change_) on_change_(id, false);
    schedule_up(id);
  });
}

void ChurnModel::schedule_up(NodeId id) {
  const auto delay =
      static_cast<SimTime>(rng_.exponential(static_cast<double>(cfg_.mean_downtime_us)));
  net_.simulator().after(delay, [this, id] {
    if (net_.online(id)) return;
    net_.set_online(id, true);
    if (on_change_) on_change_(id, true);
    schedule_down(id);
  });
}

}  // namespace ici::sim
