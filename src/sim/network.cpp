#include "sim/network.h"

#include <cmath>
#include <stdexcept>

#include "sim/faults.h"

namespace ici::sim {

double distance(const Coord& a, const Coord& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

Network::Network(Simulator& simulator, NetworkConfig cfg) : sim_(simulator), cfg_(cfg) {}

NodeId Network::add_node(INode* node, Coord coord, double uplink_bps) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  NodeSlot slot;
  slot.endpoint = node;
  slot.coord = coord;
  slot.uplink_bps = uplink_bps > 0.0 ? uplink_bps : cfg_.default_uplink_bps;
  // Golden-ratio stride decorrelates the per-sender streams while keeping
  // them a pure function of (network seed, node id) — joiner-order
  // independent and replayable.
  slot.jitter_rng = ici::Rng(cfg_.seed ^ (0x9E3779B97F4A7C15ULL * (std::uint64_t{id} + 1)));
  nodes_.push_back(slot);
  if (faults_ != nullptr) faults_->ensure_nodes(nodes_.size());
  return id;
}

void Network::rebind(NodeId id, INode* node) {
  if (id >= nodes_.size()) throw std::out_of_range("Network::rebind");
  nodes_[id].endpoint = node;
}

void Network::set_online(NodeId id, bool online) {
  if (id >= nodes_.size()) throw std::out_of_range("Network::set_online");
  nodes_[id].online = online;
}

bool Network::online(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Network::online");
  return nodes_[id].online;
}

void Network::deliver(NodeId from, NodeId to, std::size_t wire, const MessagePtr& msg) {
  NodeSlot& dst = nodes_[to];
  if (!dst.online || dst.endpoint == nullptr) return;  // dropped in flight
  dst.traffic.msgs_received += 1;
  dst.traffic.bytes_received += wire;
  dst.endpoint->on_message(from, msg);
}

void Network::schedule_delivery(NodeId from, NodeId to, std::size_t wire, double transfer_us,
                                MessagePtr msg, Simulator::DeliveryBatch* batch) {
  NodeSlot& src = nodes_[from];
  const SimTime start = std::max(sim_.now(), src.uplink_busy_until);
  const SimTime departure = start + static_cast<SimTime>(transfer_us);
  src.uplink_busy_until = departure;

  const double prop =
      cfg_.base_propagation_us + distance(src.coord, nodes_[to].coord) * cfg_.us_per_distance_unit;
  const double jitter = std::max(0.0, src.jitter_rng.normal(0.0, cfg_.jitter_stddev_us));
  SimTime arrival = departure + static_cast<SimTime>(prop + jitter);

  if (faults_ != nullptr) {
    // The injector rules on every delivery after the sender has paid for the
    // transmission: a dropped message still occupied the uplink. All fault
    // randomness comes from the injector's per-sender Rng, so the network
    // jitter stream above is identical with and without a plan installed.
    const FaultInjector::SendVerdict verdict = faults_->on_send(from, to, *msg);
    if (verdict.drop) return;  // charged to the sender, lost in flight
    arrival += static_cast<SimTime>(verdict.extra_delay_us);
    if (verdict.duplicate_delay_us >= 0.0) {
      sim_.schedule_for_batched(batch, to,
                                arrival + static_cast<SimTime>(verdict.duplicate_delay_us),
                                [this, from, to, wire, msg] { deliver(from, to, wire, msg); });
    }
  }

  // Deliveries execute as the receiver (its lane under sharding), so the
  // receive handler mutates receiver-owned state from exactly one thread.
  sim_.schedule_for_batched(batch, to, arrival, [this, from, to, wire, msg = std::move(msg)] {
    deliver(from, to, wire, msg);
  });
}

void Network::send_impl(NodeId from, NodeId to, MessagePtr msg) {
  if (from >= nodes_.size() || to >= nodes_.size())
    throw std::out_of_range("Network::send: unknown node");
  if (!msg) throw std::invalid_argument("Network::send: null message");
  NodeSlot& src = nodes_[from];
  if (!src.online) return;  // a dead node sends nothing

  const std::size_t wire = msg->wire_size() + cfg_.per_message_overhead;
  src.traffic.msgs_sent += 1;
  src.traffic.bytes_sent += wire;

  if (from == to) {
    // Loopback: no uplink charge beyond accounting, minimal scheduling
    // delay. Still routed as a delivery (same lane: sender == receiver).
    sim_.schedule_for(to, sim_.now() + 1,
                      [this, from, to, wire, msg = std::move(msg)] { deliver(from, to, wire, msg); });
    return;
  }

  const double transfer_us = static_cast<double>(wire) / src.uplink_bps * 1e6;
  schedule_delivery(from, to, wire, transfer_us, std::move(msg));
}

void Network::multicast(NodeId from, const std::vector<NodeId>& to, const MessagePtr& msg) {
  bool hoisted = false;
  std::size_t wire = 0;
  double transfer_us = 0.0;
  // Hoist the per-recipient lane resolution out of the loop: when the whole
  // fan-out lands on one (cross-)lane — the common case for intra-cluster
  // multicasts — the batch takes that lane's mailbox lock once at scope
  // exit instead of once per recipient. Inactive outside parallel windows.
  Simulator::DeliveryBatch batch(sim_, to, from);
  for (NodeId t : to) {
    if (t == from) continue;
    if (!hoisted) {
      // Validate and price the message once per fan-out, not per recipient
      // (the checks and wire_size/transfer math are recipient-invariant;
      // no event can flip `online` mid-loop). First-recipient laziness
      // keeps edge-case behavior identical to repeated send() calls.
      if (from >= nodes_.size()) throw std::out_of_range("Network::send: unknown node");
      if (!msg) throw std::invalid_argument("Network::send: null message");
      if (!nodes_[from].online) return;  // a dead node sends nothing
      wire = msg->wire_size() + cfg_.per_message_overhead;
      transfer_us = static_cast<double>(wire) / nodes_[from].uplink_bps * 1e6;
      hoisted = true;
    }
    if (t >= nodes_.size()) throw std::out_of_range("Network::send: unknown node");
    NodeSlot& src = nodes_[from];
    src.traffic.msgs_sent += 1;
    src.traffic.bytes_sent += wire;
    schedule_delivery(from, t, wire, transfer_us, MessagePtr(msg), &batch);
  }
}

const Coord& Network::coord(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Network::coord");
  return nodes_[id].coord;
}

double Network::propagation_us(NodeId a, NodeId b) const {
  if (a >= nodes_.size() || b >= nodes_.size())
    throw std::out_of_range("Network::propagation_us");
  return cfg_.base_propagation_us +
         distance(nodes_[a].coord, nodes_[b].coord) * cfg_.us_per_distance_unit;
}

const NodeTraffic& Network::traffic(NodeId id) const {
  if (id >= nodes_.size()) throw std::out_of_range("Network::traffic");
  return nodes_[id].traffic;
}

NodeTraffic Network::total_traffic() const {
  NodeTraffic total;
  for (const NodeSlot& n : nodes_) {
    total.msgs_sent += n.traffic.msgs_sent;
    total.msgs_received += n.traffic.msgs_received;
    total.bytes_sent += n.traffic.bytes_sent;
    total.bytes_received += n.traffic.bytes_received;
  }
  return total;
}

void Network::reset_traffic() {
  for (NodeSlot& n : nodes_) n.traffic = NodeTraffic{};
}

}  // namespace ici::sim
