// ReferenceEventQueue: the pre-overhaul event queue — std::function actions
// in a single std::priority_queue — kept verbatim as a TEST-ONLY oracle.
// The differential suite (tests/test_event_queue_determinism.cpp) runs
// millions of randomized schedules through this and the production
// EventQueue and asserts identical execution order, and bench/exp19_simcore
// measures the production core's speedup against it. Nothing outside tests
// and bench/ may include this header.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"  // SimTime

namespace ici::sim {

class ReferenceEventQueue {
 public:
  using Action = std::function<void()>;

  void schedule_at(SimTime at, Action action) {
    heap_.push(Entry{at, next_seq_++, std::move(action)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  [[nodiscard]] SimTime next_time() const {
    if (heap_.empty()) throw std::logic_error("ReferenceEventQueue::next_time: empty");
    return heap_.top().at;
  }

  SimTime run_next() {
    if (heap_.empty()) throw std::logic_error("ReferenceEventQueue::run_next: empty");
    // priority_queue::top returns const&; move via const_cast is safe because
    // the entry is popped immediately after.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    entry.action();
    return entry.at;
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ici::sim
