// Conservative lookahead derivation for the sharded simulator
// (null-message / LBTS-style synchronization, docs/SIMULATOR.md).
//
// Safety argument: every cross-lane event is a message delivery, and every
// delivery arrives at
//
//   departure + propagation + jitter + fault_delay
//
// where departure >= the sender's current sim time, propagation =
// base_propagation_us + distance * us_per_distance_unit >= base_propagation_us,
// jitter is clamped to >= 0 (sim/network.cpp), and fault extra-delay is >= 0.
// So any event executed inside a parallel window [m, B) can only schedule
// cross-lane work at times >= m + base_propagation_us. With
//
//   L = max(1, floor(base_propagation_us))   and   B <= n_min + L
//
// (n_min = earliest pending lane event, so every executed event has
// at >= n_min), all cross-lane arrivals land at >= n_min + L >= B — strictly
// after the window — which is what lets each lane drain [m, B) without
// peeking at its neighbours' mailboxes.
#pragma once

#include <algorithm>
#include <cmath>

#include "sim/event_queue.h"
#include "sim/network.h"

namespace ici::sim {

/// Lookahead window (µs) that is safe for `cfg`'s delivery model. Never
/// zero: even a degenerate base propagation of 0 keeps windows one tick
/// wide, which degrades to near-sequential rounds but stays correct.
[[nodiscard]] inline SimTime lookahead_from(const NetworkConfig& cfg) {
  const double base = std::floor(cfg.base_propagation_us);
  return std::max<SimTime>(1, base <= 0.0 ? 0 : static_cast<SimTime>(base));
}

}  // namespace ici::sim
