// Simulator: the clock + event queue facade protocols schedule against.
#pragma once

#include <type_traits>
#include <utility>

#include "sim/event_queue.h"

namespace ici::sim {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules relative to now. Accepts any void() callable; captures up to
  /// InplaceEvent::kInlineCapacity bytes stay allocation-free.
  template <typename F>
  void after(SimTime delay, F&& action) {
    queue_.schedule_at(now_ + delay, InplaceEvent(std::forward<F>(action)));
  }

  /// Schedules at an absolute time. Deadlines already in the past clamp to
  /// now — and are counted (late_events), because protocol logic scheduling
  /// into the past is almost always a bug the clamp would otherwise hide.
  template <typename F>
  void at(SimTime when, F&& action) {
    if (when < now_) {
      ++late_events_;
      when = now_;
    }
    queue_.schedule_at(when, InplaceEvent(std::forward<F>(action)));
  }

  /// Runs events until the queue drains or `max_events` fire. Returns the
  /// number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with time ≤ deadline; the clock ends at
  /// max(now, deadline) even if the queue drained early.
  std::size_t run_until(SimTime deadline);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Count of at() calls whose deadline was clamped to now. Deterministic;
  /// the network facades export it as the `sim.late_events` counter and the
  /// deterministic-network test asserts it stays zero.
  [[nodiscard]] std::uint64_t late_events() const { return late_events_; }

  /// Structural queue instrumentation (events executed, peak pending, far/
  /// heap fallbacks) — all deterministic, see EventQueue::Stats.
  [[nodiscard]] const EventQueue::Stats& queue_stats() const { return queue_.stats(); }

 private:
  SimTime now_ = 0;
  std::uint64_t late_events_ = 0;
  EventQueue queue_;
};

}  // namespace ici::sim
