// Simulator: the clock + event queue facade protocols schedule against.
#pragma once

#include "sim/event_queue.h"

namespace ici::sim {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules relative to now.
  void after(SimTime delay, EventQueue::Action action) {
    queue_.schedule_at(now_ + delay, std::move(action));
  }
  void at(SimTime when, EventQueue::Action action) {
    queue_.schedule_at(when < now_ ? now_ : when, std::move(action));
  }

  /// Runs events until the queue drains or `max_events` fire. Returns the
  /// number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with time ≤ deadline; the clock ends at
  /// max(now, deadline) even if the queue drained early.
  std::size_t run_until(SimTime deadline);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
};

}  // namespace ici::sim
