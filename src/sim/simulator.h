// Simulator: the clock + event queue facade protocols schedule against.
//
// Two execution modes share one deterministic contract (docs/SIMULATOR.md):
//
// * Unsharded (default): a single calendar queue, events run one at a time
//   in (at, key) order on the calling thread.
// * Sharded (configure_shards): nodes are partitioned into K event lanes,
//   each owning its own calendar queue. The engine alternates between
//   *parallel windows* — every lane drains its events with `at` below a
//   conservative LBTS-style bound on PR 2's thread pool (sim/lbts.h
//   derives the lookahead from the network latency floor) — and
//   *sequential rounds* that pop the globally-earliest event when a
//   global-queue (harness/churn) event gates the window. Cross-lane
//   scheduling during a window goes through per-lane mailboxes, drained
//   and (at, key)-sorted at the next barrier.
//
// Determinism tie-break: every event carries a u64 key packing
// (source node id << 32 | per-source counter); harness context uses source
// id 0xFFFFFFFF, which sorts last. Keys are drawn from the *scheduling*
// context in its execution order, so the key sequence — and therefore the
// total (at, key) order — is identical for every K. All sim metrics are
// bit-identical at --shards 1/2/8 (tests/test_shard_determinism.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace ici::sim {

class Simulator {
 public:
  /// Source/owner id for harness (non-node) scheduling contexts.
  static constexpr std::uint32_t kNoOwner = EventQueue::kNoOwner;
  /// "Not on any lane": unsharded mode, unmapped nodes, harness context.
  static constexpr std::uint32_t kNoLane = 0xFFFFFFFFu;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current sim time: the executing event's timestamp when called from
  /// inside an event (lanes advance independently during a parallel
  /// window), the engine clock otherwise.
  [[nodiscard]] SimTime now() const {
    return tls_ctx_.sim == this ? tls_ctx_.at : now_;
  }

  /// Schedules relative to now, owned by the *scheduling* node (the event
  /// runs on the current context's lane). Accepts any void() callable;
  /// captures up to InplaceEvent::kInlineCapacity bytes stay
  /// allocation-free.
  template <typename F>
  void after(SimTime delay, F&& action) {
    schedule_owned(context_node(), now() + delay, std::forward<F>(action));
  }

  /// Schedules at an absolute time on the current context's lane.
  /// Deadlines already in the past clamp to now — and are counted
  /// (late_events), because protocol logic scheduling into the past is
  /// almost always a bug the clamp would otherwise hide.
  template <typename F>
  void at(SimTime when, F&& action) {
    schedule_owned(context_node(), clamp_when(when), std::forward<F>(action));
  }

  /// Schedules an event that executes *as* `node` — on that node's lane
  /// once sharding is configured. All message deliveries route through
  /// this (sim/network.cpp) so receive handlers run where the receiver's
  /// state lives. Also tallies the lane-local / cross-lane message split.
  template <typename F>
  void schedule_for(std::uint32_t node, SimTime when, F&& action) {
    note_routing(node);
    schedule_owned(node, clamp_when(when), std::forward<F>(action));
  }

  /// Batches cross-lane deliveries that share one target lane so a
  /// multicast fan-out takes the target mailbox lock once instead of once
  /// per recipient (hot in exp04/exp09). Inactive — a plain pass-through
  /// to schedule_for — outside parallel windows or when recipients span
  /// lanes; see Network::multicast.
  class DeliveryBatch;
  template <typename F>
  void schedule_for_batched(DeliveryBatch* batch, std::uint32_t node, SimTime when, F&& action);

  /// Splits the simulation into `shards` event lanes with the given
  /// conservative lookahead (µs, from sim/lbts.h). Call once, before any
  /// event is scheduled; nodes are then assigned via set_node_lane.
  void configure_shards(std::size_t shards, SimTime lookahead);

  /// Maps `node` onto lane `lane` (< shard count). Unmapped nodes and the
  /// harness share the sequential global queue.
  void set_node_lane(std::uint32_t node, std::uint32_t lane);

  /// Runs at every window barrier (and once before the engine returns) on
  /// the coordinating thread, with no lane executing. Network facades use
  /// it to flush callbacks buffered during parallel windows in canonical
  /// (at, key) order.
  void set_barrier_hook(std::function<void()> hook) { barrier_hook_ = std::move(hook); }

  /// Runs events until the queue drains or `max_events` fire. Returns the
  /// number of events executed. With lanes configured the cap is honored
  /// at window granularity (facades always run unbounded).
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with time ≤ deadline; the clock ends at
  /// max(now, deadline) even if the queue drained early.
  std::size_t run_until(SimTime deadline);

  [[nodiscard]] bool idle() const { return pending() == 0; }
  [[nodiscard]] std::size_t pending() const;

  /// Count of at()/schedule_for() calls whose deadline was clamped to now.
  /// Deterministic and K-invariant; the network facades export it as the
  /// `sim.late_events` counter and the deterministic-network test asserts
  /// it stays zero.
  [[nodiscard]] std::uint64_t late_events() const {
    return late_events_.load(std::memory_order_relaxed);
  }

  /// Structural queue instrumentation summed across the global queue and
  /// all lanes. scheduled/executed/heap_fallbacks are K-invariant;
  /// peak_pending (sum of per-queue peaks) and far_events depend on the
  /// per-lane calendar geometry and are excluded from the cross-K
  /// bit-identity contract.
  [[nodiscard]] EventQueue::Stats queue_stats() const;

  /// Sharded-engine instrumentation (sim.shard_* counters). local/xshard
  /// tally schedule_for routing: a delivery is cross-shard when the
  /// scheduling context's lane differs from the receiver's.
  struct ShardStats {
    std::uint64_t shards = 1;
    std::uint64_t rounds = 0;    // engine rounds (windows + sequential steps)
    std::uint64_t barriers = 0;  // parallel windows joined (barrier waits)
    SimTime lookahead_us = 0;
    std::uint64_t local_msgs = 0;
    std::uint64_t xshard_msgs = 0;
  };
  [[nodiscard]] ShardStats shard_stats() const;

  /// True while lanes are draining a parallel window — facades use this to
  /// decide between applying a callback inline (sequential contexts) and
  /// buffering it for the barrier flush.
  [[nodiscard]] bool in_parallel_phase() const { return in_parallel_; }

  /// (at, key) of the event being executed on this thread ({now, 0} from
  /// harness context). Facades record it with buffered callbacks so the
  /// barrier flush can replay them in canonical order.
  struct EventRef {
    SimTime at;
    std::uint64_t key;
  };
  [[nodiscard]] EventRef current_event() const {
    if (tls_ctx_.sim == this) return EventRef{tls_ctx_.at, tls_ctx_.key};
    return EventRef{now_, 0};
  }

  /// Lane of the event being executed on this thread (kNoLane otherwise).
  [[nodiscard]] std::uint32_t current_lane() const {
    return tls_ctx_.sim == this ? tls_ctx_.lane : kNoLane;
  }

  /// Lane a node is mapped to (kNoLane when unsharded or unmapped).
  [[nodiscard]] std::uint32_t lane_of(std::uint32_t node) const { return lane_for(node); }

  [[nodiscard]] std::size_t shard_count() const {
    return lanes_.empty() ? 1 : lanes_.size();
  }

 private:
  /// Mailbox parcel: a fully-keyed event waiting to be filed into its
  /// target lane's queue at the next barrier.
  struct Parcel {
    SimTime at = 0;
    std::uint64_t key = 0;
    std::uint32_t owner = kNoOwner;
    InplaceEvent ev;
  };

  struct Lane {
    EventQueue q;
    std::mutex mu;              // guards inbox during parallel windows
    std::vector<Parcel> inbox;  // cross-lane arrivals, sorted at drain
    std::size_t round_executed = 0;
    SimTime round_last_at = 0;
  };

  /// Per-thread execution context. `sim` tags which simulator the context
  /// belongs to so nested/foreign pool work never misattributes.
  struct ExecContext {
    const void* sim = nullptr;
    std::uint32_t node = kNoOwner;
    std::uint32_t lane = kNoLane;
    SimTime at = 0;
    std::uint64_t key = 0;
  };
  static thread_local ExecContext tls_ctx_;

  static constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();

  [[nodiscard]] std::uint32_t context_node() const {
    return tls_ctx_.sim == this ? tls_ctx_.node : kNoOwner;
  }
  [[nodiscard]] std::uint32_t context_lane() const {
    return tls_ctx_.sim == this ? tls_ctx_.lane : kNoLane;
  }
  [[nodiscard]] std::uint32_t lane_for(std::uint32_t owner) const {
    if (owner == kNoOwner || owner >= lane_of_node_.size()) return kNoLane;
    return lane_of_node_[owner];
  }
  [[nodiscard]] SimTime clamp_when(SimTime when) {
    const SimTime now_t = now();
    if (when < now_t) {
      late_events_.fetch_add(1, std::memory_order_relaxed);
      when = now_t;
    }
    return when;
  }

  /// Grows the per-source key counter table. Growth is harness/sequential
  /// only — lanes index the table concurrently during windows, so a brand
  /// new source appearing mid-window is a facade wiring bug.
  void ensure_source(std::uint32_t src) {
    if (src == kNoOwner || src < src_seq_.size()) return;
    if (in_parallel_)
      throw std::logic_error("Simulator: unmapped event source during a parallel window");
    src_seq_.resize(src + 1, 0);
  }

  /// Next tie-break key for the scheduling context `src`: its per-source
  /// counter in the low 32 bits, `src` in the high bits. Counters advance
  /// in the source's execution order, which is K-invariant.
  [[nodiscard]] std::uint64_t draw_key(std::uint32_t src) {
    if (src == kNoOwner)
      return (std::uint64_t{kNoOwner} << 32) | (harness_seq_++ & 0xFFFFFFFFu);
    return (std::uint64_t{src} << 32) | (src_seq_[src]++ & 0xFFFFFFFFu);
  }

  void note_routing(std::uint32_t node) {
    if (lanes_.empty()) {
      local_msgs_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::uint32_t dst = lane_for(node);
    const std::uint32_t src = context_lane();
    if (src != kNoLane && dst != src) {
      xshard_msgs_.fetch_add(1, std::memory_order_relaxed);
    } else {
      local_msgs_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  template <typename F>
  void schedule_owned(std::uint32_t owner, SimTime when, F&& action) {
    const std::uint32_t src = context_node();
    ensure_source(src);
    ensure_source(owner);
    const std::uint64_t key = draw_key(src);
    const std::uint32_t lane = lane_for(owner);
    if (lane == kNoLane) {
      // Global (sequential) queue. Parallel-window handlers can never get
      // here: node contexts route to lanes, and harness code only runs
      // between windows — so a hit is a determinism bug, not a race.
      if (in_parallel_)
        throw std::logic_error("Simulator: global event scheduled during a parallel window");
      global_q_.schedule_keyed(when, key, owner, std::forward<F>(action));
      return;
    }
    if (in_parallel_ && lane != context_lane()) {
      Lane& target = *lanes_[lane];
      const std::lock_guard<std::mutex> lk(target.mu);
      Parcel& p = target.inbox.emplace_back();
      p.at = when;
      p.key = key;
      p.owner = owner;
      p.ev.emplace(std::forward<F>(action));
      return;
    }
    // Own lane (its thread), or any lane from a sequential context.
    lanes_[lane]->q.schedule_keyed(when, key, owner, std::forward<F>(action));
  }

  std::size_t run_unsharded(SimTime deadline, std::size_t max_events);
  std::size_t run_sharded(SimTime deadline, std::size_t max_events);
  /// Drains lane `lane` up to (excluding) `bound`; records per-round
  /// executed count / last timestamp for the coordinator.
  void run_lane(std::size_t lane, SimTime bound);
  /// Runs the parallel window [now_, bound) across all lanes; returns
  /// events executed and advances now_ to the last executed timestamp.
  std::size_t run_window(SimTime bound);
  /// Pops every event with at == m across the global queue and all lanes
  /// in ascending key order (the sequential phase). Returns count.
  std::size_t run_sequential_at(SimTime m, std::size_t budget);
  void drain_mailboxes();
  void flush_barrier() {
    if (barrier_hook_) barrier_hook_();
  }

  SimTime now_ = 0;
  std::atomic<std::uint64_t> late_events_{0};
  EventQueue global_q_;
  std::vector<std::unique_ptr<Lane>> lanes_;  // empty = unsharded mode
  std::vector<std::uint32_t> lane_of_node_;
  std::vector<std::uint64_t> src_seq_;  // per-source key counters
  std::uint64_t harness_seq_ = 0;
  SimTime lookahead_ = 1;
  bool in_parallel_ = false;  // pool dispatch/join orders accesses
  std::function<void()> barrier_hook_;
  std::uint64_t rounds_ = 0;
  std::uint64_t barriers_ = 0;
  std::atomic<std::uint64_t> local_msgs_{0};
  std::atomic<std::uint64_t> xshard_msgs_{0};
};

/// See Simulator::schedule_for_batched. Collects same-target-lane parcels
/// and appends them to the lane's inbox under a single lock on destruction.
class Simulator::DeliveryBatch {
 public:
  /// Arms the batch when (a) a parallel window is executing, (b) every
  /// recipient in `to` (minus `skip`, the sender) maps to one lane, and
  /// (c) that lane is not the current context's own (own-lane inserts are
  /// already lock-free).
  DeliveryBatch(Simulator& sim, const std::vector<std::uint32_t>& to, std::uint32_t skip);
  ~DeliveryBatch();
  DeliveryBatch(const DeliveryBatch&) = delete;
  DeliveryBatch& operator=(const DeliveryBatch&) = delete;

 private:
  friend class Simulator;
  Simulator& sim_;
  std::uint32_t lane_ = kNoLane;
  std::vector<Parcel> parcels_;
};

template <typename F>
void Simulator::schedule_for_batched(DeliveryBatch* batch, std::uint32_t node, SimTime when,
                                     F&& action) {
  if (batch != nullptr && batch->lane_ != kNoLane && lane_for(node) == batch->lane_) {
    note_routing(node);
    when = clamp_when(when);
    const std::uint32_t src = context_node();
    ensure_source(src);
    ensure_source(node);
    Parcel& p = batch->parcels_.emplace_back();
    p.at = when;
    p.key = draw_key(src);
    p.owner = node;
    p.ev.emplace(std::forward<F>(action));
    return;
  }
  schedule_for(node, when, std::forward<F>(action));
}

}  // namespace ici::sim
