// Process-wide default shard (event-lane) count, set once from the shared
// `--shards` bench flag before any network facade is constructed — the
// sharded-simulator analogue of ThreadPool::set_global_threads. Facade
// configs carry their own `shards` field (0 = use this default) so tests
// and sweeps can pin a specific K per instance.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ici::sim {

/// Sets the process default lane count (clamped to >= 1).
void set_default_shards(std::size_t shards);

/// Current process default lane count (>= 1; 1 until set).
[[nodiscard]] std::size_t default_shards();

/// Contiguous block lane map for strategies without cluster structure
/// (full replication): node ids [0, n) split into `shards` equal runs.
[[nodiscard]] inline std::uint32_t contiguous_lane(std::uint32_t node, std::size_t n,
                                                   std::size_t shards) {
  if (shards <= 1 || n == 0) return 0;
  const std::size_t lane = (static_cast<std::size_t>(node) * shards) / n;
  return static_cast<std::uint32_t>(lane < shards ? lane : shards - 1);
}

}  // namespace ici::sim
