// Node churn: alternating online/offline sessions with exponential
// durations. Experiment E07 (availability under churn) drives this.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "sim/network.h"

namespace ici::sim {

struct ChurnConfig {
  /// Mean online session length before a node goes down.
  SimTime mean_uptime_us = 600'000'000;  // 10 min
  /// Mean downtime before it returns.
  SimTime mean_downtime_us = 60'000'000;  // 1 min
  /// Fraction of nodes subject to churn (the rest are stable).
  double churn_fraction = 0.3;
  std::uint64_t seed = 99;
};

/// Drives set_online(id, …) on the network and invokes observer callbacks so
/// protocols can trigger repair.
class ChurnModel {
 public:
  ChurnModel(Network& net, ChurnConfig cfg);

  using Callback = std::function<void(NodeId, bool /*online*/)>;

  /// Selects the churned subset from `candidates` and schedules their first
  /// down events. `on_change` fires after the network state flips.
  void start(const std::vector<NodeId>& candidates, Callback on_change);

  [[nodiscard]] const std::vector<NodeId>& churned_nodes() const { return churned_; }

 private:
  void schedule_down(NodeId id);
  void schedule_up(NodeId id);

  Network& net_;
  ChurnConfig cfg_;
  ici::Rng rng_;
  Callback on_change_;
  std::vector<NodeId> churned_;
};

}  // namespace ici::sim
