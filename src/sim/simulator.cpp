#include "sim/simulator.h"

namespace ici::sim {

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (!queue_.empty() && n < max_events) {
    // Advance the clock before executing so the event observes its own time.
    now_ = queue_.next_time();
    queue_.run_next();
    ++n;
  }
  return n;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace ici::sim
