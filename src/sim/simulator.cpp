#include "sim/simulator.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace ici::sim {

thread_local Simulator::ExecContext Simulator::tls_ctx_{};

void Simulator::configure_shards(std::size_t shards, SimTime lookahead) {
  if (!lanes_.empty()) throw std::logic_error("Simulator: shards already configured");
  if (!global_q_.empty())
    throw std::logic_error("Simulator: configure_shards after events were scheduled");
  if (shards == 0) shards = 1;
  lanes_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) lanes_.push_back(std::make_unique<Lane>());
  lookahead_ = std::max<SimTime>(1, lookahead);
}

void Simulator::set_node_lane(std::uint32_t node, std::uint32_t lane) {
  if (lane >= lanes_.size()) throw std::logic_error("Simulator: lane out of range");
  if (node >= lane_of_node_.size()) lane_of_node_.resize(node + 1, kNoLane);
  lane_of_node_[node] = lane;
  ensure_source(node);
}

std::size_t Simulator::pending() const {
  std::size_t n = global_q_.size();
  for (const auto& lane : lanes_) n += lane->q.size() + lane->inbox.size();
  return n;
}

EventQueue::Stats Simulator::queue_stats() const {
  EventQueue::Stats s = global_q_.stats();
  for (const auto& lane : lanes_) {
    const EventQueue::Stats& ls = lane->q.stats();
    s.scheduled += ls.scheduled;
    s.executed += ls.executed;
    s.peak_pending += ls.peak_pending;
    s.far_events += ls.far_events;
    s.heap_fallback_events += ls.heap_fallback_events;
  }
  return s;
}

Simulator::ShardStats Simulator::shard_stats() const {
  ShardStats s;
  s.shards = shard_count();
  s.rounds = rounds_;
  s.barriers = barriers_;
  s.lookahead_us = lanes_.empty() ? 0 : lookahead_;
  s.local_msgs = local_msgs_.load(std::memory_order_relaxed);
  s.xshard_msgs = xshard_msgs_.load(std::memory_order_relaxed);
  return s;
}

std::size_t Simulator::run(std::size_t max_events) {
  if (lanes_.empty()) return run_unsharded(kNoDeadline, max_events);
  return run_sharded(kNoDeadline, max_events);
}

std::size_t Simulator::run_until(SimTime deadline) {
  const std::size_t n = lanes_.empty() ? run_unsharded(deadline, SIZE_MAX)
                                       : run_sharded(deadline, SIZE_MAX);
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Simulator::run_unsharded(SimTime deadline, std::size_t max_events) {
  std::size_t n = 0;
  while (!global_q_.empty() && n < max_events) {
    const EventQueue::NextRef nx = global_q_.peek_next();
    if (nx.at > deadline) break;
    // Advance the clock before executing so the event observes its own time.
    now_ = nx.at;
    tls_ctx_ = ExecContext{this, nx.owner, kNoLane, nx.at, nx.key};
    global_q_.run_next();
    tls_ctx_.sim = nullptr;
    ++n;
  }
  return n;
}

void Simulator::drain_mailboxes() {
  for (auto& lp : lanes_) {
    Lane& lane = *lp;
    const std::lock_guard<std::mutex> lk(lane.mu);
    if (lane.inbox.empty()) continue;
    // Insertion order into the inbox is whatever the source lanes raced
    // to; sort by (at, key) so the target queue's structural behaviour —
    // and with it every downstream tie-break — is canonical.
    std::sort(lane.inbox.begin(), lane.inbox.end(), [](const Parcel& a, const Parcel& b) {
      if (a.at != b.at) return a.at < b.at;
      return a.key < b.key;
    });
    for (Parcel& p : lane.inbox) lane.q.schedule_keyed(p.at, p.key, p.owner, std::move(p.ev));
    lane.inbox.clear();
  }
}

void Simulator::run_lane(std::size_t lane, SimTime bound) {
  Lane& l = *lanes_[lane];
  std::size_t n = 0;
  SimTime last = 0;
  while (!l.q.empty()) {
    const EventQueue::NextRef nx = l.q.peek_next();
    if (nx.at >= bound) break;
    tls_ctx_ = ExecContext{this, nx.owner, static_cast<std::uint32_t>(lane), nx.at, nx.key};
    l.q.run_next();
    last = nx.at;
    ++n;
  }
  tls_ctx_.sim = nullptr;
  l.round_executed = n;
  l.round_last_at = last;
}

std::size_t Simulator::run_window(SimTime bound) {
  const std::size_t k = lanes_.size();
  if (k == 1) {
    // Single lane: the window is inherently sequential — skip the pool
    // dispatch (and the in_parallel_ buffering/mailbox machinery, which a
    // lone lane never needs) so --shards 1 costs nothing over unsharded.
    run_lane(0, bound);
  } else {
    in_parallel_ = true;
    ThreadPool::global().parallel_for(0, k, 1, [this, bound](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) run_lane(i, bound);
    });
    in_parallel_ = false;
  }
  std::size_t n = 0;
  SimTime last = now_;
  for (const auto& lp : lanes_) {
    n += lp->round_executed;
    if (lp->round_executed > 0 && lp->round_last_at > last) last = lp->round_last_at;
  }
  now_ = last;
  return n;
}

std::size_t Simulator::run_sequential_at(SimTime m, std::size_t budget) {
  std::size_t n = 0;
  while (n < budget) {
    EventQueue* best = nullptr;
    std::uint64_t best_key = 0;
    std::uint32_t best_owner = kNoOwner;
    std::uint32_t best_lane = kNoLane;
    const auto consider = [&](EventQueue& q, std::uint32_t lane) {
      if (q.empty()) return;
      const EventQueue::NextRef nx = q.peek_next();
      if (nx.at != m) return;
      if (best == nullptr || nx.key < best_key) {
        best = &q;
        best_key = nx.key;
        best_owner = nx.owner;
        best_lane = lane;
      }
    };
    consider(global_q_, kNoLane);
    for (std::size_t i = 0; i < lanes_.size(); ++i)
      consider(lanes_[i]->q, static_cast<std::uint32_t>(i));
    if (best == nullptr) break;
    tls_ctx_ = ExecContext{this, best_owner, best_lane, m, best_key};
    best->run_next();
    tls_ctx_.sim = nullptr;
    ++n;
  }
  return n;
}

std::size_t Simulator::run_sharded(SimTime deadline, std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events) {
    drain_mailboxes();
    flush_barrier();

    SimTime n_min = kNoDeadline;
    for (const auto& lp : lanes_) {
      if (!lp->q.empty()) n_min = std::min(n_min, lp->q.next_time());
    }
    const SimTime g = global_q_.empty() ? kNoDeadline : global_q_.next_time();
    const SimTime m = std::min(n_min, g);
    if (m == kNoDeadline || m > deadline) break;
    ++rounds_;

    // Conservative window bound: lanes may safely run past n_min by the
    // lookahead (cross-lane arrivals land at >= n_min + L, sim/lbts.h),
    // but never past a pending global event (it must interleave in key
    // order) or the caller's deadline.
    SimTime bound = kNoDeadline;
    if (n_min != kNoDeadline && n_min <= kNoDeadline - lookahead_) bound = n_min + lookahead_;
    bound = std::min(bound, g);
    if (deadline != kNoDeadline) bound = std::min(bound, deadline + 1);

    if (m < bound) {
      ++barriers_;
      now_ = m;
      executed += run_window(bound);
    } else {
      // bound == m == g: a global event gates the window. Run everything
      // at exactly m — across the global queue and all lanes — in key
      // order on the coordinating thread.
      now_ = m;
      executed += run_sequential_at(m, max_events - executed);
    }
  }
  // Parcels scheduled past the deadline in the final window still need
  // filing (pending() counts them, a later run executes them), and the
  // facade's buffered callbacks must land before the harness reads state.
  drain_mailboxes();
  flush_barrier();
  return executed;
}

Simulator::DeliveryBatch::DeliveryBatch(Simulator& sim, const std::vector<std::uint32_t>& to,
                                        std::uint32_t skip)
    : sim_(sim) {
  if (!sim.in_parallel_ || sim.lanes_.empty()) return;
  std::uint32_t common = kNoLane;
  bool any = false;
  for (const std::uint32_t t : to) {
    if (t == skip) continue;
    const std::uint32_t lane = sim.lane_for(t);
    if (!any) {
      common = lane;
      any = true;
    } else if (lane != common) {
      return;  // recipients span lanes: stay on the per-recipient path
    }
  }
  if (!any || common == kNoLane || common == sim.context_lane()) return;
  lane_ = common;
  parcels_.reserve(to.size());
}

Simulator::DeliveryBatch::~DeliveryBatch() {
  if (lane_ == kNoLane || parcels_.empty()) return;
  Lane& target = *sim_.lanes_[lane_];
  const std::lock_guard<std::mutex> lk(target.mu);
  target.inbox.insert(target.inbox.end(), std::make_move_iterator(parcels_.begin()),
                      std::make_move_iterator(parcels_.end()));
}

}  // namespace ici::sim
