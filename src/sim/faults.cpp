#include "sim/faults.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace ici::sim {

namespace {

/// Mean gap between a delivery and its injected duplicate. Small on purpose:
/// a retransmitted datagram trails the original closely.
constexpr double kDuplicateGapMeanUs = 1'000.0;

bool parse_double(const std::string& value, double* out) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_u64(const std::string& value, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

bool FaultPlan::has_message_faults() const {
  if (message.active()) return true;
  return std::any_of(per_type.begin(), per_type.end(),
                     [](const MessageFaultRule& r) { return r.active(); });
}

bool FaultPlan::enabled() const {
  return crash_fraction > 0.0 || !crashes.empty() || !partitions.empty() ||
         has_message_faults();
}

bool FaultPlan::parse(std::string_view spec, FaultPlan* out, std::string* error) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;

    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) *error = "fault plan: expected key=value, got '" + std::string(item) + "'";
      return false;
    }
    const std::string key(item.substr(0, eq));
    const std::string value(item.substr(eq + 1));

    double d = 0.0;
    std::uint64_t u = 0;
    bool ok = true;
    if (key == "seed") {
      ok = parse_u64(value, &plan.seed);
    } else if (key == "crash") {
      ok = parse_double(value, &plan.crash_fraction);
    } else if (key == "up_s") {
      ok = parse_double(value, &d);
      if (ok) plan.mean_uptime_us = static_cast<SimTime>(d * 1e6);
    } else if (key == "down_s") {
      ok = parse_double(value, &d);
      if (ok) plan.mean_downtime_us = static_cast<SimTime>(d * 1e6);
    } else if (key == "drop") {
      ok = parse_double(value, &plan.message.drop_prob);
    } else if (key == "dup") {
      ok = parse_double(value, &plan.message.duplicate_prob);
    } else if (key == "delay_us") {
      ok = parse_u64(value, &u);
      if (ok) plan.message.extra_delay_mean_us = static_cast<double>(u);
    } else {
      if (error != nullptr) *error = "fault plan: unknown key '" + key + "'";
      return false;
    }
    if (!ok) {
      if (error != nullptr) *error = "fault plan: bad value for '" + key + "': " + value;
      return false;
    }
  }

  for (const double p :
       {plan.crash_fraction, plan.message.drop_prob, plan.message.duplicate_prob}) {
    if (p < 0.0 || p > 1.0) {
      if (error != nullptr) *error = "fault plan: probabilities must be in [0, 1]";
      return false;
    }
  }
  if (plan.message.extra_delay_mean_us < 0.0 || plan.mean_uptime_us == 0 ||
      plan.mean_downtime_us == 0) {
    if (error != nullptr) *error = "fault plan: durations must be positive";
    return false;
  }
  *out = std::move(plan);
  if (error != nullptr) error->clear();
  return true;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << ",crash=" << crash_fraction
     << ",up_s=" << static_cast<double>(mean_uptime_us) / 1e6
     << ",down_s=" << static_cast<double>(mean_downtime_us) / 1e6
     << ",drop=" << message.drop_prob << ",dup=" << message.duplicate_prob
     << ",delay_us=" << static_cast<std::uint64_t>(message.extra_delay_mean_us);
  return os.str();
}

FaultInjector::FaultInjector(Network& net, FaultPlan plan)
    : net_(net), plan_(std::move(plan)), rng_(plan_.seed) {
  ensure_nodes(net.node_count());
  net_.install_faults(this);
}

void FaultInjector::ensure_nodes(std::size_t n) {
  msg_rngs_.reserve(n);
  while (msg_rngs_.size() < n) {
    const auto id = static_cast<std::uint64_t>(msg_rngs_.size());
    msg_rngs_.emplace_back(plan_.seed ^ (0x9E3779B97F4A7C15ULL * (id + 1)));
  }
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.msgs_dropped = stats_.msgs_dropped.load(std::memory_order_relaxed);
  s.msgs_duplicated = stats_.msgs_duplicated.load(std::memory_order_relaxed);
  s.msgs_delayed = stats_.msgs_delayed.load(std::memory_order_relaxed);
  s.partition_drops = stats_.partition_drops.load(std::memory_order_relaxed);
  s.crashes = stats_.crashes.load(std::memory_order_relaxed);
  s.restarts = stats_.restarts.load(std::memory_order_relaxed);
  return s;
}

FaultInjector::~FaultInjector() {
  if (net_.faults() == this) net_.install_faults(nullptr);
}

void FaultInjector::start(const std::vector<NodeId>& candidates, Callback on_change) {
  on_change_ = std::move(on_change);
  for (NodeId id : candidates) {
    if (rng_.chance(plan_.crash_fraction)) {
      crash_set_.push_back(id);
      schedule_crash(id);
    }
  }
  // Scripted windows. Deadlines at or before "now" are pushed one tick out
  // so Simulator::at never clamps (late_events stays a bug detector).
  Simulator& sim = net_.simulator();
  for (const CrashWindow& w : plan_.crashes) {
    if (w.node == kNoNode) continue;
    sim.at(std::max(w.at_us, sim.now() + 1), [this, w] {
      if (!net_.online(w.node)) return;
      flip(w.node, false);
      if (w.restart_at_us > w.at_us) {
        net_.simulator().at(std::max(w.restart_at_us, net_.simulator().now() + 1),
                            [this, node = w.node] {
                              if (net_.online(node)) return;
                              flip(node, true);
                            });
      }
    });
  }
  // Partitions need no events: membership is checked against the clock on
  // every send, so an empty queue still drains to quiescence.
}

void FaultInjector::flip(NodeId id, bool online) {
  net_.set_online(id, online);
  if (online) {
    stats_.restarts.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.crashes.fetch_add(1, std::memory_order_relaxed);
  }
  if (on_change_) on_change_(id, online);
}

void FaultInjector::schedule_crash(NodeId id) {
  const auto delay =
      static_cast<SimTime>(rng_.exponential(static_cast<double>(plan_.mean_uptime_us)));
  net_.simulator().after(delay, [this, id] {
    if (!net_.online(id)) return;
    flip(id, false);
    schedule_restart(id);
  });
}

void FaultInjector::schedule_restart(NodeId id) {
  const auto delay =
      static_cast<SimTime>(rng_.exponential(static_cast<double>(plan_.mean_downtime_us)));
  net_.simulator().after(delay, [this, id] {
    if (net_.online(id)) return;
    flip(id, true);
    schedule_crash(id);
  });
}

const MessageFaultRule& FaultInjector::rule_for(const char* type_name) const {
  for (const MessageFaultRule& r : plan_.per_type) {
    if (std::strcmp(r.type_name.c_str(), type_name) == 0) return r;
  }
  return plan_.message;
}

bool FaultInjector::partitioned(NodeId a, NodeId b, SimTime now) const {
  for (const PartitionWindow& w : plan_.partitions) {
    if (now < w.start_us || (w.end_us != 0 && now >= w.end_us)) continue;
    const bool a_in = std::find(w.members.begin(), w.members.end(), a) != w.members.end();
    const bool b_in = std::find(w.members.begin(), w.members.end(), b) != w.members.end();
    if (a_in != b_in) return true;
  }
  return false;
}

FaultInjector::SendVerdict FaultInjector::on_send(NodeId from, NodeId to,
                                                  const MessageBase& msg) {
  SendVerdict v;
  // Partition drops are clock-driven, not random: they consume no RNG so
  // the random-fault stream stays aligned across plans that only differ in
  // partition windows.
  if (partitioned(from, to, net_.simulator().now())) {
    stats_.partition_drops.fetch_add(1, std::memory_order_relaxed);
    stats_.msgs_dropped.fetch_add(1, std::memory_order_relaxed);
    v.drop = true;
    return v;
  }
  const MessageFaultRule& rule = rule_for(msg.type_name());
  // The sender's private stream: only the sender's own handlers advance
  // it, in their (K-invariant) execution order.
  ici::Rng& rng = msg_rngs_[from];
  if (rule.drop_prob > 0.0 && rng.chance(rule.drop_prob)) {
    stats_.msgs_dropped.fetch_add(1, std::memory_order_relaxed);
    v.drop = true;
    return v;
  }
  if (rule.duplicate_prob > 0.0 && rng.chance(rule.duplicate_prob)) {
    stats_.msgs_duplicated.fetch_add(1, std::memory_order_relaxed);
    v.duplicate_delay_us = rng.exponential(kDuplicateGapMeanUs);
  }
  if (rule.extra_delay_mean_us > 0.0) {
    stats_.msgs_delayed.fetch_add(1, std::memory_order_relaxed);
    v.extra_delay_us = rng.exponential(rule.extra_delay_mean_us);
  }
  return v;
}

}  // namespace ici::sim
