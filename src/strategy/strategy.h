// core::Strategy — one interface over the four storage strategies the paper
// compares (ICIStrategy, full replication, RapidChain committees, pruned
// full replication), so experiment binaries iterate a registry instead of
// copy-pasting per-strategy rig blocks.
//
//   for (const std::string_view name : strategy_names()) {
//     auto s = make_strategy(name, cfg);
//     s->init(genesis);
//     s->preload(chain);            // or ingest(block) for live runs
//     report(s->storage(), s->availability());
//   }
//
// Contract: with faults disabled and matching configuration, every adapter
// produces sim metrics bit-identical to driving the underlying network
// facade directly (the adapters add no RNG draws and no extra events).
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "chain/chain.h"
#include "ici/retrieval.h"
#include "metrics/registry.h"
#include "sim/faults.h"
#include "storage/backend.h"
#include "storage/storage_meter.h"
#include "sync/checkpoint.h"

namespace ici::core {

/// Union of the per-strategy construction knobs. Each adapter reads the
/// fields that apply to it and ignores the rest; defaults mirror the
/// underlying facade defaults so an unconfigured field changes nothing.
struct StrategyConfig {
  std::size_t node_count = 64;
  /// Clusters (ICI) or committees (RapidChain). Ignored by fullrep/pruned.
  std::size_t groups = 8;
  /// Intra-cluster replication r (ICI only).
  std::size_t replication = 1;
  /// Recent-body window (pruned only).
  std::size_t pruned_window = 128;
  /// Full stateful validation at every node (fullrep only; storage-only
  /// experiments disable it to skip the N UTXO copies).
  bool fullrep_validate = true;
  /// Topology seed (node coordinates / peer graphs).
  std::uint64_t topology_seed = 1;
  /// Clustering/placement seed (ICI only).
  std::uint64_t placement_seed = 1;
  /// Retry-with-backoff passes for ICI fetches (E20 fault runs).
  std::size_t fetch_retry_rounds = 0;
  /// ICI repair may restore cluster-lost blocks from other clusters.
  bool cross_cluster_repair = false;
  /// Body-persistence backend per node (--store / --io-write-us /
  /// --io-read-us). Applies to the simulated strategies (ici, fullrep,
  /// rapidchain); pruned's closed-form model has no per-node backend.
  StoreConfig store;
};

/// Per-run message traffic totals (sum over all nodes).
struct StrategyTraffic {
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_sent = 0;
};

/// Result of joining a fresh node through the strategy's bootstrap path.
struct JoinReport {
  /// True when the numbers come from the streaming bulk-sync protocol
  /// (docs/BOOTSTRAP.md); false for closed-form accounting (pruned has no
  /// simulated network, so its download cost is computed, not measured).
  bool protocol = false;
  bool complete = false;
  std::uint64_t bytes_downloaded = 0;
  sim::SimTime elapsed_us = 0;
  std::size_t bodies_fetched = 0;
  /// Protocol-level detail (per-peer attribution, retries, resume count).
  /// Only meaningful when `protocol` is true.
  sync::SyncReport sync;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Builds the network and installs the genesis block. Call exactly once,
  /// before any other method.
  virtual void init(const Block& genesis) = 0;

  /// Message-accurate ingest of one new block (disseminate + settle).
  /// Returns the dissemination latency in µs (0 if it never completed).
  virtual sim::SimTime ingest(const Block& block) = 0;

  /// Static preload fast path: installs blocks 1..tip with no traffic.
  virtual void preload(const Chain& chain) = 0;

  /// Runs the simulation until quiescent (no-op for static strategies).
  virtual void settle() {}

  /// Advances the simulation by `us` of simulated time (events may remain).
  virtual void run_for(sim::SimTime us) { (void)us; }

  /// Installs a fault injector over the strategy's network. Static
  /// strategies ignore it (documented per adapter).
  virtual void start_faults(const sim::FaultPlan& plan) { (void)plan; }

  /// Starts the strategy's background repair process, if it has one, over
  /// the sim-time window [now, until_us].
  virtual void start_repair(sim::SimTime interval_us, sim::SimTime until_us) {
    (void)interval_us;
    (void)until_us;
  }

  /// Per-node storage distribution (bodies + headers as the strategy
  /// persists them).
  [[nodiscard]] virtual StorageSnapshot storage() const = 0;

  /// Cumulative message traffic (0 for static strategies).
  [[nodiscard]] virtual StrategyTraffic traffic() const { return {}; }
  virtual void reset_traffic() {}

  /// Fraction of committed blocks a client could fetch from SOME currently
  /// online holder (network-wide serveability).
  [[nodiscard]] virtual double availability() const = 0;

  /// Stricter locality metric where it exists (ICI: every cluster can serve
  /// the block). Defaults to availability().
  [[nodiscard]] virtual double cluster_availability() const { return availability(); }

  /// The strategy's metrics registry (repair/fault counters), if any.
  [[nodiscard]] virtual metrics::Registry* metrics_registry() { return nullptr; }

  /// Summed storage-backend event tallies across the fleet (store.* —
  /// docs/STORAGE.md). All-zero for strategies without per-node backends
  /// (pruned's closed-form model) and for mem-backed runs that never read.
  [[nodiscard]] virtual StoreCounters store_counters() const { return {}; }

  /// Joins a fresh node at `coord` through the strategy's bootstrap path —
  /// the streaming bulk-sync protocol for the simulated strategies, a
  /// closed-form byte count for pruned (JoinReport::protocol distinguishes
  /// the two).
  [[nodiscard]] virtual JoinReport bootstrap_join(sim::Coord coord,
                                                  const sync::SyncConfig& cfg) = 0;

  /// Random historical fetches through the strategy's retrieval path.
  /// Strategies without a fetch protocol return nullopt.
  virtual std::optional<RetrievalStats> probe_retrieval(std::size_t count,
                                                        std::uint64_t seed) {
    (void)count;
    (void)seed;
    return std::nullopt;
  }
};

/// Registry order is the presentation order used by the experiment tables:
/// fullrep, rapidchain, ici, pruned.
[[nodiscard]] std::vector<std::string_view> strategy_names();

/// Builds a strategy by registry name; throws std::invalid_argument on an
/// unknown name.
[[nodiscard]] std::unique_ptr<Strategy> make_strategy(std::string_view name,
                                                      const StrategyConfig& cfg);

}  // namespace ici::core
