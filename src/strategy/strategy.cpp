#include "strategy/strategy.h"

#include <stdexcept>
#include <unordered_set>

#include "baseline/fullrep.h"
#include "baseline/pruned.h"
#include "baseline/rapidchain.h"
#include "ici/bootstrap.h"
#include "ici/network.h"
#include "storage/store_metrics.h"

namespace ici::core {

namespace {

// -- ICIStrategy --------------------------------------------------------------

class IciStrategy final : public Strategy {
 public:
  explicit IciStrategy(const StrategyConfig& cfg) {
    IciNetworkConfig ncfg;
    ncfg.node_count = cfg.node_count;
    ncfg.seed = cfg.topology_seed;
    ncfg.ici.cluster_count = cfg.groups;
    ncfg.ici.replication = cfg.replication;
    ncfg.ici.seed = cfg.placement_seed;
    ncfg.ici.fetch_retry_rounds = cfg.fetch_retry_rounds;
    ncfg.ici.cross_cluster_repair = cfg.cross_cluster_repair;
    ncfg.store = cfg.store;
    net_ = std::make_unique<IciNetwork>(ncfg);
  }

  [[nodiscard]] std::string_view name() const override { return "ici"; }

  void init(const Block& genesis) override { net_->init_with_genesis(genesis); }

  sim::SimTime ingest(const Block& block) override {
    return net_->disseminate_and_settle(block);
  }

  void preload(const Chain& chain) override { net_->preload_chain(chain); }

  void settle() override { net_->settle(); }
  void run_for(sim::SimTime us) override { net_->run_for(us); }

  void start_faults(const sim::FaultPlan& plan) override { net_->start_faults(plan); }

  void start_repair(sim::SimTime interval_us, sim::SimTime until_us) override {
    net_->start_repair_daemon(interval_us, until_us);
  }

  [[nodiscard]] StorageSnapshot storage() const override {
    return StorageMeter::snapshot(net_->stores());
  }

  [[nodiscard]] StrategyTraffic traffic() const override {
    const sim::NodeTraffic t = net_->network().total_traffic();
    return {t.bytes_sent, t.msgs_sent};
  }
  void reset_traffic() override { net_->network().reset_traffic(); }

  [[nodiscard]] double availability() const override { return net_->network_availability(); }
  [[nodiscard]] double cluster_availability() const override { return net_->availability(); }

  [[nodiscard]] metrics::Registry* metrics_registry() override { return &net_->metrics(); }

  [[nodiscard]] StoreCounters store_counters() const override {
    return sum_store_counters(net_->stores());
  }

  [[nodiscard]] JoinReport bootstrap_join(sim::Coord coord,
                                          const sync::SyncConfig& cfg) override {
    const BootstrapReport r = Bootstrapper::join(*net_, coord, cfg);
    JoinReport out;
    out.protocol = true;
    out.complete = r.complete;
    out.bytes_downloaded = r.bytes_downloaded;
    out.elapsed_us = r.elapsed_us;
    out.bodies_fetched = r.bodies_fetched;
    out.sync = r.sync;
    return out;
  }

  std::optional<RetrievalStats> probe_retrieval(std::size_t count,
                                                std::uint64_t seed) override {
    // With a fault injector installed the crash schedule keeps the event
    // queue populated forever, so the driver must advance in bounded steps
    // instead of settling to quiescence.
    if (net_->faults() != nullptr) {
      return RetrievalDriver::run(*net_, count, seed, /*step_us=*/1'000'000,
                                  /*max_steps=*/600);
    }
    return RetrievalDriver::run(*net_, count, seed);
  }

 private:
  std::unique_ptr<IciNetwork> net_;
};

// -- full replication ---------------------------------------------------------

class FullRepStrategy final : public Strategy {
 public:
  explicit FullRepStrategy(const StrategyConfig& cfg) {
    baseline::FullRepConfig ncfg;
    ncfg.node_count = cfg.node_count;
    ncfg.validate = cfg.fullrep_validate;
    ncfg.seed = cfg.topology_seed;
    ncfg.store = cfg.store;
    net_ = std::make_unique<baseline::FullRepNetwork>(ncfg);
  }

  [[nodiscard]] std::string_view name() const override { return "fullrep"; }

  void init(const Block& genesis) override {
    net_->init_with_genesis(genesis);
    committed_.push_back(genesis.hash());
  }

  sim::SimTime ingest(const Block& block) override {
    committed_.push_back(block.hash());
    return net_->disseminate_and_settle(block);
  }

  void preload(const Chain& chain) override {
    net_->preload_chain(chain);
    for (std::size_t h = 1; h < chain.blocks().size(); ++h) {
      committed_.push_back(chain.blocks()[h].hash());
    }
  }

  void settle() override { net_->settle(); }
  void run_for(sim::SimTime us) override { net_->run_for(us); }
  void start_faults(const sim::FaultPlan& plan) override { net_->start_faults(plan); }

  [[nodiscard]] StorageSnapshot storage() const override {
    return StorageMeter::snapshot(net_->stores());
  }

  [[nodiscard]] StrategyTraffic traffic() const override {
    const sim::NodeTraffic t = net_->network().total_traffic();
    return {t.bytes_sent, t.msgs_sent};
  }
  void reset_traffic() override { net_->network().reset_traffic(); }

  [[nodiscard]] double availability() const override {
    if (committed_.empty()) return 1.0;
    std::size_t servable = 0;
    for (const Hash256& hash : committed_) {
      for (sim::NodeId id = 0; id < net_->node_count(); ++id) {
        if (net_->network().online(id) && net_->node(id).store().has_block(hash)) {
          ++servable;
          break;
        }
      }
    }
    return static_cast<double>(servable) / static_cast<double>(committed_.size());
  }

  [[nodiscard]] metrics::Registry* metrics_registry() override { return &net_->metrics(); }

  [[nodiscard]] StoreCounters store_counters() const override {
    return sum_store_counters(net_->stores());
  }

  [[nodiscard]] JoinReport bootstrap_join(sim::Coord coord,
                                          const sync::SyncConfig& cfg) override {
    const auto r = net_->bootstrap(coord, cfg);
    JoinReport out;
    out.protocol = true;
    out.complete = r.complete;
    out.bytes_downloaded = r.bytes_downloaded;
    out.elapsed_us = r.elapsed_us;
    out.bodies_fetched = r.bodies_fetched;
    out.sync = r.sync;
    return out;
  }

 private:
  std::unique_ptr<baseline::FullRepNetwork> net_;
  std::vector<Hash256> committed_;
};

// -- RapidChain ---------------------------------------------------------------

class RapidChainStrategy final : public Strategy {
 public:
  explicit RapidChainStrategy(const StrategyConfig& cfg) {
    baseline::RapidChainConfig ncfg;
    ncfg.node_count = cfg.node_count;
    ncfg.committee_count = cfg.groups;
    ncfg.seed = cfg.topology_seed;
    ncfg.store = cfg.store;
    net_ = std::make_unique<baseline::RapidChainNetwork>(ncfg);
  }

  [[nodiscard]] std::string_view name() const override { return "rapidchain"; }

  void init(const Block& genesis) override {
    net_->init_with_genesis(genesis);
    committed_.push_back(genesis.hash());
  }

  sim::SimTime ingest(const Block& block) override {
    committed_.push_back(block.hash());
    return net_->disseminate_and_settle(block);
  }

  void preload(const Chain& chain) override {
    net_->preload_chain(chain);
    for (std::size_t h = 1; h < chain.blocks().size(); ++h) {
      committed_.push_back(chain.blocks()[h].hash());
    }
  }

  void settle() override { net_->settle(); }
  void run_for(sim::SimTime us) override { net_->run_for(us); }
  void start_faults(const sim::FaultPlan& plan) override { net_->start_faults(plan); }

  [[nodiscard]] StorageSnapshot storage() const override {
    return StorageMeter::snapshot(net_->stores());
  }

  [[nodiscard]] StrategyTraffic traffic() const override {
    const sim::NodeTraffic t = net_->network().total_traffic();
    return {t.bytes_sent, t.msgs_sent};
  }
  void reset_traffic() override { net_->network().reset_traffic(); }

  [[nodiscard]] double availability() const override {
    if (committed_.empty()) return 1.0;
    std::size_t servable = 0;
    for (const Hash256& hash : committed_) {
      const std::size_t c = net_->committee_of_block(hash);
      for (sim::NodeId id : net_->committee_members(c)) {
        if (net_->network().online(id) && net_->node(id).store().has_block(hash)) {
          ++servable;
          break;
        }
      }
    }
    return static_cast<double>(servable) / static_cast<double>(committed_.size());
  }

  [[nodiscard]] metrics::Registry* metrics_registry() override { return &net_->metrics(); }

  [[nodiscard]] StoreCounters store_counters() const override {
    return sum_store_counters(net_->stores());
  }

  [[nodiscard]] JoinReport bootstrap_join(sim::Coord coord,
                                          const sync::SyncConfig& cfg) override {
    const auto r = net_->bootstrap(coord, cfg);
    JoinReport out;
    out.protocol = true;
    out.complete = r.complete;
    out.bytes_downloaded = r.bytes_downloaded;
    out.elapsed_us = r.elapsed_us;
    out.bodies_fetched = r.bodies_fetched;
    out.sync = r.sync;
    return out;
  }

 private:
  std::unique_ptr<baseline::RapidChainNetwork> net_;
  std::vector<Hash256> committed_;
};

// -- pruned -------------------------------------------------------------------

// Static storage policy — no simulated network, so faults and run_for are
// no-ops. Availability is the policy's intrinsic loss: the fraction of
// committed bodies still inside the retention window (crashes cannot make
// it worse because every node keeps the same window, and cannot be repaired
// because pruned history is gone network-wide).
class PrunedStrategy final : public Strategy {
 public:
  explicit PrunedStrategy(const StrategyConfig& cfg)
      : node_count_(cfg.node_count) {
    baseline::PrunedConfig ncfg;
    ncfg.node_count = cfg.node_count;
    ncfg.window = cfg.pruned_window;
    net_ = std::make_unique<baseline::PrunedNetwork>(ncfg);
  }

  [[nodiscard]] std::string_view name() const override { return "pruned"; }

  void init(const Block& genesis) override {
    net_->apply(std::make_shared<const Block>(genesis));
    committed_.push_back(genesis.hash());
  }

  sim::SimTime ingest(const Block& block) override {
    net_->apply(std::make_shared<const Block>(block));
    committed_.push_back(block.hash());
    return 0;
  }

  void preload(const Chain& chain) override {
    for (std::size_t h = 1; h < chain.blocks().size(); ++h) {
      const Block& block = chain.blocks()[h];
      net_->apply(std::make_shared<const Block>(block));
      committed_.push_back(block.hash());
    }
  }

  [[nodiscard]] StorageSnapshot storage() const override {
    StorageSnapshot snap;
    const std::uint64_t per_node = net_->per_node_bytes();
    snap.node_count = node_count_;
    snap.total_bytes = per_node * node_count_;
    snap.mean_bytes = static_cast<double>(per_node);
    snap.max_bytes = static_cast<double>(per_node);
    snap.min_bytes = static_cast<double>(per_node);
    snap.cv = 0.0;
    return snap;
  }

  [[nodiscard]] double availability() const override {
    if (committed_.empty()) return 1.0;
    std::size_t servable = 0;
    for (const Hash256& hash : committed_) {
      if (net_->node().store().has_block(hash)) ++servable;
    }
    return static_cast<double>(servable) / static_cast<double>(committed_.size());
  }

  [[nodiscard]] JoinReport bootstrap_join(sim::Coord /*coord*/,
                                          const sync::SyncConfig& /*cfg*/) override {
    // No simulated network: a pruned joiner's download is the closed-form
    // headers + UTXO snapshot + windowed bodies (instant by construction).
    JoinReport out;
    out.protocol = false;
    out.complete = true;
    out.bytes_downloaded = net_->bootstrap_bytes();
    out.elapsed_us = 0;
    out.bodies_fetched = net_->node().store().block_count();
    return out;
  }

 private:
  std::size_t node_count_;
  std::unique_ptr<baseline::PrunedNetwork> net_;
  std::vector<Hash256> committed_;
};

}  // namespace

std::vector<std::string_view> strategy_names() {
  return {"fullrep", "rapidchain", "ici", "pruned"};
}

std::unique_ptr<Strategy> make_strategy(std::string_view name, const StrategyConfig& cfg) {
  if (name == "ici") return std::make_unique<IciStrategy>(cfg);
  if (name == "fullrep") return std::make_unique<FullRepStrategy>(cfg);
  if (name == "rapidchain") return std::make_unique<RapidChainStrategy>(cfg);
  if (name == "pruned") return std::make_unique<PrunedStrategy>(cfg);
  throw std::invalid_argument("unknown strategy: " + std::string(name));
}

}  // namespace ici::core
