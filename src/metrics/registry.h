// Registry: string-keyed counters/distributions so protocol code can record
// metrics without plumbing individual objects through every call site.
// Deterministic iteration order (sorted keys) keeps experiment output stable.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "metrics/counters.h"

namespace ici::metrics {

class Registry {
 public:
  /// Finds or creates. Safe from concurrent event lanes: the find-or-create
  /// is mutex-guarded and std::map nodes are stable, so the returned
  /// references stay valid while other lanes insert. (Counter increments
  /// and Distribution adds are themselves thread-safe.)
  Counter& counter(const std::string& name);
  Distribution& distribution(const std::string& name);

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] const Distribution* find_distribution(const std::string& name) const;

  /// Whole-map views for report/emission code — harness contexts only (no
  /// lane may be executing while iterating).
  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Distribution>& distributions() const {
    return dists_;
  }

  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Distribution> dists_;
};

}  // namespace ici::metrics
