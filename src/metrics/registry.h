// Registry: string-keyed counters/distributions so protocol code can record
// metrics without plumbing individual objects through every call site.
// Deterministic iteration order (sorted keys) keeps experiment output stable.
#pragma once

#include <map>
#include <string>

#include "metrics/counters.h"

namespace ici::metrics {

class Registry {
 public:
  /// Finds or creates.
  Counter& counter(const std::string& name);
  Distribution& distribution(const std::string& name);

  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] const Distribution* find_distribution(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, Counter>& counters() const { return counters_; }
  [[nodiscard]] const std::map<std::string, Distribution>& distributions() const {
    return dists_;
  }

  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Distribution> dists_;
};

}  // namespace ici::metrics
