#include "metrics/memstats.h"

#include <cstdio>
#include <cstring>

namespace ici::metrics {

namespace {

/// Parses "<kB value>" out of a "/proc/self/status" line like
/// "VmRSS:      123456 kB". Returns 0 on any mismatch.
std::uint64_t parse_kb(const char* line) {
  std::uint64_t kb = 0;
  const char* p = std::strchr(line, ':');
  if (p == nullptr) return 0;
  if (std::sscanf(p + 1, "%llu", reinterpret_cast<unsigned long long*>(&kb)) != 1) return 0;
  return kb * 1024;
}

}  // namespace

MemoryStats read_memory_stats() {
  MemoryStats stats;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return stats;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      stats.rss_bytes = parse_kb(line);
    } else if (std::strncmp(line, "VmHWM:", 6) == 0) {
      stats.peak_rss_bytes = parse_kb(line);
    }
    if (stats.rss_bytes != 0 && stats.peak_rss_bytes != 0) break;
  }
  std::fclose(f);
  return stats;
}

}  // namespace ici::metrics
