#include "metrics/counters.h"

// Counter is header-only today; this TU anchors the library target.
namespace ici::metrics {}
