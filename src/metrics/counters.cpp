#include "metrics/counters.h"

namespace ici::metrics {

DistributionSummary summarize(const Distribution& dist) {
  DistributionSummary s;
  s.count = static_cast<std::uint64_t>(dist.count());
  if (s.count == 0) return s;
  s.total = dist.sum();
  s.p50 = dist.p50();
  s.p99 = dist.p99();
  return s;
}

}  // namespace ici::metrics
