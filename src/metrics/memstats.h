// Process memory statistics for bench reports.
//
// Reads VmRSS/VmHWM from /proc/self/status — zero syscall-free alternatives
// exist for peak RSS on Linux, and the benches only sample this once per
// report, so a small text parse is fine. On platforms without procfs the
// fields stay zero and callers skip the derived metrics.
#pragma once

#include <cstdint>

namespace ici::metrics {

struct MemoryStats {
  /// Current resident set size in bytes (VmRSS). 0 when unavailable.
  std::uint64_t rss_bytes = 0;
  /// Peak resident set size in bytes (VmHWM). 0 when unavailable.
  std::uint64_t peak_rss_bytes = 0;
};

[[nodiscard]] MemoryStats read_memory_stats();

}  // namespace ici::metrics
