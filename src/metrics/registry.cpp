#include "metrics/registry.h"

namespace ici::metrics {

Counter& Registry::counter(const std::string& name) { return counters_[name]; }

Distribution& Registry::distribution(const std::string& name) { return dists_[name]; }

std::uint64_t Registry::counter_value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

const Distribution* Registry::find_distribution(const std::string& name) const {
  const auto it = dists_.find(name);
  return it == dists_.end() ? nullptr : &it->second;
}

void Registry::reset() {
  counters_.clear();
  dists_.clear();
}

}  // namespace ici::metrics
