#include "metrics/registry.h"

namespace ici::metrics {

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lk(mu_);
  return counters_[name];
}

Distribution& Registry::distribution(const std::string& name) {
  const std::lock_guard<std::mutex> lk(mu_);
  return dists_[name];
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

const Distribution* Registry::find_distribution(const std::string& name) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = dists_.find(name);
  return it == dists_.end() ? nullptr : &it->second;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lk(mu_);
  counters_.clear();
  dists_.clear();
}

}  // namespace ici::metrics
