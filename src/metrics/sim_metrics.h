// Header-only glue mirroring the simulator-core counters into a protocol
// metrics registry. sim/ stays metrics-free by design; the network facades
// (IciNetwork, FullRepNetwork, RapidChainNetwork) call this after every
// settle so bench artifacts carry the event-core instrumentation. All
// mirrored values are deterministic (no wall clock), so they are safe in
// the bit-identical sim-metrics contract.
#pragma once

#include "metrics/registry.h"
#include "sim/faults.h"
#include "sim/simulator.h"

namespace ici::metrics {

/// Overwrites the "sim.*" counters in `reg` with the simulator's current
/// totals (cumulative since construction, so calling after each settle
/// keeps them monotone and idempotent).
inline void sync_sim_counters(Registry& reg, const sim::Simulator& sim) {
  const auto set = [&reg](const char* name, std::uint64_t v) {
    Counter& c = reg.counter(name);
    c.reset();
    c.inc(v);
  };
  const sim::EventQueue::Stats qs = sim.queue_stats();
  set("sim.late_events", sim.late_events());
  set("sim.events_executed", qs.executed);
  set("sim.peak_pending", qs.peak_pending);
  set("sim.far_events", qs.far_events);
  set("sim.event_heap_fallbacks", qs.heap_fallback_events);
  // Sharded-engine counters. shards/lookahead are configuration echoes;
  // rounds/barriers/local/xshard are deterministic per K but — like
  // peak_pending and far_events above — structurally K-dependent, so the
  // cross-K bit-identity contract excludes them
  // (tests/test_shard_determinism.cpp).
  const sim::Simulator::ShardStats ss = sim.shard_stats();
  set("sim.shards", ss.shards);
  set("sim.shard_rounds", ss.rounds);
  set("sim.shard_barriers", ss.barriers);
  set("sim.shard_lookahead_us", ss.lookahead_us);
  set("sim.shard_local_msgs", ss.local_msgs);
  set("sim.shard_xshard_msgs", ss.xshard_msgs);
}

/// Overwrites the "faults.*" counters in `reg` with the injector's tallies
/// (same idempotent overwrite semantics as sync_sim_counters). Facades call
/// this from settle() when a FaultInjector is installed, so BENCH artifacts
/// report exactly what the plan did to the run.
inline void sync_fault_counters(Registry& reg, const sim::FaultStats& stats) {
  const auto set = [&reg](const char* name, std::uint64_t v) {
    Counter& c = reg.counter(name);
    c.reset();
    c.inc(v);
  };
  set("faults.msgs_dropped", stats.msgs_dropped);
  set("faults.msgs_duplicated", stats.msgs_duplicated);
  set("faults.msgs_delayed", stats.msgs_delayed);
  set("faults.partition_drops", stats.partition_drops);
  set("faults.crashes", stats.crashes);
  set("faults.restarts", stats.restarts);
}

}  // namespace ici::metrics
