// Named counters and histograms for protocol-level metrics (events the
// network layer cannot see: verification outcomes, repair actions, retrieval
// hits/misses, end-to-end latencies).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/stats.h"

namespace ici::metrics {

/// Monotonic counter. Increments are relaxed atomics so protocol handlers
/// running on concurrent event lanes (sim sharding, docs/SIMULATOR.md) can
/// bump shared counters without locks; the summed value is order-free and
/// therefore deterministic for a deterministic event set.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void inc(std::uint64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Latency/size distribution; thin alias with a domain name.
using Distribution = ici::Histogram;

/// Compact export of a distribution for machine-readable reports: the four
/// fields every bench artifact carries per label (count/total/p50/p99).
struct DistributionSummary {
  std::uint64_t count = 0;
  double total = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

[[nodiscard]] DistributionSummary summarize(const Distribution& dist);

}  // namespace ici::metrics
