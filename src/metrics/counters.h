// Named counters and histograms for protocol-level metrics (events the
// network layer cannot see: verification outcomes, repair actions, retrieval
// hits/misses, end-to-end latencies).
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.h"

namespace ici::metrics {

class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Latency/size distribution; thin alias with a domain name.
using Distribution = ici::Histogram;

/// Compact export of a distribution for machine-readable reports: the four
/// fields every bench artifact carries per label (count/total/p50/p99).
struct DistributionSummary {
  std::uint64_t count = 0;
  double total = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

[[nodiscard]] DistributionSummary summarize(const Distribution& dist);

}  // namespace ici::metrics
