// Named counters and histograms for protocol-level metrics (events the
// network layer cannot see: verification outcomes, repair actions, retrieval
// hits/misses, end-to-end latencies).
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.h"

namespace ici::metrics {

class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Latency/size distribution; thin alias with a domain name.
using Distribution = ici::Histogram;

}  // namespace ici::metrics
