#include "crypto/hash.h"

#include <algorithm>
#include <stdexcept>

#include "common/hex.h"

namespace ici {

Hash256 Hash256::of(ByteSpan data) { return Hash256(Sha256::hash(data)); }

Hash256 Hash256::of2(ByteSpan data) { return Hash256(Sha256::hash2(data)); }

Hash256 Hash256::tagged(const std::string& tag, ByteSpan data) {
  Sha256 h;
  const std::uint8_t len = static_cast<std::uint8_t>(tag.size());
  h.update(ByteSpan(&len, 1));
  h.update(tag);
  h.update(data);
  return Hash256(h.final());
}

Hash256 Hash256::from_hex(const std::string& hex) {
  const Bytes raw = ici::from_hex(hex);
  if (raw.size() != 32) throw DecodeError("Hash256::from_hex: need 32 bytes");
  Digest256 d;
  std::copy(raw.begin(), raw.end(), d.begin());
  return Hash256(d);
}

bool Hash256::is_zero() const {
  return std::all_of(data_.begin(), data_.end(), [](std::uint8_t b) { return b == 0; });
}

std::string Hash256::hex() const { return to_hex(span()); }

std::string Hash256::short_hex() const { return hex().substr(0, 8); }

std::uint64_t Hash256::low64() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[i]) << (8 * i);
  return v;
}

}  // namespace ici
