#include "crypto/sha256.h"

#include <cstring>
#include <stdexcept>

#include "common/cpudispatch.h"

namespace ici {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

/// Big-endian 32-bit load: one aligned-agnostic memcpy plus a byteswap
/// instead of four shifted byte loads — the compiler folds this to a single
/// movbe/bswap where available.
inline std::uint32_t load_be32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return v;
#else
  return __builtin_bswap32(v);
#endif
}

}  // namespace

namespace detail {

void sha256_compress_scalar(std::uint32_t* state, const std::uint8_t* data,
                            std::size_t nblocks) {
  for (std::size_t blk = 0; blk < nblocks; ++blk, data += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(data + i * 4);
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

}  // namespace detail

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
             0x5be0cd19} {}

void Sha256::compress_blocks(const std::uint8_t* data, std::size_t nblocks) {
  if (nblocks == 0) return;
  if (cpu::sha256_native()) {
    detail::sha256_compress_shani(state_.data(), data, nblocks);
  } else {
    detail::sha256_compress_scalar(state_.data(), data, nblocks);
  }
}

Sha256& Sha256::update(ByteSpan data) {
  if (finalized_) throw std::logic_error("Sha256: update after final");
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buf_len_);
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off += take;
    if (buf_len_ == 64) {
      compress_blocks(buf_.data(), 1);
      buf_len_ = 0;
    }
  }
  // Whole blocks go down in one dispatched call so the SHA-NI kernel keeps
  // its state in registers across the message instead of per 64 bytes.
  const std::size_t whole = (data.size() - off) / 64;
  if (whole > 0) {
    compress_blocks(data.data() + off, whole);
    off += whole * 64;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
  return *this;
}

Sha256& Sha256::update(const std::string& s) {
  return update(ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

Digest256 Sha256::final() {
  if (finalized_) throw std::logic_error("Sha256: double final");
  finalized_ = true;

  const std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad[72] = {0x80};
  // Pad to 56 mod 64, then append the 64-bit big-endian bit length.
  const std::size_t pad_len = (buf_len_ < 56) ? (56 - buf_len_) : (120 - buf_len_);
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));

  finalized_ = false;  // allow the two internal updates
  update(ByteSpan(pad, pad_len));
  update(ByteSpan(len_be, 8));
  finalized_ = true;

  Digest256 out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Digest256 Sha256::hash(ByteSpan data) {
  Sha256 h;
  h.update(data);
  return h.final();
}

Digest256 Sha256::hash2(ByteSpan data) {
  const Digest256 first = hash(data);
  return hash(ByteSpan(first.data(), first.size()));
}

}  // namespace ici
