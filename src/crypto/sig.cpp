#include "crypto/sig.h"

#include <cstring>

#include "common/hex.h"

namespace ici {

namespace {

Digest256 tag_hash(const char* domain, const PublicKey& pub, ByteSpan message) {
  Sha256 h;
  h.update(std::string(domain));
  h.update(ByteSpan(pub.data(), pub.size()));
  h.update(message);
  return h.final();
}

}  // namespace

KeyPair KeyPair::from_seed(std::uint64_t seed) {
  KeyPair kp;
  ByteWriter w;
  w.str("ici/pk");
  w.u64(seed);
  const Digest256 pk = Sha256::hash(ByteSpan(w.bytes().data(), w.bytes().size()));
  std::memcpy(kp.pub.data(), pk.data(), 32);
  ByteWriter ws;
  ws.str("ici/seed");
  ws.u64(seed);
  const Digest256 sd = Sha256::hash(ByteSpan(ws.bytes().data(), ws.bytes().size()));
  std::memcpy(kp.seed.data(), sd.data(), 32);
  return kp;
}

Signature sign(const KeyPair& key, ByteSpan message) {
  const Digest256 t1 = tag_hash("ici/sig", key.pub, message);
  const Digest256 t2 = tag_hash("ici/sig2", key.pub, message);
  Signature sig;
  std::memcpy(sig.data(), t1.data(), 32);
  std::memcpy(sig.data() + 32, t2.data(), 32);
  return sig;
}

bool verify(const PublicKey& pub, ByteSpan message, const Signature& sig) {
  const Digest256 t1 = tag_hash("ici/sig", pub, message);
  const Digest256 t2 = tag_hash("ici/sig2", pub, message);
  return std::memcmp(sig.data(), t1.data(), 32) == 0 &&
         std::memcmp(sig.data() + 32, t2.data(), 32) == 0;
}

std::string key_id(const PublicKey& pub) {
  const Digest256 h = Sha256::hash(ByteSpan(pub.data(), pub.size()));
  return to_hex(ByteSpan(h.data(), 4));
}

}  // namespace ici
