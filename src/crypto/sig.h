// Simulated signature scheme.
//
// SUBSTITUTION (see DESIGN.md): the paper's network would use ECDSA. The
// experiments measure storage, communication, and latency — quantities that
// depend on signature *sizes* and *where* verification happens, not on
// unforgeability. This scheme keeps the wire format of a real scheme
// (32-byte public key, 64-byte signature) and is deterministic and
// verifiable in-simulation:
//
//   pubkey     = SHA256("ici/pk" || seed)
//   signature  = HMAC(pubkey-domain) — tag = SHA256("ici/sig" || pub || msg)
//                || first 32 bytes of SHA256("ici/sig2" || pub || msg)
//
// Anyone holding the public key can recompute and check the tag. It is NOT
// cryptographically secure (signing does not require the private seed) —
// acceptable because the simulator's honest/byzantine behaviour is scripted,
// not adversarially chosen. The interface is swap-ready for a real scheme.
#pragma once

#include <array>

#include "crypto/hash.h"

namespace ici {

using PublicKey = std::array<std::uint8_t, 32>;
using Signature = std::array<std::uint8_t, 64>;

struct KeyPair {
  PublicKey pub{};
  std::array<std::uint8_t, 32> seed{};

  /// Deterministic keypair from a 64-bit seed (node ids use this).
  [[nodiscard]] static KeyPair from_seed(std::uint64_t seed);
};

[[nodiscard]] Signature sign(const KeyPair& key, ByteSpan message);
[[nodiscard]] bool verify(const PublicKey& pub, ByteSpan message, const Signature& sig);

/// Stable short identifier of a public key (first 8 hex chars of its hash).
[[nodiscard]] std::string key_id(const PublicKey& pub);

}  // namespace ici
