// HMAC-SHA256 (RFC 2104). Used by the simulated signature scheme and by
// deterministic per-epoch seed derivation for cluster/committee formation.
#pragma once

#include "crypto/sha256.h"

namespace ici {

[[nodiscard]] Digest256 hmac_sha256(ByteSpan key, ByteSpan message);

}  // namespace ici
