// SHA-NI fast path for Sha256::compress_blocks: the two-lane
// `sha256rnds2` schedule, with `sha256msg1`/`sha256msg2` expanding the
// message block in-register (four 16-byte lanes MSG0..MSG3 rotate through
// the 64 rounds). Follows the layout popularized by Gulley et al.'s Intel
// reference: STATE0 holds {A,B,E,F}, STATE1 {C,D,G,H}, each round constant
// pair baked into an immediate vector.
//
// Dispatch (common/cpudispatch.h) only routes here when CPUID reports the
// SHA extensions, so the target attribute never executes unsupported
// instructions; builds for other architectures fall back to the scalar
// reference so the symbol always resolves.
#include "crypto/sha256.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace ici::detail {

__attribute__((target("sha,sse4.1,ssse3"))) void sha256_compress_shani(
    std::uint32_t* state, const std::uint8_t* data, std::size_t nblocks) {
  __m128i MSG, TMP, MSG0, MSG1, MSG2, MSG3, ABEF_SAVE, CDGH_SAVE;
  const __m128i MASK = _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack the FIPS a..h word order into the ABEF/CDGH lanes the
  // instructions expect.
  TMP = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i STATE1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  TMP = _mm_shuffle_epi32(TMP, 0xB1);                   // CDAB
  STATE1 = _mm_shuffle_epi32(STATE1, 0x1B);             // EFGH
  __m128i STATE0 = _mm_alignr_epi8(TMP, STATE1, 8);     // ABEF
  STATE1 = _mm_blend_epi16(STATE1, TMP, 0xF0);          // CDGH

  while (nblocks--) {
    ABEF_SAVE = STATE0;
    CDGH_SAVE = STATE1;

    // Rounds 0-3
    MSG = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    MSG0 = _mm_shuffle_epi8(MSG, MASK);
    MSG = _mm_add_epi32(MSG0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 4-7
    MSG1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    MSG1 = _mm_shuffle_epi8(MSG1, MASK);
    MSG = _mm_add_epi32(MSG1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 8-11
    MSG2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    MSG2 = _mm_shuffle_epi8(MSG2, MASK);
    MSG = _mm_add_epi32(MSG2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 12-15
    MSG3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    MSG3 = _mm_shuffle_epi8(MSG3, MASK);
    MSG = _mm_add_epi32(MSG3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 16-19
    MSG = _mm_add_epi32(MSG0, _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 20-23
    MSG = _mm_add_epi32(MSG1, _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 24-27
    MSG = _mm_add_epi32(MSG2, _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 28-31
    MSG = _mm_add_epi32(MSG3, _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 32-35
    MSG = _mm_add_epi32(MSG0, _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 36-39
    MSG = _mm_add_epi32(MSG1, _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG0 = _mm_sha256msg1_epu32(MSG0, MSG1);

    // Rounds 40-43
    MSG = _mm_add_epi32(MSG2, _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG1 = _mm_sha256msg1_epu32(MSG1, MSG2);

    // Rounds 44-47
    MSG = _mm_add_epi32(MSG3, _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG3, MSG2, 4);
    MSG0 = _mm_add_epi32(MSG0, TMP);
    MSG0 = _mm_sha256msg2_epu32(MSG0, MSG3);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG2 = _mm_sha256msg1_epu32(MSG2, MSG3);

    // Rounds 48-51
    MSG = _mm_add_epi32(MSG0, _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG0, MSG3, 4);
    MSG1 = _mm_add_epi32(MSG1, TMP);
    MSG1 = _mm_sha256msg2_epu32(MSG1, MSG0);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);
    MSG3 = _mm_sha256msg1_epu32(MSG3, MSG0);

    // Rounds 52-55
    MSG = _mm_add_epi32(MSG1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG1, MSG0, 4);
    MSG2 = _mm_add_epi32(MSG2, TMP);
    MSG2 = _mm_sha256msg2_epu32(MSG2, MSG1);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 56-59
    MSG = _mm_add_epi32(MSG2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    TMP = _mm_alignr_epi8(MSG2, MSG1, 4);
    MSG3 = _mm_add_epi32(MSG3, TMP);
    MSG3 = _mm_sha256msg2_epu32(MSG3, MSG2);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    // Rounds 60-63
    MSG = _mm_add_epi32(MSG3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    STATE1 = _mm_sha256rnds2_epu32(STATE1, STATE0, MSG);
    MSG = _mm_shuffle_epi32(MSG, 0x0E);
    STATE0 = _mm_sha256rnds2_epu32(STATE0, STATE1, MSG);

    STATE0 = _mm_add_epi32(STATE0, ABEF_SAVE);
    STATE1 = _mm_add_epi32(STATE1, CDGH_SAVE);
    data += 64;
  }

  // Back to the FIPS word order.
  TMP = _mm_shuffle_epi32(STATE0, 0x1B);        // FEBA
  STATE1 = _mm_shuffle_epi32(STATE1, 0xB1);     // DCHG
  STATE0 = _mm_blend_epi16(TMP, STATE1, 0xF0);  // DCBA
  STATE1 = _mm_alignr_epi8(STATE1, TMP, 8);     // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), STATE0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), STATE1);
}

}  // namespace ici::detail

#else  // non-x86: keep the symbol, defer to the scalar reference.

namespace ici::detail {

void sha256_compress_shani(std::uint32_t* state, const std::uint8_t* data,
                           std::size_t nblocks) {
  sha256_compress_scalar(state, data, nblocks);
}

}  // namespace ici::detail

#endif
