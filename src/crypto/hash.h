// Hash256: the 32-byte content-address value type used everywhere a block,
// transaction, node, or cluster needs a stable identity.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace ici {

class Hash256 {
 public:
  Hash256() = default;  // all-zero
  explicit Hash256(const Digest256& d) : data_(d) {}

  /// SHA-256 of arbitrary bytes.
  [[nodiscard]] static Hash256 of(ByteSpan data);
  /// Double SHA-256 — used for txids and block hashes.
  [[nodiscard]] static Hash256 of2(ByteSpan data);
  /// Domain-separated hash: SHA-256(tag_len || tag || data). Prevents
  /// cross-protocol collisions between e.g. rendezvous weights and txids.
  [[nodiscard]] static Hash256 tagged(const std::string& tag, ByteSpan data);
  /// Parses a 64-char hex string.
  [[nodiscard]] static Hash256 from_hex(const std::string& hex);

  [[nodiscard]] bool is_zero() const;
  [[nodiscard]] const Digest256& bytes() const { return data_; }
  [[nodiscard]] ByteSpan span() const { return ByteSpan(data_.data(), data_.size()); }
  [[nodiscard]] std::string hex() const;
  /// Short prefix for logs ("3fa9c1d2").
  [[nodiscard]] std::string short_hex() const;

  /// First 8 bytes interpreted little-endian — handy as a deterministic
  /// pseudo-random 64-bit value derived from the hash.
  [[nodiscard]] std::uint64_t low64() const;

  auto operator<=>(const Hash256&) const = default;

 private:
  Digest256 data_{};
};

struct Hash256Hasher {
  std::size_t operator()(const Hash256& h) const noexcept {
    return static_cast<std::size_t>(h.low64());
  }
};

}  // namespace ici
