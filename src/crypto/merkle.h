// Merkle tree over transaction ids (Bitcoin-style: odd levels duplicate the
// last node), with inclusion proofs. Collaborative verification in
// ICIStrategy relies on proofs so a cluster member can check its transaction
// slice against the block header without holding the whole body.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hash.h"

namespace ici {

/// One step of an inclusion proof: the sibling hash and which side it is on.
struct MerkleStep {
  Hash256 sibling;
  bool sibling_is_right = false;
};

using MerkleProof = std::vector<MerkleStep>;

class MerkleTree {
 public:
  /// Builds the full tree. An empty leaf set yields a zero root (the genesis
  /// convention for an empty block).
  explicit MerkleTree(std::vector<Hash256> leaves);

  [[nodiscard]] Hash256 root() const;
  [[nodiscard]] std::size_t leaf_count() const { return leaf_count_; }

  /// Proof for the leaf at `index`. Throws std::out_of_range when invalid.
  [[nodiscard]] MerkleProof prove(std::size_t index) const;

  /// Stateless verification: does `leaf` at `index` hash up to `root`?
  [[nodiscard]] static bool verify(const Hash256& leaf, std::size_t index,
                                   const MerkleProof& proof, const Hash256& root);

  /// Root without building a reusable tree (one pass, less memory).
  [[nodiscard]] static Hash256 compute_root(const std::vector<Hash256>& leaves);

 private:
  // levels_[0] = leaves, levels_.back() = {root}.
  std::vector<std::vector<Hash256>> levels_;
  std::size_t leaf_count_ = 0;
};

/// Parent = SHA256d(left || right). Exposed for tests.
[[nodiscard]] Hash256 merkle_parent(const Hash256& left, const Hash256& right);

}  // namespace ici
