#include "crypto/hmac.h"

#include <array>

namespace ici {

Digest256 hmac_sha256(ByteSpan key, ByteSpan message) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    const Digest256 kh = Sha256::hash(key);
    std::copy(kh.begin(), kh.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ByteSpan(ipad.data(), ipad.size()));
  inner.update(message);
  const Digest256 inner_digest = inner.final();

  Sha256 outer;
  outer.update(ByteSpan(opad.data(), opad.size()));
  outer.update(ByteSpan(inner_digest.data(), inner_digest.size()));
  return outer.final();
}

}  // namespace ici
