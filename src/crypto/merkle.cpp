#include "crypto/merkle.h"

#include <stdexcept>

#include "common/thread_pool.h"

namespace ici {

Hash256 merkle_parent(const Hash256& left, const Hash256& right) {
  Bytes cat;
  cat.reserve(64);
  cat.insert(cat.end(), left.bytes().begin(), left.bytes().end());
  cat.insert(cat.end(), right.bytes().begin(), right.bytes().end());
  return Hash256::of2(cat);
}

namespace {

// Pair hashes within one level are independent; levels with at least this
// many parents fan out across the pool (each parent slot written by exactly
// one chunk, so the level is byte-identical for any thread count). Smaller
// levels — including every level of typical in-simulation blocks — stay on
// the plain serial loop: a pair hash is ~2 compressions and dispatch would
// cost more than it saves.
constexpr std::size_t kParallelPairThreshold = 256;
constexpr std::size_t kPairGrain = 256;

std::vector<Hash256> next_level(const std::vector<Hash256>& level) {
  const std::size_t parents = (level.size() + 1) / 2;
  std::vector<Hash256> out;
  if (parents >= kParallelPairThreshold) {
    out.resize(parents);
    ThreadPool::global().parallel_for(
        0, parents, kPairGrain, [&](std::size_t begin, std::size_t end) {
          for (std::size_t p = begin; p < end; ++p) {
            const std::size_t i = 2 * p;
            const Hash256& left = level[i];
            const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
            out[p] = merkle_parent(left, right);
          }
        });
    return out;
  }
  out.reserve(parents);
  for (std::size_t i = 0; i < level.size(); i += 2) {
    const Hash256& left = level[i];
    const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
    out.push_back(merkle_parent(left, right));
  }
  return out;
}

}  // namespace

MerkleTree::MerkleTree(std::vector<Hash256> leaves) : leaf_count_(leaves.size()) {
  if (leaves.empty()) return;
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) levels_.push_back(next_level(levels_.back()));
}

Hash256 MerkleTree::root() const {
  if (levels_.empty()) return Hash256{};
  return levels_.back().front();
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count_) throw std::out_of_range("MerkleTree::prove: bad index");
  MerkleProof proof;
  std::size_t i = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sib = (i % 2 == 0) ? i + 1 : i - 1;
    // Odd-sized level: the last node is paired with itself.
    const Hash256& sibling = (sib < level.size()) ? level[sib] : level[i];
    proof.push_back({sibling, i % 2 == 0});
    i /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Hash256& leaf, std::size_t index, const MerkleProof& proof,
                        const Hash256& root) {
  Hash256 acc = leaf;
  std::size_t i = index;
  for (const MerkleStep& step : proof) {
    // The claimed index determines the side at every level; a proof whose
    // flags disagree is lying about the leaf's position.
    if (step.sibling_is_right != (i % 2 == 0)) return false;
    acc = step.sibling_is_right ? merkle_parent(acc, step.sibling)
                                : merkle_parent(step.sibling, acc);
    i /= 2;
  }
  return acc == root;
}

Hash256 MerkleTree::compute_root(const std::vector<Hash256>& leaves) {
  if (leaves.empty()) return Hash256{};
  std::vector<Hash256> level = leaves;
  while (level.size() > 1) level = next_level(level);
  return level.front();
}

}  // namespace ici
