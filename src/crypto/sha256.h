// SHA-256 (FIPS 180-4), implemented from scratch — the only hash used in the
// project. Incremental (init/update/final) and one-shot interfaces.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ici {

using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256. Usage: Sha256 h; h.update(a); h.update(b); h.final().
class Sha256 {
 public:
  Sha256();

  Sha256& update(ByteSpan data);
  Sha256& update(const std::string& s);

  /// Finalizes and returns the digest. The object must not be reused after.
  [[nodiscard]] Digest256 final();

  /// One-shot convenience.
  [[nodiscard]] static Digest256 hash(ByteSpan data);
  /// Double SHA-256 (Bitcoin-style object ids).
  [[nodiscard]] static Digest256 hash2(ByteSpan data);

 private:
  void compress_blocks(const std::uint8_t* data, std::size_t nblocks);

  std::array<std::uint32_t, 8> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
  bool finalized_ = false;
};

namespace detail {

/// Portable reference compression over `nblocks` consecutive 64-byte blocks.
void sha256_compress_scalar(std::uint32_t* state, const std::uint8_t* data,
                            std::size_t nblocks);

/// SHA-NI two-lane `sha256rnds2` kernel (sha256_shani.cpp). Only callable
/// when cpu::features().sha_ni is true — the non-x86 build of that TU
/// forwards to the scalar reference so the symbol always links.
void sha256_compress_shani(std::uint32_t* state, const std::uint8_t* data,
                           std::size_t nblocks);

}  // namespace detail

}  // namespace ici
