// Synthetic transaction workload and chain generation.
//
// WorkloadGenerator owns a set of simulated wallets, tracks their spendable
// outputs, and emits *valid, signed* transactions (random payer → random
// payee, occasional fan-out). ChainGenerator drives it to build a valid
// chain of any length — the ledger every experiment distributes.
//
// TrafficGenerator scales the same idea to ingest workloads (docs/INGEST.md):
// hundreds of thousands of simulated users submitting fee-bearing
// transactions over simulated time, with realistic skew — Zipf-popular hot
// accounts, bursty windows, a diurnal phase — all drawn from one explicitly
// seeded Rng so a run replays bit-identically at any --threads/--shards.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "chain/chain.h"
#include "chain/mempool.h"
#include "common/rng.h"

namespace ici {

struct WorkloadConfig {
  std::size_t wallet_count = 64;
  /// Outputs minted per wallet in genesis.
  std::size_t genesis_outputs_per_wallet = 4;
  Amount genesis_value_each = 1'000'000;
  /// Probability a generated tx has two outputs (payment + change).
  double change_output_prob = 0.8;
  /// Outputs confirmed in block h become spendable only at h + maturity.
  /// 0 = immediately spendable. Depth ≥ 1 lets dissemination pipelines
  /// validate block h+1 against state that block h cannot have changed.
  std::size_t maturity = 0;
  std::uint64_t seed = 42;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig cfg = {});

  /// The genesis block funding all wallets. Call once, feed to Chain.
  [[nodiscard]] Block make_genesis();

  /// Emits one valid signed transaction spending a random tracked output.
  /// Returns std::nullopt if no spendable outputs remain (never happens when
  /// confirm() is called for each produced block).
  [[nodiscard]] std::optional<Transaction> next_tx();

  /// Emits up to n transactions.
  [[nodiscard]] std::vector<Transaction> batch(std::size_t n);

  /// Informs the generator that a block confirmed: newly created outputs
  /// become spendable after cfg.maturity further confirmations.
  void confirm(const Block& block);

  [[nodiscard]] const std::vector<KeyPair>& wallets() const { return wallets_; }

 private:
  struct Spendable {
    OutPoint op;
    Amount value;
    std::size_t wallet;  // index into wallets_
  };

  WorkloadConfig cfg_;
  Rng rng_;
  std::vector<KeyPair> wallets_;
  std::vector<Spendable> spendable_;
  /// Outputs waiting out their maturity window; front matures first.
  std::deque<std::vector<Spendable>> maturing_;
  std::uint64_t tx_nonce_ = 1;
  bool genesis_made_ = false;
};

// -- client traffic -----------------------------------------------------------

struct TrafficConfig {
  /// Simulated submitting users. Account 0 is the most popular.
  std::size_t user_count = 10'000;
  /// Mean offered load in transactions per second of *simulated* time.
  double tx_rate_tps = 1'000.0;
  /// Zipf exponent for account popularity (payer and payee draws).
  /// 0 = uniform.
  double zipf_s = 1.1;
  /// The hottest accounts are funded like exchanges: extra genesis outputs
  /// so the head of the Zipf can actually sustain its share of the load.
  std::size_t hot_account_count = 16;
  std::size_t hot_account_outputs = 16;
  /// Genesis outputs per ordinary account.
  std::size_t outputs_per_user = 1;
  Amount genesis_value_each = 1'000'000;
  /// Per-tx fee drawn uniformly from [fee_min, fee_max] (0,0 = free txs),
  /// clamped below the spent value.
  Amount fee_min = 1;
  Amount fee_max = 64;
  /// Probability a tx carries a change output back to the payer.
  double change_output_prob = 0.5;
  /// Arrival modulation window: each window draws its burst state once and
  /// applies the diurnal factor at its start time.
  std::uint64_t window_us = 100'000;
  /// Per-window burst lottery: with probability burst_prob the window's
  /// rate is multiplied by burst_factor.
  double burst_prob = 0.05;
  double burst_factor = 4.0;
  /// Diurnal modulation: rate × (1 + amplitude · sin(2π·t/period)).
  double diurnal_amplitude = 0.3;
  std::uint64_t diurnal_period_us = 60'000'000;
  std::uint64_t seed = 42;
};

/// One client submission: a signed tx, its declared fee, and when (in
/// simulated µs) the client handed it to the acceptor.
struct TrafficArrival {
  std::uint64_t at_us = 0;
  Amount fee = 0;
  Transaction tx;
};

/// Skewed many-user traffic source. Pure harness code: arrivals are
/// *computed* for a time range (no simulator events), so the caller decides
/// how they interleave with the network simulation. Spent outputs are locked
/// until the pipeline reports their fate: confirm() credits a block's
/// outputs, release() refunds a dropped tx's inputs — without one of the
/// two, sustained overload would drain the spendable pool.
class TrafficGenerator {
 public:
  explicit TrafficGenerator(TrafficConfig cfg = {});

  /// The genesis block funding all users (hot accounts get
  /// hot_account_outputs each). Call once, feed to Chain + strategy init.
  [[nodiscard]] Block make_genesis();

  /// All arrivals in windows fully covered by (cursor, to_us]; advances the
  /// internal cursor. Arrivals are sorted by at_us (ties keep draw order).
  [[nodiscard]] std::vector<TrafficArrival> arrivals_until(std::uint64_t to_us);

  /// Credits a confirmed block's outputs to their owners and forgets its
  /// inputs. Call for every block the driver commits (incl. genesis).
  void confirm(const Block& block);

  /// Refunds the inputs of a tx the pipeline dropped (backpressure, dedup,
  /// prescreen, eviction): they become spendable again.
  void release(const Transaction& tx);

  [[nodiscard]] std::size_t user_count() const { return cfg_.user_count; }
  /// Txs emitted so far (arrivals actually produced).
  [[nodiscard]] std::uint64_t generated() const { return generated_; }
  /// Arrival slots skipped because no account had a spendable output.
  [[nodiscard]] std::uint64_t skipped_no_funds() const { return skipped_no_funds_; }

 private:
  struct Spendable {
    OutPoint op;
    Amount value = 0;
  };
  struct Pending {
    std::uint32_t user = 0;
    Amount value = 0;
  };
  struct PubHasher {
    std::size_t operator()(const PublicKey& pub) const {
      std::uint64_t x = 0;
      for (int i = 0; i < 8; ++i) x = (x << 8) | pub[static_cast<std::size_t>(i)];
      return static_cast<std::size_t>(x * 0x9E3779B97F4A7C15ULL);
    }
  };

  /// Zipf-weighted account index (inverse-CDF over the popularity table).
  [[nodiscard]] std::size_t pick_account();
  /// A funded payer: Zipf draws with a deterministic linear-scan fallback.
  [[nodiscard]] bool pick_payer(std::size_t* out);
  [[nodiscard]] TrafficArrival make_arrival(std::uint64_t at_us);

  TrafficConfig cfg_;
  Rng rng_;
  std::vector<KeyPair> users_;
  std::unordered_map<PublicKey, std::uint32_t, PubHasher> by_pub_;
  /// Per-user spendable outputs (LIFO within a user).
  std::vector<std::vector<Spendable>> spendable_;
  /// Outputs locked by in-flight txs, keyed by spent outpoint.
  std::unordered_map<OutPoint, Pending, OutPointHasher> pending_;
  /// Cumulative Zipf weights; empty when zipf_s == 0 (uniform).
  std::vector<double> zipf_cdf_;
  std::uint64_t cursor_us_ = 0;
  std::uint64_t tx_nonce_ = 1;
  std::uint64_t generated_ = 0;
  std::uint64_t skipped_no_funds_ = 0;
  std::size_t fallback_cursor_ = 0;
  bool genesis_made_ = false;
};

struct ChainGenConfig {
  std::size_t blocks = 100;
  std::size_t txs_per_block = 100;  // excludes the coinbase
  std::uint64_t block_interval_us = 10'000'000;
  WorkloadConfig workload;
};

/// Builds a fully valid chain: every block passes Validator::validate_and_apply.
class ChainGenerator {
 public:
  explicit ChainGenerator(ChainGenConfig cfg = {});

  /// Generates the whole chain (genesis + cfg.blocks blocks).
  [[nodiscard]] Chain generate();

  /// Generates one more block extending `chain` (usable incrementally after
  /// generate() or on a fresh chain built from make_genesis()).
  [[nodiscard]] Block next_block(const Chain& chain);

  [[nodiscard]] WorkloadGenerator& workload() { return workload_; }

 private:
  ChainGenConfig cfg_;
  WorkloadGenerator workload_;
  KeyPair miner_;
};

}  // namespace ici
