// Synthetic transaction workload and chain generation.
//
// WorkloadGenerator owns a set of simulated wallets, tracks their spendable
// outputs, and emits *valid, signed* transactions (random payer → random
// payee, occasional fan-out). ChainGenerator drives it to build a valid
// chain of any length — the ledger every experiment distributes.
#pragma once

#include <deque>
#include <vector>

#include "chain/chain.h"
#include "chain/mempool.h"
#include "common/rng.h"

namespace ici {

struct WorkloadConfig {
  std::size_t wallet_count = 64;
  /// Outputs minted per wallet in genesis.
  std::size_t genesis_outputs_per_wallet = 4;
  Amount genesis_value_each = 1'000'000;
  /// Probability a generated tx has two outputs (payment + change).
  double change_output_prob = 0.8;
  /// Outputs confirmed in block h become spendable only at h + maturity.
  /// 0 = immediately spendable. Depth ≥ 1 lets dissemination pipelines
  /// validate block h+1 against state that block h cannot have changed.
  std::size_t maturity = 0;
  std::uint64_t seed = 42;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadConfig cfg = {});

  /// The genesis block funding all wallets. Call once, feed to Chain.
  [[nodiscard]] Block make_genesis();

  /// Emits one valid signed transaction spending a random tracked output.
  /// Returns std::nullopt if no spendable outputs remain (never happens when
  /// confirm() is called for each produced block).
  [[nodiscard]] std::optional<Transaction> next_tx();

  /// Emits up to n transactions.
  [[nodiscard]] std::vector<Transaction> batch(std::size_t n);

  /// Informs the generator that a block confirmed: newly created outputs
  /// become spendable after cfg.maturity further confirmations.
  void confirm(const Block& block);

  [[nodiscard]] const std::vector<KeyPair>& wallets() const { return wallets_; }

 private:
  struct Spendable {
    OutPoint op;
    Amount value;
    std::size_t wallet;  // index into wallets_
  };

  WorkloadConfig cfg_;
  Rng rng_;
  std::vector<KeyPair> wallets_;
  std::vector<Spendable> spendable_;
  /// Outputs waiting out their maturity window; front matures first.
  std::deque<std::vector<Spendable>> maturing_;
  std::uint64_t tx_nonce_ = 1;
  bool genesis_made_ = false;
};

struct ChainGenConfig {
  std::size_t blocks = 100;
  std::size_t txs_per_block = 100;  // excludes the coinbase
  std::uint64_t block_interval_us = 10'000'000;
  WorkloadConfig workload;
};

/// Builds a fully valid chain: every block passes Validator::validate_and_apply.
class ChainGenerator {
 public:
  explicit ChainGenerator(ChainGenConfig cfg = {});

  /// Generates the whole chain (genesis + cfg.blocks blocks).
  [[nodiscard]] Chain generate();

  /// Generates one more block extending `chain` (usable incrementally after
  /// generate() or on a fresh chain built from make_genesis()).
  [[nodiscard]] Block next_block(const Chain& chain);

  [[nodiscard]] WorkloadGenerator& workload() { return workload_; }

 private:
  ChainGenConfig cfg_;
  WorkloadGenerator workload_;
  KeyPair miner_;
};

}  // namespace ici
