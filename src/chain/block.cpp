#include "chain/block.h"

namespace ici {

Bytes BlockHeader::serialize() const {
  ByteWriter w(kWireSize);
  serialize_into(w);
  return w.take();
}

void BlockHeader::serialize_into(ByteWriter& w) const {
  w.u32(version);
  w.raw(parent.span());
  w.raw(merkle_root.span());
  w.u64(height);
  w.u64(timestamp_us);
  w.u64(nonce);
}

BlockHeader BlockHeader::deserialize(ByteSpan data) {
  ByteReader r(data);
  BlockHeader h;
  h.version = r.u32();
  Digest256 d{};
  Bytes b = r.raw(32);
  std::copy(b.begin(), b.end(), d.begin());
  h.parent = Hash256(d);
  b = r.raw(32);
  std::copy(b.begin(), b.end(), d.begin());
  h.merkle_root = Hash256(d);
  h.height = r.u64();
  h.timestamp_us = r.u64();
  h.nonce = r.u64();
  return h;
}

Hash256 BlockHeader::hash() const {
  const Bytes enc = serialize();
  return Hash256::of2(enc);
}

Block::Block(BlockHeader header, std::vector<Transaction> txs)
    : header_(header), txs_(std::move(txs)) {}

Block Block::assemble(const Hash256& parent, std::uint64_t height, std::uint64_t timestamp_us,
                      std::vector<Transaction> txs) {
  BlockHeader h;
  h.parent = parent;
  h.height = height;
  h.timestamp_us = timestamp_us;
  std::vector<Hash256> ids;
  ids.reserve(txs.size());
  for (const Transaction& tx : txs) ids.push_back(tx.txid());
  h.merkle_root = MerkleTree::compute_root(ids);
  return Block(h, std::move(txs));
}

bool Block::merkle_ok() const {
  return MerkleTree::compute_root(txids()) == header_.merkle_root;
}

std::vector<Hash256> Block::txids() const {
  std::vector<Hash256> ids;
  ids.reserve(txs_.size());
  for (const Transaction& tx : txs_) ids.push_back(tx.txid());
  return ids;
}

Bytes Block::serialize() const {
  ByteWriter w(serialized_size());
  serialize_into(w);
  return w.take();
}

void Block::serialize_into(ByteWriter& w) const {
  header_.serialize_into(w);
  w.u32(static_cast<std::uint32_t>(txs_.size()));
  for (const Transaction& tx : txs_) {
    w.u32(static_cast<std::uint32_t>(tx.serialized_size()));
    tx.serialize_into(w);
  }
}

Block Block::deserialize(ByteSpan data) {
  ByteReader r(data);
  const Bytes hdr = r.raw(BlockHeader::kWireSize);
  BlockHeader h = BlockHeader::deserialize(hdr);
  const std::uint32_t n = r.u32();
  std::vector<Transaction> txs;
  // Each tx blob costs at least 4 (length) + 16 (nonce + counts) bytes;
  // bound the reserve so corrupt counts cannot force huge allocations.
  if (n > r.remaining() / 20) throw DecodeError("Block: tx count too large");
  txs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Bytes enc = r.blob();
    txs.push_back(Transaction::deserialize(enc));
  }
  r.expect_done("Block");
  return Block(h, std::move(txs));
}

std::size_t Block::serialized_size() const {
  std::size_t total = BlockHeader::kWireSize + 4;
  for (const Transaction& tx : txs_) total += 4 + tx.serialized_size();
  return total;
}

}  // namespace ici
