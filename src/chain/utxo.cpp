#include "chain/utxo.h"

#include <stdexcept>

namespace ici {

std::optional<UtxoEntry> UtxoSet::find(const OutPoint& op) const {
  const auto it = map_.find(op);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

void UtxoSet::add(const OutPoint& op, UtxoEntry entry) {
  const auto [it, inserted] = map_.emplace(op, std::move(entry));
  (void)it;
  if (!inserted) throw std::logic_error("UtxoSet::add: duplicate outpoint");
}

bool UtxoSet::spend(const OutPoint& op) { return map_.erase(op) > 0; }

void UtxoSet::apply_tx(const Transaction& tx, std::uint64_t height) {
  for (const TxInput& in : tx.inputs()) {
    if (!spend(in.prevout)) throw std::logic_error("UtxoSet::apply_tx: missing input");
  }
  const Hash256& id = tx.txid();
  for (std::uint32_t i = 0; i < tx.outputs().size(); ++i) {
    add(OutPoint{id, i}, UtxoEntry{tx.outputs()[i], height, tx.is_coinbase()});
  }
}

Amount UtxoSet::total_value() const {
  Amount total = 0;
  for (const auto& [op, entry] : map_) {
    (void)op;
    total += entry.output.value;
  }
  return total;
}

}  // namespace ici
