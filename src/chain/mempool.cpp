#include "chain/mempool.h"

#include <algorithm>

namespace ici {

bool Mempool::add(Transaction tx, Amount fee, std::vector<Transaction>* evicted) {
  const Hash256 id = tx.txid();
  if (by_id_.contains(id)) {
    ++stats_.rejected_dup;
    return false;
  }
  for (const TxInput& in : tx.inputs()) {
    if (claimed_.contains(in.prevout)) {
      ++stats_.rejected_conflict;
      return false;
    }
  }

  const PrioKey key{fee, next_seq_};
  if (cfg_.capacity > 0) {
    // Evict strictly-worse entries until the arrival fits; if the worst
    // pooled entry is at least as good as the arrival, reject the arrival
    // instead (equal fees favor the incumbent — it was admitted first).
    while (by_id_.size() >= cfg_.capacity) {
      const auto worst = std::prev(prio_.end());
      if (!(key < worst->first)) {
        ++stats_.rejected_full;
        return false;
      }
      if (evicted != nullptr) evicted->push_back(by_id_.at(worst->second).tx);
      erase_entry(worst->second);
      ++stats_.evictions;
    }
  }

  ++next_seq_;
  for (const TxInput& in : tx.inputs()) claimed_.insert(in.prevout);
  prio_.emplace(key, id);
  by_id_.emplace(id, Entry{std::move(tx), key});
  ++stats_.accepted;
  stats_.size_peak = std::max<std::uint64_t>(stats_.size_peak, by_id_.size());
  return true;
}

std::vector<Transaction> Mempool::take(std::size_t max) {
  std::vector<Transaction> out;
  out.reserve(std::min(max, by_id_.size()));
  while (!prio_.empty() && out.size() < max) {
    const auto best = prio_.begin();
    const auto it = by_id_.find(best->second);
    out.push_back(std::move(it->second.tx));
    for (const TxInput& in : out.back().inputs()) claimed_.erase(in.prevout);
    by_id_.erase(it);
    prio_.erase(best);
  }
  return out;
}

void Mempool::erase_entry(const Hash256& txid) {
  const auto it = by_id_.find(txid);
  if (it == by_id_.end()) return;
  for (const TxInput& in : it->second.tx.inputs()) claimed_.erase(in.prevout);
  prio_.erase(it->second.key);
  by_id_.erase(it);
}

void Mempool::remove_confirmed(const std::vector<Transaction>& confirmed) {
  for (const Transaction& tx : confirmed) {
    erase_entry(tx.txid());
    // Also evict pool txs that conflict with the now-spent outpoints.
    for (const TxInput& in : tx.inputs()) {
      if (!claimed_.contains(in.prevout)) continue;
      // Linear scan is acceptable: conflicts are rare in generated workloads.
      for (auto it = by_id_.begin(); it != by_id_.end();) {
        const bool conflicts = std::any_of(
            it->second.tx.inputs().begin(), it->second.tx.inputs().end(),
            [&](const TxInput& other) { return other.prevout == in.prevout; });
        if (conflicts) {
          for (const TxInput& other : it->second.tx.inputs()) claimed_.erase(other.prevout);
          prio_.erase(it->second.key);
          it = by_id_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
}

}  // namespace ici
