#include "chain/mempool.h"

#include <algorithm>

namespace ici {

bool Mempool::add(Transaction tx) {
  const Hash256 id = tx.txid();
  if (by_id_.contains(id)) return false;
  for (const TxInput& in : tx.inputs()) {
    if (claimed_.contains(in.prevout)) return false;
  }
  for (const TxInput& in : tx.inputs()) claimed_.insert(in.prevout);
  order_.push_back(id);
  by_id_.emplace(id, std::move(tx));
  return true;
}

std::vector<Transaction> Mempool::take(std::size_t max) {
  std::vector<Transaction> out;
  out.reserve(std::min(max, order_.size()));
  while (!order_.empty() && out.size() < max) {
    const Hash256 id = order_.front();
    order_.pop_front();
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) continue;  // lazily removed
    out.push_back(std::move(it->second));
    for (const TxInput& in : out.back().inputs()) claimed_.erase(in.prevout);
    by_id_.erase(it);
  }
  return out;
}

void Mempool::erase_id(const Hash256& txid) {
  const auto it = by_id_.find(txid);
  if (it == by_id_.end()) return;
  for (const TxInput& in : it->second.inputs()) claimed_.erase(in.prevout);
  by_id_.erase(it);
  // order_ entries are removed lazily in take().
}

void Mempool::remove_confirmed(const std::vector<Transaction>& confirmed) {
  for (const Transaction& tx : confirmed) {
    erase_id(tx.txid());
    // Also evict pool txs that conflict with the now-spent outpoints.
    for (const TxInput& in : tx.inputs()) {
      if (!claimed_.contains(in.prevout)) continue;
      // Linear scan is acceptable: conflicts are rare in generated workloads.
      for (auto it = by_id_.begin(); it != by_id_.end();) {
        const bool conflicts = std::any_of(
            it->second.inputs().begin(), it->second.inputs().end(),
            [&](const TxInput& other) { return other.prevout == in.prevout; });
        if (conflicts) {
          for (const TxInput& other : it->second.inputs()) claimed_.erase(other.prevout);
          it = by_id_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
}

}  // namespace ici
