#include "chain/chain.h"

#include <stdexcept>

namespace ici {

Chain::Chain(Block genesis) {
  if (genesis.header().height != 0) throw std::invalid_argument("genesis must be height 0");
  total_bytes_ = genesis.serialized_size();
  by_hash_.emplace(genesis.hash(), 0);
  blocks_.push_back(std::move(genesis));
}

Block Chain::make_genesis(const KeyPair& faucet, std::size_t initial_outputs,
                          Amount value_each) {
  std::vector<TxOutput> outs(initial_outputs, TxOutput{value_each, faucet.pub});
  Transaction mint({}, std::move(outs), /*nonce=*/0);
  return Block::assemble(Hash256{}, /*height=*/0, /*timestamp_us=*/0, {std::move(mint)});
}

const Block& Chain::at_height(std::uint64_t h) const {
  if (h >= blocks_.size()) throw std::out_of_range("Chain::at_height");
  return blocks_[h];
}

const Block* Chain::by_hash(const Hash256& hash) const {
  const auto it = by_hash_.find(hash);
  if (it == by_hash_.end()) return nullptr;
  return &blocks_[it->second];
}

void Chain::append(Block block) {
  if (block.header().parent != tip().hash())
    throw std::logic_error("Chain::append: does not extend tip");
  if (block.header().height != height() + 1)
    throw std::logic_error("Chain::append: bad height");
  total_bytes_ += block.serialized_size();
  by_hash_.emplace(block.hash(), blocks_.size());
  blocks_.push_back(std::move(block));
}

}  // namespace ici
