#include "chain/validator.h"

#include <unordered_set>

namespace ici {

ValidationResult Validator::check_tx_stateless(const Transaction& tx) const {
  if (tx.outputs().empty()) return ValidationResult::fail("tx has no outputs");
  if (tx.inputs().size() + tx.outputs().size() > cfg_.max_block_txs * 2)
    return ValidationResult::fail("tx too large");
  for (const TxOutput& out : tx.outputs()) {
    if (out.value == 0) return ValidationResult::fail("zero-value output");
  }

  std::unordered_set<OutPoint, OutPointHasher> seen;
  for (const TxInput& in : tx.inputs()) {
    if (!seen.insert(in.prevout).second)
      return ValidationResult::fail("duplicate input within tx");
  }

  if (cfg_.check_signatures && !tx.is_coinbase()) {
    const Bytes payload = tx.signing_payload();
    for (const TxInput& in : tx.inputs()) {
      if (!verify(in.pub, payload, in.sig)) return ValidationResult::fail("bad signature");
    }
  }
  return ValidationResult::ok();
}

ValidationResult Validator::check_tx_stateful(const Transaction& tx, const UtxoSet& utxo) const {
  if (tx.is_coinbase()) {
    if (tx.total_output() > cfg_.block_reward)
      return ValidationResult::fail("coinbase exceeds block reward");
    return ValidationResult::ok();
  }
  Amount in_value = 0;
  for (const TxInput& in : tx.inputs()) {
    const auto entry = utxo.find(in.prevout);
    if (!entry) return ValidationResult::fail("input not in UTXO set");
    if (entry->output.recipient != in.pub)
      return ValidationResult::fail("spender key does not own the output");
    in_value += entry->output.value;
  }
  if (tx.total_output() > in_value)
    return ValidationResult::fail("outputs exceed inputs");
  return ValidationResult::ok();
}

ValidationResult Validator::check_header(const BlockHeader& header,
                                         const Hash256& expected_parent,
                                         std::uint64_t expected_height) const {
  if (header.parent != expected_parent) return ValidationResult::fail("parent hash mismatch");
  if (header.height != expected_height) return ValidationResult::fail("height mismatch");
  return ValidationResult::ok();
}

ValidationResult Validator::validate_and_apply(const Block& block,
                                               const Hash256& expected_parent,
                                               std::uint64_t expected_height,
                                               UtxoSet& utxo) const {
  if (auto r = check_header(block.header(), expected_parent, expected_height); !r) return r;
  if (block.txs().empty()) return ValidationResult::fail("empty block (no coinbase)");
  if (block.txs().size() > cfg_.max_block_txs) return ValidationResult::fail("too many txs");
  if (!block.merkle_ok()) return ValidationResult::fail("merkle root mismatch");
  if (!block.txs().front().is_coinbase())
    return ValidationResult::fail("first tx must be coinbase");

  // Validate + apply sequentially on a scratch copy so failure leaves the
  // caller's UTXO untouched.
  UtxoSet scratch = utxo;
  for (std::size_t i = 0; i < block.txs().size(); ++i) {
    const Transaction& tx = block.txs()[i];
    if (i > 0 && tx.is_coinbase()) return ValidationResult::fail("coinbase not first");
    if (auto r = check_tx_stateless(tx); !r) return r;
    if (auto r = check_tx_stateful(tx, scratch); !r) return r;
    scratch.apply_tx(tx, block.header().height);
  }
  utxo = std::move(scratch);
  return ValidationResult::ok();
}

}  // namespace ici
