// Unspent transaction output set. Validators hold a UtxoSet view; applying a
// block consumes its inputs and creates its outputs atomically.
#pragma once

#include <optional>
#include <unordered_map>

#include "chain/transaction.h"

namespace ici {

struct UtxoEntry {
  TxOutput output;
  std::uint64_t created_height = 0;
  bool is_coinbase = false;
};

class UtxoSet {
 public:
  [[nodiscard]] std::optional<UtxoEntry> find(const OutPoint& op) const;
  [[nodiscard]] bool contains(const OutPoint& op) const { return map_.contains(op); }
  [[nodiscard]] std::size_t size() const { return map_.size(); }

  void add(const OutPoint& op, UtxoEntry entry);
  /// Returns false when the outpoint was not present (double spend).
  bool spend(const OutPoint& op);

  /// Applies a validated transaction: spends all inputs, creates all outputs.
  /// Precondition (checked): every input exists.
  void apply_tx(const Transaction& tx, std::uint64_t height);

  /// Sum of all unspent values — conservation-of-value checks in tests.
  [[nodiscard]] Amount total_value() const;

 private:
  std::unordered_map<OutPoint, UtxoEntry, OutPointHasher> map_;
};

}  // namespace ici
