// UTXO-model transactions: inputs reference previous outputs, outputs carry
// an amount and a recipient public key. Canonical serialization defines the
// txid (double SHA-256 over the encoding).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/hash.h"
#include "crypto/sig.h"

namespace ici {

/// Monetary amounts in base units (like satoshi).
using Amount = std::uint64_t;

/// Reference to a previous transaction output.
struct OutPoint {
  Hash256 txid;
  std::uint32_t index = 0;

  auto operator<=>(const OutPoint&) const = default;
};

struct OutPointHasher {
  std::size_t operator()(const OutPoint& op) const noexcept {
    return static_cast<std::size_t>(op.txid.low64() ^ (static_cast<std::uint64_t>(op.index) *
                                                       0x9e3779b97f4a7c15ULL));
  }
};

struct TxInput {
  OutPoint prevout;
  /// Signature of the signing payload by the key owning the spent output.
  Signature sig{};
  /// Public key of the spender (matches the spent output's recipient).
  PublicKey pub{};
};

struct TxOutput {
  Amount value = 0;
  PublicKey recipient{};
};

class Transaction {
 public:
  Transaction() = default;
  Transaction(std::vector<TxInput> inputs, std::vector<TxOutput> outputs,
              std::uint64_t nonce = 0);

  /// Coinbase: no inputs, mints `value` to `recipient`. `height` salts the
  /// nonce so every block's coinbase has a distinct txid.
  [[nodiscard]] static Transaction coinbase(const PublicKey& recipient, Amount value,
                                            std::uint64_t height);

  [[nodiscard]] bool is_coinbase() const { return inputs_.empty(); }
  [[nodiscard]] const std::vector<TxInput>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<TxOutput>& outputs() const { return outputs_; }
  [[nodiscard]] std::uint64_t nonce() const { return nonce_; }

  /// Canonical encoding (includes signatures).
  [[nodiscard]] Bytes serialize() const;
  /// Appends the canonical encoding to `w` without an intermediate buffer.
  void serialize_into(ByteWriter& w) const;
  [[nodiscard]] static Transaction deserialize(ByteSpan data);

  /// Double SHA-256 of the canonical encoding. Cached after first call.
  [[nodiscard]] const Hash256& txid() const;

  /// Bytes the spender signs: the encoding with all signatures zeroed.
  [[nodiscard]] Bytes signing_payload() const;

  /// Signs every input with `key` (single-key wallets in the workload).
  void sign_all_inputs(const KeyPair& key);

  [[nodiscard]] Amount total_output() const;
  /// Size of serialize() computed arithmetically (no allocation).
  [[nodiscard]] std::size_t serialized_size() const;

 private:
  void encode(ByteWriter& w, bool include_sigs) const;

  std::vector<TxInput> inputs_;
  std::vector<TxOutput> outputs_;
  std::uint64_t nonce_ = 0;
  mutable std::optional<Hash256> cached_txid_;
};

}  // namespace ici
