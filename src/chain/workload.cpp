#include "chain/workload.h"

#include <stdexcept>

namespace ici {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.wallet_count == 0) throw std::invalid_argument("wallet_count must be > 0");
  wallets_.reserve(cfg_.wallet_count);
  for (std::size_t i = 0; i < cfg_.wallet_count; ++i) {
    wallets_.push_back(KeyPair::from_seed(cfg_.seed * 1'000'003 + i));
  }
}

Block WorkloadGenerator::make_genesis() {
  if (genesis_made_) throw std::logic_error("make_genesis called twice");
  genesis_made_ = true;
  std::vector<TxOutput> outs;
  outs.reserve(cfg_.wallet_count * cfg_.genesis_outputs_per_wallet);
  for (std::size_t w = 0; w < cfg_.wallet_count; ++w) {
    for (std::size_t j = 0; j < cfg_.genesis_outputs_per_wallet; ++j) {
      outs.push_back(TxOutput{cfg_.genesis_value_each, wallets_[w].pub});
    }
  }
  // Spendable bookkeeping happens in confirm(): the caller feeds the genesis
  // block back through confirm() exactly like any other block.
  Transaction mint({}, std::move(outs), /*nonce=*/0);
  return Block::assemble(Hash256{}, 0, 0, {std::move(mint)});
}

std::optional<Transaction> WorkloadGenerator::next_tx() {
  if (spendable_.empty()) return std::nullopt;
  const std::size_t pick = rng_.index(spendable_.size());
  const Spendable sp = spendable_[pick];
  spendable_[pick] = spendable_.back();
  spendable_.pop_back();

  const std::size_t payee = rng_.index(wallets_.size());
  std::vector<TxOutput> outs;
  if (sp.value >= 2 && rng_.chance(cfg_.change_output_prob)) {
    const Amount pay = rng_.range(1, sp.value - 1);
    outs.push_back(TxOutput{pay, wallets_[payee].pub});
    outs.push_back(TxOutput{sp.value - pay, wallets_[sp.wallet].pub});
  } else {
    outs.push_back(TxOutput{sp.value, wallets_[payee].pub});
  }

  Transaction tx({TxInput{sp.op, {}, {}}}, std::move(outs), tx_nonce_++);
  tx.sign_all_inputs(wallets_[sp.wallet]);
  return tx;
}

std::vector<Transaction> WorkloadGenerator::batch(std::size_t n) {
  std::vector<Transaction> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto tx = next_tx();
    if (!tx) break;
    out.push_back(std::move(*tx));
  }
  return out;
}

void WorkloadGenerator::confirm(const Block& block) {
  std::vector<Spendable> fresh;
  for (const Transaction& tx : block.txs()) {
    const Hash256& id = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs().size(); ++i) {
      const TxOutput& out = tx.outputs()[i];
      // Track outputs paying one of our wallets.
      for (std::size_t w = 0; w < wallets_.size(); ++w) {
        if (wallets_[w].pub == out.recipient) {
          fresh.push_back({OutPoint{id, i}, out.value, w});
          break;
        }
      }
    }
  }
  maturing_.push_back(std::move(fresh));
  while (maturing_.size() > cfg_.maturity) {
    auto& matured = maturing_.front();
    spendable_.insert(spendable_.end(), matured.begin(), matured.end());
    maturing_.pop_front();
  }
}

ChainGenerator::ChainGenerator(ChainGenConfig cfg)
    : cfg_(cfg), workload_(cfg.workload), miner_(KeyPair::from_seed(cfg.workload.seed ^ 0xace)) {}

Block ChainGenerator::next_block(const Chain& chain) {
  const std::uint64_t height = chain.height() + 1;
  std::vector<Transaction> txs;
  txs.reserve(cfg_.txs_per_block + 1);
  txs.push_back(Transaction::coinbase(miner_.pub, ValidatorConfig{}.block_reward, height));
  for (Transaction& tx : workload_.batch(cfg_.txs_per_block)) txs.push_back(std::move(tx));
  Block block = Block::assemble(chain.tip().hash(), height, height * cfg_.block_interval_us,
                                std::move(txs));
  workload_.confirm(block);
  return block;
}

Chain ChainGenerator::generate() {
  Block genesis = workload_.make_genesis();
  workload_.confirm(genesis);
  Chain chain(std::move(genesis));
  for (std::size_t i = 0; i < cfg_.blocks; ++i) chain.append(next_block(chain));
  return chain;
}

}  // namespace ici
