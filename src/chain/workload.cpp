#include "chain/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ici {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.wallet_count == 0) throw std::invalid_argument("wallet_count must be > 0");
  wallets_.reserve(cfg_.wallet_count);
  for (std::size_t i = 0; i < cfg_.wallet_count; ++i) {
    wallets_.push_back(KeyPair::from_seed(cfg_.seed * 1'000'003 + i));
  }
}

Block WorkloadGenerator::make_genesis() {
  if (genesis_made_) throw std::logic_error("make_genesis called twice");
  genesis_made_ = true;
  std::vector<TxOutput> outs;
  outs.reserve(cfg_.wallet_count * cfg_.genesis_outputs_per_wallet);
  for (std::size_t w = 0; w < cfg_.wallet_count; ++w) {
    for (std::size_t j = 0; j < cfg_.genesis_outputs_per_wallet; ++j) {
      outs.push_back(TxOutput{cfg_.genesis_value_each, wallets_[w].pub});
    }
  }
  // Spendable bookkeeping happens in confirm(): the caller feeds the genesis
  // block back through confirm() exactly like any other block.
  Transaction mint({}, std::move(outs), /*nonce=*/0);
  return Block::assemble(Hash256{}, 0, 0, {std::move(mint)});
}

std::optional<Transaction> WorkloadGenerator::next_tx() {
  if (spendable_.empty()) return std::nullopt;
  const std::size_t pick = rng_.index(spendable_.size());
  const Spendable sp = spendable_[pick];
  spendable_[pick] = spendable_.back();
  spendable_.pop_back();

  const std::size_t payee = rng_.index(wallets_.size());
  std::vector<TxOutput> outs;
  if (sp.value >= 2 && rng_.chance(cfg_.change_output_prob)) {
    const Amount pay = rng_.range(1, sp.value - 1);
    outs.push_back(TxOutput{pay, wallets_[payee].pub});
    outs.push_back(TxOutput{sp.value - pay, wallets_[sp.wallet].pub});
  } else {
    outs.push_back(TxOutput{sp.value, wallets_[payee].pub});
  }

  Transaction tx({TxInput{sp.op, {}, {}}}, std::move(outs), tx_nonce_++);
  tx.sign_all_inputs(wallets_[sp.wallet]);
  return tx;
}

std::vector<Transaction> WorkloadGenerator::batch(std::size_t n) {
  std::vector<Transaction> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto tx = next_tx();
    if (!tx) break;
    out.push_back(std::move(*tx));
  }
  return out;
}

void WorkloadGenerator::confirm(const Block& block) {
  std::vector<Spendable> fresh;
  for (const Transaction& tx : block.txs()) {
    const Hash256& id = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs().size(); ++i) {
      const TxOutput& out = tx.outputs()[i];
      // Track outputs paying one of our wallets.
      for (std::size_t w = 0; w < wallets_.size(); ++w) {
        if (wallets_[w].pub == out.recipient) {
          fresh.push_back({OutPoint{id, i}, out.value, w});
          break;
        }
      }
    }
  }
  maturing_.push_back(std::move(fresh));
  while (maturing_.size() > cfg_.maturity) {
    auto& matured = maturing_.front();
    spendable_.insert(spendable_.end(), matured.begin(), matured.end());
    maturing_.pop_front();
  }
}

// -- TrafficGenerator ---------------------------------------------------------

TrafficGenerator::TrafficGenerator(TrafficConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.user_count == 0) throw std::invalid_argument("user_count must be > 0");
  if (cfg_.window_us == 0) throw std::invalid_argument("window_us must be > 0");
  cfg_.hot_account_count = std::min(cfg_.hot_account_count, cfg_.user_count);
  users_.reserve(cfg_.user_count);
  by_pub_.reserve(cfg_.user_count);
  spendable_.resize(cfg_.user_count);
  for (std::size_t i = 0; i < cfg_.user_count; ++i) {
    users_.push_back(KeyPair::from_seed(cfg_.seed * 6'700'417 + i));
    by_pub_.emplace(users_.back().pub, static_cast<std::uint32_t>(i));
  }
  if (cfg_.zipf_s > 0) {
    zipf_cdf_.resize(cfg_.user_count);
    double total = 0;
    for (std::size_t i = 0; i < cfg_.user_count; ++i) {
      total += std::pow(static_cast<double>(i + 1), -cfg_.zipf_s);
      zipf_cdf_[i] = total;
    }
    for (double& c : zipf_cdf_) c /= total;
    zipf_cdf_.back() = 1.0;
  }
}

Block TrafficGenerator::make_genesis() {
  if (genesis_made_) throw std::logic_error("make_genesis called twice");
  genesis_made_ = true;
  std::vector<TxOutput> outs;
  outs.reserve(cfg_.user_count * cfg_.outputs_per_user +
               cfg_.hot_account_count * cfg_.hot_account_outputs);
  for (std::size_t u = 0; u < cfg_.user_count; ++u) {
    const std::size_t n =
        u < cfg_.hot_account_count ? cfg_.hot_account_outputs : cfg_.outputs_per_user;
    for (std::size_t j = 0; j < n; ++j) {
      outs.push_back(TxOutput{cfg_.genesis_value_each, users_[u].pub});
    }
  }
  Transaction mint({}, std::move(outs), /*nonce=*/0);
  return Block::assemble(Hash256{}, 0, 0, {std::move(mint)});
}

std::size_t TrafficGenerator::pick_account() {
  if (zipf_cdf_.empty()) return rng_.index(cfg_.user_count);
  const double u = rng_.uniform01();
  const auto it = std::upper_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - zipf_cdf_.begin());
  return std::min(idx, cfg_.user_count - 1);
}

bool TrafficGenerator::pick_payer(std::size_t* out) {
  // A popular account may be temporarily broke (all outputs in flight);
  // redraw a few times before falling back to a deterministic scan, so the
  // skew survives without ever stalling the offered load.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::size_t u = pick_account();
    if (!spendable_[u].empty()) {
      *out = u;
      return true;
    }
  }
  for (std::size_t step = 0; step < cfg_.user_count; ++step) {
    const std::size_t u = (fallback_cursor_ + step) % cfg_.user_count;
    if (!spendable_[u].empty()) {
      fallback_cursor_ = (u + 1) % cfg_.user_count;
      *out = u;
      return true;
    }
  }
  return false;
}

TrafficArrival TrafficGenerator::make_arrival(std::uint64_t at_us) {
  std::size_t payer = 0;
  if (!pick_payer(&payer)) {
    ++skipped_no_funds_;
    return {};
  }
  const Spendable sp = spendable_[payer].back();
  spendable_[payer].pop_back();
  pending_.emplace(sp.op, Pending{static_cast<std::uint32_t>(payer), sp.value});

  Amount fee = cfg_.fee_max > 0 ? rng_.range(cfg_.fee_min, cfg_.fee_max) : 0;
  fee = std::min(fee, sp.value - 1);  // outputs must stay non-empty and non-zero
  const Amount remaining = sp.value - fee;
  const std::size_t payee = pick_account();

  std::vector<TxOutput> outs;
  if (remaining >= 2 && rng_.chance(cfg_.change_output_prob)) {
    const Amount pay = rng_.range(1, remaining - 1);
    outs.push_back(TxOutput{pay, users_[payee].pub});
    outs.push_back(TxOutput{remaining - pay, users_[payer].pub});
  } else {
    outs.push_back(TxOutput{remaining, users_[payee].pub});
  }

  TrafficArrival arrival;
  arrival.at_us = at_us;
  arrival.fee = fee;
  arrival.tx = Transaction({TxInput{sp.op, {}, {}}}, std::move(outs), tx_nonce_++);
  arrival.tx.sign_all_inputs(users_[payer]);
  ++generated_;
  return arrival;
}

std::vector<TrafficArrival> TrafficGenerator::arrivals_until(std::uint64_t to_us) {
  std::vector<TrafficArrival> out;
  while (cursor_us_ + cfg_.window_us <= to_us) {
    const std::uint64_t start = cursor_us_;
    cursor_us_ += cfg_.window_us;

    double mult = 1.0;
    if (cfg_.diurnal_amplitude != 0 && cfg_.diurnal_period_us > 0) {
      const double phase = 2.0 * 3.14159265358979323846 *
                           (static_cast<double>(start % cfg_.diurnal_period_us) /
                            static_cast<double>(cfg_.diurnal_period_us));
      mult *= std::max(0.0, 1.0 + cfg_.diurnal_amplitude * std::sin(phase));
    }
    // One burst lottery per window, drawn unconditionally so the stream of
    // RNG draws (and hence everything downstream) is config-stable.
    const bool burst = rng_.chance(cfg_.burst_prob);
    if (burst) mult *= cfg_.burst_factor;

    const double expected =
        cfg_.tx_rate_tps * (static_cast<double>(cfg_.window_us) / 1e6) * mult;
    std::uint64_t count = static_cast<std::uint64_t>(expected);
    if (rng_.chance(expected - static_cast<double>(count))) ++count;

    std::vector<std::uint64_t> offsets;
    offsets.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) offsets.push_back(rng_.range(1, cfg_.window_us));
    std::sort(offsets.begin(), offsets.end());
    for (const std::uint64_t off : offsets) {
      TrafficArrival arrival = make_arrival(start + off);
      if (arrival.at_us != 0) out.push_back(std::move(arrival));
    }
  }
  return out;
}

void TrafficGenerator::confirm(const Block& block) {
  for (const Transaction& tx : block.txs()) {
    for (const TxInput& in : tx.inputs()) pending_.erase(in.prevout);
    const Hash256& id = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs().size(); ++i) {
      const TxOutput& out = tx.outputs()[i];
      const auto it = by_pub_.find(out.recipient);
      if (it == by_pub_.end()) continue;  // e.g. the coinbase miner
      spendable_[it->second].push_back({OutPoint{id, i}, out.value});
    }
  }
}

void TrafficGenerator::release(const Transaction& tx) {
  for (const TxInput& in : tx.inputs()) {
    const auto it = pending_.find(in.prevout);
    if (it == pending_.end()) continue;
    spendable_[it->second.user].push_back({in.prevout, it->second.value});
    pending_.erase(it);
  }
}

ChainGenerator::ChainGenerator(ChainGenConfig cfg)
    : cfg_(cfg), workload_(cfg.workload), miner_(KeyPair::from_seed(cfg.workload.seed ^ 0xace)) {}

Block ChainGenerator::next_block(const Chain& chain) {
  const std::uint64_t height = chain.height() + 1;
  std::vector<Transaction> txs;
  txs.reserve(cfg_.txs_per_block + 1);
  txs.push_back(Transaction::coinbase(miner_.pub, ValidatorConfig{}.block_reward, height));
  for (Transaction& tx : workload_.batch(cfg_.txs_per_block)) txs.push_back(std::move(tx));
  Block block = Block::assemble(chain.tip().hash(), height, height * cfg_.block_interval_us,
                                std::move(txs));
  workload_.confirm(block);
  return block;
}

Chain ChainGenerator::generate() {
  Block genesis = workload_.make_genesis();
  workload_.confirm(genesis);
  Chain chain(std::move(genesis));
  for (std::size_t i = 0; i < cfg_.blocks; ++i) chain.append(next_block(chain));
  return chain;
}

}  // namespace ici
