#include "chain/transaction.h"

namespace ici {

Transaction::Transaction(std::vector<TxInput> inputs, std::vector<TxOutput> outputs,
                         std::uint64_t nonce)
    : inputs_(std::move(inputs)), outputs_(std::move(outputs)), nonce_(nonce) {}

Transaction Transaction::coinbase(const PublicKey& recipient, Amount value,
                                  std::uint64_t height) {
  return Transaction({}, {TxOutput{value, recipient}}, height);
}

void Transaction::encode(ByteWriter& w, bool include_sigs) const {
  w.u64(nonce_);
  w.u32(static_cast<std::uint32_t>(inputs_.size()));
  for (const TxInput& in : inputs_) {
    w.raw(in.prevout.txid.span());
    w.u32(in.prevout.index);
    if (include_sigs) {
      w.raw(ByteSpan(in.sig.data(), in.sig.size()));
    } else {
      static const Signature kZero{};
      w.raw(ByteSpan(kZero.data(), kZero.size()));
    }
    w.raw(ByteSpan(in.pub.data(), in.pub.size()));
  }
  w.u32(static_cast<std::uint32_t>(outputs_.size()));
  for (const TxOutput& out : outputs_) {
    w.u64(out.value);
    w.raw(ByteSpan(out.recipient.data(), out.recipient.size()));
  }
}

Bytes Transaction::serialize() const {
  ByteWriter w(serialized_size());
  encode(w, /*include_sigs=*/true);
  return w.take();
}

void Transaction::serialize_into(ByteWriter& w) const {
  encode(w, /*include_sigs=*/true);
}

Transaction Transaction::deserialize(ByteSpan data) {
  ByteReader r(data);
  Transaction tx;
  tx.nonce_ = r.u64();
  const std::uint32_t n_in = r.u32();
  // Bound the reserve by what the buffer could possibly hold (132 bytes per
  // input) so a corrupted count cannot force a huge allocation.
  if (n_in > r.remaining() / 132) throw DecodeError("Transaction: input count too large");
  tx.inputs_.reserve(n_in);
  for (std::uint32_t i = 0; i < n_in; ++i) {
    TxInput in;
    const Bytes txid = r.raw(32);
    Digest256 d{};
    std::copy(txid.begin(), txid.end(), d.begin());
    in.prevout.txid = Hash256(d);
    in.prevout.index = r.u32();
    const Bytes sig = r.raw(64);
    std::copy(sig.begin(), sig.end(), in.sig.begin());
    const Bytes pub = r.raw(32);
    std::copy(pub.begin(), pub.end(), in.pub.begin());
    tx.inputs_.push_back(in);
  }
  const std::uint32_t n_out = r.u32();
  if (n_out > r.remaining() / 40) throw DecodeError("Transaction: output count too large");
  tx.outputs_.reserve(n_out);
  for (std::uint32_t i = 0; i < n_out; ++i) {
    TxOutput out;
    out.value = r.u64();
    const Bytes pub = r.raw(32);
    std::copy(pub.begin(), pub.end(), out.recipient.begin());
    tx.outputs_.push_back(out);
  }
  r.expect_done("Transaction");
  return tx;
}

const Hash256& Transaction::txid() const {
  if (!cached_txid_) {
    const Bytes enc = serialize();
    cached_txid_ = Hash256::of2(enc);
  }
  return *cached_txid_;
}

Bytes Transaction::signing_payload() const {
  ByteWriter w;
  encode(w, /*include_sigs=*/false);
  return w.take();
}

void Transaction::sign_all_inputs(const KeyPair& key) {
  // The signing payload covers the spender public keys, so they must be in
  // place before the payload is derived.
  for (TxInput& in : inputs_) in.pub = key.pub;
  const Bytes payload = signing_payload();
  const Signature sig = sign(key, payload);
  for (TxInput& in : inputs_) in.sig = sig;
  cached_txid_.reset();
}

std::size_t Transaction::serialized_size() const {
  // nonce + input count + inputs(32+4+64+32) + output count + outputs(8+32).
  return 8 + 4 + inputs_.size() * 132 + 4 + outputs_.size() * 40;
}

Amount Transaction::total_output() const {
  Amount total = 0;
  for (const TxOutput& out : outputs_) total += out.value;
  return total;
}

}  // namespace ici
