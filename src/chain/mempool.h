// Transaction mempool: pending transactions awaiting inclusion, with
// double-spend tracking across the pool so a block builder never assembles
// conflicting spends.
//
// The pool is fee-prioritized and optionally capacity-bounded: take() drains
// highest fee first (admission order breaks ties, so an all-zero-fee pool
// behaves exactly like the original FIFO), and when a capacity is configured
// a full pool deterministically evicts its lowest-fee / latest-admitted
// entry to make room for a better-paying arrival. Everything is driven by
// explicit calls — no clocks, no RNG — so a given call sequence produces a
// bit-identical pool on every run (docs/INGEST.md).
#pragma once

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/transaction.h"

namespace ici {

class Mempool {
 public:
  struct Config {
    /// Max pooled transactions; 0 = unbounded.
    std::size_t capacity = 0;
  };

  /// Monotonic tallies of everything the pool decided; read by the ingest
  /// pipeline to surface mempool.* counters (docs/INGEST.md).
  struct Stats {
    std::uint64_t accepted = 0;       ///< adds that entered the pool
    std::uint64_t rejected_dup = 0;   ///< txid already pooled
    std::uint64_t rejected_conflict = 0;  ///< input already claimed
    std::uint64_t rejected_full = 0;  ///< pool full, fee too low to evict
    std::uint64_t evictions = 0;      ///< entries displaced by better fees
    std::uint64_t size_peak = 0;      ///< max pool size ever observed
  };

  Mempool() = default;
  explicit Mempool(Config cfg) : cfg_(cfg) {}

  /// Accepts iff the txid is new and no pooled tx already spends one of its
  /// inputs. At capacity, the arrival must out-pay the worst pooled entry
  /// (fee desc, admission order asc): the worst entries are evicted into
  /// `*evicted` (when non-null) until the arrival fits, else it is rejected.
  /// Returns false on rejection.
  bool add(Transaction tx, Amount fee = 0, std::vector<Transaction>* evicted = nullptr);

  [[nodiscard]] bool contains(const Hash256& txid) const { return by_id_.contains(txid); }
  [[nodiscard]] std::size_t size() const { return by_id_.size(); }
  [[nodiscard]] bool empty() const { return by_id_.empty(); }
  [[nodiscard]] std::size_t capacity() const { return cfg_.capacity; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Removes and returns up to `max` transactions, best-paying first
  /// (ties: admission order). With all fees equal this is arrival order.
  [[nodiscard]] std::vector<Transaction> take(std::size_t max);

  /// Drops any pooled tx confirmed by (or conflicting with) the block's txs.
  void remove_confirmed(const std::vector<Transaction>& confirmed);

 private:
  /// Priority key: higher fee first, then earlier admission. Ordered so the
  /// *first* map entry is the best take() candidate and the *last* is the
  /// eviction victim.
  struct PrioKey {
    Amount fee = 0;
    std::uint64_t seq = 0;
    bool operator<(const PrioKey& o) const {
      if (fee != o.fee) return fee > o.fee;
      return seq < o.seq;
    }
  };

  struct Entry {
    Transaction tx;
    PrioKey key;
  };

  void erase_entry(const Hash256& txid);

  Config cfg_;
  Stats stats_;
  std::uint64_t next_seq_ = 0;
  std::map<PrioKey, Hash256> prio_;
  std::unordered_map<Hash256, Entry, Hash256Hasher> by_id_;
  std::unordered_set<OutPoint, OutPointHasher> claimed_;
};

}  // namespace ici
