// Transaction mempool: pending transactions awaiting inclusion, with
// double-spend tracking across the pool so a block builder never assembles
// conflicting spends.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "chain/transaction.h"

namespace ici {

class Mempool {
 public:
  /// Accepts iff no pooled tx already spends one of its inputs and the txid
  /// is new. Returns false on rejection.
  bool add(Transaction tx);

  [[nodiscard]] bool contains(const Hash256& txid) const { return by_id_.contains(txid); }
  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] bool empty() const { return order_.empty(); }

  /// Removes and returns up to `max` transactions in arrival order.
  [[nodiscard]] std::vector<Transaction> take(std::size_t max);

  /// Drops any pooled tx confirmed by (or conflicting with) the block's txs.
  void remove_confirmed(const std::vector<Transaction>& confirmed);

 private:
  void erase_id(const Hash256& txid);

  std::deque<Hash256> order_;
  std::unordered_map<Hash256, Transaction, Hash256Hasher> by_id_;
  std::unordered_set<OutPoint, OutPointHasher> claimed_;
};

}  // namespace ici
