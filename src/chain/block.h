// Blocks and block headers. A header commits to the parent hash and the
// Merkle root over txids; the body carries the transactions. ICIStrategy
// nodes always store all headers but only their assigned bodies, so header
// and body serialize independently.
#pragma once

#include <optional>
#include <vector>

#include "chain/transaction.h"
#include "crypto/merkle.h"

namespace ici {

struct BlockHeader {
  std::uint32_t version = 1;
  Hash256 parent;
  Hash256 merkle_root;
  std::uint64_t height = 0;
  std::uint64_t timestamp_us = 0;  // simulated time when the block was built
  std::uint64_t nonce = 0;         // filled by the (simulated) proposer

  [[nodiscard]] Bytes serialize() const;
  /// Appends the wire encoding to `w` without an intermediate buffer.
  void serialize_into(ByteWriter& w) const;
  [[nodiscard]] static BlockHeader deserialize(ByteSpan data);
  /// Double SHA-256 of the serialized header — the block hash.
  [[nodiscard]] Hash256 hash() const;

  /// Serialized size, constant for every header.
  static constexpr std::size_t kWireSize = 4 + 32 + 32 + 8 + 8 + 8;
};

class Block {
 public:
  Block() = default;
  Block(BlockHeader header, std::vector<Transaction> txs);

  /// Builds a block over `txs` with the Merkle root computed; the proposer
  /// fills parent/height/timestamp via the header argument.
  [[nodiscard]] static Block assemble(const Hash256& parent, std::uint64_t height,
                                      std::uint64_t timestamp_us,
                                      std::vector<Transaction> txs);

  [[nodiscard]] const BlockHeader& header() const { return header_; }
  [[nodiscard]] const std::vector<Transaction>& txs() const { return txs_; }
  [[nodiscard]] Hash256 hash() const { return header_.hash(); }

  /// Recomputes the Merkle root over the body and compares with the header.
  [[nodiscard]] bool merkle_ok() const;

  /// txids in block order.
  [[nodiscard]] std::vector<Hash256> txids() const;

  /// Full wire encoding: header followed by the tx vector.
  [[nodiscard]] Bytes serialize() const;
  /// Appends the wire encoding to `w` without an intermediate buffer —
  /// the codec hot path (dissemination encodes every block it ships).
  void serialize_into(ByteWriter& w) const;
  [[nodiscard]] static Block deserialize(ByteSpan data);
  [[nodiscard]] std::size_t serialized_size() const;

 private:
  BlockHeader header_;
  std::vector<Transaction> txs_;
};

}  // namespace ici
