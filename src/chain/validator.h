// Stateless and stateful validation rules.
//
// Collaborative verification (ICIStrategy §D4 in DESIGN.md) needs the
// transaction-level checks factored out so a cluster member can validate
// just its slice of a block; validate_block composes them for whole-block
// validators (the full-replication baseline).
#pragma once

#include <string>

#include "chain/block.h"
#include "chain/utxo.h"

namespace ici {

/// Outcome of a validation step. `ok()` or a human-readable reason.
struct ValidationResult {
  bool valid = true;
  std::string reason;

  [[nodiscard]] static ValidationResult ok() { return {true, ""}; }
  [[nodiscard]] static ValidationResult fail(std::string why) { return {false, std::move(why)}; }
  explicit operator bool() const { return valid; }
};

struct ValidatorConfig {
  Amount block_reward = 50'0000'0000ULL;  // minted by each coinbase
  std::size_t max_block_txs = 10'000;
  bool check_signatures = true;
};

class Validator {
 public:
  explicit Validator(ValidatorConfig cfg = {}) : cfg_(cfg) {}

  /// Structure-only checks (no UTXO state): signature validity, non-empty
  /// outputs, no duplicate inputs within the tx.
  [[nodiscard]] ValidationResult check_tx_stateless(const Transaction& tx) const;

  /// Stateful check against a UTXO view: inputs exist, values balance,
  /// spender keys match the spent outputs. Does not mutate `utxo`.
  [[nodiscard]] ValidationResult check_tx_stateful(const Transaction& tx,
                                                   const UtxoSet& utxo) const;

  /// Header linkage: parent hash/height continuity.
  [[nodiscard]] ValidationResult check_header(const BlockHeader& header,
                                              const Hash256& expected_parent,
                                              std::uint64_t expected_height) const;

  /// Full block validation: header linkage, Merkle root, exactly one leading
  /// coinbase, every tx valid against `utxo` *with intra-block spends
  /// visible*. On success, applies the block to `utxo`.
  [[nodiscard]] ValidationResult validate_and_apply(const Block& block,
                                                    const Hash256& expected_parent,
                                                    std::uint64_t expected_height,
                                                    UtxoSet& utxo) const;

  [[nodiscard]] const ValidatorConfig& config() const { return cfg_; }

 private:
  ValidatorConfig cfg_;
};

}  // namespace ici
