// Canonical chain container: ordered blocks with O(1) lookup by hash or
// height, plus the genesis convention shared by every network flavour.
#pragma once

#include <unordered_map>
#include <vector>

#include "chain/block.h"
#include "chain/validator.h"

namespace ici {

class Chain {
 public:
  /// Starts from the given genesis block (height 0).
  explicit Chain(Block genesis);

  /// The deterministic genesis every simulation uses: a single coinbase
  /// paying `initial_outputs` outputs of `value` each to the faucet key, so
  /// workload generators have funds to spread around.
  [[nodiscard]] static Block make_genesis(const KeyPair& faucet, std::size_t initial_outputs,
                                          Amount value_each);

  [[nodiscard]] const Block& tip() const { return blocks_.back(); }
  [[nodiscard]] std::uint64_t height() const { return blocks_.back().header().height; }
  [[nodiscard]] std::size_t size() const { return blocks_.size(); }

  [[nodiscard]] const Block& at_height(std::uint64_t h) const;
  [[nodiscard]] const Block* by_hash(const Hash256& hash) const;
  [[nodiscard]] bool contains(const Hash256& hash) const { return by_hash_.contains(hash); }

  /// Appends a block that must extend the tip (validated by the caller).
  void append(Block block);

  /// Total serialized bytes of all blocks — the "full ledger size D".
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

 private:
  std::vector<Block> blocks_;
  std::unordered_map<Hash256, std::size_t, Hash256Hasher> by_hash_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace ici
