// IngestDriver — runs the full client-to-commit pipeline against any
// core::Strategy (docs/INGEST.md):
//
//   TrafficGenerator → TxAcceptor → Mempool → block template → strategy
//   dissemination → confirmation accounting
//
// The driver owns the proposer role and a logical clock: every block
// interval it feeds the arrivals that occurred since the last proposal
// through the acceptor, fills a block template from the fee-prioritized
// mempool (skipping any txid already confirmed in an ancestor — the pool
// cannot know chain history), validates and applies it to the driver's
// UTXO view, and hands it to Strategy::ingest. Proposals serialize on full
// commit, so when dissemination latency exceeds the interval the schedule
// slips — exactly the saturation behaviour exp23 measures.
//
// Determinism: the driver adds no RNG and no simulator events of its own;
// arrivals are computed (TrafficGenerator), prescreen is chunk-ordered
// (TxAcceptor), and dissemination is the strategy's own bit-identical
// simulation — so every DriverReport field is identical at any
// --threads/--shards combination.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "chain/chain.h"
#include "chain/mempool.h"
#include "chain/workload.h"
#include "common/stats.h"
#include "ingest/acceptor.h"
#include "strategy/strategy.h"

namespace ici::ingest {

struct DriverConfig {
  /// Proposal cadence in simulated µs.
  std::uint64_t block_interval_us = 500'000;
  std::size_t blocks = 20;
  /// Max non-coinbase txs per block template.
  std::size_t max_block_txs = 4'000;
  Mempool::Config mempool;
  AcceptorConfig acceptor;
  /// Record the txid of every accepted tx in admission order (the
  /// determinism suites compare it across --threads/--shards).
  bool capture_accepted_order = false;
  std::uint64_t miner_seed = 0xace;
  /// Invoked right after Strategy::init — e.g. to install a fault plan
  /// (message faults only; crash schedules never quiesce a settle-driven
  /// run) before the first proposal.
  std::function<void(core::Strategy&)> after_init;
  /// Test seam, invoked before each template fill with the proposal height,
  /// the live pool, and the chain so far. The regression suite uses it to
  /// re-admit an already-confirmed tx directly — the acceptor's stateful
  /// prescreen blocks that upstream, so only a direct pool write can prove
  /// the template's ancestor-confirmation guard.
  std::function<void(std::uint64_t height, Mempool&, const Chain&)> before_template;
};

/// Everything one pipeline run produced. All fields are deterministic.
struct DriverReport {
  AcceptorCounters ingest;
  Mempool::Stats mempool;
  std::uint64_t batch_occupancy_pct = 0;
  std::uint64_t blocks_proposed = 0;
  std::uint64_t txs_confirmed = 0;
  /// Template slots refused because the txid was already confirmed in an
  /// ancestor block (docs/INGEST.md, duplicate-confirmation guard).
  std::uint64_t template_skipped_confirmed = 0;
  std::uint64_t generated = 0;
  std::uint64_t skipped_no_funds = 0;
  /// Driver logical clock when the run finished (µs): the last block's
  /// full-commit time.
  std::uint64_t final_time_us = 0;
  /// Confirmed txs per second of simulated time.
  double sustained_tps = 0;
  /// Generated arrivals per second of simulated time.
  double offered_tps = 0;
  /// Client submit → tx inside a disseminated-and-verified block (µs).
  Histogram submit_to_commit_us;
  /// Backpressure retry-after hints (µs).
  Histogram retry_after_us;
  /// Filled when DriverConfig::capture_accepted_order.
  std::vector<Hash256> accepted_order;
};

class IngestDriver {
 public:
  IngestDriver(DriverConfig cfg, TrafficConfig traffic)
      : cfg_(cfg), traffic_(traffic) {}

  /// Runs the pipeline end to end. The strategy must be freshly constructed
  /// (the driver generates genesis and calls init itself). Also mirrors the
  /// final ingest.*/mempool.* tallies into the strategy's metrics registry,
  /// when it has one, so sim-driven artifacts carry them.
  DriverReport run(core::Strategy& strategy);

 private:
  DriverConfig cfg_;
  TrafficConfig traffic_;
};

/// Overwrites the ingest.*/mempool.* counters in `registry` with the
/// report's tallies (reset+inc, idempotent — the sim_metrics sync pattern).
void sync_ingest_counters(const DriverReport& report, metrics::Registry& registry);

}  // namespace ici::ingest
