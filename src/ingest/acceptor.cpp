#include "ingest/acceptor.h"

#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace ici::ingest {

TxAcceptor::TxAcceptor(AcceptorConfig cfg, Mempool* pool, const UtxoSet* utxo)
    : cfg_(cfg),
      pool_(pool),
      utxo_(utxo),
      validator_(ValidatorConfig{.check_signatures = cfg.check_signatures}),
      next_tick_us_(cfg.batch_interval_us) {
  if (cfg_.queue_capacity == 0) cfg_.queue_capacity = 1;
  if (cfg_.batch_budget == 0) cfg_.batch_budget = 1;
  if (cfg_.batch_interval_us == 0) cfg_.batch_interval_us = 1;
}

TxAcceptor::Submit TxAcceptor::submit(Transaction tx, std::uint64_t at_us) {
  advance(at_us);
  ++counters_.submitted;
  if (queue_.size() >= cfg_.queue_capacity) {
    ++counters_.rejected_backpressure;
    // Retry-after hint: the earliest tick that can free queue budget.
    retry_after_us_.add(static_cast<double>(next_tick_us_ > at_us ? next_tick_us_ - at_us
                                                                  : cfg_.batch_interval_us));
    drop(tx, DropReason::kBackpressure);
    return Submit::kRejected;
  }
  queue_.push_back(Queued{at_us, std::move(tx)});
  return Submit::kQueued;
}

void TxAcceptor::advance(std::uint64_t to_us) {
  while (next_tick_us_ <= to_us) {
    run_batch();
    next_tick_us_ += cfg_.batch_interval_us;
  }
}

bool TxAcceptor::remember(const Hash256& txid) {
  if (!seen_.insert(txid).second) return false;
  seen_order_.push_back(txid);
  while (seen_order_.size() > cfg_.dedup_window) {
    seen_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return true;
}

void TxAcceptor::drop(const Transaction& tx, DropReason reason) {
  if (on_drop_) on_drop_(tx, reason);
}

void TxAcceptor::run_batch() {
  if (queue_.empty()) return;  // idle ticks don't count as batches

  std::vector<Queued> batch;
  batch.reserve(std::min(cfg_.batch_budget, queue_.size()));
  while (!queue_.empty() && batch.size() < cfg_.batch_budget) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  ++counters_.batches;
  counters_.batched_txs += batch.size();

  // Dedup sequentially first: within-batch duplicates must resolve in
  // submission order no matter how prescreen chunks are scheduled.
  std::vector<Queued> fresh;
  fresh.reserve(batch.size());
  for (Queued& q : batch) {
    if (!remember(q.tx.txid())) {
      ++counters_.deduped;
      drop(q.tx, DropReason::kDuplicate);
      continue;
    }
    fresh.push_back(std::move(q));
  }
  if (fresh.empty()) return;

  // Prescreen chunk-ordered on the worker pool: each index writes only its
  // own slot and reads the (frozen) UTXO view, so the result vector is
  // bit-identical at any thread count.
  struct Screen {
    bool ok = false;
    Amount fee = 0;
  };
  std::vector<Screen> screens(fresh.size());
  ThreadPool::global().parallel_for(
      0, fresh.size(), cfg_.prescreen_grain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const Transaction& tx = fresh[i].tx;
          if (!validator_.check_tx_stateless(tx)) continue;
          Amount in_value = 0;
          bool inputs_ok = !tx.inputs().empty();
          for (const TxInput& in : tx.inputs()) {
            const auto entry = utxo_->find(in.prevout);
            if (!entry || entry->output.recipient != in.pub) {
              inputs_ok = false;
              break;
            }
            in_value += entry->output.value;
          }
          if (!inputs_ok || tx.total_output() > in_value) continue;
          const Amount fee = in_value - tx.total_output();
          if (fee < cfg_.min_fee) continue;
          screens[i] = Screen{true, fee};
        }
      });

  // Admission in submission order (the mempool's tie-break seq is the
  // admission sequence, so this order is part of the determinism contract).
  std::vector<Transaction> evicted;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    if (!screens[i].ok) {
      ++counters_.prescreen_failed;
      drop(fresh[i].tx, DropReason::kPrescreen);
      continue;
    }
    evicted.clear();
    if (pool_->add(fresh[i].tx, screens[i].fee, &evicted)) {
      ++counters_.accepted;
      if (on_accept_) on_accept_(fresh[i].tx, screens[i].fee, fresh[i].at_us);
    } else {
      drop(fresh[i].tx, DropReason::kMempoolRejected);
    }
    for (const Transaction& out : evicted) drop(out, DropReason::kEvicted);
  }
}

std::uint64_t TxAcceptor::batch_occupancy_pct() const {
  if (counters_.batches == 0) return 0;
  return counters_.batched_txs * 100 / (counters_.batches * cfg_.batch_budget);
}

}  // namespace ici::ingest
