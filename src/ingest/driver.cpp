#include "ingest/driver.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "chain/chain.h"
#include "chain/validator.h"

namespace ici::ingest {

DriverReport IngestDriver::run(core::Strategy& strategy) {
  TrafficGenerator gen(traffic_);
  Block genesis = gen.make_genesis();
  strategy.init(genesis);
  if (cfg_.after_init) cfg_.after_init(strategy);
  gen.confirm(genesis);
  Chain chain(genesis);

  UtxoSet utxo;
  std::unordered_set<Hash256, Hash256Hasher> confirmed_ids;
  for (const Transaction& tx : genesis.txs()) {
    utxo.apply_tx(tx, 0);
    confirmed_ids.insert(tx.txid());
  }

  DriverReport report;
  Mempool pool(cfg_.mempool);
  TxAcceptor acceptor(cfg_.acceptor, &pool, &utxo);

  std::unordered_map<Hash256, std::uint64_t, Hash256Hasher> submitted_at;
  acceptor.set_on_accept(
      [&](const Transaction& tx, Amount /*fee*/, std::uint64_t at_us) {
        submitted_at[tx.txid()] = at_us;
        if (cfg_.capture_accepted_order) report.accepted_order.push_back(tx.txid());
      });
  acceptor.set_on_drop([&](const Transaction& tx, DropReason reason) {
    // Refund the locked inputs so sustained overload cannot drain the
    // spendable pool — except duplicates, whose inputs belong to the live
    // original submission.
    if (reason == DropReason::kDuplicate) return;
    if (reason == DropReason::kEvicted) submitted_at.erase(tx.txid());
    gen.release(tx);
  });

  ValidatorConfig vcfg;
  vcfg.max_block_txs = cfg_.max_block_txs + 1;  // + coinbase
  vcfg.check_signatures = cfg_.acceptor.check_signatures;
  const Validator validator(vcfg);
  const KeyPair miner = KeyPair::from_seed(traffic_.seed ^ cfg_.miner_seed);

  // The driver's logical clock. Proposals serialize on full commit: block h
  // cannot be proposed before block h-1 finished disseminating, so when
  // latency exceeds the interval the schedule slips — the measured
  // saturation. Deliberately NOT the strategy's internal sim clock: settle()
  // drains trailing timeout no-ops scheduled far past the commit, so the sim
  // clock overshoots the pipeline's actual progress.
  std::uint64_t clock_us = 0;

  for (std::uint64_t h = 1; h <= cfg_.blocks; ++h) {
    const std::uint64_t target = h * cfg_.block_interval_us;
    const std::uint64_t propose_at = std::max(clock_us, target);

    for (TrafficArrival& arrival : gen.arrivals_until(propose_at)) {
      (void)acceptor.submit(std::move(arrival.tx), arrival.at_us);
    }
    acceptor.advance(propose_at);
    if (cfg_.before_template) cfg_.before_template(h, pool, chain);

    std::vector<Transaction> txs;
    txs.reserve(cfg_.max_block_txs + 1);
    txs.push_back(
        Transaction::coinbase(miner.pub, validator.config().block_reward, h));
    while (txs.size() < cfg_.max_block_txs + 1 && !pool.empty()) {
      for (Transaction& tx : pool.take(cfg_.max_block_txs + 1 - txs.size())) {
        // The ancestor-confirmation guard: the pool knows nothing about
        // chain history, so the template fill is where an already-confirmed
        // txid (double submission straddling the dedup window, or a direct
        // pool write) must be caught.
        if (confirmed_ids.contains(tx.txid())) {
          ++report.template_skipped_confirmed;
          continue;
        }
        txs.push_back(std::move(tx));
      }
    }

    Block block = Block::assemble(chain.tip().hash(), h, propose_at, std::move(txs));
    if (const auto r = validator.validate_and_apply(block, chain.tip().hash(), h, utxo); !r) {
      throw std::logic_error("ingest driver assembled an invalid block: " + r.reason);
    }

    const sim::SimTime latency = strategy.ingest(block);
    const std::uint64_t commit_at = propose_at + latency;
    clock_us = commit_at;
    for (const Transaction& tx : block.txs()) {
      if (tx.is_coinbase()) continue;
      confirmed_ids.insert(tx.txid());
      ++report.txs_confirmed;
      if (const auto it = submitted_at.find(tx.txid()); it != submitted_at.end()) {
        report.submit_to_commit_us.add(static_cast<double>(commit_at - it->second));
        submitted_at.erase(it);
      }
    }
    pool.remove_confirmed(block.txs());
    gen.confirm(block);
    chain.append(std::move(block));
    ++report.blocks_proposed;
  }

  report.ingest = acceptor.counters();
  report.mempool = pool.stats();
  report.batch_occupancy_pct = acceptor.batch_occupancy_pct();
  report.generated = gen.generated();
  report.skipped_no_funds = gen.skipped_no_funds();
  report.final_time_us = clock_us;
  report.retry_after_us = acceptor.retry_after_us();
  if (report.final_time_us > 0) {
    const double seconds = static_cast<double>(report.final_time_us) / 1e6;
    report.sustained_tps = static_cast<double>(report.txs_confirmed) / seconds;
    report.offered_tps = static_cast<double>(report.generated) / seconds;
  }

  if (metrics::Registry* registry = strategy.metrics_registry()) {
    sync_ingest_counters(report, *registry);
  }
  return report;
}

void sync_ingest_counters(const DriverReport& report, metrics::Registry& registry) {
  const auto set = [&registry](const char* name, std::uint64_t value) {
    metrics::Counter& c = registry.counter(name);
    c.reset();
    c.inc(value);
  };
  set("ingest.submitted", report.ingest.submitted);
  set("ingest.accepted", report.ingest.accepted);
  set("ingest.deduped", report.ingest.deduped);
  set("ingest.rejected_backpressure", report.ingest.rejected_backpressure);
  set("ingest.prescreen_failed", report.ingest.prescreen_failed);
  set("ingest.batches", report.ingest.batches);
  set("ingest.batch_occupancy_pct", report.batch_occupancy_pct);
  set("ingest.confirmed", report.txs_confirmed);
  set("ingest.template_skipped_confirmed", report.template_skipped_confirmed);
  set("mempool.accepted", report.mempool.accepted);
  set("mempool.evictions", report.mempool.evictions);
  set("mempool.rejected_full", report.mempool.rejected_full);
  set("mempool.size_peak", report.mempool.size_peak);
}

}  // namespace ici::ingest
