// TxAcceptor — the admission front end between simulated clients and the
// mempool (docs/INGEST.md).
//
// Clients submit signed transactions at simulated timestamps. The acceptor
// holds them in a bounded submission queue (overflow = deterministic
// backpressure rejects with a retry-after hint), then drains the queue on a
// fixed batch cadence: each tick takes up to `batch_budget` submissions,
// deduplicates them by txid against a recent-seen window, pre-screens
// fee/validity — signatures plus UTXO existence/ownership — chunk-ordered on
// the global worker pool (results are bit-identical at any --threads), and
// admits survivors to the fee-prioritized mempool in submission order.
//
// Everything is plain harness code driven by explicit submit()/advance()
// calls carrying simulated time: no simulator events, no RNG, so the whole
// pipeline is trivially deterministic under --shards as well.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>

#include "chain/mempool.h"
#include "chain/transaction.h"
#include "chain/utxo.h"
#include "chain/validator.h"
#include "common/stats.h"

namespace ici::ingest {

struct AcceptorConfig {
  /// Bounded submission queue; a full queue rejects with backpressure.
  std::size_t queue_capacity = 16'384;
  /// Max submissions admitted per batch tick.
  std::size_t batch_budget = 512;
  /// Batch cadence in simulated µs.
  std::uint64_t batch_interval_us = 50'000;
  /// Recently-seen txids remembered for dedup.
  std::size_t dedup_window = 65'536;
  /// Minimum derived fee (inputs − outputs) to pass prescreen.
  Amount min_fee = 0;
  /// Verify input signatures during prescreen.
  bool check_signatures = true;
  /// parallel_for grain for the prescreen pass (chunk shape is part of the
  /// determinism contract only through result order, which is index-based).
  std::size_t prescreen_grain = 64;
};

/// Monotonic pipeline tallies — the source of the ingest.* counters.
struct AcceptorCounters {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t deduped = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t prescreen_failed = 0;
  std::uint64_t batches = 0;      ///< non-empty batch ticks
  std::uint64_t batched_txs = 0;  ///< submissions drained into batches
};

/// Why the pipeline dropped a submission (reported via the drop hook so the
/// traffic source can refund locked outputs — except duplicates, whose
/// inputs are still owned by the live original).
enum class DropReason {
  kBackpressure,     ///< submission queue full
  kDuplicate,        ///< txid in the recent-seen window
  kPrescreen,        ///< failed fee/signature/UTXO prescreen
  kMempoolRejected,  ///< pool refused it (conflict, dup, or full)
  kEvicted,          ///< displaced from the pool by a better fee
};

class TxAcceptor {
 public:
  using AcceptFn =
      std::function<void(const Transaction&, Amount fee, std::uint64_t submitted_at_us)>;
  using DropFn = std::function<void(const Transaction&, DropReason)>;

  /// `pool` and `utxo` must outlive the acceptor. The UTXO view is read
  /// concurrently by prescreen chunks; the caller must not mutate it while
  /// submit()/advance() is running (the ingest driver applies blocks only
  /// between batches).
  TxAcceptor(AcceptorConfig cfg, Mempool* pool, const UtxoSet* utxo);

  void set_on_accept(AcceptFn fn) { on_accept_ = std::move(fn); }
  void set_on_drop(DropFn fn) { on_drop_ = std::move(fn); }

  enum class Submit { kQueued, kRejected };

  /// Client submission at simulated time `at_us`. Runs any batch ticks due
  /// first (submissions arrive in nondecreasing time order), then enqueues
  /// or rejects with backpressure.
  Submit submit(Transaction tx, std::uint64_t at_us);

  /// Runs every batch tick with deadline ≤ to_us.
  void advance(std::uint64_t to_us);

  [[nodiscard]] const AcceptorCounters& counters() const { return counters_; }
  /// Suggested client wait (µs until the next batch tick) per backpressure
  /// reject — the deterministic retry-after accounting.
  [[nodiscard]] const Histogram& retry_after_us() const { return retry_after_us_; }
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }
  /// Mean batch fill as a percentage of batch_budget (0 when no batch ran).
  [[nodiscard]] std::uint64_t batch_occupancy_pct() const;

 private:
  struct Queued {
    std::uint64_t at_us = 0;
    Transaction tx;
  };

  void run_batch();
  /// True if freshly inserted, false if already in the window.
  bool remember(const Hash256& txid);
  void drop(const Transaction& tx, DropReason reason);

  AcceptorConfig cfg_;
  Mempool* pool_;
  const UtxoSet* utxo_;
  Validator validator_;
  AcceptFn on_accept_;
  DropFn on_drop_;

  std::deque<Queued> queue_;
  std::unordered_set<Hash256, Hash256Hasher> seen_;
  std::deque<Hash256> seen_order_;
  std::uint64_t next_tick_us_ = 0;
  AcceptorCounters counters_;
  Histogram retry_after_us_;
};

}  // namespace ici::ingest
