// Pruned full-replication baseline (the "just prune old blocks" answer to
// blockchain storage pressure, à la Bitcoin -prune / Ethereum snapshot
// sync).
//
// Every node keeps (a) all headers, (b) the full UTXO snapshot, and (c) the
// most recent `window` block bodies; older bodies are dropped. Per-node
// storage is bounded, but — unlike ICIStrategy — the *network as a whole*
// loses the ability to serve deep history: availability of a historical
// block is 0 once it leaves every window. That trade-off is exactly what
// experiment E17 tabulates against ICIStrategy's collective retention.
//
// Modelled statically (no dissemination protocol of its own — pruning is a
// storage policy, and its gossip behaviour matches the full-replication
// baseline).
#pragma once

#include <memory>

#include "chain/chain.h"
#include "chain/utxo.h"
#include "storage/block_store.h"

namespace ici::baseline {

struct PrunedConfig {
  std::size_t node_count = 64;
  /// Recent bodies each node retains.
  std::size_t window = 128;
};

/// One pruned node's storage state.
class PrunedNode {
 public:
  explicit PrunedNode(std::size_t window) : window_(window) {}

  /// Appends the next block: stores header + body, applies it to the UTXO
  /// snapshot, prunes bodies older than the window.
  void apply(const std::shared_ptr<const Block>& block);

  [[nodiscard]] const BlockStore& store() const { return store_; }
  [[nodiscard]] const UtxoSet& utxo() const { return utxo_; }

  /// Serialized size of the UTXO snapshot a syncing peer would download:
  /// entries of outpoint (36) + value (8) + recipient (32).
  [[nodiscard]] std::uint64_t snapshot_bytes() const { return utxo_.size() * (36 + 8 + 32); }

  /// Total persisted bytes: headers + windowed bodies + UTXO snapshot.
  [[nodiscard]] std::uint64_t storage_bytes() const {
    return store_.total_bytes() + snapshot_bytes();
  }

 private:
  std::size_t window_;
  BlockStore store_;
  UtxoSet utxo_;
  std::vector<Hash256> body_order_;  // oldest-first retained bodies
};

/// Fleet of identical pruned nodes processing the same chain.
class PrunedNetwork {
 public:
  explicit PrunedNetwork(PrunedConfig cfg);

  /// Feeds the whole chain through every node's pruning policy.
  void preload_chain(const Chain& chain);

  /// Appends one block through the pruning policy (incremental ingest; the
  /// strategy facade feeds blocks one at a time).
  void apply(const std::shared_ptr<const Block>& block) { node_.apply(block); }

  [[nodiscard]] std::size_t node_count() const { return cfg_.node_count; }
  [[nodiscard]] const PrunedNode& node() const { return node_; }

  /// All nodes are identical; per-node storage is node().storage_bytes().
  [[nodiscard]] std::uint64_t per_node_bytes() const { return node_.storage_bytes(); }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return per_node_bytes() * cfg_.node_count;
  }

  /// Fraction of the chain's blocks that ANY node can still serve — the
  /// quantity pruning sacrifices (ICIStrategy keeps it at 1.0).
  [[nodiscard]] double historical_availability(const Chain& chain) const;

  /// Bootstrap download for a snapshot-syncing joiner: headers + UTXO
  /// snapshot + window of recent bodies.
  [[nodiscard]] std::uint64_t bootstrap_bytes() const;

 private:
  PrunedConfig cfg_;
  // All nodes behave identically under the same policy; one representative
  // node carries the state (documented memory optimization).
  PrunedNode node_;
};

}  // namespace ici::baseline
