// RapidChain-style committee-sharding baseline (Zamani et al., CCS'18),
// modelled at storage/dissemination fidelity — the comparison target of the
// paper's headline claim ("ICIStrategy needs ~25% of the storage RapidChain
// does").
//
// Faithful parts:
//  * nodes are assigned to k committees by hash (uniform at random);
//  * each committee stores only its own shard of the ledger, but every
//    member replicates that shard in full — per-node storage ≈ D/k;
//  * blocks spread inside a committee by IDA-style chunked gossip: the
//    leader sends each member one distinct chunk, members flood chunks
//    until everyone can reconstruct.
//
// Simplified parts (documented in DESIGN.md): consensus (50-round BFT),
// cross-shard transaction routing, and epoch reconfiguration (Cuckoo rule)
// are out of scope — they do not change per-node storage or the per-block
// dissemination byte counts compared here. Sharding is block-granular
// (block → committee by block hash) rather than tx-granular.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "chain/chain.h"
#include "common/arena.h"
#include "metrics/registry.h"
#include "sim/faults.h"
#include "sim/network.h"
#include "storage/block_store.h"
#include "storage/fleet_tally.h"
#include "storage/header_index.h"
#include "storage/store_runtime.h"
#include "sync/serve.h"
#include "sync/session.h"

namespace ici::baseline {

struct RapidChainConfig {
  std::size_t node_count = 64;
  /// Number of committees k. Committee size m ≈ N/k.
  std::size_t committee_count = 4;
  /// Ring successors each member relays a fresh chunk to. 1 is the minimum
  /// for completeness; each extra unit adds one redundant copy of the block
  /// per member (IDA gossip's erasure redundancy, simplified).
  std::size_t gossip_degree = 2;
  sim::NetworkConfig net;
  std::size_t regions = 5;
  std::uint64_t seed = 1;
  /// Event shards for the simulator; whole committees share a lane
  /// (committee % shards). 0 = sim::default_shards() (--shards).
  std::size_t shards = 0;
  /// Serve-side bulk-sync rate limit in bytes/s of sim time; 0 = off.
  double sync_serve_rate_bps = 0.0;
  /// Body-persistence backend per node (--store); mem changes nothing.
  StoreConfig store;
};

// -- wire messages ----------------------------------------------------------

/// One IDA chunk of a block (1/m of the body plus chunk metadata).
struct ChunkMsg final : sim::MessageBase {
  Hash256 block_hash;
  std::uint32_t chunk_index = 0;
  std::uint32_t chunk_count = 0;
  std::size_t chunk_bytes = 0;

  [[nodiscard]] std::size_t wire_size() const override { return 32 + 8 + chunk_bytes; }
  [[nodiscard]] const char* type_name() const override { return "Chunk"; }
};

/// Bootstrap shard download.
struct ShardRequestMsg final : sim::MessageBase {
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
  [[nodiscard]] const char* type_name() const override { return "ShardRequest"; }
};

struct ShardResponseMsg final : sim::MessageBase {
  std::vector<std::shared_ptr<const Block>> blocks;
  [[nodiscard]] std::size_t wire_size() const override {
    std::size_t total = 4;
    for (const auto& b : blocks) total += b->serialized_size();
    return total;
  }
  [[nodiscard]] const char* type_name() const override { return "ShardResponse"; }
};

// -- network ------------------------------------------------------------------

class RapidChainNetwork;

class RapidChainNode final : public sim::INode, private sync::BulkPullSession::Env {
 public:
  RapidChainNode(RapidChainNetwork& ctx, sim::NodeId id, std::size_t committee);

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override;

  /// Leader path: store the block and start IDA dissemination.
  void lead_dissemination(std::shared_ptr<const Block> block);

  void start_shard_sync(sim::NodeId peer, std::function<void(std::size_t)> on_done);

  /// Streaming bulk-sync join (docs/BOOTSTRAP.md): pull the committee shard
  /// from multiple members in parallel. Heights are sparse (the committee
  /// holds only its own blocks) so ranges use the gapped flavour.
  void start_streaming_sync(const sync::SyncConfig& cfg,
                            sync::SyncCheckpoint* checkpoint,
                            std::vector<sim::NodeId> candidates,
                            std::function<void(const sync::SyncReport&)> on_done);
  /// Crash semantics: drops the in-memory session (timers become inert).
  void abandon_sync() { sync_session_.reset(); }

  [[nodiscard]] BlockStore& store() { return store_; }
  [[nodiscard]] const BlockStore& store() const { return store_; }
  [[nodiscard]] std::size_t committee() const { return committee_; }

 private:
  void receive_chunk(const ChunkMsg& msg, sim::NodeId from);

  // -- streaming sync (sync::BulkPullSession::Env + serving) -------------
  void handle_sync_message(sim::NodeId from, const sync::SyncMessage& msg);
  void send_sync_response(sim::NodeId to, sim::MessagePtr msg,
                          std::uint64_t io_delay_us = 0);
  [[nodiscard]] sim::NodeId sync_self() const override { return id_; }
  [[nodiscard]] sim::Simulator& sync_simulator() override;
  void sync_send(sim::NodeId to, sim::MessagePtr msg) override;
  [[nodiscard]] std::size_t sync_message_overhead() const override;
  [[nodiscard]] bool sync_linked_headers() const override { return false; }
  [[nodiscard]] sync::PullMode sync_range_mode() const override {
    return sync::PullMode::kHeadersAndBodies;
  }
  [[nodiscard]] bool sync_coded() const override { return false; }
  void sync_commit_header(const BlockHeader& header, const Hash256& hash) override;
  [[nodiscard]] bool sync_wants_body(const Hash256& hash, std::uint64_t height) override;
  void sync_commit_body(const std::shared_ptr<const Block>& block) override;
  [[nodiscard]] std::vector<sim::NodeId> sync_body_candidates(
      const Hash256& hash, std::uint64_t height) override;
  void sync_fetch_assigned_shard(
      const Hash256&, std::uint64_t,
      std::function<void(std::shared_ptr<const Block>)> done) override {
    if (done) done(nullptr);  // committee replication is uncoded
  }

  RapidChainNetwork& ctx_;
  sim::NodeId id_;
  std::size_t committee_;

  struct Reassembly {
    std::unordered_set<std::uint32_t> chunks;
    std::uint32_t needed = 0;
    bool complete = false;
  };
  std::unordered_map<Hash256, Reassembly, Hash256Hasher> reassembly_;
  BlockStore store_;
  std::function<void(std::size_t)> sync_done_;
  std::shared_ptr<sync::BulkPullSession> sync_session_;
  std::uint64_t sync_epoch_ = 0;
};

class RapidChainNetwork {
 public:
  explicit RapidChainNetwork(RapidChainConfig cfg);
  ~RapidChainNetwork();

  RapidChainNetwork(const RapidChainNetwork&) = delete;
  RapidChainNetwork& operator=(const RapidChainNetwork&) = delete;

  void init_with_genesis(const Block& genesis);

  /// Routes `block` to its committee (by block hash) and runs IDA gossip to
  /// quiescence. Returns time until the whole committee holds the block.
  sim::SimTime disseminate_and_settle(const Block& block);

  /// Statically installs a chain: each block on every member of its
  /// committee.
  void preload_chain(const Chain& chain);

  struct BootstrapReport {
    std::uint64_t bytes_downloaded = 0;
    sim::SimTime elapsed_us = 0;
    std::size_t bodies_fetched = 0;
    std::size_t committee = 0;
    bool complete = false;
    sim::NodeId joiner = 0;
    /// Protocol-level detail (per-peer attribution, retries, resume count).
    sync::SyncReport sync;
  };
  /// New node joins the committee its id hashes to and bulk-pulls the shard
  /// from multiple committee members via the streaming sync protocol.
  [[nodiscard]] BootstrapReport bootstrap(sim::Coord coord);
  [[nodiscard]] BootstrapReport bootstrap(sim::Coord coord, const sync::SyncConfig& cfg);

  /// Split entry points for fault experiments: add the node first (so a
  /// FaultPlan can script crash windows on its id), start faults, then run.
  [[nodiscard]] sim::NodeId add_sync_joiner(sim::Coord coord);
  [[nodiscard]] BootstrapReport bootstrap_added(sim::NodeId joiner,
                                                const sync::SyncConfig& cfg);

  /// Observer for online/offline flips from fault injection (see
  /// IciNetwork::set_status_observer). Pass nullptr to uninstall.
  using StatusObserver = std::function<void(sim::NodeId, bool online)>;
  void set_status_observer(StatusObserver observer) {
    status_observer_ = std::move(observer);
  }

  /// Installs a fault injector over the committee network. RapidChain's
  /// intra-committee replication masks crashes until a whole committee is
  /// down. Call at most once.
  void start_faults(const sim::FaultPlan& plan);
  [[nodiscard]] const sim::FaultInjector* faults() const { return faults_.get(); }

  /// Runs the simulator for `us` of simulated time and refreshes counters.
  void run_for(sim::SimTime us);

  /// Runs the simulator until quiescent and refreshes counters (retires any
  /// in-flight disk appends after a preload, among other things).
  void settle();

  [[nodiscard]] std::size_t committee_of_block(const Hash256& hash) const;
  [[nodiscard]] const std::vector<sim::NodeId>& committee_members(std::size_t c) const;
  [[nodiscard]] std::size_t gossip_degree() const { return cfg_.gossip_degree; }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::Network& network() { return *net_; }
  [[nodiscard]] metrics::Registry& metrics() { return metrics_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] RapidChainNode& node(sim::NodeId id) { return nodes_.at(id); }
  [[nodiscard]] std::vector<const BlockStore*> stores() const;

  /// Fleet-shared header table / contiguous per-node tallies (fleet_tally.h).
  [[nodiscard]] const std::shared_ptr<HeaderIndex>& header_index() const {
    return header_index_;
  }
  [[nodiscard]] FleetTally& fleet_tally() { return fleet_tally_; }

  /// Shared registry of in-flight blocks so members can materialize the
  /// body once their chunk set completes (chunk payloads are simulated).
  [[nodiscard]] std::shared_ptr<const Block> pending_block(const Hash256& hash) const;

  /// Buffered per lane during parallel shard windows, applied at the next
  /// barrier in (at, key) order (shard-count-invariant bookkeeping).
  void note_stored(sim::NodeId id, const Hash256& hash);

  /// Serve-side sync throttle, or nullptr when --sync-serve-rate is 0.
  [[nodiscard]] sync::ServeThrottle* serve_throttle() { return serve_throttle_.get(); }

 private:
  void note_stored_now(const Hash256& hash, sim::SimTime at);
  void flush_deferred_stores();
  void install_backend(RapidChainNode& node, sim::NodeId id);

  RapidChainConfig cfg_;
  std::size_t shards_ = 1;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  // Shared header snapshot + SoA tallies outlive the nodes bound to them;
  // the store runtime owns the on-disk root the backends write under.
  std::shared_ptr<HeaderIndex> header_index_ = std::make_shared<HeaderIndex>();
  FleetTally fleet_tally_;
  std::unique_ptr<StoreRuntime> store_runtime_;
  ObjectArena<RapidChainNode> nodes_;
  std::unique_ptr<sim::FaultInjector> faults_;  // after net_: hook uninstall order
  std::vector<std::vector<sim::NodeId>> committees_;
  std::vector<sim::Coord> coords_;
  metrics::Registry metrics_;

  std::unordered_map<Hash256, std::shared_ptr<const Block>, Hash256Hasher> pending_;
  struct Spread {
    sim::SimTime started = 0;
    std::size_t holders = 0;
    std::size_t committee_size = 0;
    sim::SimTime finished = 0;
  };
  std::unordered_map<Hash256, Spread, Hash256Hasher> spreads_;
  struct DeferredStore {
    sim::SimTime at = 0;
    std::uint64_t key = 0;
    Hash256 hash;
  };
  std::vector<std::vector<DeferredStore>> deferred_stores_;
  std::unique_ptr<sync::ServeThrottle> serve_throttle_;
  std::uint64_t leader_cursor_ = 0;
  bool genesis_done_ = false;
  StatusObserver status_observer_;
};

}  // namespace ici::baseline
