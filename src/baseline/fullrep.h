// Full-replication baseline (Bitcoin-style): every node stores every block,
// validates every transaction, and learns about new blocks through
// INV/GETDATA gossip over a random peer graph.
//
// This is the "blockchain is hard to scale" strawman the paper's
// introduction motivates: per-node storage equals the whole ledger, and a
// disseminated block crosses every link roughly once (plus INV chatter).
#pragma once

#include <memory>
#include <unordered_set>

#include "chain/chain.h"
#include "chain/validator.h"
#include "common/arena.h"
#include "common/stats.h"
#include "metrics/registry.h"
#include "sim/churn.h"
#include "sim/faults.h"
#include "sim/network.h"
#include "storage/block_store.h"
#include "storage/fleet_tally.h"
#include "storage/header_index.h"
#include "storage/store_runtime.h"
#include "sync/serve.h"
#include "sync/session.h"

namespace ici::baseline {

struct FullRepConfig {
  std::size_t node_count = 64;
  /// Outbound peers per node (graph is used bidirectionally).
  std::size_t peer_degree = 8;
  /// Full stateful validation at every node. Disable for storage-only
  /// experiments at large N (saves the per-node UTXO copies).
  bool validate = true;
  sim::NetworkConfig net;
  std::size_t regions = 5;
  std::uint64_t seed = 1;
  /// Event shards for the simulator; contiguous id ranges share a lane
  /// (there are no clusters here). 0 = sim::default_shards() (--shards).
  std::size_t shards = 0;
  /// Serve-side bulk-sync rate limit in bytes/s of sim time; 0 = off.
  double sync_serve_rate_bps = 0.0;
  /// Body-persistence backend per node (--store); mem changes nothing.
  StoreConfig store;
};

// -- wire messages ----------------------------------------------------------

struct FullRepMessage : sim::MessageBase {};

struct InvMsg final : FullRepMessage {
  Hash256 hash;
  [[nodiscard]] std::size_t wire_size() const override { return 32; }
  [[nodiscard]] const char* type_name() const override { return "Inv"; }
};

struct GetDataMsg final : FullRepMessage {
  Hash256 hash;
  [[nodiscard]] std::size_t wire_size() const override { return 32; }
  [[nodiscard]] const char* type_name() const override { return "GetData"; }
};

struct GossipBlockMsg final : FullRepMessage {
  std::shared_ptr<const Block> block;
  [[nodiscard]] std::size_t wire_size() const override { return block->serialized_size(); }
  [[nodiscard]] const char* type_name() const override { return "GossipBlock"; }
};

/// Bootstrap: "send me every block from height X".
struct SyncRequestMsg final : FullRepMessage {
  std::uint64_t from_height = 0;
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
  [[nodiscard]] const char* type_name() const override { return "SyncRequest"; }
};

struct SyncResponseMsg final : FullRepMessage {
  std::vector<std::shared_ptr<const Block>> blocks;
  [[nodiscard]] std::size_t wire_size() const override {
    std::size_t total = 4;
    for (const auto& b : blocks) total += b->serialized_size();
    return total;
  }
  [[nodiscard]] const char* type_name() const override { return "SyncResponse"; }
};

// -- network ------------------------------------------------------------------

class FullRepNetwork;

class FullRepNode final : public sim::INode, private sync::BulkPullSession::Env {
 public:
  FullRepNode(FullRepNetwork& ctx, sim::NodeId id);

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override;

  /// Proposer path: adopt the block locally and start gossiping it.
  void inject_block(std::shared_ptr<const Block> block);

  [[nodiscard]] BlockStore& store() { return store_; }
  [[nodiscard]] const BlockStore& store() const { return store_; }
  [[nodiscard]] const UtxoSet& utxo() const { return utxo_; }

  void seed_genesis(std::shared_ptr<const Block> genesis);

  /// Bootstrap entry: full-chain download from `peer` (legacy one-shot).
  void start_sync(sim::NodeId peer, std::function<void(std::size_t)> on_done);

  /// Streaming bulk-sync join (docs/BOOTSTRAP.md): frontier exchange with
  /// `candidates`, then windowed multi-peer bulk pull of headers+bodies.
  /// `checkpoint` is held by the driver so it survives a mid-sync crash.
  void start_streaming_sync(const sync::SyncConfig& cfg,
                            sync::SyncCheckpoint* checkpoint,
                            std::vector<sim::NodeId> candidates,
                            std::function<void(const sync::SyncReport&)> on_done);
  /// Crash semantics: drops the in-memory session (timers become inert).
  void abandon_sync() { sync_session_.reset(); }

 private:
  void accept_block(std::shared_ptr<const Block> block, sim::NodeId from);
  void announce(const Hash256& hash, sim::NodeId except);

  // -- streaming sync (sync::BulkPullSession::Env + serving) -------------
  void handle_sync_message(sim::NodeId from, const sync::SyncMessage& msg);
  void send_sync_response(sim::NodeId to, sim::MessagePtr msg,
                          std::uint64_t io_delay_us = 0);
  [[nodiscard]] sim::NodeId sync_self() const override { return id_; }
  [[nodiscard]] sim::Simulator& sync_simulator() override;
  void sync_send(sim::NodeId to, sim::MessagePtr msg) override;
  [[nodiscard]] std::size_t sync_message_overhead() const override;
  [[nodiscard]] bool sync_linked_headers() const override { return true; }
  [[nodiscard]] sync::PullMode sync_range_mode() const override {
    return sync::PullMode::kHeadersAndBodies;
  }
  [[nodiscard]] bool sync_coded() const override { return false; }
  void sync_commit_header(const BlockHeader& header, const Hash256& hash) override;
  [[nodiscard]] bool sync_wants_body(const Hash256&, std::uint64_t) override {
    return true;  // full replication wants every body
  }
  void sync_commit_body(const std::shared_ptr<const Block>& block) override;
  [[nodiscard]] std::vector<sim::NodeId> sync_body_candidates(
      const Hash256& hash, std::uint64_t height) override;
  void sync_fetch_assigned_shard(
      const Hash256&, std::uint64_t,
      std::function<void(std::shared_ptr<const Block>)> done) override {
    if (done) done(nullptr);  // full replication never codes
  }

  FullRepNetwork& ctx_;
  sim::NodeId id_;
  BlockStore store_;
  UtxoSet utxo_;
  Validator validator_;
  std::unordered_set<Hash256, Hash256Hasher> requested_;
  std::function<void(std::size_t)> sync_done_;
  std::shared_ptr<sync::BulkPullSession> sync_session_;
  std::uint64_t sync_epoch_ = 0;
};

class FullRepNetwork {
 public:
  explicit FullRepNetwork(FullRepConfig cfg);
  ~FullRepNetwork();

  FullRepNetwork(const FullRepNetwork&) = delete;
  FullRepNetwork& operator=(const FullRepNetwork&) = delete;

  void init_with_genesis(const Block& genesis);

  /// Gossips `block` from a rotating proposer and runs to quiescence.
  /// Returns the time until the last online node stored the block.
  sim::SimTime disseminate_and_settle(const Block& block);

  /// Statically installs a chain on every node (storage experiments).
  void preload_chain(const Chain& chain);

  /// Adds a fresh node, streams the full chain from its nearest peers via
  /// the bulk-sync protocol, and reports bytes downloaded + elapsed time.
  struct BootstrapReport {
    std::uint64_t bytes_downloaded = 0;
    sim::SimTime elapsed_us = 0;
    std::size_t bodies_fetched = 0;
    bool complete = false;
    sim::NodeId joiner = 0;
    /// Protocol-level detail (per-peer attribution, retries, resume count).
    sync::SyncReport sync;
  };
  [[nodiscard]] BootstrapReport bootstrap(sim::Coord coord);
  [[nodiscard]] BootstrapReport bootstrap(sim::Coord coord, const sync::SyncConfig& cfg);

  /// Split entry points for fault experiments: add the node first (so a
  /// FaultPlan can script crash windows on its id), start faults, then run.
  [[nodiscard]] sim::NodeId add_sync_joiner(sim::Coord coord);
  [[nodiscard]] BootstrapReport bootstrap_added(sim::NodeId joiner,
                                                const sync::SyncConfig& cfg);

  /// Observer for online/offline flips from fault injection (see
  /// IciNetwork::set_status_observer). Pass nullptr to uninstall.
  using StatusObserver = std::function<void(sim::NodeId, bool online)>;
  void set_status_observer(StatusObserver observer) {
    status_observer_ = std::move(observer);
  }

  /// Installs a fault injector (crashes/drops/partitions) over the gossip
  /// network. Full replication has no repair protocol — offline nodes just
  /// stop serving. Call at most once.
  void start_faults(const sim::FaultPlan& plan);
  [[nodiscard]] const sim::FaultInjector* faults() const { return faults_.get(); }

  /// Runs the simulator for `us` of simulated time and refreshes counters.
  void run_for(sim::SimTime us);

  /// Runs the simulator until quiescent and refreshes counters (retires any
  /// in-flight disk appends after a preload, among other things).
  void settle();

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::Network& network() { return *net_; }
  [[nodiscard]] metrics::Registry& metrics() { return metrics_; }
  [[nodiscard]] const FullRepConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] FullRepNode& node(sim::NodeId id) { return nodes_.at(id); }
  [[nodiscard]] const std::vector<sim::NodeId>& peers(sim::NodeId id) const;
  [[nodiscard]] std::vector<const BlockStore*> stores() const;

  /// Fleet-shared header table / contiguous per-node tallies (fleet_tally.h).
  [[nodiscard]] const std::shared_ptr<HeaderIndex>& header_index() const {
    return header_index_;
  }
  [[nodiscard]] FleetTally& fleet_tally() { return fleet_tally_; }

  /// Called by nodes when they store a disseminated block. During a
  /// parallel shard window the record is buffered per lane and applied at
  /// the next barrier in (at, key) order (shard-count-invariant).
  void note_stored(sim::NodeId id, const Hash256& hash);

  /// Serve-side sync throttle, or nullptr when --sync-serve-rate is 0.
  [[nodiscard]] sync::ServeThrottle* serve_throttle() { return serve_throttle_.get(); }

 private:
  void note_stored_now(const Hash256& hash, sim::SimTime at);
  void flush_deferred_stores();
  void install_backend(FullRepNode& node, sim::NodeId id);

  FullRepConfig cfg_;
  std::size_t shards_ = 1;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  // Shared header snapshot + SoA tallies outlive the nodes bound to them;
  // the store runtime owns the on-disk root the backends write under.
  std::shared_ptr<HeaderIndex> header_index_ = std::make_shared<HeaderIndex>();
  FleetTally fleet_tally_;
  std::unique_ptr<StoreRuntime> store_runtime_;
  ObjectArena<FullRepNode> nodes_;
  std::unique_ptr<sim::FaultInjector> faults_;  // after net_: hook uninstall order
  std::vector<std::vector<sim::NodeId>> peers_;
  std::vector<sim::Coord> coords_;
  metrics::Registry metrics_;

  struct Spread {
    sim::SimTime started = 0;
    std::size_t holders = 0;
    sim::SimTime finished = 0;
  };
  std::unordered_map<Hash256, Spread, Hash256Hasher> spreads_;
  struct DeferredStore {
    sim::SimTime at = 0;
    std::uint64_t key = 0;
    Hash256 hash;
  };
  std::vector<std::vector<DeferredStore>> deferred_stores_;
  std::unique_ptr<sync::ServeThrottle> serve_throttle_;
  std::uint64_t proposer_cursor_ = 0;
  bool genesis_done_ = false;
  StatusObserver status_observer_;
};

}  // namespace ici::baseline
