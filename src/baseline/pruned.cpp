#include "baseline/pruned.h"

namespace ici::baseline {

void PrunedNode::apply(const std::shared_ptr<const Block>& block) {
  const Hash256 hash = block->hash();
  for (const Transaction& tx : block->txs()) {
    utxo_.apply_tx(tx, block->header().height);
  }
  store_.put(HashedBlock(block, hash));
  body_order_.push_back(hash);
  while (body_order_.size() > window_) {
    store_.prune_block(body_order_.front());
    body_order_.erase(body_order_.begin());
  }
}

PrunedNetwork::PrunedNetwork(PrunedConfig cfg) : cfg_(cfg), node_(cfg.window) {}

void PrunedNetwork::preload_chain(const Chain& chain) {
  for (const Block& block : chain.blocks()) {
    node_.apply(std::make_shared<const Block>(block));
  }
}

double PrunedNetwork::historical_availability(const Chain& chain) const {
  if (chain.size() == 0) return 1.0;
  std::size_t servable = 0;
  for (const Block& block : chain.blocks()) {
    if (node_.store().has_block(block.hash())) ++servable;
  }
  return static_cast<double>(servable) / static_cast<double>(chain.size());
}

std::uint64_t PrunedNetwork::bootstrap_bytes() const {
  // Headers for the whole chain + the UTXO snapshot + recent bodies.
  return node_.store().header_bytes() + node_.snapshot_bytes() + node_.store().body_bytes();
}

}  // namespace ici::baseline
