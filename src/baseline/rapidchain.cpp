#include "baseline/rapidchain.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "cluster/node_info.h"
#include "common/rng.h"
#include "metrics/sim_metrics.h"
#include "obs/trace.h"
#include "sim/lbts.h"
#include "sim/shard.h"
#include "storage/store_metrics.h"
#include "sync/driver.h"
#include "sync/serve.h"

namespace ici::baseline {

RapidChainNode::RapidChainNode(RapidChainNetwork& ctx, sim::NodeId id, std::size_t committee)
    : ctx_(ctx), id_(id), committee_(committee), store_(ctx.header_index()) {
  store_.bind_tally(&ctx.fleet_tally(), id);
}

void RapidChainNode::on_message(sim::NodeId from, const sim::MessagePtr& msg) {
  if (const auto* s = dynamic_cast<const sync::SyncMessage*>(msg.get())) {
    handle_sync_message(from, *s);
    return;
  }
  if (const auto* chunk = dynamic_cast<const ChunkMsg*>(msg.get())) {
    receive_chunk(*chunk, from);
    return;
  }
  if (dynamic_cast<const ShardRequestMsg*>(msg.get()) != nullptr) {
    auto resp = std::make_shared<ShardResponseMsg>();
    std::uint64_t io_delay = 0;
    for (const Hash256& h : store_.stored_hashes()) {
      if (BlockRef ref = store_.block_by_hash(h)) {
        // io_delay_us is completion-relative (queued behind same-instant
        // reads already), so the batch finishes at the max, not the sum.
        io_delay = std::max(io_delay, ref.io_delay_us);
        resp->blocks.push_back(ref.share());
      }
    }
    if (io_delay > 0) {
      ctx_.simulator().after(io_delay, [this, from, resp = std::move(resp)] {
        ctx_.network().send(id_, from, resp);
      });
      return;
    }
    ctx_.network().send(id_, from, std::move(resp));
    return;
  }
  if (const auto* resp = dynamic_cast<const ShardResponseMsg*>(msg.get())) {
    for (const auto& block : resp->blocks) store_.put(HashedBlock(block));
    if (sync_done_) {
      auto done = std::move(sync_done_);
      sync_done_ = nullptr;
      done(resp->blocks.size());
    }
    return;
  }
}

void RapidChainNode::lead_dissemination(std::shared_ptr<const Block> block) {
  const Hash256 hash = block->hash();
  const std::size_t total = block->serialized_size();
  store_.put(HashedBlock(block, hash));
  ctx_.note_stored(id_, hash);

  const auto& members = ctx_.committee_members(committee_);
  const auto m = static_cast<std::uint32_t>(members.size());
  if (m <= 1) return;

  // IDA: one distinct chunk per member; receivers flood chunks onward.
  auto make_chunk = [&](std::uint32_t index) {
    auto chunk = std::make_shared<ChunkMsg>();
    chunk->block_hash = hash;
    chunk->chunk_index = index;
    chunk->chunk_count = m;
    chunk->chunk_bytes = (total + m - 1) / m;
    return chunk;
  };
  std::uint32_t self_index = 0;
  for (std::uint32_t i = 0; i < m; ++i) {
    if (members[i] == id_) {
      self_index = i;
      continue;
    }
    ctx_.network().send(id_, members[i], make_chunk(i));
  }
  // The leader's own chunk must also enter the relay ring, or nobody can
  // ever reassemble: hand it to the ring successor.
  ctx_.network().send(id_, members[(self_index + 1) % m], make_chunk(self_index));
}

void RapidChainNode::receive_chunk(const ChunkMsg& msg, sim::NodeId from) {
  (void)from;
  auto& re = reassembly_[msg.block_hash];
  re.needed = msg.chunk_count;
  if (!re.chunks.insert(msg.chunk_index).second) return;  // duplicate: flood dies out

  // Forward the fresh chunk to this member's ring successors. Ring
  // forwarding guarantees every chunk eventually circulates the whole
  // committee (each fresh arrival is relayed onward; duplicates stop).
  // Forwarding continues even after local reassembly completed — cutting
  // the relay early would strand downstream members.
  const auto& members = ctx_.committee_members(committee_);
  const auto self =
      std::find(members.begin(), members.end(), id_) - members.begin();
  auto fwd = std::make_shared<ChunkMsg>(msg);
  const std::size_t m = members.size();
  for (std::size_t step = 1; step <= std::min(ctx_.gossip_degree(), m - 1); ++step) {
    const sim::NodeId next = members[(static_cast<std::size_t>(self) + step) % m];
    if (next == id_) continue;
    ctx_.network().send(id_, next, fwd);
  }

  if (!re.complete && re.chunks.size() >= re.needed) {
    re.complete = true;
    if (auto block = ctx_.pending_block(msg.block_hash)) {
      store_.put(HashedBlock(std::move(block), msg.block_hash));
      ctx_.note_stored(id_, msg.block_hash);
    }
  }
}

void RapidChainNode::start_shard_sync(sim::NodeId peer,
                                      std::function<void(std::size_t)> on_done) {
  sync_done_ = std::move(on_done);
  ctx_.network().send(id_, peer, std::make_shared<ShardRequestMsg>());
}

// -- streaming bulk-sync (docs/BOOTSTRAP.md) --------------------------------

void RapidChainNode::start_streaming_sync(
    const sync::SyncConfig& cfg, sync::SyncCheckpoint* checkpoint,
    std::vector<sim::NodeId> candidates,
    std::function<void(const sync::SyncReport&)> on_done) {
  const std::uint64_t session_id =
      (static_cast<std::uint64_t>(id_) << 20) + (++sync_epoch_);
  sync_session_ = sync::BulkPullSession::start(*this, cfg, checkpoint,
                                               std::move(candidates), session_id,
                                               std::move(on_done));
}

void RapidChainNode::handle_sync_message(sim::NodeId from, const sync::SyncMessage& msg) {
  switch (msg.sync_kind()) {
    case sync::SyncMsgKind::kFrontierRequest: {
      const auto& req = static_cast<const sync::FrontierRequestMsg&>(msg);
      send_sync_response(
          from,
          sync::serve_frontier(store_, req, store_.block_count(), /*serves_shards=*/false));
      break;
    }
    case sync::SyncMsgKind::kRangeRequest: {
      const auto& req = static_cast<const sync::RangeRequestMsg&>(msg);
      sync::ServedRange served = sync::serve_range(store_, req);
      send_sync_response(from, std::move(served.msg), served.io_delay_us);
      break;
    }
    case sync::SyncMsgKind::kFrontierResponse:
    case sync::SyncMsgKind::kRangeResponse:
      if (sync_session_) sync_session_->on_sync_message(from, msg);
      break;
  }
}

void RapidChainNode::send_sync_response(sim::NodeId to, sim::MessagePtr msg,
                                        std::uint64_t io_delay_us) {
  std::uint64_t delay = io_delay_us;
  sync::ServeThrottle* throttle = ctx_.serve_throttle();
  if (throttle != nullptr) {
    const std::uint64_t t =
        throttle->delay_for(id_, to, msg->wire_size(), ctx_.simulator().now());
    if (t > 0) ctx_.metrics().counter("sync.serve_throttled").inc();
    delay += t;
  }
  if (delay > 0) {
    ctx_.simulator().after(delay, [this, to, msg = std::move(msg)] {
      ctx_.network().send(id_, to, msg);
    });
    return;
  }
  ctx_.network().send(id_, to, std::move(msg));
}

sim::Simulator& RapidChainNode::sync_simulator() { return ctx_.simulator(); }

void RapidChainNode::sync_send(sim::NodeId to, sim::MessagePtr msg) {
  ctx_.network().send(id_, to, std::move(msg));
}

std::size_t RapidChainNode::sync_message_overhead() const {
  return ctx_.network().config().per_message_overhead;
}

void RapidChainNode::sync_commit_header(const BlockHeader& header, const Hash256& hash) {
  store_.put(StoredBlock::header_only(header, hash));
}

bool RapidChainNode::sync_wants_body(const Hash256& hash, std::uint64_t /*height*/) {
  // A member stores a body iff the block hashes to its committee. Committee
  // peers only serve their own shard, so in practice every served header
  // passes; the check guards against cross-shard leakage.
  return ctx_.committee_of_block(hash) == committee_;
}

void RapidChainNode::sync_commit_body(const std::shared_ptr<const Block>& block) {
  store_.put(HashedBlock(block));
}

std::vector<sim::NodeId> RapidChainNode::sync_body_candidates(const Hash256& hash,
                                                              std::uint64_t /*height*/) {
  std::vector<sim::NodeId> out;
  for (sim::NodeId member : ctx_.committee_members(ctx_.committee_of_block(hash)))
    if (member != id_) out.push_back(member);
  return out;
}

// ---------------------------------------------------------------------------

RapidChainNetwork::RapidChainNetwork(RapidChainConfig cfg) : cfg_(cfg) {
  if (cfg_.committee_count == 0 || cfg_.committee_count > cfg_.node_count)
    throw std::invalid_argument("RapidChainNetwork: bad committee_count");
  net_ = std::make_unique<sim::Network>(sim_, cfg_.net);

  // Sharded event engine: whole committees share a lane, so IDA gossip —
  // which never leaves the committee — stays lane-local.
  shards_ = cfg_.shards == 0 ? sim::default_shards() : cfg_.shards;
  if (shards_ > 1) {
    sim_.configure_shards(shards_, sim::lookahead_from(cfg_.net));
    sim_.set_barrier_hook([this] { flush_deferred_stores(); });
    deferred_stores_.resize(shards_);
  }
  if (cfg_.sync_serve_rate_bps > 0.0)
    serve_throttle_ = std::make_unique<sync::ServeThrottle>(cfg_.sync_serve_rate_bps);
  store_runtime_ = std::make_unique<StoreRuntime>(cfg_.store);

  const auto infos =
      cluster::generate_topology(cfg_.node_count, cfg_.regions, cfg_.seed, 100.0, false);
  committees_.assign(cfg_.committee_count, {});
  net_->reserve_nodes(infos.size());
  fleet_tally_.ensure_size(infos.size());
  coords_.reserve(infos.size());
  for (const auto& info : infos) {
    // Committee by hash of node id — RapidChain assigns members uniformly
    // at random via its randomness beacon.
    ByteWriter w(8);
    w.u64(info.id);
    const std::size_t c = static_cast<std::size_t>(
        Hash256::tagged("rc/committee", ByteSpan(w.bytes().data(), w.bytes().size())).low64() %
        cfg_.committee_count);
    RapidChainNode& node = nodes_.emplace_back(*this, info.id, c);
    const sim::NodeId assigned = net_->add_node(&node, info.coord);
    if (assigned != info.id) throw std::logic_error("rapidchain id mismatch");
    committees_[c].push_back(info.id);
    coords_.push_back(info.coord);
    install_backend(node, info.id);
  }
  // Hash assignment can leave a committee empty at tiny scales; steal from
  // the largest so the model stays well-formed.
  for (auto& committee : committees_) {
    if (!committee.empty()) continue;
    auto& biggest = *std::max_element(
        committees_.begin(), committees_.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    committee.push_back(biggest.back());
    biggest.pop_back();
  }
  if (shards_ > 1) {
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      sim_.set_node_lane(static_cast<sim::NodeId>(id),
                         static_cast<std::uint32_t>(nodes_[id].committee() % shards_));
    }
  }
}

RapidChainNetwork::~RapidChainNetwork() = default;

void RapidChainNetwork::install_backend(RapidChainNode& node, sim::NodeId id) {
  std::unique_ptr<StorageBackend> backend = store_runtime_->make_backend(id);
  if (!backend) return;
  IoEnv env;
  env.now = [this] { return sim_.now(); };
  env.schedule_at = [this, id](std::uint64_t at, std::function<void()> fn) {
    sim_.schedule_for(id, at, std::move(fn));
  };
  backend->set_io_env(std::move(env));
  node.store().set_backend(std::move(backend));
}

std::size_t RapidChainNetwork::committee_of_block(const Hash256& hash) const {
  return static_cast<std::size_t>(
      Hash256::tagged("rc/block", hash.span()).low64() % cfg_.committee_count);
}

const std::vector<sim::NodeId>& RapidChainNetwork::committee_members(std::size_t c) const {
  return committees_.at(c);
}

void RapidChainNetwork::init_with_genesis(const Block& genesis) {
  if (genesis_done_) throw std::logic_error("init_with_genesis called twice");
  genesis_done_ = true;
  auto shared = std::make_shared<const Block>(genesis);
  const Hash256 hash = shared->hash();
  const std::size_t c = committee_of_block(hash);
  for (sim::NodeId id : committees_[c]) nodes_[id].store().put(HashedBlock(shared, hash));
}

sim::SimTime RapidChainNetwork::disseminate_and_settle(const Block& block) {
  if (!genesis_done_) throw std::logic_error("call init_with_genesis first");
  auto shared = std::make_shared<const Block>(block);
  const Hash256 hash = shared->hash();
  const std::size_t c = committee_of_block(hash);
  const auto& members = committees_[c];

  pending_[hash] = shared;
  spreads_[hash] = Spread{sim_.now(), 0, members.size(), 0};

  const sim::NodeId leader = members[leader_cursor_++ % members.size()];
  nodes_[leader].lead_dissemination(shared);
  sim_.run();
  metrics::sync_sim_counters(metrics_, sim_);
  if (faults_) metrics::sync_fault_counters(metrics_, faults_->stats());
  if (store_runtime_->disk()) sync_store_counters(metrics_, stores());

  pending_.erase(hash);
  const Spread& spread = spreads_.at(hash);
  if (spread.finished == 0) return 0;
  const sim::SimTime latency = spread.finished - spread.started;
  obs::TraceSink::global().record_sim("gossip/ida", static_cast<double>(latency));
  return latency;
}

std::shared_ptr<const Block> RapidChainNetwork::pending_block(const Hash256& hash) const {
  const auto it = pending_.find(hash);
  return it == pending_.end() ? nullptr : it->second;
}

void RapidChainNetwork::note_stored(sim::NodeId id, const Hash256& hash) {
  (void)id;
  if (sim_.in_parallel_phase()) {
    const sim::Simulator::EventRef ev = sim_.current_event();
    deferred_stores_[sim_.current_lane()].push_back({ev.at, ev.key, hash});
    return;
  }
  note_stored_now(hash, sim_.now());
}

void RapidChainNetwork::note_stored_now(const Hash256& hash, sim::SimTime at) {
  const auto it = spreads_.find(hash);
  if (it == spreads_.end()) return;
  it->second.holders += 1;
  if (it->second.holders >= it->second.committee_size) it->second.finished = at;
}

void RapidChainNetwork::flush_deferred_stores() {
  std::vector<DeferredStore> all;
  for (auto& lane : deferred_stores_) {
    all.insert(all.end(), lane.begin(), lane.end());
    lane.clear();
  }
  if (all.empty()) return;
  std::sort(all.begin(), all.end(), [](const DeferredStore& a, const DeferredStore& b) {
    return a.at != b.at ? a.at < b.at : a.key < b.key;
  });
  for (const DeferredStore& s : all) note_stored_now(s.hash, s.at);
}

void RapidChainNetwork::preload_chain(const Chain& chain) {
  if (!genesis_done_) throw std::logic_error("call init_with_genesis first");
  for (std::size_t h = 1; h < chain.blocks().size(); ++h) {
    auto shared = std::make_shared<const Block>(chain.blocks()[h]);
    const Hash256 hash = shared->hash();
    const std::size_t c = committee_of_block(hash);
    for (sim::NodeId id : committees_[c]) nodes_[id].store().put(HashedBlock(shared, hash));
  }
}

sim::NodeId RapidChainNetwork::add_sync_joiner(sim::Coord coord) {
  const auto new_id = static_cast<sim::NodeId>(nodes_.size());
  ByteWriter w(8);
  w.u64(new_id);
  const std::size_t c = static_cast<std::size_t>(
      Hash256::tagged("rc/committee", ByteSpan(w.bytes().data(), w.bytes().size())).low64() %
      cfg_.committee_count);

  fleet_tally_.ensure_size(static_cast<std::size_t>(new_id) + 1);
  RapidChainNode& node = nodes_.emplace_back(*this, new_id, c);
  const sim::NodeId id = net_->add_node(&node, coord);
  coords_.push_back(coord);
  committees_[c].push_back(id);
  if (shards_ > 1) sim_.set_node_lane(id, static_cast<std::uint32_t>(c % shards_));
  install_backend(node, id);
  return id;
}

RapidChainNetwork::BootstrapReport RapidChainNetwork::bootstrap_added(
    sim::NodeId joiner, const sync::SyncConfig& cfg) {
  const std::size_t c = nodes_[joiner].committee();

  // Pull candidates: committee members by distance (the old path hung the
  // whole shard download off the single nearest member).
  const sim::Coord coord = coords_[joiner];
  std::vector<sim::NodeId> candidates;
  for (sim::NodeId member : committees_[c])
    if (member != joiner) candidates.push_back(member);
  std::sort(candidates.begin(), candidates.end(), [&](sim::NodeId a, sim::NodeId b) {
    const double da = sim::distance(coord, coords_[a]);
    const double db = sim::distance(coord, coords_[b]);
    if (da != db) return da < db;
    return a < b;
  });
  const std::size_t probe = std::max<std::size_t>(cfg.max_peers * 2, 4);
  if (candidates.size() > probe) candidates.resize(probe);

  BootstrapReport report;
  report.joiner = joiner;
  report.committee = c;
  report.sync = sync::drive_join(*this, joiner, cfg, candidates);
  report.complete = report.sync.complete;
  report.bodies_fetched = report.sync.bodies_committed;
  report.elapsed_us = report.sync.time_to_synced_us;
  report.bytes_downloaded = net_->traffic(joiner).bytes_received;
  if (report.complete)
    obs::TraceSink::global().record_sim("bootstrap/shard_sync",
                                        static_cast<double>(report.elapsed_us));
  return report;
}

RapidChainNetwork::BootstrapReport RapidChainNetwork::bootstrap(
    sim::Coord coord, const sync::SyncConfig& cfg) {
  return bootstrap_added(add_sync_joiner(coord), cfg);
}

RapidChainNetwork::BootstrapReport RapidChainNetwork::bootstrap(sim::Coord coord) {
  return bootstrap(coord, sync::SyncConfig{});
}

void RapidChainNetwork::start_faults(const sim::FaultPlan& plan) {
  if (faults_) throw std::logic_error("start_faults called twice");
  faults_ = std::make_unique<sim::FaultInjector>(*net_, plan);
  std::vector<sim::NodeId> all;
  all.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) all.push_back(static_cast<sim::NodeId>(i));
  faults_->start(all, [this](sim::NodeId id, bool online) {
    metrics_.counter(online ? "churn.up" : "churn.down").inc();
    if (status_observer_) status_observer_(id, online);
  });
}

void RapidChainNetwork::run_for(sim::SimTime us) {
  sim_.run_until(sim_.now() + us);
  metrics::sync_sim_counters(metrics_, sim_);
  if (faults_) metrics::sync_fault_counters(metrics_, faults_->stats());
  if (store_runtime_->disk()) sync_store_counters(metrics_, stores());
}

void RapidChainNetwork::settle() {
  sim_.run();
  metrics::sync_sim_counters(metrics_, sim_);
  if (faults_) metrics::sync_fault_counters(metrics_, faults_->stats());
  if (store_runtime_->disk()) sync_store_counters(metrics_, stores());
}

std::vector<const BlockStore*> RapidChainNetwork::stores() const {
  std::vector<const BlockStore*> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) out.push_back(&nodes_[i].store());
  return out;
}

}  // namespace ici::baseline
