#include "baseline/fullrep.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "cluster/node_info.h"
#include "common/rng.h"
#include "metrics/sim_metrics.h"
#include "obs/trace.h"
#include "sim/lbts.h"
#include "sim/shard.h"
#include "storage/store_metrics.h"
#include "sync/driver.h"
#include "sync/serve.h"

namespace ici::baseline {

FullRepNode::FullRepNode(FullRepNetwork& ctx, sim::NodeId id)
    : ctx_(ctx), id_(id), store_(ctx.header_index()) {
  store_.bind_tally(&ctx.fleet_tally(), id);
}

void FullRepNode::seed_genesis(std::shared_ptr<const Block> genesis) {
  const Hash256 h = genesis->hash();
  if (ctx_.config().validate) {
    for (const Transaction& tx : genesis->txs()) utxo_.apply_tx(tx, 0);
  }
  store_.put(HashedBlock(std::move(genesis), h));
}

void FullRepNode::on_message(sim::NodeId from, const sim::MessagePtr& msg) {
  if (const auto* s = dynamic_cast<const sync::SyncMessage*>(msg.get())) {
    handle_sync_message(from, *s);
    return;
  }
  if (const auto* inv = dynamic_cast<const InvMsg*>(msg.get())) {
    if (!store_.has_block(inv->hash) && !requested_.contains(inv->hash)) {
      requested_.insert(inv->hash);
      auto req = std::make_shared<GetDataMsg>();
      req->hash = inv->hash;
      ctx_.network().send(id_, from, std::move(req));
    }
    return;
  }
  if (const auto* get = dynamic_cast<const GetDataMsg*>(msg.get())) {
    if (BlockRef ref = store_.block_by_hash(get->hash)) {
      auto resp = std::make_shared<GossipBlockMsg>();
      resp->block = ref.share();
      if (ref.io_delay_us > 0) {
        // Cold read: the response leaves once the body is off the media.
        ctx_.simulator().after(ref.io_delay_us, [this, from, resp = std::move(resp)] {
          ctx_.network().send(id_, from, resp);
        });
        return;
      }
      ctx_.network().send(id_, from, std::move(resp));
    }
    return;
  }
  if (const auto* gb = dynamic_cast<const GossipBlockMsg*>(msg.get())) {
    accept_block(gb->block, from);
    return;
  }
  if (const auto* sync = dynamic_cast<const SyncRequestMsg*>(msg.get())) {
    auto resp = std::make_shared<SyncResponseMsg>();
    std::uint64_t io_delay = 0;
    for (std::uint64_t h = sync->from_height;; ++h) {
      const auto header = store_.header_at(h);
      if (!header) break;
      if (BlockRef ref = store_.block_by_hash(header->hash())) {
        // io_delay_us is completion-relative (queued behind same-instant
        // reads already), so the batch finishes at the max, not the sum.
        io_delay = std::max(io_delay, ref.io_delay_us);
        resp->blocks.push_back(ref.share());
      }
    }
    if (io_delay > 0) {
      ctx_.simulator().after(io_delay, [this, from, resp = std::move(resp)] {
        ctx_.network().send(id_, from, resp);
      });
      return;
    }
    ctx_.network().send(id_, from, std::move(resp));
    return;
  }
  if (const auto* resp = dynamic_cast<const SyncResponseMsg*>(msg.get())) {
    for (const auto& block : resp->blocks) store_.put(HashedBlock(block));
    if (sync_done_) {
      auto done = std::move(sync_done_);
      sync_done_ = nullptr;
      done(resp->blocks.size());
    }
    return;
  }
}

void FullRepNode::inject_block(std::shared_ptr<const Block> block) {
  accept_block(std::move(block), sim::kNoNode);
}

void FullRepNode::accept_block(std::shared_ptr<const Block> block, sim::NodeId from) {
  const Hash256 hash = block->hash();
  requested_.erase(hash);
  if (store_.has_block(hash)) return;

  if (ctx_.config().validate) {
    // Expected linkage: this model disseminates blocks in height order.
    const std::uint64_t tip = store_.header_count() == 0 ? 0 : store_.block_count() - 1;
    const auto parent = store_.header_at(tip);
    if (!parent) {
      ctx_.metrics().counter("fullrep.orphaned").inc();
      return;
    }
    const ValidationResult r =
        validator_.validate_and_apply(*block, parent->hash(), tip + 1, utxo_);
    if (!r) {
      ctx_.metrics().counter("fullrep.rejected").inc();
      return;
    }
    ctx_.metrics().counter("fullrep.validated").inc();
  }

  store_.put(HashedBlock(block, hash));
  ctx_.note_stored(id_, hash);
  announce(hash, from);
}

void FullRepNode::announce(const Hash256& hash, sim::NodeId except) {
  auto inv = std::make_shared<InvMsg>();
  inv->hash = hash;
  for (sim::NodeId peer : ctx_.peers(id_)) {
    if (peer == except) continue;
    ctx_.network().send(id_, peer, inv);
  }
}

void FullRepNode::start_sync(sim::NodeId peer, std::function<void(std::size_t)> on_done) {
  sync_done_ = std::move(on_done);
  auto req = std::make_shared<SyncRequestMsg>();
  req->from_height = 0;
  ctx_.network().send(id_, peer, std::move(req));
}

// -- streaming bulk-sync (docs/BOOTSTRAP.md) --------------------------------

void FullRepNode::start_streaming_sync(
    const sync::SyncConfig& cfg, sync::SyncCheckpoint* checkpoint,
    std::vector<sim::NodeId> candidates,
    std::function<void(const sync::SyncReport&)> on_done) {
  const std::uint64_t session_id =
      (static_cast<std::uint64_t>(id_) << 20) + (++sync_epoch_);
  sync_session_ = sync::BulkPullSession::start(*this, cfg, checkpoint,
                                               std::move(candidates), session_id,
                                               std::move(on_done));
}

void FullRepNode::handle_sync_message(sim::NodeId from, const sync::SyncMessage& msg) {
  switch (msg.sync_kind()) {
    case sync::SyncMsgKind::kFrontierRequest: {
      const auto& req = static_cast<const sync::FrontierRequestMsg&>(msg);
      send_sync_response(
          from,
          sync::serve_frontier(store_, req, store_.block_count(), /*serves_shards=*/false));
      break;
    }
    case sync::SyncMsgKind::kRangeRequest: {
      const auto& req = static_cast<const sync::RangeRequestMsg&>(msg);
      sync::ServedRange served = sync::serve_range(store_, req);
      send_sync_response(from, std::move(served.msg), served.io_delay_us);
      break;
    }
    case sync::SyncMsgKind::kFrontierResponse:
    case sync::SyncMsgKind::kRangeResponse:
      if (sync_session_) sync_session_->on_sync_message(from, msg);
      break;
  }
}

void FullRepNode::send_sync_response(sim::NodeId to, sim::MessagePtr msg,
                                     std::uint64_t io_delay_us) {
  std::uint64_t delay = io_delay_us;
  sync::ServeThrottle* throttle = ctx_.serve_throttle();
  if (throttle != nullptr) {
    const std::uint64_t t =
        throttle->delay_for(id_, to, msg->wire_size(), ctx_.simulator().now());
    if (t > 0) ctx_.metrics().counter("sync.serve_throttled").inc();
    delay += t;
  }
  if (delay > 0) {
    ctx_.simulator().after(delay, [this, to, msg = std::move(msg)] {
      ctx_.network().send(id_, to, msg);
    });
    return;
  }
  ctx_.network().send(id_, to, std::move(msg));
}

sim::Simulator& FullRepNode::sync_simulator() { return ctx_.simulator(); }

void FullRepNode::sync_send(sim::NodeId to, sim::MessagePtr msg) {
  ctx_.network().send(id_, to, std::move(msg));
}

std::size_t FullRepNode::sync_message_overhead() const {
  return ctx_.network().config().per_message_overhead;
}

void FullRepNode::sync_commit_header(const BlockHeader& header, const Hash256& hash) {
  store_.put(StoredBlock::header_only(header, hash));
}

void FullRepNode::sync_commit_body(const std::shared_ptr<const Block>& block) {
  // Bulk sync installs without re-validating (the ranges were Merkle- and
  // linkage-checked); the legacy one-shot path behaved the same.
  store_.put(HashedBlock(block));
}

std::vector<sim::NodeId> FullRepNode::sync_body_candidates(const Hash256&,
                                                           std::uint64_t) {
  // Fallback for a body missing from a range response: any gossip peer.
  return ctx_.peers(id_);
}

// ---------------------------------------------------------------------------

FullRepNetwork::FullRepNetwork(FullRepConfig cfg) : cfg_(cfg) {
  if (cfg_.node_count < 2) throw std::invalid_argument("FullRepNetwork: need >= 2 nodes");
  net_ = std::make_unique<sim::Network>(sim_, cfg_.net);

  // Sharded event engine: no clusters here, so lanes are contiguous id
  // ranges — gossip fans out everywhere, so expect a high cross-shard
  // message fraction relative to ICI (exp19's contrast).
  shards_ = cfg_.shards == 0 ? sim::default_shards() : cfg_.shards;
  if (shards_ > 1) {
    sim_.configure_shards(shards_, sim::lookahead_from(cfg_.net));
    sim_.set_barrier_hook([this] { flush_deferred_stores(); });
    deferred_stores_.resize(shards_);
  }
  if (cfg_.sync_serve_rate_bps > 0.0)
    serve_throttle_ = std::make_unique<sync::ServeThrottle>(cfg_.sync_serve_rate_bps);
  store_runtime_ = std::make_unique<StoreRuntime>(cfg_.store);

  const auto infos =
      cluster::generate_topology(cfg_.node_count, cfg_.regions, cfg_.seed, 100.0, false);
  net_->reserve_nodes(infos.size());
  fleet_tally_.ensure_size(infos.size());
  coords_.reserve(infos.size());
  for (const auto& info : infos) {
    FullRepNode& node = nodes_.emplace_back(*this, info.id);
    const sim::NodeId assigned = net_->add_node(&node, info.coord);
    if (assigned != info.id) throw std::logic_error("fullrep id mismatch");
    coords_.push_back(info.coord);
    if (shards_ > 1)
      sim_.set_node_lane(info.id, sim::contiguous_lane(info.id, cfg_.node_count, shards_));
    install_backend(node, info.id);
  }

  // Random connected-ish peer graph: a ring (guarantees connectivity) plus
  // random extra edges up to peer_degree.
  Rng rng(cfg_.seed ^ 0xfeedULL);
  peers_.assign(nodes_.size(), {});
  auto link = [&](sim::NodeId a, sim::NodeId b) {
    if (a == b) return;
    auto& pa = peers_[a];
    if (std::find(pa.begin(), pa.end(), b) != pa.end()) return;
    pa.push_back(b);
    peers_[b].push_back(a);
  };
  const auto n = static_cast<sim::NodeId>(nodes_.size());
  for (sim::NodeId i = 0; i < n; ++i) link(i, (i + 1) % n);
  for (sim::NodeId i = 0; i < n; ++i) {
    while (peers_[i].size() < cfg_.peer_degree) {
      link(i, static_cast<sim::NodeId>(rng.index(nodes_.size())));
    }
  }
}

FullRepNetwork::~FullRepNetwork() = default;

void FullRepNetwork::install_backend(FullRepNode& node, sim::NodeId id) {
  std::unique_ptr<StorageBackend> backend = store_runtime_->make_backend(id);
  if (!backend) return;
  IoEnv env;
  env.now = [this] { return sim_.now(); };
  env.schedule_at = [this, id](std::uint64_t at, std::function<void()> fn) {
    sim_.schedule_for(id, at, std::move(fn));
  };
  backend->set_io_env(std::move(env));
  node.store().set_backend(std::move(backend));
}

const std::vector<sim::NodeId>& FullRepNetwork::peers(sim::NodeId id) const {
  return peers_.at(id);
}

void FullRepNetwork::init_with_genesis(const Block& genesis) {
  if (genesis_done_) throw std::logic_error("init_with_genesis called twice");
  genesis_done_ = true;
  auto shared = std::make_shared<const Block>(genesis);
  for (std::size_t i = 0; i < nodes_.size(); ++i) nodes_[i].seed_genesis(shared);
}

sim::SimTime FullRepNetwork::disseminate_and_settle(const Block& block) {
  if (!genesis_done_) throw std::logic_error("call init_with_genesis first");
  const Hash256 hash = block.hash();
  spreads_[hash] = Spread{sim_.now(), 0, 0};

  const auto proposer = static_cast<sim::NodeId>(proposer_cursor_++ % nodes_.size());
  nodes_[proposer].inject_block(std::make_shared<const Block>(block));
  sim_.run();
  metrics::sync_sim_counters(metrics_, sim_);
  if (faults_) metrics::sync_fault_counters(metrics_, faults_->stats());
  if (store_runtime_->disk()) sync_store_counters(metrics_, stores());

  const Spread& spread = spreads_.at(hash);
  if (spread.finished == 0) return 0;  // did not reach everyone
  const sim::SimTime latency = spread.finished - spread.started;
  obs::TraceSink::global().record_sim("gossip/inv", static_cast<double>(latency));
  return latency;
}

void FullRepNetwork::note_stored(sim::NodeId id, const Hash256& hash) {
  (void)id;
  if (sim_.in_parallel_phase()) {
    const sim::Simulator::EventRef ev = sim_.current_event();
    deferred_stores_[sim_.current_lane()].push_back({ev.at, ev.key, hash});
    return;
  }
  note_stored_now(hash, sim_.now());
}

void FullRepNetwork::note_stored_now(const Hash256& hash, sim::SimTime at) {
  const auto it = spreads_.find(hash);
  if (it == spreads_.end()) return;
  it->second.holders += 1;
  std::size_t online = 0;
  for (sim::NodeId i = 0; i < nodes_.size(); ++i) {
    if (net_->online(static_cast<sim::NodeId>(i))) ++online;
  }
  if (it->second.holders >= online) it->second.finished = at;
}

void FullRepNetwork::flush_deferred_stores() {
  std::vector<DeferredStore> all;
  for (auto& lane : deferred_stores_) {
    all.insert(all.end(), lane.begin(), lane.end());
    lane.clear();
  }
  if (all.empty()) return;
  std::sort(all.begin(), all.end(), [](const DeferredStore& a, const DeferredStore& b) {
    return a.at != b.at ? a.at < b.at : a.key < b.key;
  });
  for (const DeferredStore& s : all) note_stored_now(s.hash, s.at);
}

void FullRepNetwork::preload_chain(const Chain& chain) {
  if (!genesis_done_) throw std::logic_error("call init_with_genesis first");
  for (std::size_t h = 1; h < chain.blocks().size(); ++h) {
    auto shared = std::make_shared<const Block>(chain.blocks()[h]);
    const Hash256 hash = shared->hash();
    for (std::size_t i = 0; i < nodes_.size(); ++i)
      nodes_[i].store().put(HashedBlock(shared, hash));
  }
}

sim::NodeId FullRepNetwork::add_sync_joiner(sim::Coord coord) {
  const auto joiner_id = static_cast<sim::NodeId>(nodes_.size());
  fleet_tally_.ensure_size(static_cast<std::size_t>(joiner_id) + 1);
  FullRepNode& node = nodes_.emplace_back(*this, joiner_id);
  const sim::NodeId id = net_->add_node(&node, coord);
  coords_.push_back(coord);
  if (shards_ > 1) sim_.set_node_lane(id, sim::contiguous_lane(id, cfg_.node_count, shards_));
  install_backend(node, id);

  // Connect the joiner to its peer_degree nearest nodes — the pull peers of
  // the multi-peer bulk sync (the old path hung off a single neighbour).
  std::vector<sim::NodeId> by_distance;
  by_distance.reserve(nodes_.size() - 1);
  for (sim::NodeId i = 0; i < id; ++i) by_distance.push_back(i);
  std::sort(by_distance.begin(), by_distance.end(), [&](sim::NodeId a, sim::NodeId b) {
    const double da = sim::distance(coord, coords_[a]);
    const double db = sim::distance(coord, coords_[b]);
    if (da != db) return da < db;
    return a < b;
  });
  if (by_distance.size() > cfg_.peer_degree) by_distance.resize(cfg_.peer_degree);
  peers_.push_back(by_distance);
  for (sim::NodeId peer : by_distance) peers_[peer].push_back(id);
  return id;
}

FullRepNetwork::BootstrapReport FullRepNetwork::bootstrap_added(
    sim::NodeId joiner, const sync::SyncConfig& cfg) {
  BootstrapReport report;
  report.joiner = joiner;
  report.sync = sync::drive_join(*this, joiner, cfg, peers_.at(joiner));
  report.complete = report.sync.complete;
  report.bodies_fetched = report.sync.bodies_committed;
  report.elapsed_us = report.sync.time_to_synced_us;
  report.bytes_downloaded = net_->traffic(joiner).bytes_received;
  return report;
}

FullRepNetwork::BootstrapReport FullRepNetwork::bootstrap(sim::Coord coord,
                                                          const sync::SyncConfig& cfg) {
  return bootstrap_added(add_sync_joiner(coord), cfg);
}

FullRepNetwork::BootstrapReport FullRepNetwork::bootstrap(sim::Coord coord) {
  return bootstrap(coord, sync::SyncConfig{});
}

void FullRepNetwork::start_faults(const sim::FaultPlan& plan) {
  if (faults_) throw std::logic_error("start_faults called twice");
  faults_ = std::make_unique<sim::FaultInjector>(*net_, plan);
  std::vector<sim::NodeId> all;
  all.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) all.push_back(static_cast<sim::NodeId>(i));
  faults_->start(all, [this](sim::NodeId id, bool online) {
    metrics_.counter(online ? "churn.up" : "churn.down").inc();
    if (status_observer_) status_observer_(id, online);
  });
}

void FullRepNetwork::run_for(sim::SimTime us) {
  sim_.run_until(sim_.now() + us);
  metrics::sync_sim_counters(metrics_, sim_);
  if (faults_) metrics::sync_fault_counters(metrics_, faults_->stats());
  if (store_runtime_->disk()) sync_store_counters(metrics_, stores());
}

void FullRepNetwork::settle() {
  sim_.run();
  metrics::sync_sim_counters(metrics_, sim_);
  if (faults_) metrics::sync_fault_counters(metrics_, faults_->stats());
  if (store_runtime_->disk()) sync_store_counters(metrics_, stores());
}

std::vector<const BlockStore*> FullRepNetwork::stores() const {
  std::vector<const BlockStore*> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) out.push_back(&nodes_[i].store());
  return out;
}

}  // namespace ici::baseline
