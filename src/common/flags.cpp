#include "common/flags.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/cpudispatch.h"
#include "common/thread_pool.h"

namespace ici {

FlagParser::FlagParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void FlagParser::add_uint(const std::string& name, std::uint64_t* out,
                          const std::string& help) {
  flags_.push_back({name, Type::kUint, out, help, std::to_string(*out)});
}

void FlagParser::add_double(const std::string& name, double* out, const std::string& help) {
  std::ostringstream os;
  os << *out;
  flags_.push_back({name, Type::kDouble, out, help, os.str()});
}

void FlagParser::add_string(const std::string& name, std::string* out,
                            const std::string& help) {
  flags_.push_back({name, Type::kString, out, help, *out});
}

void FlagParser::add_bool(const std::string& name, bool* out, const std::string& help) {
  flags_.push_back({name, Type::kBool, out, help, *out ? "true" : "false"});
}

const FlagParser::Flag* FlagParser::find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool FlagParser::assign(const Flag& flag, const std::string& value) {
  switch (flag.type) {
    case Type::kUint: {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') return false;
      *static_cast<std::uint64_t*>(flag.target) = v;
      return true;
    }
    case Type::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') return false;
      *static_cast<double*>(flag.target) = v;
      return true;
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return true;
    case Type::kBool:
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
        return true;
      }
      if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
        return true;
      }
      return false;
  }
  return false;
}

bool FlagParser::parse(int argc, const char* const* argv, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      if (error != nullptr) error->clear();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      if (error != nullptr) *error = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);

    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }

    const Flag* flag = find(name);
    if (flag == nullptr) {
      if (error != nullptr) *error = "unknown flag: --" + name;
      return false;
    }
    if (!have_value) {
      if (flag->type == Type::kBool) {
        *static_cast<bool*>(flag->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        if (error != nullptr) *error = "flag --" + name + " needs a value";
        return false;
      }
      value = argv[++i];
    }
    if (!assign(*flag, value)) {
      if (error != nullptr) *error = "bad value for --" + name + ": " + value;
      return false;
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

void add_bench_flags(FlagParser& parser, BenchOptions* opts) {
  parser.add_bool("smoke", &opts->smoke,
                  "tiny configuration for CI (same tables, same BENCH_*.json schema)");
  parser.add_uint("threads", &opts->threads,
                  "worker-pool lanes for the parallel hot paths (0 = hardware "
                  "concurrency; --smoke pins 2)");
  parser.add_string("cpu", &opts->cpu,
                    "SIMD dispatch tier: scalar forces portable kernels, native uses "
                    "SHA-NI/AVX2 when present (also settable via ICI_CPU)");
  parser.add_uint("seed", &opts->seed, "deterministic seed");
  parser.add_string("fault-plan", &opts->fault_plan,
                    "fault-injection spec, e.g. seed=7,crash=0.3,drop=0.1 "
                    "(see docs/FAULTS.md; empty = faults disabled)");
  parser.add_uint("shards", &opts->shards,
                  "event shards (parallel simulator lanes); sim metrics are "
                  "bit-identical for any value (docs/SIMULATOR.md)");
  parser.add_double("tx-rate", &opts->tx_rate,
                    "offered client load in tx/s of sim time for ingest-driven "
                    "runs (0 = binary default; docs/INGEST.md)");
  parser.add_uint("mempool-cap", &opts->mempool_cap,
                  "mempool capacity for ingest-driven runs, lowest-fee-first "
                  "eviction when full (0 = binary default)");
  parser.add_string("store", &opts->store,
                    "body-persistence backend: mem keeps bodies in memory, disk "
                    "uses log-structured segment files (docs/STORAGE.md)");
  parser.add_uint("io-write-us", &opts->io_write_us,
                  "simulated service time of one block append with --store disk "
                  "(µs of sim time)");
  parser.add_uint("io-read-us", &opts->io_read_us,
                  "simulated service time of one cold block read with --store "
                  "disk (µs of sim time)");
}

std::size_t apply_bench_options(const BenchOptions& opts, const std::string& program) {
  if (!opts.cpu.empty() && !cpu::set_backend_name(opts.cpu)) {
    std::cerr << program << ": invalid --cpu value '" << opts.cpu
              << "' (expected scalar|native)\n";
    std::exit(2);
  }
  std::size_t threads = static_cast<std::size_t>(opts.threads);
  if (threads == 0 && opts.smoke) threads = 2;  // smoke pins 2 for reproducible CI
  ThreadPool::set_global_threads(threads);
  return ThreadPool::global().thread_count();
}

BenchOptions parse_bench_options_or_exit(int argc, const char* const* argv,
                                         const std::string& program,
                                         const std::string& description) {
  BenchOptions opts;
  FlagParser parser(program, description);
  add_bench_flags(parser, &opts);
  std::string error;
  if (!parser.parse(argc, argv, &error)) {
    if (error.empty()) {  // --help
      std::cout << parser.usage();
      std::exit(0);
    }
    std::cerr << program << ": " << error << " (try --help)\n";
    std::exit(2);
  }
  apply_bench_options(opts, program);
  return opts;
}

std::string FlagParser::usage() const {
  static const auto type_name = [](Type t) -> const char* {
    switch (t) {
      case Type::kUint: return "uint";
      case Type::kDouble: return "float";
      case Type::kString: return "string";
      case Type::kBool: return "bool";
    }
    return "";
  };

  std::size_t width = 0;
  for (const Flag& f : flags_) {
    width = std::max(width, f.name.size() + std::string(type_name(f.type)).size() + 5);
  }

  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\n"
     << "Usage: " << program_ << " [--flag value | --flag=value]...\n\nFlags:\n";
  for (const Flag& f : flags_) {
    const std::string head = "--" + f.name + " <" + type_name(f.type) + ">";
    os << "  " << head << std::string(width - head.size() + 2, ' ') << f.help
       << " (default: " << f.default_text << ")\n";
  }
  os << "  --help" << std::string(width - 4, ' ') << "print this message and exit\n";
  return os.str();
}

}  // namespace ici
