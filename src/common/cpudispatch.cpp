#include "common/cpudispatch.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace ici::cpu {

namespace {

Features probe() {
  Features f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.ssse3 = (ecx & bit_SSSE3) != 0;
    // AVX needs the OS to save YMM state: OSXSAVE set and XCR0 reporting
    // XMM|YMM enabled, otherwise the instructions fault at runtime.
    const bool osxsave = (ecx & bit_OSXSAVE) != 0;
    bool ymm_enabled = false;
    if (osxsave) {
      std::uint32_t xcr0_lo, xcr0_hi;
      __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
      ymm_enabled = (xcr0_lo & 0x6) == 0x6;
    }
    unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
    if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) {
      f.avx2 = ymm_enabled && (ebx7 & bit_AVX2) != 0;
      f.sha_ni = (ebx7 & bit_SHA) != 0;
    }
  }
#endif
  return f;
}

// -1 = not yet initialized from $ICI_CPU; otherwise a Backend value.
std::atomic<int> g_backend{-1};

int init_from_env() {
  int value = static_cast<int>(Backend::kNative);
  if (const char* env = std::getenv("ICI_CPU")) {
    const std::string_view name(env);
    if (name == "scalar") {
      value = static_cast<int>(Backend::kScalar);
    } else if (name != "native" && !name.empty()) {
      std::fprintf(stderr,
                   "warning: ICI_CPU='%s' not recognized (want scalar|native); "
                   "using native\n",
                   env);
    }
  }
  int expected = -1;
  g_backend.compare_exchange_strong(expected, value, std::memory_order_relaxed);
  return g_backend.load(std::memory_order_relaxed);
}

inline int backend_raw() {
  const int b = g_backend.load(std::memory_order_relaxed);
  return b >= 0 ? b : init_from_env();
}

}  // namespace

const Features& features() {
  static const Features f = probe();
  return f;
}

Backend backend() { return static_cast<Backend>(backend_raw()); }

void set_backend(Backend b) {
  g_backend.store(static_cast<int>(b), std::memory_order_relaxed);
}

bool set_backend_name(std::string_view name) {
  if (name == "scalar") {
    set_backend(Backend::kScalar);
  } else if (name == "native") {
    set_backend(Backend::kNative);
  } else {
    return false;
  }
  return true;
}

const char* backend_name() {
  return backend() == Backend::kScalar ? "scalar" : "native";
}

const char* sha256_backend_name() { return sha256_native() ? "sha-ni" : "scalar"; }

const char* gf256_backend_name() {
  switch (gf256_native_level()) {
    case 2:
      return "avx2";
    case 1:
      return "ssse3";
    default:
      return "scalar";
  }
}

bool sha256_native() {
  return backend_raw() == static_cast<int>(Backend::kNative) && features().sha_ni;
}

int gf256_native_level() {
  if (backend_raw() != static_cast<int>(Backend::kNative)) return 0;
  const Features& f = features();
  if (f.avx2) return 2;
  if (f.ssse3) return 1;
  return 0;
}

}  // namespace ici::cpu
