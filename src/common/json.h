#pragma once

// Minimal JSON support with no external dependencies: a streaming writer
// used by the bench-report emitter, plus a small recursive-descent parser
// used by tests (and tools) to round-trip emitted documents.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ici {

// Escapes a string for embedding inside a JSON string literal (quotes not
// included). Control characters become \u00XX.
std::string json_escape(std::string_view s);

// Streaming writer with an explicit object/array stack. Misuse (value
// without key inside an object, unbalanced end_*) throws std::logic_error
// so emitter bugs fail loudly in tests instead of producing bad artifacts.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  // key+value shorthand for the common object-member case.
  template <typename T>
  JsonWriter& member(std::string_view name, T v) {
    key(name);
    return value(v);
  }
  JsonWriter& member_null(std::string_view name) {
    key(name);
    return null();
  }

  // Finished document. Throws if objects/arrays are still open.
  const std::string& str() const;

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void before_value();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;     // parallel to stack_: no comma needed yet
  bool key_pending_ = false;    // key() emitted, awaiting its value
  bool done_ = false;           // a complete top-level value exists
};

// Parsed JSON document. Objects preserve member order; lookups are linear
// (documents here are small bench artifacts).
class JsonValue {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  // Parses a complete document; throws std::runtime_error (with an offset)
  // on malformed input or trailing garbage.
  static JsonValue parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  // Array access.
  const std::vector<JsonValue>& items() const;
  std::size_t size() const;
  const JsonValue& at(std::size_t index) const;

  // Object access. find() returns nullptr when the key is absent.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  const JsonValue* find(std::string_view key) const;
  const JsonValue& at(std::string_view key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  friend class JsonParser;
};

}  // namespace ici
