// Hex encoding/decoding for hashes and debug output.
#pragma once

#include <string>

#include "common/bytes.h"

namespace ici {

/// Lower-case hex encoding of a byte span.
[[nodiscard]] std::string to_hex(ByteSpan data);

/// Decodes a hex string (case-insensitive). Throws DecodeError on odd length
/// or non-hex characters.
[[nodiscard]] Bytes from_hex(const std::string& hex);

}  // namespace ici
