// Byte-buffer primitives shared by every module: a growable byte vector,
// little-endian varint-free writers/readers used for canonical serialization
// of transactions, blocks, and wire messages.
//
// Serialization here is deliberately simple and deterministic: fixed-width
// little-endian integers plus length-prefixed byte strings. Determinism
// matters because object hashes (txids, block hashes) are computed over
// these encodings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ici {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Thrown when a ByteReader runs past the end of its buffer or a decoder
/// observes a malformed encoding.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width little-endian values and length-prefixed blobs to a
/// growable buffer. All chain/wire encodings in this project go through
/// ByteWriter so the byte layout is defined in exactly one place.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix.
  void raw(ByteSpan data);
  /// u32 length prefix followed by the bytes.
  void blob(ByteSpan data);
  /// u32 length prefix followed by UTF-8 bytes.
  void str(const std::string& s);

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Mirror of ByteWriter. Reads throw DecodeError on truncation instead of
/// returning partial values, so callers never consume garbage.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  /// Reads exactly n raw bytes.
  [[nodiscard]] Bytes raw(std::size_t n);
  /// Reads a u32 length prefix then that many bytes.
  [[nodiscard]] Bytes blob();
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }
  /// Throws DecodeError unless the whole buffer was consumed.
  void expect_done(const char* context) const;

 private:
  void need(std::size_t n) const;

  ByteSpan data_;
  std::size_t pos_ = 0;
};

/// Project-wide invariant check: throws std::logic_error with the message on
/// failure. Used for programmer errors (violated preconditions), not for
/// recoverable input errors.
void ensure(bool cond, const char* msg);

}  // namespace ici
