// Minimal command-line flag parser for the CLI tools: --name=value and
// --name value forms, typed bindings, generated usage text. No external
// dependencies, strict about unknown flags.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ici {

class FlagParser {
 public:
  FlagParser(std::string program, std::string description);

  /// Binds --name to *out (which holds the default). `help` shows in usage().
  void add_uint(const std::string& name, std::uint64_t* out, const std::string& help);
  void add_double(const std::string& name, double* out, const std::string& help);
  void add_string(const std::string& name, std::string* out, const std::string& help);
  /// Boolean flags accept --name (true), --name=false / --name=true.
  void add_bool(const std::string& name, bool* out, const std::string& help);

  /// Parses argv. On failure returns false and sets *error. `--help` makes
  /// parse return false with *error empty (caller prints usage and exits 0).
  [[nodiscard]] bool parse(int argc, const char* const* argv, std::string* error);

  [[nodiscard]] std::string usage() const;

 private:
  enum class Type { kUint, kDouble, kString, kBool };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_text;
  };

  [[nodiscard]] const Flag* find(const std::string& name) const;
  [[nodiscard]] static bool assign(const Flag& flag, const std::string& value);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
};

/// Command-line contract shared by every experiment binary and scenario
/// tool: `--smoke` runs a tiny configuration (CTest exercises the
/// BENCH_*.json path this way), `--threads N` sizes the global worker pool
/// (0 = hardware concurrency; --smoke pins 2 unless --threads is explicit),
/// `--cpu scalar|native` pins the SIMD dispatch tier, `--seed` feeds the
/// deterministic generators, and `--fault-plan SPEC` installs a
/// sim::FaultPlan (see docs/FAULTS.md; empty = faults disabled). A new
/// shared flag registers once in add_bench_flags instead of in every
/// binary.
struct BenchOptions {
  bool smoke = false;
  std::uint64_t threads = 0;  // 0 = hardware concurrency
  std::string cpu;            // "" = keep the default dispatch tier
  std::uint64_t seed = 42;
  std::string fault_plan;  // sim::FaultPlan::parse spec ("" = disabled)
  /// Event shards (parallel simulator lanes). Applied via
  /// sim::set_default_shards by the sim-linking callers (bench_util's
  /// parse_bench_options, icisim) — common/ cannot depend on sim/.
  std::uint64_t shards = 1;
  /// Offered client load in tx/s of simulated time for the ingest-driven
  /// runs (docs/INGEST.md). 0 = the binary's default (exp23 sweeps a
  /// built-in ladder).
  double tx_rate = 0.0;
  /// Mempool capacity for the ingest-driven runs (0 = the binary's
  /// default; lowest-fee-first eviction once full).
  std::uint64_t mempool_cap = 0;
  /// Body-persistence backend: "mem" (default, zero IO) or "disk"
  /// (log-structured segment files, docs/STORAGE.md).
  std::string store = "mem";
  /// Simulated IO service times for the disk backend (µs per block append /
  /// per cold read). Ignored by --store mem.
  std::uint64_t io_write_us = 100;
  std::uint64_t io_read_us = 150;
};

/// Registers the shared bench flags on `parser`, bound to `*opts`.
void add_bench_flags(FlagParser& parser, BenchOptions* opts);

/// Applies the parsed options (SIMD dispatch tier, worker-pool lanes);
/// exits 2 on an invalid --cpu value. Returns the lane count in effect.
std::size_t apply_bench_options(const BenchOptions& opts, const std::string& program);

/// One-call helper for bench main(): registers the shared flags, parses
/// argv (usage + exit 0 on --help, error + exit 2 on failure), applies the
/// options, and returns them.
[[nodiscard]] BenchOptions parse_bench_options_or_exit(int argc, const char* const* argv,
                                                       const std::string& program,
                                                       const std::string& description);

}  // namespace ici
