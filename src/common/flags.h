// Minimal command-line flag parser for the CLI tools: --name=value and
// --name value forms, typed bindings, generated usage text. No external
// dependencies, strict about unknown flags.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ici {

class FlagParser {
 public:
  FlagParser(std::string program, std::string description);

  /// Binds --name to *out (which holds the default). `help` shows in usage().
  void add_uint(const std::string& name, std::uint64_t* out, const std::string& help);
  void add_double(const std::string& name, double* out, const std::string& help);
  void add_string(const std::string& name, std::string* out, const std::string& help);
  /// Boolean flags accept --name (true), --name=false / --name=true.
  void add_bool(const std::string& name, bool* out, const std::string& help);

  /// Parses argv. On failure returns false and sets *error. `--help` makes
  /// parse return false with *error empty (caller prints usage and exits 0).
  [[nodiscard]] bool parse(int argc, const char* const* argv, std::string* error);

  [[nodiscard]] std::string usage() const;

 private:
  enum class Type { kUint, kDouble, kString, kBool };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_text;
  };

  [[nodiscard]] const Flag* find(const std::string& name) const;
  [[nodiscard]] static bool assign(const Flag& flag, const std::string& value);

  std::string program_;
  std::string description_;
  std::vector<Flag> flags_;
};

}  // namespace ici
