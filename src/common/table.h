// Fixed-width ASCII table printer. Every bench binary emits its paper
// table/figure series through this, so output is uniform and greppable.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace ici {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; must have the same arity as the header.
  void row(std::vector<std::string> cells);

  /// Renders with column-sized padding, a header rule, and right-aligned
  /// numeric-looking cells.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ici
