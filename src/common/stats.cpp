#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ici {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::cv() const {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

void Histogram::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  stat_.add(x);
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank with linear interpolation between adjacent ranks.
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  double v = bytes;
  while (std::abs(v) >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), unit == 0 ? "%.0f %s" : "%.2f %s", v, kUnits[unit]);
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace ici
