#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ici {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::cv() const {
  if (n_ == 0 || mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

Histogram::Histogram(const Histogram& other) {
  const std::lock_guard<std::mutex> lk(other.mu_);
  samples_ = other.samples_;
  sorted_ = other.sorted_;
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  std::vector<double> copy;
  bool sorted = true;
  {
    const std::lock_guard<std::mutex> lk(other.mu_);
    copy = other.samples_;
    sorted = other.sorted_;
  }
  const std::lock_guard<std::mutex> lk(mu_);
  samples_ = std::move(copy);
  sorted_ = sorted;
  return *this;
}

void Histogram::add(double x) {
  const std::lock_guard<std::mutex> lk(mu_);
  samples_.push_back(x);
  sorted_ = false;
}

void Histogram::ensure_sorted_locked() const {
  if (sorted_) return;
  std::sort(samples_.begin(), samples_.end());
  sorted_ = true;
}

double Histogram::sum_locked() const {
  // Summed in sorted order so the floating-point rounding is canonical
  // for the sample multiset, independent of insertion order.
  ensure_sorted_locked();
  double total = 0.0;
  for (const double v : samples_) total += v;
  return total;
}

std::uint64_t Histogram::count() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return samples_.size();
}

double Histogram::sum() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return sum_locked();
}

double Histogram::mean() const {
  const std::lock_guard<std::mutex> lk(mu_);
  if (samples_.empty()) return 0.0;
  return sum_locked() / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  const std::lock_guard<std::mutex> lk(mu_);
  if (samples_.empty()) return 0.0;
  ensure_sorted_locked();
  return samples_.front();
}

double Histogram::max() const {
  const std::lock_guard<std::mutex> lk(mu_);
  if (samples_.empty()) return 0.0;
  ensure_sorted_locked();
  return samples_.back();
}

double Histogram::stddev() const {
  const std::lock_guard<std::mutex> lk(mu_);
  const std::size_t n = samples_.size();
  if (n < 2) return 0.0;
  const double mean = sum_locked() / static_cast<double>(n);
  double m2 = 0.0;
  for (const double v : samples_) m2 += (v - mean) * (v - mean);
  return std::sqrt(m2 / static_cast<double>(n - 1));
}

double Histogram::percentile(double p) const {
  const std::lock_guard<std::mutex> lk(mu_);
  if (samples_.empty()) return 0.0;
  ensure_sorted_locked();
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank with linear interpolation between adjacent ranks.
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  double v = bytes;
  while (std::abs(v) >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), unit == 0 ? "%.0f %s" : "%.2f %s", v, kUnits[unit]);
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace ici
