#include "common/hex.h"

namespace ici {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw DecodeError("from_hex: invalid hex digit");
}

}  // namespace

std::string to_hex(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) throw DecodeError("from_hex: odd-length input");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace ici
