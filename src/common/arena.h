// ObjectArena<T>: chunked, append-only object storage with stable addresses.
//
// The network facades own one heap object per simulated node; at 100k-1M
// nodes the per-object allocation (vector<unique_ptr<Node>>) costs one
// malloc + one pointer indirection per node and scatters nodes across the
// heap. The arena allocates nodes in fixed-size chunks instead: one
// allocation per `chunk_capacity` objects, index-addressable, and — unlike
// std::vector<T> — growth never moves an object, so raw pointers handed to
// the simulator (sim::Network keeps INode*) stay valid for the arena's
// lifetime.
//
// clear() destroys every object (reverse construction order) but KEEPS the
// chunk allocations for reuse — resetting a fleet between experiment tiers
// costs destructor calls, not a heap churn cycle.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace ici {

template <typename T>
class ObjectArena {
 public:
  explicit ObjectArena(std::size_t chunk_capacity = 1024) : chunk_cap_(chunk_capacity) {
    if (chunk_cap_ == 0) throw std::invalid_argument("ObjectArena: chunk_capacity must be > 0");
  }

  ~ObjectArena() {
    clear();
    for (T* chunk : chunks_) alloc_.deallocate(chunk, chunk_cap_);
  }

  ObjectArena(const ObjectArena&) = delete;
  ObjectArena& operator=(const ObjectArena&) = delete;

  /// Constructs a new object at the next slot; the returned reference (and
  /// its address) stays valid until clear()/destruction.
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    const std::size_t chunk = size_ / chunk_cap_;
    if (chunk == chunks_.size()) chunks_.push_back(alloc_.allocate(chunk_cap_));
    T* slot = chunks_[chunk] + (size_ % chunk_cap_);
    std::construct_at(slot, std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  [[nodiscard]] T& operator[](std::size_t i) {
    return chunks_[i / chunk_cap_][i % chunk_cap_];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return chunks_[i / chunk_cap_][i % chunk_cap_];
  }

  [[nodiscard]] T& at(std::size_t i) {
    if (i >= size_) throw std::out_of_range("ObjectArena::at");
    return (*this)[i];
  }
  [[nodiscard]] const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("ObjectArena::at");
    return (*this)[i];
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Slots currently backed by allocated chunks.
  [[nodiscard]] std::size_t capacity() const { return chunks_.size() * chunk_cap_; }

  /// Destroys all objects (reverse order) but keeps the chunks allocated, so
  /// refilling the arena reuses the same memory.
  void clear() {
    while (size_ > 0) {
      --size_;
      std::destroy_at(&(*this)[size_]);
    }
  }

 private:
  std::vector<T*> chunks_;
  std::size_t chunk_cap_;
  std::size_t size_ = 0;
  std::allocator<T> alloc_;
};

}  // namespace ici
