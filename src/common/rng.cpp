#include "common/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ici {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
  return lo + uniform(hi - lo + 1);
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 == 0.0);
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  have_spare_normal_ = true;
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double mean) {
  double u = 0.0;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t r = next();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(r >> (8 * b));
    }
  }
  return out;
}

std::size_t Rng::index(std::size_t size) {
  if (size == 0) throw std::invalid_argument("Rng::index: empty container");
  return static_cast<std::size_t>(uniform(size));
}

}  // namespace ici
