// Fixed-size worker pool driving the CPU-bound hot paths (slice
// verification, RS encode/reconstruct, Merkle level hashing). The one
// primitive is parallel_for(begin, end, grain, fn): the range is cut into
// ceil((end-begin)/grain) contiguous chunks whose boundaries depend ONLY on
// (range, grain) — never on the thread count — so per-chunk results merged
// in chunk order are bit-identical for any pool size, including 1. That is
// the determinism contract docs/THREADING.md documents: parallelism may
// change wall-clock time, never output bytes.
//
// The calling thread participates in chunk execution (a 1-thread pool
// spawns no workers at all), nested parallel_for calls from inside a chunk
// run inline on that worker, and the first exception — by chunk index, not
// arrival order — is rethrown to the caller after all workers quiesce.
//
// Worker chunks MUST NOT touch obs::TraceSink (it is single-threaded by
// design). Instead the pool measures each chunk's busy time locally and the
// CALLING thread records the samples after the join, one per chunk, under
// "<innermost open span>/pool" — so BENCH_*.json span aggregates show how
// many chunks ran and how evenly the work split (see docs/THREADING.md).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ici {

class ThreadPool {
 public:
  /// A pool of `threads` execution lanes (caller included); 0 means
  /// std::thread::hardware_concurrency(). `threads - 1` workers are spawned.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return thread_count_; }

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) in chunks of at most
  /// `grain` indices (grain 0 is treated as 1). Chunk boundaries are a pure
  /// function of (begin, end, grain); workers claim chunks dynamically, so
  /// only scheduling — never chunk shape or merge order — varies with the
  /// thread count. Synchronous: returns after every chunk ran. If chunks
  /// throw, the exception of the lowest-index throwing chunk is rethrown
  /// (which other chunks ran to completion is unspecified).
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool used by the hot paths. Defaults to hardware
  /// concurrency; benches and tools resize it from --threads before work
  /// starts (see bench/bench_util.h).
  static ThreadPool& global();

  /// Replaces the global pool with one of `threads` lanes (0 = hardware
  /// concurrency). Joins the old pool's workers first; call only while no
  /// parallel_for is in flight.
  static void set_global_threads(std::size_t threads);

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t chunk_count = 0;
    // All counters are guarded by mutex_. next_chunk is the next index to
    // claim (fast-forwarded to chunk_count on error), claimed/done count
    // chunks actually started/finished.
    std::size_t next_chunk = 0;
    std::size_t claimed = 0;
    std::size_t done = 0;
    std::vector<double>* chunk_us = nullptr;  // per-chunk busy-time slots
    std::exception_ptr error;            // from the lowest-index throwing chunk
    std::size_t error_chunk = 0;         // index that produced `error`
    bool has_error = false;
  };

  void worker_loop();
  /// Claims and runs chunks until the job is drained; returns when this
  /// thread can no longer contribute. Caller must NOT hold mutex_.
  void drain_job(Job& job);
  static void run_serial(std::size_t begin, std::size_t end, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>& fn,
                         std::vector<double>* chunk_us);
  void record_chunks(const std::vector<double>& chunk_us);

  std::size_t thread_count_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers wait for a job generation
  std::condition_variable done_cv_;  // caller waits for chunks_done == count
  Job* job_ = nullptr;               // active job, nullptr when idle
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Installs the per-chunk busy-time recorder parallel_for invokes — on the
/// CALLING thread, after the join — with one duration per chunk that ran.
/// src/obs/trace.cpp installs a recorder that files the samples under
/// "<innermost open span>/pool"; pass nullptr to disable. Lives here as a
/// raw hook so common/ stays free of an obs/ dependency.
void thread_pool_set_chunk_recorder(void (*recorder)(const double* chunk_us,
                                                     std::size_t count));

}  // namespace ici
