#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <stdexcept>

namespace ici {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' || c == '+' ||
          c == '%' || c == 'e' || c == 'x'))
      return false;
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table::row: arity mismatch with header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = width[c] - cells[c].size();
      os << "  ";
      if (looks_numeric(cells[c])) {
        os << std::string(pad, ' ') << cells[c];
      } else {
        os << cells[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace ici
