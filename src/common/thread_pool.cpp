#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

namespace ici {

namespace {

// Set for the lifetime of a pool worker thread (and therefore inside any
// chunk body): nested parallel_for calls run inline on the worker instead
// of deadlocking on the pool, and never touch the chunk recorder.
thread_local bool tl_in_worker = false;

using ChunkRecorder = void (*)(const double* chunk_us, std::size_t count);
std::atomic<ChunkRecorder> g_chunk_recorder{nullptr};

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(0);
  return pool;
}

double elapsed_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

void thread_pool_set_chunk_recorder(void (*recorder)(const double*, std::size_t)) {
  g_chunk_recorder.store(recorder, std::memory_order_release);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  thread_count_ = std::max<std::size_t>(1, threads);
  workers_.reserve(thread_count_ - 1);
  for (std::size_t i = 0; i + 1 < thread_count_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::global() { return *global_slot(); }

void ThreadPool::set_global_threads(std::size_t threads) {
  global_slot() = std::make_unique<ThreadPool>(threads);
}

void ThreadPool::run_serial(std::size_t begin, std::size_t end, std::size_t grain,
                            const std::function<void(std::size_t, std::size_t)>& fn,
                            std::vector<double>* chunk_us) {
  for (std::size_t b = begin; b < end; b += grain) {
    const std::size_t e = std::min(end, b + grain);
    const auto start = std::chrono::steady_clock::now();
    fn(b, e);
    if (chunk_us != nullptr) chunk_us->push_back(elapsed_us(start));
  }
}

void ThreadPool::record_chunks(const std::vector<double>& chunk_us) {
  const ChunkRecorder recorder = g_chunk_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr && !chunk_us.empty()) recorder(chunk_us.data(), chunk_us.size());
}

// Claim-and-run loop shared by workers and the calling thread. Entered and
// left with `lk` held; unlocks only around chunk execution. Chunks are
// claimed in index order through job.next_chunk; an error fast-forwards
// next_chunk so no further chunks start, and the lowest-index error wins so
// the rethrown exception does not depend on scheduling.
void ThreadPool::drain_job(Job& job) {
  std::unique_lock<std::mutex> lk(mutex_, std::adopt_lock);
  while (job_ == &job && job.next_chunk < job.chunk_count) {
    const std::size_t idx = job.next_chunk++;
    ++job.claimed;
    lk.unlock();
    const std::size_t b = job.begin + idx * job.grain;
    const std::size_t e = std::min(job.end, b + job.grain);
    std::exception_ptr error;
    const auto start = std::chrono::steady_clock::now();
    double us = 0;
    try {
      (*job.fn)(b, e);
      us = elapsed_us(start);
    } catch (...) {
      error = std::current_exception();
    }
    lk.lock();
    if (error) {
      if (!job.has_error || idx < job.error_chunk) {
        job.has_error = true;
        job.error_chunk = idx;
        job.error = error;
      }
      job.next_chunk = job.chunk_count;  // stop claiming, finish what runs
    } else {
      (*job.chunk_us)[idx] = us;
    }
    if (++job.done == job.claimed && job.next_chunk == job.chunk_count) {
      done_cv_.notify_all();
    }
  }
  lk.release();  // caller still holds the mutex
}

void ThreadPool::worker_loop() {
  tl_in_worker = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || (job_ != nullptr && generation_ != seen); });
    if (stop_) return;
    seen = generation_;
    Job* job = job_;
    lk.release();
    drain_job(*job);
    // drain_job returned with the lock held again.
    lk = std::unique_lock<std::mutex>(mutex_, std::adopt_lock);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;  // zero-length range: fn is never invoked
  if (grain == 0) grain = 1;
  const std::size_t chunk_count = (end - begin + grain - 1) / grain;

  // Nested call from inside a chunk: run inline on this worker (waiting on
  // the pool would deadlock). No recording — the sink belongs to the
  // coordinating thread.
  if (tl_in_worker) {
    run_serial(begin, end, grain, fn, nullptr);
    return;
  }

  std::vector<double> chunk_us;
  if (chunk_count == 1 || workers_.empty()) {
    chunk_us.reserve(chunk_count);
    run_serial(begin, end, grain, fn, &chunk_us);
    record_chunks(chunk_us);
    return;
  }

  Job job;
  job.fn = &fn;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.chunk_count = chunk_count;
  chunk_us.assign(chunk_count, 0.0);
  job.chunk_us = &chunk_us;

  {
    std::unique_lock<std::mutex> lk(mutex_);
    if (job_ != nullptr) {
      // Another thread is mid-parallel_for (never the simulator thread —
      // it is single-threaded — but tests may race two callers). Degrade
      // to serial; recording would race the other caller's sink use.
      lk.unlock();
      run_serial(begin, end, grain, fn, nullptr);
      return;
    }
    job_ = &job;
    ++generation_;
    work_cv_.notify_all();
    lk.release();
    drain_job(job);
    lk = std::unique_lock<std::mutex>(mutex_, std::adopt_lock);
    done_cv_.wait(lk, [&] {
      return job.done == job.claimed && job.next_chunk == job.chunk_count;
    });
    job_ = nullptr;
  }

  if (job.has_error) std::rethrow_exception(job.error);
  record_chunks(chunk_us);
}

}  // namespace ici
