// Lightweight statistics used by the metrics layer and the experiment
// harnesses: streaming mean/variance (Welford) and a sample-retaining
// histogram with exact percentiles.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ici {

/// Streaming mean / variance / min / max. O(1) memory.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Coefficient of variation (stddev/mean); 0 when mean is 0.
  [[nodiscard]] double cv() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains all samples; percentiles are exact (nearest-rank on the sorted
/// sample). Fine for simulation scales (≤ millions of samples).
///
/// Thread-safe: add() may be called from concurrent event lanes (sim
/// sharding). Every aggregate — including sum/mean/stddev — is computed
/// from the *sorted* sample on demand, so the results are a pure function
/// of the sample multiset: identical no matter which order lanes appended
/// in (a streaming Welford accumulator would leak insertion order through
/// floating-point non-associativity and break the cross-K bit-identity
/// contract).
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const;

  /// p in [0,100]. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50); }
  [[nodiscard]] double p90() const { return percentile(90); }
  [[nodiscard]] double p99() const { return percentile(99); }

 private:
  /// Sorts samples_ if needed. Caller must hold mu_.
  void ensure_sorted_locked() const;
  [[nodiscard]] double sum_locked() const;

  mutable std::mutex mu_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// "12.3 KiB", "4.0 MiB", ... — used by table output.
[[nodiscard]] std::string format_bytes(double bytes);

/// Fixed-precision double formatting ("%.*f") without iostream state leaks.
[[nodiscard]] std::string format_double(double v, int precision);

}  // namespace ici
