// Lightweight statistics used by the metrics layer and the experiment
// harnesses: streaming mean/variance (Welford) and a sample-retaining
// histogram with exact percentiles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ici {

/// Streaming mean / variance / min / max. O(1) memory.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  /// Coefficient of variation (stddev/mean); 0 when mean is 0.
  [[nodiscard]] double cv() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains all samples; percentiles are exact (nearest-rank on the sorted
/// sample). Fine for simulation scales (≤ millions of samples).
class Histogram {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const { return stat_.mean(); }
  [[nodiscard]] double min() const { return stat_.min(); }
  [[nodiscard]] double max() const { return stat_.max(); }
  [[nodiscard]] double stddev() const { return stat_.stddev(); }
  [[nodiscard]] double sum() const { return stat_.sum(); }

  /// p in [0,100]. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50); }
  [[nodiscard]] double p90() const { return percentile(90); }
  [[nodiscard]] double p99() const { return percentile(99); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  RunningStat stat_;
};

/// "12.3 KiB", "4.0 MiB", ... — used by table output.
[[nodiscard]] std::string format_bytes(double bytes);

/// Fixed-precision double formatting ("%.*f") without iostream state leaks.
[[nodiscard]] std::string format_double(double v, int precision);

}  // namespace ici
