// Runtime CPU-feature detection and backend selection for the SIMD fast
// paths (SHA-NI SHA-256 compression, SSSE3/AVX2 GF(256) row kernels — see
// docs/CPU_BACKENDS.md). Every kernel behind this dispatch is bit-identical
// to its scalar reference (enforced by tests/test_cpu_backends.cpp), so the
// selection only moves wall clock, never results.
//
// Selection order: the `ICI_CPU` environment variable ("scalar" or
// "native", read once on first query) seeds the choice; set_backend() /
// set_backend_name() — wired to the `--cpu` flag of every bench binary and
// tools/icisim — override it at runtime. "native" means "the best kernels
// this CPU supports", which degrades to scalar on hardware without them,
// so it is always a valid request.
#pragma once

#include <string_view>

namespace ici::cpu {

enum class Backend {
  kScalar,  // portable reference implementations only
  kNative,  // best available SIMD kernels (scalar where unsupported)
};

/// CPUID-derived capabilities, probed once per process. avx2 is only
/// reported when the OS saves the YMM state (OSXSAVE + XCR0), so a true
/// flag always means the instructions are executable.
struct Features {
  bool ssse3 = false;
  bool avx2 = false;
  bool sha_ni = false;
};

[[nodiscard]] const Features& features();

/// Current selection (initialized from $ICI_CPU, default native).
[[nodiscard]] Backend backend();
void set_backend(Backend b);
/// Accepts "scalar" or "native"; returns false (and changes nothing) on any
/// other string. The string form backs the --cpu flags.
bool set_backend_name(std::string_view name);

/// "scalar" | "native" — what config.cpu_backend reports in BENCH_*.json.
[[nodiscard]] const char* backend_name();

/// Effective per-primitive kernel labels, after intersecting the selection
/// with features(): what actually runs, for exp13's per-primitive config.
[[nodiscard]] const char* sha256_backend_name();  // "sha-ni" | "scalar"
[[nodiscard]] const char* gf256_backend_name();   // "avx2" | "ssse3" | "scalar"

/// Hot-path predicates (one relaxed atomic load each).
[[nodiscard]] bool sha256_native();     // SHA-NI kernel selected and present
[[nodiscard]] int gf256_native_level();  // 0 = scalar, 1 = SSSE3, 2 = AVX2

}  // namespace ici::cpu
