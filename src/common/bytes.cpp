#include "common/bytes.h"

namespace ici {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::raw(ByteSpan data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

void ByteWriter::blob(ByteSpan data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("ByteReader: truncated input");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::blob() {
  std::uint32_t n = u32();
  return raw(n);
}

std::string ByteReader::str() {
  std::uint32_t n = u32();
  need(n);
  std::string out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void ByteReader::expect_done(const char* context) const {
  if (!done()) throw DecodeError(std::string("trailing bytes after ") + context);
}

void ensure(bool cond, const char* msg) {
  if (!cond) throw std::logic_error(msg);
}

}  // namespace ici
