// Deterministic pseudo-random number generation.
//
// Every stochastic component in the simulator (workload generation, node
// placement, jitter, churn) draws from an explicitly seeded Rng so whole
// experiments replay bit-identically. The generator is xoshiro256**, seeded
// through splitmix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace ici {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Normal(mean, stddev) via Box-Muller.
  double normal(double mean, double stddev);

  /// Exponential with the given mean (= 1/lambda). Used for Poisson arrivals.
  double exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// n uniformly random bytes.
  Bytes bytes(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size);

 private:
  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace ici
