#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace ici {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- JsonWriter -------------------------------------------------------------

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;  // top-level value
  if (stack_.back() == Frame::kObject) {
    if (!key_pending_) throw std::logic_error("JsonWriter: value in object without key");
    key_pending_ = false;
    return;
  }
  // Array element.
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Frame::kObject)
    throw std::logic_error("JsonWriter: key outside object");
  if (key_pending_) throw std::logic_error("JsonWriter: consecutive keys");
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_)
    throw std::logic_error("JsonWriter: unbalanced end_object");
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray)
    throw std::logic_error("JsonWriter: unbalanced end_array");
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf; null keeps the document parseable.
    out_ += "null";
  } else {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out_.append(buf, res.ptr);
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, res.ptr);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out_.append(buf, res.ptr);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!stack_.empty()) throw std::logic_error("JsonWriter: unclosed object/array");
  if (!done_) throw std::logic_error("JsonWriter: empty document");
  return out_;
}

// --- JsonValue / parser -----------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = true;
          return v;
        }
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        {
          JsonValue v;
          v.type_ = JsonValue::Type::kBool;
          v.bool_ = false;
          return v;
        }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Emitted documents only escape control characters, so a plain
          // UTF-8 encoding of the code point suffices (no surrogate pairs).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected value");
    double num = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto res = std::from_chars(first, last, num);
    if (res.ec != std::errc{} || res.ptr != last) fail("bad number");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = num;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("JsonValue: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) throw std::runtime_error("JsonValue: not an array");
  return array_;
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  throw std::runtime_error("JsonValue: size() on scalar");
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& arr = items();
  if (index >= arr.size()) throw std::runtime_error("JsonValue: array index out of range");
  return arr[index];
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (type_ != Type::kObject) throw std::runtime_error("JsonValue: not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) throw std::runtime_error("JsonValue: not an object");
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::runtime_error("JsonValue: missing key " + std::string(key));
  return *v;
}

}  // namespace ici
