#include "ici/node.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/thread_pool.h"
#include "ici/network.h"
#include "obs/trace.h"
#include "sync/serve.h"

namespace ici::core {

using cluster::NodeId;

namespace {

/// Digest a member commits to in its vote: the txids it verified.
Hash256 slice_digest_of(const std::vector<Transaction>& txs) {
  ByteWriter w(txs.size() * 32);
  for (const Transaction& tx : txs) w.raw(tx.txid().span());
  return Hash256::tagged("ici/slice", ByteSpan(w.bytes().data(), w.bytes().size()));
}

Bytes vote_payload(const Hash256& block_hash, bool approve, const Hash256& slice_digest,
                   const std::optional<Hash256>& challenge) {
  ByteWriter w(102);
  w.raw(block_hash.span());
  w.u8(approve ? 1 : 0);
  w.raw(slice_digest.span());
  w.u8(challenge ? 1 : 0);
  if (challenge) w.raw(challenge->span());
  return w.take();
}

// Transactions per parallel_for chunk in slice verification. A tx check is
// a handful of SHA-256 invocations (signature re-derivation dominates), so
// small chunks would drown in dispatch; 8 keeps chunk cost in the tens of
// microseconds while still splitting paper-sized slices across workers.
constexpr std::size_t kSliceVerifyGrain = 8;

}  // namespace

IciNode::IciNode(IciNetwork& ctx, NodeId id)
    : ctx_(ctx), id_(id), key_(KeyPair::from_seed(0x1c1'0000ULL + id)),
      store_(ctx.header_index()) {
  // Hot storage scalars live in the fleet's contiguous tally row for this
  // id; the stores write through it (fleet_tally.h).
  store_.bind_tally(&ctx.fleet_tally(), id);
  shard_store_.bind_tally(&ctx.fleet_tally(), id);
}

void IciNode::seed_genesis(const Block& genesis, bool is_storer,
                           const erasure::Shard* shard, const GenesisOwnerMap* owners) {
  const Hash256 h = genesis.hash();
  if (is_storer) {
    store_.put(HashedBlock(genesis, h));
  } else {
    store_.put(StoredBlock::header_only(genesis.header(), h));
  }
  if (shard != nullptr) shard_store_.put(h, *shard);
  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);
  auto& tally = ctx_.fleet_tally().slot(id_);
  for (const Transaction& tx : genesis.txs()) {
    const Hash256& id = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs().size(); ++i) {
      const OutPoint op{id, i};
      const NodeId owner =
          owners != nullptr ? owners->at(op) : ctx_.utxo_owner(op, my_cluster);
      if (owner == id_) {
        if (shard_.emplace(op, tx.outputs()[i]).second) ++tally.utxo_entries;
        if (i == 0) tx_index_[id] = {h, 0};
      }
    }
  }
}

void IciNode::index_tx(const Hash256& txid, const Hash256& block_hash, std::uint64_t height) {
  tx_index_[txid] = {block_hash, height};
}

void IciNode::on_message(sim::NodeId from, const sim::MessagePtr& msg) {
  if (const auto* s = dynamic_cast<const sync::SyncMessage*>(msg.get())) {
    handle_sync_message(from, *s);
    return;
  }
  const auto* m = dynamic_cast<const IciMessage*>(msg.get());
  if (m == nullptr) return;  // foreign message type; not ours
  switch (m->kind()) {
    case MsgKind::kFullBlock:
      handle_full_block(from, static_cast<const FullBlockMsg&>(*m));
      break;
    case MsgKind::kSlice:
      handle_slice(from, static_cast<const SliceMsg&>(*m));
      break;
    case MsgKind::kUtxoLookup:
      handle_utxo_lookup(from, static_cast<const UtxoLookupMsg&>(*m));
      break;
    case MsgKind::kUtxoResponse:
      handle_utxo_response(from, static_cast<const UtxoResponseMsg&>(*m));
      break;
    case MsgKind::kVote:
      handle_vote(from, static_cast<const VoteMsg&>(*m));
      break;
    case MsgKind::kCommit:
      handle_commit(from, static_cast<const CommitMsg&>(*m));
      break;
    case MsgKind::kBlockRequest:
      handle_block_request(from, static_cast<const BlockRequestMsg&>(*m));
      break;
    case MsgKind::kBlockResponse:
      handle_block_response(from, static_cast<const BlockResponseMsg&>(*m));
      break;
    case MsgKind::kHeadersRequest:
      handle_headers_request(from, static_cast<const HeadersRequestMsg&>(*m));
      break;
    case MsgKind::kInventoryRequest:
      handle_inventory_request(from, static_cast<const InventoryRequestMsg&>(*m));
      break;
    case MsgKind::kHeadersResponse:
      handle_headers_response(from, static_cast<const HeadersResponseMsg&>(*m));
      break;
    case MsgKind::kInventoryResponse:
      // Only repair drivers consume these today; a node ignores strays.
      break;
    case MsgKind::kBlockShard:
      handle_block_shard(from, static_cast<const BlockShardMsg&>(*m));
      break;
    case MsgKind::kShardRequest:
      handle_shard_request(from, static_cast<const ShardRequestMsg&>(*m));
      break;
    case MsgKind::kShardResponse:
      handle_shard_response(from, static_cast<const ShardResponseMsg&>(*m));
      break;
    case MsgKind::kProofRequest:
      handle_proof_request(from, static_cast<const ProofRequestMsg&>(*m));
      break;
    case MsgKind::kProofResponse:
      handle_proof_response(from, static_cast<const ProofResponseMsg&>(*m));
      break;
    case MsgKind::kTxLocateRequest:
      handle_tx_locate_request(from, static_cast<const TxLocateRequestMsg&>(*m));
      break;
    case MsgKind::kTxLocateResponse:
      handle_tx_locate_response(from, static_cast<const TxLocateResponseMsg&>(*m));
      break;
  }
}

// ---------------------------------------------------------------------------
// Proposer
// ---------------------------------------------------------------------------

void IciNode::propose(const Block& block) {
  auto msg =
      std::make_shared<FullBlockMsg>(std::make_shared<const Block>(block), /*verify=*/true);
  const std::uint64_t height = block.header().height;
  for (std::size_t c = 0; c < ctx_.directory().cluster_count(); ++c) {
    const auto head = ctx_.directory().head(c, height);
    if (!head) {
      ctx_.metrics().counter("propose.headless_cluster").inc();
      continue;
    }
    ctx_.network().send(id_, *head, msg);
  }
}

// ---------------------------------------------------------------------------
// Head role
// ---------------------------------------------------------------------------

void IciNode::handle_full_block(sim::NodeId from, const FullBlockMsg& msg) {
  (void)from;
  if (msg.for_verification) {
    start_cluster_verification(msg.block);
  } else {
    // Storage hand-off from a committing head.
    store_.put(HashedBlock(msg.block));
    ctx_.metrics().counter("storage.bodies_received").inc();
  }
}

void IciNode::start_cluster_verification(std::shared_ptr<const Block> block) {
  const Hash256 hash = block->hash();
  if (verifying_.contains(hash) || store_.has_block(hash)) return;

  // Structural checks the head performs on the whole block: Merkle
  // consistency and no duplicate outpoints across transactions (cross-slice
  // conflicts individual members cannot see).
  {
    const obs::Span span("verify/head_checks");
    if (!block->merkle_ok()) {
      ctx_.metrics().counter("verify.head_rejected").inc();
      return;
    }
    std::unordered_set<OutPoint, OutPointHasher> spent;
    for (const Transaction& tx : block->txs()) {
      for (const TxInput& in : tx.inputs()) {
        if (!spent.insert(in.prevout).second) {
          ctx_.metrics().counter("verify.head_rejected").inc();
          return;
        }
      }
    }
  }

  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);
  const std::vector<cluster::NodeInfo> members = ctx_.directory().online_members(my_cluster);
  if (members.empty()) return;

  PendingVerify pv;
  pv.block = block;
  pv.expected = members.size();
  pv.started = ctx_.simulator().now();
  verifying_.emplace(hash, std::move(pv));

  // Contiguous slices, sizes differing by at most one.
  const std::size_t n = block->txs().size();
  const std::size_t m = members.size();
  std::size_t begin = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t len = n / m + (i < n % m ? 1 : 0);
    auto slice = std::make_shared<SliceMsg>();
    slice->header = block->header();
    slice->block_hash = hash;
    slice->first_index = static_cast<std::uint32_t>(begin);
    slice->total_txs = static_cast<std::uint32_t>(n);
    slice->txs.assign(block->txs().begin() + static_cast<std::ptrdiff_t>(begin),
                      block->txs().begin() + static_cast<std::ptrdiff_t>(begin + len));
    begin += len;
    ctx_.network().send(id_, members[i].id, std::move(slice));
  }
  ctx_.metrics().counter("verify.rounds_started").inc();

  ctx_.simulator().after(ctx_.config().verify_timeout_us, [this, hash] {
    const auto it = verifying_.find(hash);
    if (it == verifying_.end() || it->second.decided) return;
    PendingVerify& pv = it->second;
    // Timeout: stop waiting for silent members; the quorum is judged over
    // the votes that actually arrived (disproven challenges still count as
    // received votes, so byzantine challengers cannot shrink the
    // denominator). An unresolved challenge at the hard deadline is
    // treated as unproven fraud: too risky to commit, abort.
    const auto need = static_cast<std::size_t>(std::ceil(
        ctx_.config().vote_quorum *
        static_cast<double>(std::max<std::size_t>(pv.votes_received, 1))));
    if (pv.expected > pv.votes_received) {
      ctx_.metrics().counter("verify.votes_missing").inc(pv.expected - pv.votes_received);
    }
    if (pv.challenges_pending == 0 && pv.approvals > 0 && pv.approvals >= need) {
      commit_block(hash);
    } else {
      pv.decided = true;
      ctx_.metrics().counter("verify.aborted").inc();
      verifying_.erase(it);
    }
  });
}

void IciNode::handle_vote(sim::NodeId from, const VoteMsg& msg) {
  const auto it = verifying_.find(msg.block_hash);
  if (it == verifying_.end()) {
    ctx_.metrics().counter("verify.late_votes").inc();
    return;
  }
  const Bytes payload =
      vote_payload(msg.block_hash, msg.approve, msg.slice_digest, msg.challenged_txid);
  if (!verify(msg.voter, payload, msg.sig)) {
    ctx_.metrics().counter("verify.bad_vote_sig").inc();
    return;
  }
  // One vote per member: injected duplicate deliveries (sim/faults.h) must
  // not inflate the tally. Fault-free runs never see a second copy, so this
  // guard leaves their metrics untouched.
  if (!it->second.voters.insert(from).second) {
    ctx_.metrics().counter("verify.duplicate_votes").inc();
    return;
  }
  ++it->second.votes_received;
  if (msg.approve) {
    ++it->second.approvals;
  } else if (msg.challenged_txid) {
    // A substantiated rejection: re-verify the named transaction ourselves.
    // The decision is held open until the challenge resolves; confirmed
    // fraud vetoes the block, a disproven challenge is discarded so
    // byzantine rejections gain no veto power.
    start_challenge(msg.block_hash, *msg.challenged_txid);
  } else {
    ++it->second.rejections;
  }
  maybe_decide(msg.block_hash);
}

void IciNode::maybe_decide(const Hash256& block_hash) {
  const auto it = verifying_.find(block_hash);
  if (it == verifying_.end() || it->second.decided) return;
  PendingVerify& pv = it->second;
  if (pv.challenges_pending > 0) return;  // fraud check in flight
  const auto need = static_cast<std::size_t>(
      std::ceil(ctx_.config().vote_quorum * static_cast<double>(pv.expected)));
  // Commit only once every online member has spoken (or, via the timeout
  // path, stopped being waited for): a still-outstanding vote may carry a
  // fraud challenge, and honest detection is typically the slowest vote
  // because it waits on its UTXO lookups.
  if (pv.approvals >= need && pv.votes_received >= pv.expected) {
    commit_block(block_hash);
  } else if (pv.rejections > pv.expected - need) {
    reject_block(block_hash, "verify.rejected");
  }
}

void IciNode::reject_block(const Hash256& block_hash, const char* counter) {
  const auto it = verifying_.find(block_hash);
  if (it == verifying_.end() || it->second.decided) return;
  it->second.decided = true;
  ctx_.metrics().counter(counter).inc();
  verifying_.erase(it);
}

void IciNode::start_challenge(const Hash256& block_hash, const Hash256& txid) {
  const auto pv_it = verifying_.find(block_hash);
  if (pv_it == verifying_.end() || pv_it->second.decided) return;

  ByteWriter key_bytes(64);
  key_bytes.raw(block_hash.span());
  key_bytes.raw(txid.span());
  const Hash256 key = Hash256::tagged(
      "ici/challenge", ByteSpan(key_bytes.bytes().data(), key_bytes.bytes().size()));
  if (challenges_.contains(key)) return;  // duplicate challenge, already checking

  // The challenged tx must exist in the block at all.
  const Transaction* tx = nullptr;
  for (const Transaction& candidate : pv_it->second.block->txs()) {
    if (candidate.txid() == txid) {
      tx = &candidate;
      break;
    }
  }
  if (tx == nullptr) {
    ctx_.metrics().counter("fraud.bogus").inc();  // challenge about a foreign tx
    return;
  }

  // Immediate verdicts that need no lookups.
  if (!validator_.check_tx_stateless(*tx)) {
    ctx_.metrics().counter("fraud.confirmed").inc();
    reject_block(block_hash, "verify.fraud_rejected");
    return;
  }
  if (tx->is_coinbase()) {
    ctx_.metrics().counter("fraud.bogus").inc();
    return;
  }

  PendingChallenge pc;
  pc.block_hash = block_hash;
  pc.tx = *tx;
  std::unordered_map<NodeId, std::vector<OutPoint>> lookups;
  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);
  for (const TxInput& in : pc.tx.inputs()) {
    const NodeId owner = ctx_.utxo_owner(in.prevout, my_cluster);
    if (owner == id_) {
      const auto found = shard_.find(in.prevout);
      pc.resolved[in.prevout] =
          found == shard_.end() ? std::nullopt : std::make_optional(found->second);
    } else {
      lookups[owner].push_back(in.prevout);
      pc.resolved[in.prevout] = std::nullopt;
      ++pc.outstanding_lookups;
    }
  }
  pv_it->second.challenges_pending += 1;
  challenges_.emplace(key, std::move(pc));

  for (auto& [owner, ops] : lookups) {
    auto lk = std::make_shared<UtxoLookupMsg>();
    lk->block_hash = key;  // challenge context, echoed by the owner
    lk->outpoints = std::move(ops);
    ctx_.network().send(id_, owner, std::move(lk));
  }

  const auto it = challenges_.find(key);
  if (it->second.outstanding_lookups == 0) {
    finish_challenge(key);
  } else {
    ctx_.simulator().after(ctx_.config().lookup_timeout_us, [this, key] {
      const auto pending = challenges_.find(key);
      if (pending == challenges_.end() || pending->second.done) return;
      pending->second.lookup_timeout = true;
      finish_challenge(key);
    });
  }
}

void IciNode::finish_challenge(const Hash256& challenge_key) {
  const auto it = challenges_.find(challenge_key);
  if (it == challenges_.end() || it->second.done) return;
  PendingChallenge& pc = it->second;
  pc.done = true;

  bool fraudulent = false;
  Amount in_value = 0;
  bool all_known = true;
  for (const TxInput& in : pc.tx.inputs()) {
    const auto& entry = pc.resolved.at(in.prevout);
    if (!entry) {
      // Unknown with all owners heard = the input really does not exist.
      if (!pc.lookup_timeout) fraudulent = true;
      all_known = false;
      continue;
    }
    if (entry->recipient != in.pub) fraudulent = true;
    in_value += entry->value;
  }
  if (all_known && pc.tx.total_output() > in_value) fraudulent = true;

  const Hash256 block_hash = pc.block_hash;
  challenges_.erase(it);

  const auto pv_it = verifying_.find(block_hash);
  if (pv_it == verifying_.end() || pv_it->second.decided) return;
  if (pv_it->second.challenges_pending > 0) pv_it->second.challenges_pending -= 1;

  if (fraudulent) {
    ctx_.metrics().counter("fraud.confirmed").inc();
    reject_block(block_hash, "verify.fraud_rejected");
  } else {
    ctx_.metrics().counter("fraud.bogus").inc();
    maybe_decide(block_hash);
  }
}

void IciNode::commit_block(const Hash256& block_hash) {
  const auto it = verifying_.find(block_hash);
  if (it == verifying_.end() || it->second.decided) return;
  PendingVerify& pv = it->second;
  pv.decided = true;

  const Block& block = *pv.block;
  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);
  const std::uint64_t height = block.header().height;

  if (ctx_.coded()) {
    // Coded mode: Reed-Solomon the body across d+p distinct members.
    const Bytes payload = block.serialize();
    const auto shards = ctx_.codec().encode(ByteSpan(payload.data(), payload.size()));
    const std::vector<NodeId> holders = ctx_.shard_holders(block_hash, height, my_cluster);
    for (std::size_t i = 0; i < holders.size(); ++i) {
      if (!ctx_.directory().online(holders[i])) continue;  // repaired later
      if (holders[i] == id_) {
        shard_store_.put(block_hash, shards[i]);
        continue;
      }
      auto msg = std::make_shared<BlockShardMsg>();
      msg->block_hash = block_hash;
      msg->height = height;
      msg->shard = shards[i];
      ctx_.network().send(id_, holders[i], std::move(msg));
    }
  } else {
    // Hand the body to the assigned storers.
    const std::vector<NodeId> storers =
        ctx_.storers_of(block_hash, height, my_cluster, /*online_only=*/true);
    auto body = std::make_shared<FullBlockMsg>(pv.block, /*verify=*/false);
    for (NodeId s : storers) {
      if (s == id_) {
        store_.put(HashedBlock(pv.block, block_hash));
      } else {
        ctx_.network().send(id_, s, body);
      }
    }
  }

  // Per-member UTXO-shard deltas.
  std::unordered_map<NodeId, std::shared_ptr<CommitMsg>> deltas;
  auto delta_for = [&](NodeId owner) -> CommitMsg& {
    auto& slot = deltas[owner];
    if (!slot) {
      slot = std::make_shared<CommitMsg>();
      slot->header = block.header();
      slot->block_hash = block_hash;
    }
    return *slot;
  };
  for (const Transaction& tx : block.txs()) {
    for (const TxInput& in : tx.inputs()) {
      delta_for(ctx_.utxo_owner(in.prevout, my_cluster)).spent.push_back(in.prevout);
    }
    const Hash256& txid = tx.txid();
    for (std::uint32_t i = 0; i < tx.outputs().size(); ++i) {
      const OutPoint op{txid, i};
      delta_for(ctx_.utxo_owner(op, my_cluster)).created.emplace_back(op, tx.outputs()[i]);
    }
  }
  // Every online member gets a commit notice (empty delta if not an owner).
  for (const cluster::NodeInfo& member : ctx_.directory().online_members(my_cluster)) {
    auto found = deltas.find(member.id);
    std::shared_ptr<CommitMsg> msg;
    if (found != deltas.end()) {
      msg = found->second;
    } else {
      msg = std::make_shared<CommitMsg>();
      msg->header = block.header();
      msg->block_hash = block_hash;
    }
    ctx_.network().send(id_, member.id, std::move(msg));
  }

  ctx_.metrics().counter("commit.count").inc();
  const sim::SimTime verify_elapsed = ctx_.simulator().now() - pv.started;
  ctx_.metrics().distribution("commit.cluster_latency_us")
      .add(static_cast<double>(verify_elapsed));
  obs::TraceSink::global().record_sim("verify/commit", static_cast<double>(verify_elapsed));
  ctx_.note_commit(my_cluster, block);
  verifying_.erase(it);
}

// ---------------------------------------------------------------------------
// Member role
// ---------------------------------------------------------------------------

void IciNode::handle_slice(sim::NodeId from, const SliceMsg& msg) {
  if (fault_.drop_slices) {
    ctx_.metrics().counter("fault.slices_dropped").inc();
    return;
  }
  if (slices_.contains(msg.block_hash)) return;

  PendingSlice ps;
  ps.header = msg.header;
  ps.block_hash = msg.block_hash;
  ps.head = from;
  ps.txs = msg.txs;
  ps.received = ctx_.simulator().now();

  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);

  // Gather the UTXO lookups this slice needs (validity checks, including
  // the stateless ones, run per-tx in finish_slice so the first offender
  // can be named in a challenge).
  std::unordered_map<NodeId, std::vector<OutPoint>> lookups;
  for (const Transaction& tx : ps.txs) {
    if (tx.is_coinbase()) continue;
    for (const TxInput& in : tx.inputs()) {
      const NodeId owner = ctx_.utxo_owner(in.prevout, my_cluster);
      if (owner == id_) {
        const auto found = shard_.find(in.prevout);
        ps.resolved[in.prevout] =
            found == shard_.end() ? std::nullopt : std::make_optional(found->second);
      } else {
        lookups[owner].push_back(in.prevout);
        ps.resolved[in.prevout] = std::nullopt;  // placeholder until response
        ++ps.outstanding_lookups;
      }
    }
  }

  const Hash256 hash = msg.block_hash;
  slices_.emplace(hash, std::move(ps));

  for (auto& [owner, ops] : lookups) {
    auto lk = std::make_shared<UtxoLookupMsg>();
    lk->block_hash = hash;
    lk->outpoints = std::move(ops);
    ctx_.network().send(id_, owner, std::move(lk));
    ctx_.metrics().counter("lookup.requests").inc();
  }

  const auto it = slices_.find(hash);
  if (it->second.outstanding_lookups == 0) {
    finish_slice(hash);
  } else {
    ctx_.simulator().after(ctx_.config().lookup_timeout_us, [this, hash] {
      const auto pending = slices_.find(hash);
      if (pending == slices_.end() || pending->second.done) return;
      pending->second.any_lookup_failed = true;
      ctx_.metrics().counter("lookup.timeouts").inc();
      finish_slice(hash);
    });
  }
}

void IciNode::handle_utxo_lookup(sim::NodeId from, const UtxoLookupMsg& msg) {
  auto resp = std::make_shared<UtxoResponseMsg>();
  resp->block_hash = msg.block_hash;
  resp->entries.reserve(msg.outpoints.size());
  for (const OutPoint& op : msg.outpoints) {
    UtxoResponseEntry entry;
    entry.outpoint = op;
    const auto found = shard_.find(op);
    if (found != shard_.end()) {
      entry.exists = true;
      entry.output = found->second;
    }
    resp->entries.push_back(entry);
  }
  ctx_.network().send(id_, from, std::move(resp));
}

void IciNode::handle_utxo_response(sim::NodeId from, const UtxoResponseMsg& msg) {
  (void)from;
  // The context key distinguishes slice verification from head-side
  // challenge checks (the owner just echoes it).
  if (const auto it = slices_.find(msg.block_hash); it != slices_.end() && !it->second.done) {
    PendingSlice& ps = it->second;
    for (const UtxoResponseEntry& entry : msg.entries) {
      const auto slot = ps.resolved.find(entry.outpoint);
      if (slot == ps.resolved.end()) continue;
      if (entry.exists) slot->second = entry.output;
      if (ps.outstanding_lookups > 0) --ps.outstanding_lookups;
    }
    if (ps.outstanding_lookups == 0) finish_slice(msg.block_hash);
    return;
  }
  if (const auto it = challenges_.find(msg.block_hash);
      it != challenges_.end() && !it->second.done) {
    PendingChallenge& pc = it->second;
    for (const UtxoResponseEntry& entry : msg.entries) {
      const auto slot = pc.resolved.find(entry.outpoint);
      if (slot == pc.resolved.end()) continue;
      if (entry.exists) slot->second = entry.output;
      if (pc.outstanding_lookups > 0) --pc.outstanding_lookups;
    }
    if (pc.outstanding_lookups == 0) finish_challenge(msg.block_hash);
  }
}

void IciNode::finish_slice(const Hash256& block_hash) {
  const auto it = slices_.find(block_hash);
  if (it == slices_.end() || it->second.done) return;
  PendingSlice& ps = it->second;
  ps.done = true;

  // CPU cost of the tx checks is the wall span; the sim-time sample below
  // additionally covers the distributed lookup round-trips.
  const obs::Span span("verify/slice");
  obs::TraceSink::global().record_sim(
      "verify/slice", static_cast<double>(ctx_.simulator().now() - ps.received));

  // Per-tx checks are independent: they read only the tx itself and the
  // already-resolved UTXO entries, so they fan out across the pool. Each
  // verdict lands in its own slot and the merge below walks them in slice
  // order — the named offender (and therefore every message that follows)
  // is identical for any thread count.
  const std::vector<Transaction>& txs = ps.txs;
  std::vector<std::uint8_t> tx_ok(txs.size(), 1);
  ThreadPool::global().parallel_for(
      0, txs.size(), kSliceVerifyGrain, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const Transaction& tx = txs[i];
          bool ok = static_cast<bool>(validator_.check_tx_stateless(tx));
          if (ok && !tx.is_coinbase()) {
            Amount in_value = 0;
            bool known = true;
            for (const TxInput& in : tx.inputs()) {
              const auto& entry = ps.resolved.at(in.prevout);
              if (!entry) {
                // Missing: either a genuine double-spend/unknown outpoint
                // or an owner that never answered. With timed-out lookups
                // we vote approve-with-caveat (liveness bias, see
                // IciConfig); with all owners heard, missing means invalid.
                if (!ps.any_lookup_failed) ok = false;
                known = false;
                continue;
              }
              if (entry->recipient != in.pub) ok = false;
              in_value += entry->value;
            }
            if (known && tx.total_output() > in_value) ok = false;
          }
          tx_ok[i] = ok ? 1 : 0;
        }
      });

  bool approve = true;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    if (tx_ok[i] == 0) {
      approve = false;
      ps.offender = txs[i].txid();  // the challenge the head will re-verify
      break;
    }
  }

  if (fault_.vote_reject) {
    // Byzantine rejection: flip the vote and (maximally annoying) fabricate
    // a challenge against a valid transaction — the head will disprove it.
    approve = false;
    if (!ps.offender && !ps.txs.empty()) ps.offender = ps.txs.front().txid();
    ctx_.metrics().counter("fault.votes_flipped").inc();
  }

  const Hash256 digest = slice_digest_of(ps.txs);
  auto vote = std::make_shared<VoteMsg>();
  vote->block_hash = block_hash;
  vote->approve = approve;
  vote->slice_digest = digest;
  if (!approve) vote->challenged_txid = ps.offender;
  vote->voter = key_.pub;
  const Bytes payload = vote_payload(block_hash, approve, digest, vote->challenged_txid);
  vote->sig = sign(key_, payload);
  ctx_.network().send(id_, ps.head, std::move(vote));
  ctx_.metrics().counter(approve ? "verify.slice_approved" : "verify.slice_rejected").inc();
  slices_.erase(it);
}

void IciNode::handle_commit(sim::NodeId from, const CommitMsg& msg) {
  (void)from;
  store_.put(StoredBlock::header_only(msg.header, msg.block_hash));
  auto& tally = ctx_.fleet_tally().slot(id_);
  for (const OutPoint& op : msg.spent) tally.utxo_entries -= shard_.erase(op);
  for (const auto& [op, out] : msg.created) {
    if (shard_.insert_or_assign(op, out).second) ++tally.utxo_entries;
    // Free tx index: the owner of a tx's first output learns where the tx
    // landed from the delta it receives anyway.
    if (op.index == 0) tx_index_[op.txid] = {msg.block_hash, msg.header.height};
  }
  ctx_.metrics().counter("commit.notices").inc();
}

// ---------------------------------------------------------------------------
// Server role + fetch machinery
// ---------------------------------------------------------------------------

void IciNode::handle_block_request(sim::NodeId from, const BlockRequestMsg& msg) {
  auto resp = std::make_shared<BlockResponseMsg>();
  resp->block_hash = msg.block_hash;
  resp->request_id = msg.request_id;
  const BlockRef ref = store_.block_by_hash(msg.block_hash);
  resp->block = ref.share();
  if (resp->block && fault_.corrupt_serves) {
    // Serve a tampered body: same header, one transaction replaced. The
    // fetcher's Merkle check rejects it and falls back to the next holder.
    std::vector<Transaction> txs = resp->block->txs();
    if (!txs.empty()) {
      txs.back() = Transaction::coinbase(key_.pub, 1, 0xbad);
    }
    resp->block = std::make_shared<const Block>(Block(resp->block->header(), std::move(txs)));
    ctx_.metrics().counter("fault.corrupt_serves").inc();
  }
  if (ref.io_delay_us > 0) {
    // Cold read: the response departs once the media delivers the bytes.
    ctx_.simulator().after(ref.io_delay_us, [this, from, resp = std::move(resp)] {
      ctx_.network().send(id_, from, resp);
    });
    return;
  }
  ctx_.network().send(id_, from, std::move(resp));
}

void IciNode::handle_block_response(sim::NodeId from, const BlockResponseMsg& msg) {
  (void)from;
  const auto it = fetches_.find(msg.request_id);
  if (it == fetches_.end() || it->second.done) return;
  PendingFetch& pf = it->second;

  if (msg.block && msg.block->hash() == pf.hash && msg.block->merkle_ok()) {
    finish_fetch(msg.request_id, msg.block);
    return;
  }
  // Miss or corrupt: fall through to the next candidate.
  try_next_candidate(msg.request_id);
}

/// Single exit point for a replication-mode fetch: builds the FetchResult,
/// updates the retrieval counters, and fires the callback exactly once.
void IciNode::finish_fetch(std::uint64_t request_id, std::shared_ptr<const Block> block) {
  const auto it = fetches_.find(request_id);
  if (it == fetches_.end() || it->second.done) return;
  PendingFetch& pf = it->second;
  pf.done = true;

  FetchResult result;
  result.block = std::move(block);
  result.elapsed_us = ctx_.simulator().now() - pf.started;
  result.attempts = pf.attempts;
  result.timeouts = pf.timeouts;
  result.retry_rounds = pf.rounds_used;
  if (result.block) {
    result.outcome = FetchOutcome::kRemote;
    ctx_.metrics().distribution("retrieval.latency_us").add(
        static_cast<double>(result.elapsed_us));
    obs::TraceSink::global().record_sim("retrieval/fetch",
                                        static_cast<double>(result.elapsed_us));
  } else {
    // A fetch where every candidate answered "don't have it" is a genuine
    // not-found; any unanswered attempt makes the verdict a timeout (the
    // block may exist behind the silence).
    result.outcome = pf.timeouts > 0 ? FetchOutcome::kTimeout : FetchOutcome::kNotFound;
    ctx_.metrics().counter("retrieval.misses").inc();
    ctx_.metrics()
        .counter(pf.timeouts > 0 ? "retrieval.timeouts" : "retrieval.not_found")
        .inc();
  }
  if (pf.cb) pf.cb(result);
  fetches_.erase(it);
}

void IciNode::fetch_block(const Hash256& hash, std::uint64_t height, FetchCallback cb) {
  // Local hit: no traffic; latency is the backend's cold-read cost (zero
  // for the in-memory backend, so mem runs stay event-identical).
  if (BlockRef ref = store_.block_by_hash(hash)) {
    ctx_.metrics().counter("retrieval.local_hits").inc();
    if (cb) {
      FetchResult result;
      result.block = ref.share();
      result.outcome = FetchOutcome::kLocal;
      result.elapsed_us = ref.io_delay_us;
      if (ref.io_delay_us > 0) {
        ctx_.simulator().after(ref.io_delay_us,
                               [cb = std::move(cb), result = std::move(result)] {
                                 cb(result);
                               });
      } else {
        cb(result);
      }
    }
    return;
  }
  if (ctx_.coded()) {
    fetch_block_coded(hash, height, std::move(cb), std::nullopt);
    return;
  }

  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);
  std::vector<NodeId> candidates = ctx_.fetch_candidates(hash, height, my_cluster, id_);
  // Nearest storer first.
  std::stable_sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
    return ctx_.network().propagation_us(id_, a) < ctx_.network().propagation_us(id_, b);
  });

  const std::uint64_t rid = next_request_id_++;
  PendingFetch pf;
  pf.hash = hash;
  pf.candidates = std::move(candidates);
  pf.started = ctx_.simulator().now();
  pf.timeout_us = ctx_.config().fetch_timeout_us;
  pf.rounds_left = static_cast<std::uint32_t>(ctx_.config().fetch_retry_rounds);
  pf.cb = std::move(cb);
  fetches_.emplace(rid, std::move(pf));
  try_next_candidate(rid);
}

void IciNode::pull_from(sim::NodeId source, const Hash256& hash) {
  const std::uint64_t rid = next_request_id_++;
  PendingFetch pf;
  pf.hash = hash;
  pf.candidates = {source};
  pf.started = ctx_.simulator().now();
  pf.timeout_us = ctx_.config().fetch_timeout_us;
  pf.rounds_left = static_cast<std::uint32_t>(ctx_.config().fetch_retry_rounds);
  pf.cb = [this](const FetchResult& r) {
    if (r.block) {
      ctx_.metrics().counter("repair.copies_completed").inc();
      ctx_.metrics().counter("repair.bytes_copied").inc(r.block->serialized_size());
      store_.put(HashedBlock(r.block));
    } else {
      ctx_.metrics().counter("repair.copies_failed").inc();
    }
  };
  fetches_.emplace(rid, std::move(pf));
  try_next_candidate(rid);
}

void IciNode::try_next_candidate(std::uint64_t request_id) {
  const auto it = fetches_.find(request_id);
  if (it == fetches_.end() || it->second.done) return;
  PendingFetch& pf = it->second;

  if (pf.next_candidate >= pf.candidates.size()) {
    if (pf.rounds_left > 0 && !pf.candidates.empty()) {
      // Retry-with-backoff: another full pass over the candidate list with a
      // longer per-attempt timeout. Candidates that merely dropped our
      // request or response (message faults) get a second chance.
      --pf.rounds_left;
      ++pf.rounds_used;
      pf.next_candidate = 0;
      pf.timeout_us = static_cast<sim::SimTime>(
          static_cast<double>(pf.timeout_us) * ctx_.config().fetch_retry_backoff);
      ctx_.metrics().counter("retrieval.retry_rounds").inc();
    } else {
      finish_fetch(request_id, nullptr);
      return;
    }
  }

  const NodeId target = pf.candidates[pf.next_candidate++];
  ++pf.attempts;
  const std::size_t attempt = pf.next_candidate;
  const std::uint32_t round = pf.rounds_used;
  auto req = std::make_shared<BlockRequestMsg>();
  req->block_hash = pf.hash;
  req->request_id = request_id;
  ctx_.network().send(id_, target, std::move(req));

  ctx_.simulator().after(pf.timeout_us, [this, request_id, attempt, round] {
    const auto pending = fetches_.find(request_id);
    if (pending == fetches_.end() || pending->second.done) return;
    // Only advance if this attempt is still the live one (a miss response
    // may already have moved the fetch along, or a retry round restarted
    // the candidate list).
    if (pending->second.next_candidate != attempt || pending->second.rounds_used != round)
      return;
    ++pending->second.timeouts;
    ctx_.metrics().counter("retrieval.attempt_timeouts").inc();
    try_next_candidate(request_id);
  });
}

// ---------------------------------------------------------------------------
// Coded mode
// ---------------------------------------------------------------------------

void IciNode::handle_block_shard(sim::NodeId from, const BlockShardMsg& msg) {
  (void)from;
  shard_store_.put(msg.block_hash, msg.shard);
  ctx_.metrics().counter("storage.shards_received").inc();
}

void IciNode::handle_shard_request(sim::NodeId from, const ShardRequestMsg& msg) {
  auto resp = std::make_shared<ShardResponseMsg>();
  resp->block_hash = msg.block_hash;
  resp->request_id = msg.request_id;
  // Serve whichever index this node holds (at most one per block in normal
  // operation; repair replacements also hold exactly one).
  const auto indices = shard_store_.indices(msg.block_hash);
  if (!indices.empty()) resp->shard = *shard_store_.get(msg.block_hash, indices.front());
  if (resp->shard && fault_.corrupt_serves && !resp->shard->bytes.empty()) {
    resp->shard->bytes[0] ^= 0xff;  // detected post-decode by the hash check
    ctx_.metrics().counter("fault.corrupt_serves").inc();
  }
  ctx_.network().send(id_, from, std::move(resp));
}

void IciNode::fetch_block_coded(const Hash256& hash, std::uint64_t height, FetchCallback cb,
                                std::optional<std::uint32_t> store_index) {
  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);
  const std::vector<NodeId> holders = ctx_.shard_holders(hash, height, my_cluster);

  const std::uint64_t rid = next_request_id_++;
  PendingCodedFetch pf;
  pf.hash = hash;
  pf.height = height;
  pf.have.assign(ctx_.codec().total_shards(), false);
  pf.started = ctx_.simulator().now();
  pf.timeout_us = ctx_.config().fetch_timeout_us;
  pf.rounds_left = static_cast<std::uint32_t>(ctx_.config().fetch_retry_rounds);
  pf.store_index = store_index;
  pf.cb = std::move(cb);

  // Seed with any shard this node already holds.
  for (std::uint32_t index : shard_store_.indices(hash)) {
    if (!pf.have[index]) {
      pf.have[index] = true;
      pf.collected.push_back(*shard_store_.get(hash, index));
    }
  }

  // Candidates: online assigned holders, nearest first (they may also be
  // repair replacements holding reconstructed shards).
  for (NodeId holder : holders) {
    if (holder == id_ || !ctx_.directory().online(holder)) continue;
    pf.candidates.push_back(holder);
  }
  std::stable_sort(pf.candidates.begin(), pf.candidates.end(), [&](NodeId a, NodeId b) {
    return ctx_.network().propagation_us(id_, a) < ctx_.network().propagation_us(id_, b);
  });
  if (ctx_.config().cross_cluster_fallback) {
    // Every cluster encodes the same payload with the same code, so a
    // sibling cluster's holders serve identical shards — append them as
    // last-resort candidates.
    for (std::size_t other = 0; other < ctx_.directory().cluster_count(); ++other) {
      if (other == my_cluster) continue;
      for (NodeId holder : ctx_.shard_holders(hash, height, other)) {
        if (holder != id_ && ctx_.directory().online(holder)) pf.candidates.push_back(holder);
      }
    }
  }

  coded_fetches_.emplace(rid, std::move(pf));
  pump_coded_fetch(rid);
  arm_coded_deadline(rid);
}

void IciNode::arm_coded_deadline(std::uint64_t request_id) {
  const auto it = coded_fetches_.find(request_id);
  if (it == coded_fetches_.end() || it->second.done) return;
  const std::uint32_t round = it->second.rounds_used;
  ctx_.simulator().after(it->second.timeout_us, [this, request_id, round] {
    const auto pending = coded_fetches_.find(request_id);
    if (pending == coded_fetches_.end() || pending->second.done) return;
    PendingCodedFetch& pf = pending->second;
    if (pf.rounds_used != round) return;  // a newer round re-armed already
    if (pf.collected.size() < ctx_.codec().data_shards() && pf.rounds_left > 0 &&
        !pf.candidates.empty()) {
      // Retry-with-backoff: every in-flight request at the deadline counts
      // as timed out; re-walk the candidate list (collected shards are
      // kept, so only the shortfall is re-requested).
      --pf.rounds_left;
      ++pf.rounds_used;
      pf.timeouts += static_cast<std::uint32_t>(pf.outstanding);
      pf.outstanding = 0;
      pf.next_candidate = 0;
      pf.timeout_us = static_cast<sim::SimTime>(
          static_cast<double>(pf.timeout_us) * ctx_.config().fetch_retry_backoff);
      ctx_.metrics().counter("retrieval.retry_rounds").inc();
      pump_coded_fetch(request_id);
      arm_coded_deadline(request_id);
      return;
    }
    pf.timeouts += static_cast<std::uint32_t>(pf.outstanding);
    finish_coded_fetch(request_id);  // decide on whatever arrived
  });
}

void IciNode::pump_coded_fetch(std::uint64_t request_id) {
  const auto it = coded_fetches_.find(request_id);
  if (it == coded_fetches_.end() || it->second.done) return;
  PendingCodedFetch& pf = it->second;
  const std::size_t need = ctx_.codec().data_shards();

  if (pf.collected.size() >= need) {
    finish_coded_fetch(request_id);
    return;
  }
  // Ask exactly as many holders as still needed — over-asking would waste
  // bandwidth (each response carries a shard of ~block/d bytes).
  while (pf.collected.size() + pf.outstanding < need &&
         pf.next_candidate < pf.candidates.size()) {
    auto req = std::make_shared<ShardRequestMsg>();
    req->block_hash = pf.hash;
    req->request_id = request_id;
    ctx_.network().send(id_, pf.candidates[pf.next_candidate++], std::move(req));
    ++pf.outstanding;
    ++pf.attempts;
  }
  if (pf.outstanding == 0) finish_coded_fetch(request_id);  // exhausted
}

void IciNode::handle_shard_response(sim::NodeId from, const ShardResponseMsg& msg) {
  (void)from;
  const auto it = coded_fetches_.find(msg.request_id);
  if (it == coded_fetches_.end() || it->second.done) return;
  PendingCodedFetch& pf = it->second;
  if (pf.outstanding > 0) --pf.outstanding;
  if (msg.shard && msg.shard->index < pf.have.size() && !pf.have[msg.shard->index]) {
    pf.have[msg.shard->index] = true;
    pf.collected.push_back(*msg.shard);
  }
  // Either finishes (enough shards / exhausted) or tops up the in-flight
  // requests after a miss or duplicate index.
  pump_coded_fetch(msg.request_id);
}

void IciNode::finish_coded_fetch(std::uint64_t request_id) {
  const auto it = coded_fetches_.find(request_id);
  if (it == coded_fetches_.end() || it->second.done) return;
  PendingCodedFetch& pf = it->second;
  pf.done = true;

  std::shared_ptr<const Block> result;
  if (pf.collected.size() >= ctx_.codec().data_shards()) {
    const auto payload = ctx_.codec().reconstruct(pf.collected);
    if (payload) {
      try {
        Block block = Block::deserialize(ByteSpan(payload->data(), payload->size()));
        if (block.hash() == pf.hash && block.merkle_ok()) {
          result = std::make_shared<const Block>(std::move(block));
        }
      } catch (const DecodeError&) {
        // corrupt reconstruction — treated as a miss below
      }
    }
  }

  const sim::SimTime elapsed = ctx_.simulator().now() - pf.started;
  if (result) {
    ctx_.metrics().distribution("retrieval.latency_us").add(static_cast<double>(elapsed));
    obs::TraceSink::global().record_sim("retrieval/coded_fetch", static_cast<double>(elapsed));
    if (pf.store_index) {
      // Repair: re-encode and keep only the assigned shard.
      const Bytes payload = result->serialize();
      const auto shards = ctx_.codec().encode(ByteSpan(payload.data(), payload.size()));
      if (*pf.store_index < shards.size()) {
        shard_store_.put(pf.hash, shards[*pf.store_index]);
        ctx_.metrics().counter("repair.shards_completed").inc();
      }
    }
  } else {
    ctx_.metrics().counter("retrieval.misses").inc();
    ctx_.metrics()
        .counter(pf.timeouts > 0 || pf.outstanding > 0 ? "retrieval.timeouts"
                                                       : "retrieval.not_found")
        .inc();
    if (pf.store_index) ctx_.metrics().counter("repair.shards_failed").inc();
  }

  FetchResult fetched;
  fetched.elapsed_us = elapsed;
  fetched.attempts = pf.attempts;
  fetched.timeouts = pf.timeouts;
  fetched.retry_rounds = pf.rounds_used;
  if (result) {
    fetched.block = std::move(result);
    // Zero requests means the node reconstructed from its own shards.
    fetched.outcome = pf.attempts == 0 ? FetchOutcome::kLocal : FetchOutcome::kRemote;
  } else {
    fetched.outcome = pf.timeouts > 0 || pf.outstanding > 0 ? FetchOutcome::kTimeout
                                                            : FetchOutcome::kNotFound;
  }
  if (pf.cb) pf.cb(fetched);
  coded_fetches_.erase(it);
}

void IciNode::repair_shard(const Hash256& hash, std::uint64_t height,
                           std::uint32_t store_index) {
  fetch_block_coded(hash, height, nullptr, store_index);
}

// ---------------------------------------------------------------------------
// SPV proof serving
// ---------------------------------------------------------------------------

void IciNode::handle_proof_request(sim::NodeId from, const ProofRequestMsg& msg) {
  auto resp = std::make_shared<ProofResponseMsg>();
  resp->request_id = msg.request_id;
  const BlockRef ref = store_.block_by_hash(msg.block_hash);
  if (ref) {
    resp->proof = spv::build_proof(*ref, msg.txid);
  }
  if (ref.io_delay_us > 0) {
    ctx_.simulator().after(ref.io_delay_us, [this, from, resp = std::move(resp)] {
      ctx_.network().send(id_, from, resp);
    });
    return;
  }
  ctx_.network().send(id_, from, std::move(resp));
}

void IciNode::fetch_proof(const Hash256& txid, const Hash256& hash, std::uint64_t height,
                          ProofCallback cb) {
  // Local body: build directly (a cold read defers the answer by its IO
  // cost, which the reported elapsed time then carries).
  if (BlockRef ref = store_.block_by_hash(hash)) {
    if (cb) {
      if (ref.io_delay_us > 0) {
        ctx_.simulator().after(
            ref.io_delay_us,
            [cb = std::move(cb), body = ref.share(), txid, d = ref.io_delay_us] {
              cb(spv::build_proof(*body, txid), d);
            });
      } else {
        cb(spv::build_proof(*ref, txid), 0);
      }
    }
    return;
  }
  if (ctx_.coded()) {
    // Reconstruct the body, then build the proof locally.
    const sim::SimTime started = ctx_.simulator().now();
    fetch_block_coded(
        hash, height,
        [this, txid, cb = std::move(cb), started](const FetchResult& r) {
          if (!cb) return;
          if (!r.block) {
            cb(std::nullopt, ctx_.simulator().now() - started);
            return;
          }
          cb(spv::build_proof(*r.block, txid), ctx_.simulator().now() - started);
        },
        std::nullopt);
    return;
  }

  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);
  PendingProof pp;
  pp.txid = txid;
  pp.block_hash = hash;
  pp.candidates = ctx_.fetch_candidates(hash, height, my_cluster, id_);
  pp.started = ctx_.simulator().now();
  pp.cb = std::move(cb);
  const std::uint64_t rid = next_request_id_++;
  proofs_.emplace(rid, std::move(pp));
  try_next_proof_candidate(rid);
}

void IciNode::try_next_proof_candidate(std::uint64_t request_id) {
  const auto it = proofs_.find(request_id);
  if (it == proofs_.end() || it->second.done) return;
  PendingProof& pp = it->second;

  if (pp.next_candidate >= pp.candidates.size()) {
    pp.done = true;
    ctx_.metrics().counter("spv.misses").inc();
    if (pp.cb) pp.cb(std::nullopt, ctx_.simulator().now() - pp.started);
    proofs_.erase(it);
    return;
  }
  const NodeId target = pp.candidates[pp.next_candidate++];
  const std::size_t attempt = pp.next_candidate;
  auto req = std::make_shared<ProofRequestMsg>();
  req->txid = pp.txid;
  req->block_hash = pp.block_hash;
  req->request_id = request_id;
  ctx_.network().send(id_, target, std::move(req));

  ctx_.simulator().after(ctx_.config().fetch_timeout_us, [this, request_id, attempt] {
    const auto pending = proofs_.find(request_id);
    if (pending == proofs_.end() || pending->second.done) return;
    if (pending->second.next_candidate != attempt) return;
    try_next_proof_candidate(request_id);
  });
}

void IciNode::handle_proof_response(sim::NodeId from, const ProofResponseMsg& msg) {
  (void)from;
  const auto it = proofs_.find(msg.request_id);
  if (it == proofs_.end() || it->second.done) return;
  PendingProof& pp = it->second;

  // Verify against our own header before accepting — a lying server cannot
  // forge a path to the committed Merkle root.
  if (msg.proof && msg.proof->txid == pp.txid && msg.proof->block_hash == pp.block_hash) {
    const auto header = store_.header_by_hash(pp.block_hash);
    if (header && spv::verify_proof(*msg.proof, *header)) {
      pp.done = true;
      const sim::SimTime elapsed = ctx_.simulator().now() - pp.started;
      ctx_.metrics().distribution("spv.latency_us").add(static_cast<double>(elapsed));
      if (pp.cb) pp.cb(msg.proof, elapsed);
      proofs_.erase(it);
      return;
    }
    ctx_.metrics().counter("spv.bad_proofs").inc();
  }
  try_next_proof_candidate(msg.request_id);
}

void IciNode::handle_tx_locate_request(sim::NodeId from, const TxLocateRequestMsg& msg) {
  auto resp = std::make_shared<TxLocateResponseMsg>();
  resp->request_id = msg.request_id;
  const auto it = tx_index_.find(msg.txid);
  if (it != tx_index_.end()) {
    resp->found = true;
    resp->block_hash = it->second.block_hash;
    resp->height = it->second.height;
  }
  ctx_.network().send(id_, from, std::move(resp));
}

void IciNode::locate_tx(const Hash256& txid, LocateCallback cb) {
  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);
  const NodeId owner = ctx_.utxo_owner(OutPoint{txid, 0}, my_cluster);

  if (owner == id_) {
    const auto it = tx_index_.find(txid);
    if (it != tx_index_.end()) {
      if (cb) cb(true, it->second.block_hash, it->second.height);
    } else {
      if (cb) cb(false, Hash256{}, 0);
    }
    return;
  }

  const std::uint64_t rid = next_request_id_++;
  locates_.emplace(rid, PendingLocate{std::move(cb), false});
  auto req = std::make_shared<TxLocateRequestMsg>();
  req->txid = txid;
  req->request_id = rid;
  ctx_.network().send(id_, owner, std::move(req));

  ctx_.simulator().after(ctx_.config().fetch_timeout_us, [this, rid] {
    const auto it = locates_.find(rid);
    if (it == locates_.end() || it->second.done) return;
    // Owner unreachable: report as not found (the caller can retry later).
    auto cb = std::move(it->second.cb);
    locates_.erase(it);
    ctx_.metrics().counter("locate.timeouts").inc();
    if (cb) cb(false, Hash256{}, 0);
  });
}

void IciNode::handle_tx_locate_response(sim::NodeId from, const TxLocateResponseMsg& msg) {
  (void)from;
  const auto it = locates_.find(msg.request_id);
  if (it == locates_.end() || it->second.done) return;
  auto cb = std::move(it->second.cb);
  locates_.erase(it);
  ctx_.metrics().counter(msg.found ? "locate.hits" : "locate.misses").inc();
  if (cb) cb(msg.found, msg.block_hash, msg.height);
}

void IciNode::locate_and_prove(const Hash256& txid, ProofCallback cb) {
  const sim::SimTime started = ctx_.simulator().now();
  locate_tx(txid, [this, txid, cb = std::move(cb), started](bool found, Hash256 hash,
                                                            std::uint64_t height) {
    if (!found) {
      if (cb) cb(std::nullopt, ctx_.simulator().now() - started);
      return;
    }
    fetch_proof(txid, hash, height,
                [this, cb, started](std::optional<spv::TxInclusionProof> proof, sim::SimTime) {
                  if (cb) cb(std::move(proof), ctx_.simulator().now() - started);
                });
  });
}

void IciNode::handle_headers_request(sim::NodeId from, const HeadersRequestMsg& msg) {
  auto resp = std::make_shared<HeadersResponseMsg>();
  for (std::uint64_t h = msg.from_height;; ++h) {
    const auto header = store_.header_at(h);
    if (!header) break;
    resp->headers.push_back(*header);
  }
  ctx_.network().send(id_, from, std::move(resp));
}

void IciNode::start_bootstrap(sim::NodeId head, std::function<void(std::size_t)> on_done) {
  if (bootstrap_) throw std::logic_error("bootstrap already running");
  bootstrap_ = BootstrapState{};
  bootstrap_->on_done = std::move(on_done);
  bootstrap_->started = ctx_.simulator().now();
  auto req = std::make_shared<HeadersRequestMsg>();
  req->from_height = 0;
  ctx_.network().send(id_, head, std::move(req));
}

void IciNode::handle_headers_response(sim::NodeId from, const HeadersResponseMsg& msg) {
  (void)from;
  if (!bootstrap_ || bootstrap_->headers_synced) return;
  bootstrap_->headers_synced = true;
  bootstrap_->headers_done = ctx_.simulator().now();
  obs::TraceSink::global().record_sim(
      "bootstrap/headers", static_cast<double>(bootstrap_->headers_done - bootstrap_->started));

  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);
  struct Wanted {
    Hash256 hash;
    std::uint64_t height = 0;
    std::optional<std::uint32_t> shard_index;  // coded mode
  };
  std::vector<Wanted> wanted;
  for (const BlockHeader& header : msg.headers) {
    const Hash256 hash = header.hash();
    store_.put(StoredBlock::header_only(header, hash));
    // Under the membership that now includes this node, which bodies (or
    // shards, in coded mode) fall to it?
    if (ctx_.coded()) {
      const std::vector<NodeId> holders =
          ctx_.shard_holders(hash, header.height, my_cluster);
      for (std::uint32_t i = 0; i < holders.size(); ++i) {
        if (holders[i] == id_) {
          wanted.push_back({hash, header.height, i});
          break;
        }
      }
    } else {
      const std::vector<NodeId> storers =
          ctx_.storers_of(hash, header.height, my_cluster, /*online_only=*/false);
      if (std::find(storers.begin(), storers.end(), id_) != storers.end()) {
        wanted.push_back({hash, header.height, std::nullopt});
      }
    }
  }

  if (wanted.empty()) {
    auto done = std::move(bootstrap_->on_done);
    obs::TraceSink::global().record_sim("bootstrap/fetch", 0.0);
    bootstrap_.reset();
    if (done) done(0);
    return;
  }
  bootstrap_->outstanding = wanted.size();
  const auto on_fetched = [this](const FetchResult& r) {
    if (!bootstrap_) return;
    if (r.block) {
      ++bootstrap_->bodies_fetched;
    } else {
      ctx_.metrics().counter("bootstrap.fetch_failed").inc();
    }
    if (--bootstrap_->outstanding == 0) {
      auto done = std::move(bootstrap_->on_done);
      const std::size_t fetched = bootstrap_->bodies_fetched;
      obs::TraceSink::global().record_sim(
          "bootstrap/fetch",
          static_cast<double>(ctx_.simulator().now() - bootstrap_->headers_done));
      bootstrap_.reset();
      if (done) done(fetched);
    }
  };
  for (const Wanted& w : wanted) {
    if (w.shard_index) {
      // Coded: reconstruct once, keep only the assigned shard.
      fetch_block_coded(w.hash, w.height, on_fetched, w.shard_index);
    } else {
      fetch_block(w.hash, w.height,
                  [this, on_fetched, hash = w.hash](const FetchResult& r) {
                    if (r.block) store_.put(HashedBlock(r.block, hash));
                    on_fetched(r);
                  });
    }
  }
}

void IciNode::handle_inventory_request(sim::NodeId from, const InventoryRequestMsg& msg) {
  auto resp = std::make_shared<InventoryResponseMsg>();
  for (const Hash256& h : msg.hashes) {
    if (store_.has_block(h)) resp->held.push_back(h);
  }
  ctx_.network().send(id_, from, std::move(resp));
}

// ---------------------------------------------------------------------------
// Streaming bulk-sync bootstrap (docs/BOOTSTRAP.md)
// ---------------------------------------------------------------------------

void IciNode::start_streaming_sync(const sync::SyncConfig& cfg,
                                   sync::SyncCheckpoint* checkpoint,
                                   std::vector<sim::NodeId> candidates,
                                   std::function<void(const sync::SyncReport&)> on_done) {
  const std::uint64_t session_id =
      (static_cast<std::uint64_t>(id_) << 20) + (++sync_epoch_);
  sync_session_ = sync::BulkPullSession::start(*this, cfg, checkpoint,
                                               std::move(candidates), session_id,
                                               std::move(on_done));
}

void IciNode::handle_sync_message(sim::NodeId from, const sync::SyncMessage& msg) {
  switch (msg.sync_kind()) {
    case sync::SyncMsgKind::kFrontierRequest: {
      const auto& req = static_cast<const sync::FrontierRequestMsg&>(msg);
      const std::uint64_t inventory =
          ctx_.coded() ? shard_store_.shard_count() : store_.block_count();
      send_sync_response(from,
                         sync::serve_frontier(store_, req, inventory, ctx_.coded()));
      break;
    }
    case sync::SyncMsgKind::kRangeRequest: {
      const auto& req = static_cast<const sync::RangeRequestMsg&>(msg);
      sync::ServedRange served = sync::serve_range(store_, req);
      send_sync_response(from, std::move(served.msg), served.io_delay_us);
      break;
    }
    case sync::SyncMsgKind::kFrontierResponse:
    case sync::SyncMsgKind::kRangeResponse:
      if (sync_session_) sync_session_->on_sync_message(from, msg);
      break;
  }
}

void IciNode::send_sync_response(sim::NodeId to, sim::MessagePtr msg,
                                 std::uint64_t io_delay_us) {
  std::uint64_t delay = io_delay_us;
  sync::ServeThrottle* throttle = ctx_.serve_throttle();
  if (throttle != nullptr) {
    const std::uint64_t t =
        throttle->delay_for(id_, to, msg->wire_size(), ctx_.simulator().now());
    if (t > 0) ctx_.metrics().counter("sync.serve_throttled").inc();
    delay += t;
  }
  if (delay > 0) {
    // Deferred send runs in this node's own context, so the wire message
    // departs once the store has read the bodies and the bucket has room —
    // the peer just sees it later.
    ctx_.simulator().after(delay, [this, to, msg = std::move(msg)] {
      ctx_.network().send(id_, to, msg);
    });
    return;
  }
  ctx_.network().send(id_, to, std::move(msg));
}

sim::Simulator& IciNode::sync_simulator() { return ctx_.simulator(); }

void IciNode::sync_send(sim::NodeId to, sim::MessagePtr msg) {
  ctx_.network().send(id_, to, std::move(msg));
}

std::size_t IciNode::sync_message_overhead() const {
  return ctx_.network().config().per_message_overhead;
}

bool IciNode::sync_coded() const { return ctx_.coded(); }

void IciNode::sync_commit_header(const BlockHeader& header, const Hash256& hash) {
  store_.put(StoredBlock::header_only(header, hash));
}

bool IciNode::sync_wants_body(const Hash256& hash, std::uint64_t height) {
  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);
  if (ctx_.coded()) {
    const std::vector<NodeId> holders = ctx_.shard_holders(hash, height, my_cluster);
    return std::find(holders.begin(), holders.end(), id_) != holders.end();
  }
  // Assignment over the full membership (which now includes this node) —
  // the joiner pulls exactly the bodies the rendezvous gives it.
  const std::vector<NodeId> storers =
      ctx_.storers_of(hash, height, my_cluster, /*online_only=*/false);
  return std::find(storers.begin(), storers.end(), id_) != storers.end();
}

void IciNode::sync_commit_body(const std::shared_ptr<const Block>& block) {
  store_.put(HashedBlock(block));
}

std::vector<sim::NodeId> IciNode::sync_body_candidates(const Hash256& hash,
                                                       std::uint64_t height) {
  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);
  const std::vector<NodeId> ranked =
      ctx_.fetch_candidates(hash, height, my_cluster, id_);
  return {ranked.begin(), ranked.end()};
}

void IciNode::sync_fetch_assigned_shard(
    const Hash256& hash, std::uint64_t height,
    std::function<void(std::shared_ptr<const Block>)> done) {
  const std::size_t my_cluster = ctx_.directory().cluster_of(id_);
  const std::vector<NodeId> holders = ctx_.shard_holders(hash, height, my_cluster);
  std::optional<std::uint32_t> index;
  for (std::uint32_t i = 0; i < holders.size(); ++i) {
    if (holders[i] == id_) {
      index = i;
      break;
    }
  }
  // Collect >=d shards from the cluster, reconstruct, keep our shard.
  fetch_block_coded(
      hash, height,
      [done = std::move(done)](const FetchResult& r) {
        if (done) done(r.block);
      },
      index);
}

}  // namespace ici::core
