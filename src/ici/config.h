// ICIStrategy configuration knobs. Defaults reproduce the paper's headline
// setting; every experiment sweeps a subset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/event_queue.h"

namespace ici::core {

struct IciConfig {
  /// Number of clusters k. Per-cluster size m ≈ N/k determines the per-node
  /// storage share (D·r/m).
  std::size_t cluster_count = 8;

  /// Intra-cluster replication r (DESIGN.md D3). 1 = pure ICI as in the
  /// abstract: each body lives on exactly one member; the cluster as a whole
  /// is the redundancy unit. Ignored when erasure coding is enabled.
  std::size_t replication = 1;

  /// Erasure-coded storage mode (extension of D3): when erasure_data > 0,
  /// each committed block is Reed-Solomon encoded into erasure_data +
  /// erasure_parity shards stored on that many distinct members. Per-node
  /// storage cost becomes (d+p)/d of a block split d ways instead of whole
  /// copies, and the cluster tolerates any `erasure_parity` holders being
  /// offline per block. 0 = whole-copy replication (the paper's mode).
  std::size_t erasure_data = 0;
  std::size_t erasure_parity = 0;

  /// Weight the rendezvous assignment by node capacity (D2).
  bool capacity_weighted_assignment = true;

  /// Clustering strategy: "kmeans" (default), "random", or "grid" (D1).
  std::string clustering = "kmeans";

  /// Fraction of online members whose approval commits a block (D4).
  double vote_quorum = 2.0 / 3.0;

  /// Head gives up waiting for votes after this much simulated time and
  /// commits/aborts on what it has.
  sim::SimTime verify_timeout_us = 30'000'000;

  /// A member gives up on outstanding UTXO-shard lookups after this long and
  /// votes with what it knows (missing lookups count as unknown, which the
  /// member treats as approve-with-caveat; see IciNode::finish_slice).
  sim::SimTime lookup_timeout_us = 5'000'000;

  /// A fetching node tries the next candidate storer after this long.
  sim::SimTime fetch_timeout_us = 10'000'000;

  /// Extra full passes over the candidate list after the first exhausts
  /// (retry-with-backoff for lossy networks; E20 enables it under message
  /// drops). 0 = one pass then give up — the fault-free default, which
  /// keeps sim metrics bit-identical with pre-fault builds.
  std::size_t fetch_retry_rounds = 0;

  /// Per-attempt timeout multiplier applied on each retry round.
  double fetch_retry_backoff = 2.0;

  /// When a block's own-cluster holders are all unreachable, fall back to
  /// the storers of other clusters (the network keeps k copies — one per
  /// cluster). Costs a wider-area fetch but turns cluster-local outages
  /// into latency instead of misses.
  bool cross_cluster_fallback = true;

  /// Repair may also pull blocks a cluster lost entirely (every local holder
  /// crashed) from another cluster's storers, restoring the "every cluster
  /// retains a complete ledger" invariant instead of waiting for holders to
  /// return. Off by default so fault-free repair metrics stay unchanged.
  bool cross_cluster_repair = false;

  /// Deterministic seeds for clustering / placement.
  std::uint64_t seed = 1;

  [[nodiscard]] bool valid(std::string* why = nullptr) const;
};

}  // namespace ici::core
