#include "ici/codec.h"

#include <stdexcept>

#include "obs/trace.h"

namespace ici::core {

namespace {

void put_hash(ByteWriter& w, const Hash256& h) { w.raw(h.span()); }

Hash256 get_hash(ByteReader& r) {
  const Bytes raw = r.raw(32);
  Digest256 d{};
  std::copy(raw.begin(), raw.end(), d.begin());
  return Hash256(d);
}

void put_outpoint(ByteWriter& w, const OutPoint& op) {
  put_hash(w, op.txid);
  w.u32(op.index);
}

OutPoint get_outpoint(ByteReader& r) {
  OutPoint op;
  op.txid = get_hash(r);
  op.index = r.u32();
  return op;
}

void put_pub(ByteWriter& w, const PublicKey& pub) { w.raw(ByteSpan(pub.data(), pub.size())); }

PublicKey get_pub(ByteReader& r) {
  const Bytes raw = r.raw(32);
  PublicKey pub;
  std::copy(raw.begin(), raw.end(), pub.begin());
  return pub;
}

void put_sig(ByteWriter& w, const Signature& sig) { w.raw(ByteSpan(sig.data(), sig.size())); }

Signature get_sig(ByteReader& r) {
  const Bytes raw = r.raw(64);
  Signature sig;
  std::copy(raw.begin(), raw.end(), sig.begin());
  return sig;
}

void put_shard(ByteWriter& w, const erasure::Shard& shard) {
  w.u32(shard.index);
  w.u32(static_cast<std::uint32_t>(shard.bytes.size()));
  w.raw(ByteSpan(shard.bytes.data(), shard.bytes.size()));
}

erasure::Shard get_shard(ByteReader& r) {
  erasure::Shard shard;
  shard.index = r.u32();
  const std::uint32_t len = r.u32();
  shard.bytes = r.raw(len);
  return shard;
}

// -- per-kind body encoders ---------------------------------------------------

void encode_body(ByteWriter& w, const FullBlockMsg& m) {
  w.u8(m.for_verification ? 1 : 0);
  m.block->serialize_into(w);
}

void encode_body(ByteWriter& w, const SliceMsg& m) {
  m.header.serialize_into(w);
  put_hash(w, m.block_hash);
  w.u32(m.first_index);
  w.u32(m.total_txs);
  for (const Transaction& tx : m.txs) {
    w.u32(static_cast<std::uint32_t>(tx.serialized_size()));
    tx.serialize_into(w);
  }
}

void encode_body(ByteWriter& w, const UtxoLookupMsg& m) {
  put_hash(w, m.block_hash);
  for (const OutPoint& op : m.outpoints) put_outpoint(w, op);
}

void encode_body(ByteWriter& w, const UtxoResponseMsg& m) {
  put_hash(w, m.block_hash);
  for (const UtxoResponseEntry& e : m.entries) {
    put_outpoint(w, e.outpoint);
    w.u8(e.exists ? 1 : 0);
    w.u64(e.output.value);
    put_pub(w, e.output.recipient);
  }
}

void encode_body(ByteWriter& w, const VoteMsg& m) {
  put_hash(w, m.block_hash);
  w.u8(m.approve ? 1 : 0);
  put_hash(w, m.slice_digest);
  w.u8(m.challenged_txid ? 1 : 0);
  if (m.challenged_txid) put_hash(w, *m.challenged_txid);
  put_pub(w, m.voter);
  put_sig(w, m.sig);
}

void encode_body(ByteWriter& w, const CommitMsg& m) {
  m.header.serialize_into(w);
  put_hash(w, m.block_hash);
  w.u32(static_cast<std::uint32_t>(m.spent.size()));
  w.u32(static_cast<std::uint32_t>(m.created.size()));
  for (const OutPoint& op : m.spent) put_outpoint(w, op);
  for (const auto& [op, out] : m.created) {
    put_outpoint(w, op);
    w.u64(out.value);
    put_pub(w, out.recipient);
  }
}

void encode_body(ByteWriter& w, const BlockRequestMsg& m) {
  put_hash(w, m.block_hash);
  w.u64(m.request_id);
}

void encode_body(ByteWriter& w, const BlockResponseMsg& m) {
  put_hash(w, m.block_hash);
  w.u64(m.request_id);
  w.u8(m.block ? 1 : 0);
  if (m.block) m.block->serialize_into(w);
}

void encode_body(ByteWriter& w, const HeadersRequestMsg& m) { w.u64(m.from_height); }

void encode_body(ByteWriter& w, const HeadersResponseMsg& m) {
  w.u32(static_cast<std::uint32_t>(m.headers.size()));
  for (const BlockHeader& h : m.headers) h.serialize_into(w);
}

void encode_body(ByteWriter& w, const InventoryRequestMsg& m) {
  w.u32(static_cast<std::uint32_t>(m.hashes.size()));
  for (const Hash256& h : m.hashes) put_hash(w, h);
}

void encode_body(ByteWriter& w, const InventoryResponseMsg& m) {
  w.u32(static_cast<std::uint32_t>(m.held.size()));
  for (const Hash256& h : m.held) put_hash(w, h);
}

void encode_body(ByteWriter& w, const BlockShardMsg& m) {
  put_hash(w, m.block_hash);
  w.u64(m.height);
  put_shard(w, m.shard);
}

void encode_body(ByteWriter& w, const ShardRequestMsg& m) {
  put_hash(w, m.block_hash);
  w.u64(m.request_id);
}

void encode_body(ByteWriter& w, const ShardResponseMsg& m) {
  put_hash(w, m.block_hash);
  w.u64(m.request_id);
  w.u8(m.shard ? 1 : 0);
  if (m.shard) put_shard(w, *m.shard);
}

void encode_body(ByteWriter& w, const ProofRequestMsg& m) {
  put_hash(w, m.txid);
  put_hash(w, m.block_hash);
  w.u64(m.request_id);
}

void encode_body(ByteWriter& w, const ProofResponseMsg& m) {
  w.u64(m.request_id);
  w.u8(m.proof ? 1 : 0);
  if (m.proof) {
    put_hash(w, m.proof->txid);
    put_hash(w, m.proof->block_hash);
    w.u64(m.proof->height);
    w.u32(m.proof->tx_index);
    for (const MerkleStep& step : m.proof->path) {
      put_hash(w, step.sibling);
      w.u8(step.sibling_is_right ? 1 : 0);
    }
  }
}

void encode_body(ByteWriter& w, const TxLocateRequestMsg& m) {
  put_hash(w, m.txid);
  w.u64(m.request_id);
}

void encode_body(ByteWriter& w, const TxLocateResponseMsg& m) {
  w.u64(m.request_id);
  w.u8(m.found ? 1 : 0);
  put_hash(w, m.block_hash);
  w.u64(m.height);
}

// -- per-kind body decoders ---------------------------------------------------

std::shared_ptr<IciMessage> decode_body(MsgKind kind, ByteReader& r) {
  switch (kind) {
    case MsgKind::kFullBlock: {
      const bool verify = r.u8() != 0;
      const Bytes rest = r.raw(r.remaining());
      auto block =
          std::make_shared<const Block>(Block::deserialize(ByteSpan(rest.data(), rest.size())));
      return std::make_shared<FullBlockMsg>(std::move(block), verify);
    }
    case MsgKind::kSlice: {
      auto m = std::make_shared<SliceMsg>();
      const Bytes hdr = r.raw(BlockHeader::kWireSize);
      m->header = BlockHeader::deserialize(ByteSpan(hdr.data(), hdr.size()));
      m->block_hash = get_hash(r);
      m->first_index = r.u32();
      m->total_txs = r.u32();
      while (!r.done()) {
        const Bytes enc = r.blob();
        m->txs.push_back(Transaction::deserialize(ByteSpan(enc.data(), enc.size())));
      }
      return m;
    }
    case MsgKind::kUtxoLookup: {
      auto m = std::make_shared<UtxoLookupMsg>();
      m->block_hash = get_hash(r);
      while (!r.done()) m->outpoints.push_back(get_outpoint(r));
      return m;
    }
    case MsgKind::kUtxoResponse: {
      auto m = std::make_shared<UtxoResponseMsg>();
      m->block_hash = get_hash(r);
      while (!r.done()) {
        UtxoResponseEntry e;
        e.outpoint = get_outpoint(r);
        e.exists = r.u8() != 0;
        e.output.value = r.u64();
        e.output.recipient = get_pub(r);
        m->entries.push_back(e);
      }
      return m;
    }
    case MsgKind::kVote: {
      auto m = std::make_shared<VoteMsg>();
      m->block_hash = get_hash(r);
      m->approve = r.u8() != 0;
      m->slice_digest = get_hash(r);
      if (r.u8() != 0) m->challenged_txid = get_hash(r);
      m->voter = get_pub(r);
      m->sig = get_sig(r);
      return m;
    }
    case MsgKind::kCommit: {
      auto m = std::make_shared<CommitMsg>();
      const Bytes hdr = r.raw(BlockHeader::kWireSize);
      m->header = BlockHeader::deserialize(ByteSpan(hdr.data(), hdr.size()));
      m->block_hash = get_hash(r);
      const std::uint32_t n_spent = r.u32();
      const std::uint32_t n_created = r.u32();
      for (std::uint32_t i = 0; i < n_spent; ++i) m->spent.push_back(get_outpoint(r));
      for (std::uint32_t i = 0; i < n_created; ++i) {
        const OutPoint op = get_outpoint(r);
        TxOutput out;
        out.value = r.u64();
        out.recipient = get_pub(r);
        m->created.emplace_back(op, out);
      }
      return m;
    }
    case MsgKind::kBlockRequest: {
      auto m = std::make_shared<BlockRequestMsg>();
      m->block_hash = get_hash(r);
      m->request_id = r.u64();
      return m;
    }
    case MsgKind::kBlockResponse: {
      auto m = std::make_shared<BlockResponseMsg>();
      m->block_hash = get_hash(r);
      m->request_id = r.u64();
      if (r.u8() != 0) {
        const Bytes rest = r.raw(r.remaining());
        m->block = std::make_shared<const Block>(
            Block::deserialize(ByteSpan(rest.data(), rest.size())));
      }
      return m;
    }
    case MsgKind::kHeadersRequest: {
      auto m = std::make_shared<HeadersRequestMsg>();
      m->from_height = r.u64();
      return m;
    }
    case MsgKind::kHeadersResponse: {
      auto m = std::make_shared<HeadersResponseMsg>();
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        const Bytes hdr = r.raw(BlockHeader::kWireSize);
        m->headers.push_back(BlockHeader::deserialize(ByteSpan(hdr.data(), hdr.size())));
      }
      return m;
    }
    case MsgKind::kInventoryRequest: {
      auto m = std::make_shared<InventoryRequestMsg>();
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) m->hashes.push_back(get_hash(r));
      return m;
    }
    case MsgKind::kInventoryResponse: {
      auto m = std::make_shared<InventoryResponseMsg>();
      const std::uint32_t n = r.u32();
      for (std::uint32_t i = 0; i < n; ++i) m->held.push_back(get_hash(r));
      return m;
    }
    case MsgKind::kBlockShard: {
      auto m = std::make_shared<BlockShardMsg>();
      m->block_hash = get_hash(r);
      m->height = r.u64();
      m->shard = get_shard(r);
      return m;
    }
    case MsgKind::kShardRequest: {
      auto m = std::make_shared<ShardRequestMsg>();
      m->block_hash = get_hash(r);
      m->request_id = r.u64();
      return m;
    }
    case MsgKind::kShardResponse: {
      auto m = std::make_shared<ShardResponseMsg>();
      m->block_hash = get_hash(r);
      m->request_id = r.u64();
      if (r.u8() != 0) m->shard = get_shard(r);
      return m;
    }
    case MsgKind::kProofRequest: {
      auto m = std::make_shared<ProofRequestMsg>();
      m->txid = get_hash(r);
      m->block_hash = get_hash(r);
      m->request_id = r.u64();
      return m;
    }
    case MsgKind::kProofResponse: {
      auto m = std::make_shared<ProofResponseMsg>();
      m->request_id = r.u64();
      if (r.u8() != 0) {
        spv::TxInclusionProof proof;
        proof.txid = get_hash(r);
        proof.block_hash = get_hash(r);
        proof.height = r.u64();
        proof.tx_index = r.u32();
        while (!r.done()) {
          MerkleStep step;
          step.sibling = get_hash(r);
          step.sibling_is_right = r.u8() != 0;
          proof.path.push_back(step);
        }
        m->proof = std::move(proof);
      }
      return m;
    }
    case MsgKind::kTxLocateRequest: {
      auto m = std::make_shared<TxLocateRequestMsg>();
      m->txid = get_hash(r);
      m->request_id = r.u64();
      return m;
    }
    case MsgKind::kTxLocateResponse: {
      auto m = std::make_shared<TxLocateResponseMsg>();
      m->request_id = r.u64();
      m->found = r.u8() != 0;
      m->block_hash = get_hash(r);
      m->height = r.u64();
      return m;
    }
  }
  throw DecodeError("decode_message: unknown kind");
}

}  // namespace

Bytes encode_message(const IciMessage& msg) {
  const obs::Span span("codec/encode");
  ByteWriter w(msg.wire_size() + 1);
  w.u8(static_cast<std::uint8_t>(msg.kind()));
  switch (msg.kind()) {
    case MsgKind::kFullBlock:
      encode_body(w, static_cast<const FullBlockMsg&>(msg));
      break;
    case MsgKind::kSlice:
      encode_body(w, static_cast<const SliceMsg&>(msg));
      break;
    case MsgKind::kUtxoLookup:
      encode_body(w, static_cast<const UtxoLookupMsg&>(msg));
      break;
    case MsgKind::kUtxoResponse:
      encode_body(w, static_cast<const UtxoResponseMsg&>(msg));
      break;
    case MsgKind::kVote:
      encode_body(w, static_cast<const VoteMsg&>(msg));
      break;
    case MsgKind::kCommit:
      encode_body(w, static_cast<const CommitMsg&>(msg));
      break;
    case MsgKind::kBlockRequest:
      encode_body(w, static_cast<const BlockRequestMsg&>(msg));
      break;
    case MsgKind::kBlockResponse:
      encode_body(w, static_cast<const BlockResponseMsg&>(msg));
      break;
    case MsgKind::kHeadersRequest:
      encode_body(w, static_cast<const HeadersRequestMsg&>(msg));
      break;
    case MsgKind::kHeadersResponse:
      encode_body(w, static_cast<const HeadersResponseMsg&>(msg));
      break;
    case MsgKind::kInventoryRequest:
      encode_body(w, static_cast<const InventoryRequestMsg&>(msg));
      break;
    case MsgKind::kInventoryResponse:
      encode_body(w, static_cast<const InventoryResponseMsg&>(msg));
      break;
    case MsgKind::kBlockShard:
      encode_body(w, static_cast<const BlockShardMsg&>(msg));
      break;
    case MsgKind::kShardRequest:
      encode_body(w, static_cast<const ShardRequestMsg&>(msg));
      break;
    case MsgKind::kShardResponse:
      encode_body(w, static_cast<const ShardResponseMsg&>(msg));
      break;
    case MsgKind::kProofRequest:
      encode_body(w, static_cast<const ProofRequestMsg&>(msg));
      break;
    case MsgKind::kProofResponse:
      encode_body(w, static_cast<const ProofResponseMsg&>(msg));
      break;
    case MsgKind::kTxLocateRequest:
      encode_body(w, static_cast<const TxLocateRequestMsg&>(msg));
      break;
    case MsgKind::kTxLocateResponse:
      encode_body(w, static_cast<const TxLocateResponseMsg&>(msg));
      break;
  }
  return w.take();
}

std::shared_ptr<IciMessage> decode_message(ByteSpan data) {
  const obs::Span span("codec/decode");
  ByteReader r(data);
  const auto kind = static_cast<MsgKind>(r.u8());
  if (kind > MsgKind::kTxLocateResponse) throw DecodeError("decode_message: unknown kind");
  auto msg = decode_body(kind, r);
  r.expect_done("IciMessage");
  return msg;
}

}  // namespace ici::core
