#include "ici/retrieval.h"

#include "common/rng.h"

namespace ici::core {

RetrievalStats RetrievalDriver::run(IciNetwork& net, std::size_t count, std::uint64_t seed) {
  RetrievalStats stats;
  const auto& committed = net.committed();
  if (committed.empty() || count == 0) return stats;

  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    // Pick an online requester.
    cluster::NodeId requester = cluster::kNoNode;
    for (std::size_t tries = 0; tries < 4 * net.node_count(); ++tries) {
      const auto candidate =
          static_cast<cluster::NodeId>(rng.index(net.node_count()));
      if (net.directory().online(candidate)) {
        requester = candidate;
        break;
      }
    }
    if (requester == cluster::kNoNode) break;

    const auto& block = committed[rng.index(committed.size())];
    net.node(requester).fetch_block(
        block.hash, block.height,
        [&stats](std::shared_ptr<const Block> b, sim::SimTime elapsed) {
          if (!b) {
            ++stats.misses;
          } else if (elapsed == 0) {
            ++stats.local_hits;
          } else {
            ++stats.remote_hits;
            stats.latency_us.add(static_cast<double>(elapsed));
          }
        });
    // Settle each fetch before issuing the next so latencies do not contend
    // on uplinks (the experiment isolates retrieval latency).
    net.settle();
  }
  return stats;
}

}  // namespace ici::core
