#include "ici/retrieval.h"

#include <memory>

#include "common/rng.h"

namespace ici::core {

RetrievalStats RetrievalDriver::run(IciNetwork& net, std::size_t count, std::uint64_t seed,
                                    sim::SimTime step_us, std::size_t max_steps) {
  // Shared accumulator: with a bounded step budget a fetch can (in theory)
  // outlive the loop below; its late completion then writes into this
  // still-alive accumulator instead of a dead stack frame, and only the
  // snapshot taken at return is reported.
  auto acc = std::make_shared<RetrievalStats>();
  const auto& committed = net.committed();
  if (committed.empty() || count == 0) return *acc;

  Rng rng(seed);
  std::size_t unresolved = 0;
  for (std::size_t i = 0; i < count; ++i) {
    // Pick an online requester.
    cluster::NodeId requester = cluster::kNoNode;
    for (std::size_t tries = 0; tries < 4 * net.node_count(); ++tries) {
      const auto candidate =
          static_cast<cluster::NodeId>(rng.index(net.node_count()));
      if (net.directory().online(candidate)) {
        requester = candidate;
        break;
      }
    }
    if (requester == cluster::kNoNode) break;

    const auto& block = committed[rng.index(committed.size())];
    auto done = std::make_shared<bool>(false);
    net.node(requester).fetch_block(block.hash, block.height,
                                    [acc, done](const FetchResult& r) {
                                      *done = true;
                                      acc->retry_rounds += r.retry_rounds;
                                      acc->attempt_timeouts += r.timeouts;
                                      switch (r.outcome) {
                                        case FetchOutcome::kLocal:
                                          ++acc->local_hits;
                                          break;
                                        case FetchOutcome::kRemote:
                                          ++acc->remote_hits;
                                          acc->latency_us.add(
                                              static_cast<double>(r.elapsed_us));
                                          break;
                                        case FetchOutcome::kTimeout:
                                          ++acc->timeouts;
                                          break;
                                        case FetchOutcome::kNotFound:
                                          ++acc->not_found;
                                          break;
                                      }
                                    });
    if (step_us == 0) {
      // Settle each fetch before issuing the next so latencies do not
      // contend on uplinks (the experiment isolates retrieval latency).
      // Requires a quiescent simulation with no recurring events.
      net.settle();
    } else {
      // Bounded advance for runs with recurring events (faults/churn): the
      // queue never drains, so step the clock until the fetch resolves.
      for (std::size_t s = 0; s < max_steps && !*done; ++s) net.run_for(step_us);
      if (!*done) ++unresolved;
    }
  }
  RetrievalStats out = *acc;
  out.timeouts += unresolved;  // still in flight past the budget = timed out
  return out;
}

}  // namespace ici::core
