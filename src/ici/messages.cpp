#include "ici/messages.h"

// Message types are header-only; this TU anchors vtables in one place.
namespace ici::core {}
