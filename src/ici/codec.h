// Wire codec for the ICIStrategy protocol messages.
//
// The simulator charges each message its wire_size(); this codec proves
// those numbers are real by providing an actual encoding of exactly
// 1 + wire_size() bytes (one self-describing kind byte plus the body — the
// network's per_message_overhead models transport framing). Deployments
// lifting the protocol out of the simulator serialize through here.
#pragma once

#include <memory>

#include "ici/messages.h"

namespace ici::core {

/// Encodes any protocol message: kind byte followed by the body. The result
/// is always exactly msg.wire_size() + 1 bytes (checked by tests for every
/// message type).
[[nodiscard]] Bytes encode_message(const IciMessage& msg);

/// Decodes a message produced by encode_message. Throws DecodeError on a
/// malformed buffer or unknown kind.
[[nodiscard]] std::shared_ptr<IciMessage> decode_message(ByteSpan data);

}  // namespace ici::core
