// Bootstrap driver: runs the new-node join protocol end-to-end inside the
// simulation and reports byte-accurate download cost and elapsed time —
// the quantities experiment E05 compares against full-replication and
// RapidChain bootstrapping.
#pragma once

#include "ici/network.h"

namespace ici::core {

struct BootstrapReport {
  cluster::NodeId joiner = 0;
  std::size_t cluster = 0;
  std::uint64_t bytes_downloaded = 0;
  std::uint64_t bytes_uploaded = 0;
  sim::SimTime elapsed_us = 0;
  std::size_t bodies_fetched = 0;
  bool complete = false;
};

class Bootstrapper {
 public:
  /// Adds a fresh node at `coord`, joins it to the cluster with the nearest
  /// members, runs the join protocol to completion, and reports the cost.
  /// The simulation must be quiescent when called.
  [[nodiscard]] static BootstrapReport join(IciNetwork& net, sim::Coord coord);
};

}  // namespace ici::core
