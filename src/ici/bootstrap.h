// Bootstrap driver: runs the streaming bulk-sync join protocol end-to-end
// inside the simulation and reports byte-accurate download cost and elapsed
// time — the quantities experiment E05/E22 compare against full-replication
// and RapidChain bootstrapping.
//
// The driver — not the joining node — owns the SyncCheckpoint, so a
// FaultPlan crash window that kills the joiner mid-sync destroys only the
// in-memory BulkPullSession; when the injector restarts the node, the
// driver's status observer opens a new session over the same checkpoint and
// the join resumes from the last verified range (docs/BOOTSTRAP.md).
#pragma once

#include "ici/network.h"
#include "sync/checkpoint.h"

namespace ici::core {

struct BootstrapReport {
  cluster::NodeId joiner = 0;
  std::size_t cluster = 0;
  std::uint64_t bytes_downloaded = 0;
  std::uint64_t bytes_uploaded = 0;
  sim::SimTime elapsed_us = 0;
  std::size_t bodies_fetched = 0;
  bool complete = false;
  /// Protocol-level detail (per-peer attribution, retries, resume count).
  sync::SyncReport sync;
};

class Bootstrapper {
 public:
  /// Adds a fresh node at `coord`, joins it to the cluster with the nearest
  /// members, runs the join protocol to completion, and reports the cost.
  /// The simulation must be quiescent when called.
  [[nodiscard]] static BootstrapReport join(IciNetwork& net, sim::Coord coord);
  [[nodiscard]] static BootstrapReport join(IciNetwork& net, sim::Coord coord,
                                            const sync::SyncConfig& cfg);

  /// Split entry points for fault experiments: add the node first (so a
  /// FaultPlan can script crash windows on its id), start faults, then run.
  [[nodiscard]] static cluster::NodeId add_joiner_nearest(IciNetwork& net,
                                                         sim::Coord coord);
  [[nodiscard]] static BootstrapReport run(IciNetwork& net, cluster::NodeId joiner,
                                           const sync::SyncConfig& cfg);
};

}  // namespace ici::core
