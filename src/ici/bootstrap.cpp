#include "ici/bootstrap.h"

#include <limits>
#include <stdexcept>

#include "obs/trace.h"

namespace ici::core {

BootstrapReport Bootstrapper::join(IciNetwork& net, sim::Coord coord) {
  // Pick the cluster whose members are nearest on average — the same
  // latency-aware choice the clustering made for the original population.
  auto& dir = net.directory();
  std::size_t best_cluster = 0;
  double best_dist = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
    double total = 0.0;
    std::size_t count = 0;
    for (cluster::NodeId id : dir.members(c)) {
      total += sim::distance(coord, dir.info(id).coord);
      ++count;
    }
    if (count == 0) continue;
    const double mean = total / static_cast<double>(count);
    if (mean < best_dist) {
      best_dist = mean;
      best_cluster = c;
    }
  }

  const cluster::NodeId joiner = net.add_joiner(coord, best_cluster);

  const std::uint64_t tip_height =
      net.committed().empty() ? 0 : net.committed().back().height;
  const auto head = dir.head(best_cluster, tip_height);
  if (!head) throw std::runtime_error("Bootstrapper: cluster has no online head");

  BootstrapReport report;
  report.joiner = joiner;
  report.cluster = best_cluster;

  const sim::SimTime started = net.simulator().now();
  net.node(joiner).start_bootstrap(*head, [&report, &net, started](std::size_t bodies) {
    report.complete = true;
    report.bodies_fetched = bodies;
    // Stamp completion here: settle() keeps running harmless timeout
    // no-op events long after the join finished.
    report.elapsed_us = net.simulator().now() - started;
  });
  net.settle();
  if (report.complete) {
    obs::TraceSink::global().record_sim("bootstrap/join",
                                        static_cast<double>(report.elapsed_us));
  }
  const sim::NodeTraffic& traffic = net.network().traffic(joiner);
  report.bytes_downloaded = traffic.bytes_received;
  report.bytes_uploaded = traffic.bytes_sent;
  return report;
}

}  // namespace ici::core
