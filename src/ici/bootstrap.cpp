#include "ici/bootstrap.h"

#include <algorithm>
#include <limits>

#include "sync/driver.h"

namespace ici::core {

cluster::NodeId Bootstrapper::add_joiner_nearest(IciNetwork& net, sim::Coord coord) {
  // Pick the cluster whose members are nearest on average — the same
  // latency-aware choice the clustering made for the original population.
  auto& dir = net.directory();
  std::size_t best_cluster = 0;
  double best_dist = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < dir.cluster_count(); ++c) {
    double total = 0.0;
    std::size_t count = 0;
    for (cluster::NodeId id : dir.members(c)) {
      total += sim::distance(coord, dir.info(id).coord);
      ++count;
    }
    if (count == 0) continue;
    const double mean = total / static_cast<double>(count);
    if (mean < best_dist) {
      best_dist = mean;
      best_cluster = c;
    }
  }
  return net.add_joiner(coord, best_cluster);
}

BootstrapReport Bootstrapper::run(IciNetwork& net, cluster::NodeId joiner,
                                  const sync::SyncConfig& cfg) {
  auto& dir = net.directory();
  const std::size_t cluster = dir.cluster_of(joiner);
  const sim::Coord coord = dir.info(joiner).coord;

  // Frontier candidates: cluster peers by distance, probing a couple past
  // the pull-peer budget so offline/slow peers don't starve the frontier.
  std::vector<cluster::NodeId> candidates;
  for (cluster::NodeId id : dir.members(cluster))
    if (id != joiner) candidates.push_back(id);
  std::sort(candidates.begin(), candidates.end(),
            [&](cluster::NodeId a, cluster::NodeId b) {
              const double da = sim::distance(coord, dir.info(a).coord);
              const double db = sim::distance(coord, dir.info(b).coord);
              if (da != db) return da < db;
              return a < b;
            });
  const std::size_t probe = std::max<std::size_t>(cfg.max_peers * 2, 4);
  if (candidates.size() > probe) candidates.resize(probe);

  BootstrapReport report;
  report.joiner = joiner;
  report.cluster = cluster;
  report.sync = sync::drive_join(net, joiner, cfg, candidates);
  report.complete = report.sync.complete;
  report.bodies_fetched = report.sync.bodies_committed;
  report.elapsed_us = report.sync.time_to_synced_us;

  // Wire-level totals come from the network's per-node tallies so coded
  // reconstruction traffic (shard requests outside the session) counts too.
  const sim::NodeTraffic& traffic = net.network().traffic(joiner);
  report.bytes_downloaded = traffic.bytes_received;
  report.bytes_uploaded = traffic.bytes_sent;
  return report;
}

BootstrapReport Bootstrapper::join(IciNetwork& net, sim::Coord coord,
                                   const sync::SyncConfig& cfg) {
  const cluster::NodeId joiner = add_joiner_nearest(net, coord);
  return run(net, joiner, cfg);
}

BootstrapReport Bootstrapper::join(IciNetwork& net, sim::Coord coord) {
  return join(net, coord, sync::SyncConfig{});
}

}  // namespace ici::core
