// Retrieval driver: issues random historical-block fetches from random
// nodes and reports the latency distribution (experiment E11).
#pragma once

#include "common/stats.h"
#include "ici/network.h"

namespace ici::core {

struct RetrievalStats {
  Histogram latency_us;  // remote fetches only
  std::size_t local_hits = 0;
  std::size_t remote_hits = 0;
  std::size_t misses = 0;
};

class RetrievalDriver {
 public:
  /// Runs `count` fetches of uniformly random committed blocks from
  /// uniformly random online nodes. The simulation must be quiescent.
  [[nodiscard]] static RetrievalStats run(IciNetwork& net, std::size_t count,
                                          std::uint64_t seed);
};

}  // namespace ici::core
