// Retrieval driver: issues random historical-block fetches from random
// nodes and reports the latency distribution (experiment E11).
#pragma once

#include "common/stats.h"
#include "ici/network.h"

namespace ici::core {

struct RetrievalStats {
  Histogram latency_us;  // remote fetches only
  std::size_t local_hits = 0;
  std::size_t remote_hits = 0;
  /// Fetches that expired waiting on candidates (at least one request timed
  /// out before the miss) — the lossy-network failure mode.
  std::size_t timeouts = 0;
  /// Fetches that exhausted every candidate with definitive "don't have it"
  /// answers — the placement/coverage failure mode.
  std::size_t not_found = 0;
  /// Extra passes over the candidate list (retry-with-backoff), summed over
  /// all fetches.
  std::size_t retry_rounds = 0;
  /// Candidate requests that expired unanswered, summed over all fetches.
  std::size_t attempt_timeouts = 0;

  [[nodiscard]] std::size_t misses() const { return timeouts + not_found; }
};

class RetrievalDriver {
 public:
  /// Runs `count` fetches of uniformly random committed blocks from
  /// uniformly random online nodes.
  ///
  /// With `step_us` == 0 (default) each fetch is settled to quiescence —
  /// only valid when no recurring events (churn/fault schedules) are
  /// installed, because settle drains the whole queue. With `step_us` > 0
  /// the clock advances in bounded steps (at most `max_steps` per fetch)
  /// until the fetch resolves, which works under fault injection; a fetch
  /// still unresolved past the budget counts as a timeout.
  [[nodiscard]] static RetrievalStats run(IciNetwork& net, std::size_t count,
                                          std::uint64_t seed, sim::SimTime step_us = 0,
                                          std::size_t max_steps = 0);
};

}  // namespace ici::core
