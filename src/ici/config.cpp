#include "ici/config.h"

namespace ici::core {

bool IciConfig::valid(std::string* why) const {
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (cluster_count == 0) return fail("cluster_count must be > 0");
  if (replication == 0) return fail("replication must be > 0");
  if (vote_quorum <= 0.0 || vote_quorum > 1.0) return fail("vote_quorum must be in (0, 1]");
  if (clustering != "kmeans" && clustering != "random" && clustering != "grid")
    return fail("clustering must be kmeans|random|grid");
  if (erasure_data + erasure_parity > 255)
    return fail("erasure_data + erasure_parity must be <= 255");
  if (fetch_retry_backoff < 1.0) return fail("fetch_retry_backoff must be >= 1.0");
  return true;
}

}  // namespace ici::core
