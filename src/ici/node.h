// IciNode: one participant in the ICIStrategy network.
//
// Every node plays three roles, all message-driven:
//  * member — verifies its slice of each new block (stateless checks +
//    distributed UTXO lookups), votes, applies committed shard deltas, and
//    stores the bodies the intra-cluster assignment gives it;
//  * head (rotating per height) — receives the full block once for its
//    cluster, fans out slices, tallies votes, commits, and hands bodies to
//    the assigned storers;
//  * server — answers block/header/inventory requests from cluster peers,
//    joiners, and repair.
//
// A node's persistent state is its BlockStore (all headers + assigned
// bodies) and its UTXO shard (the slice of the cluster's UTXO set it owns by
// rendezvous over the outpoint).
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "chain/validator.h"
#include "cluster/node_info.h"
#include "ici/config.h"
#include "ici/messages.h"
#include "storage/block_store.h"
#include "storage/shard_store.h"
#include "sync/session.h"

namespace ici::core {

class IciNetwork;

/// How a block fetch concluded.
enum class FetchOutcome : std::uint8_t {
  kLocal,     // served from this node's own store/shards, zero traffic
  kRemote,    // served by a peer (possibly after failover/retries)
  kTimeout,   // at least one candidate never answered before the deadline
  kNotFound,  // every candidate answered and none could serve the block
};

/// Rich fetch result: the body (null on failure), elapsed sim time, how the
/// fetch concluded, and how hard the fetcher worked for it. Replaces the old
/// (block, elapsed) callback pair so callers can tell timeouts from genuine
/// misses and see the retry/failover effort under faults.
struct FetchResult {
  std::shared_ptr<const Block> block;
  sim::SimTime elapsed_us = 0;
  FetchOutcome outcome = FetchOutcome::kNotFound;
  std::uint32_t attempts = 0;      // candidate requests issued
  std::uint32_t timeouts = 0;      // attempts that expired unanswered
  std::uint32_t retry_rounds = 0;  // extra passes over the candidate list

  [[nodiscard]] bool ok() const { return block != nullptr; }
  explicit operator bool() const { return ok(); }
};

/// Scripted misbehaviour for robustness experiments. A faulty node still
/// follows the wire protocol (so honest peers cannot trivially ignore it)
/// but lies where it hurts.
struct FaultProfile {
  /// Votes REJECT on every valid slice.
  bool vote_reject = false;
  /// Never votes at all (crash-style omission during verification).
  bool drop_slices = false;
  /// Serves tampered bodies/shards to fetchers (detected by Merkle/hash
  /// checks; the fetcher falls back to the next holder).
  bool corrupt_serves = false;

  [[nodiscard]] bool any() const { return vote_reject || drop_slices || corrupt_serves; }
};

class IciNode final : public sim::INode, private sync::BulkPullSession::Env {
 public:
  IciNode(IciNetwork& ctx, cluster::NodeId id);

  IciNode(const IciNode&) = delete;
  IciNode& operator=(const IciNode&) = delete;

  void on_message(sim::NodeId from, const sim::MessagePtr& msg) override;

  /// Proposer entry point: ships the block to every cluster's current head.
  void propose(const Block& block);

  /// Fetches a block body from its cluster storers with candidate failover
  /// and (when IciConfig::fetch_retry_rounds > 0) retry-with-backoff; cb
  /// fires exactly once with the full FetchResult.
  using FetchCallback = std::function<void(const FetchResult&)>;
  void fetch_block(const Hash256& hash, std::uint64_t height, FetchCallback cb);

  /// Direct copy used by repair: pull `hash` from `source`.
  void pull_from(sim::NodeId source, const Hash256& hash);

  /// New-node join (DESIGN.md D5): sync all headers from `head`, then fetch
  /// only the bodies the intra-cluster assignment gives this node.
  /// `on_done(bodies_fetched)` fires when the last body landed.
  void start_bootstrap(sim::NodeId head, std::function<void(std::size_t)> on_done);

  /// Streaming bulk-sync join (docs/BOOTSTRAP.md): frontier exchange with
  /// `candidates`, then windowed multi-peer bulk pull. `checkpoint` is held
  /// by the DRIVER (not this node) so it survives a mid-sync crash; a
  /// restarted node resumes by calling this again over the same checkpoint.
  void start_streaming_sync(const sync::SyncConfig& cfg,
                            sync::SyncCheckpoint* checkpoint,
                            std::vector<sim::NodeId> candidates,
                            std::function<void(const sync::SyncReport&)> on_done);
  /// Crash semantics: drops the in-memory session; every outstanding sync
  /// timer becomes inert. The driver-held checkpoint is untouched.
  void abandon_sync() { sync_session_.reset(); }
  [[nodiscard]] bool sync_active() const {
    return sync_session_ != nullptr && !sync_session_->finished();
  }

  [[nodiscard]] cluster::NodeId id() const { return id_; }
  [[nodiscard]] BlockStore& store() { return store_; }
  [[nodiscard]] const BlockStore& store() const { return store_; }

  using UtxoShard = std::unordered_map<OutPoint, TxOutput, OutPointHasher>;
  [[nodiscard]] const UtxoShard& utxo_shard() const { return shard_; }

  /// Precomputed outpoint→owner table for one cluster's genesis seeding.
  /// Computing it once per cluster (in IciNetwork::init_with_genesis)
  /// replaces a rendezvous pass per (node, outpoint) pair — the difference
  /// between ~51M and ~1e9 hashes when seeding a 100k-node fleet.
  using GenesisOwnerMap = std::unordered_map<OutPoint, cluster::NodeId, OutPointHasher>;

  /// Installs genesis state directly (no messages): header, body if this
  /// node is a genesis storer (or `shard` in coded mode), and the owned
  /// slice of genesis outputs. With `owners` the ownership lookup is a map
  /// probe; without it the node falls back to per-outpoint rendezvous.
  void seed_genesis(const Block& genesis, bool is_storer,
                    const erasure::Shard* shard = nullptr,
                    const GenesisOwnerMap* owners = nullptr);

  [[nodiscard]] ShardStore& shards() { return shard_store_; }
  [[nodiscard]] const ShardStore& shards() const { return shard_store_; }

  /// Coded-mode repair: reconstruct the block from cluster shards and keep
  /// shard `store_index` locally.
  void repair_shard(const Hash256& hash, std::uint64_t height, std::uint32_t store_index);

  /// SPV: obtains a Merkle inclusion proof for `txid` in the block at
  /// (`hash`, `height`). In replication mode the proof is built remotely by
  /// a body holder; in coded mode the block is reconstructed here first.
  using ProofCallback = std::function<void(std::optional<spv::TxInclusionProof>, sim::SimTime)>;
  void fetch_proof(const Hash256& txid, const Hash256& hash, std::uint64_t height,
                   ProofCallback cb);

  /// Locates the block containing `txid` by asking the cluster member that
  /// indexes it (the rendezvous owner of the tx's first output). The index
  /// is maintained for free from commit deltas. cb(found, hash, height).
  using LocateCallback = std::function<void(bool, Hash256, std::uint64_t)>;
  void locate_tx(const Hash256& txid, LocateCallback cb);

  /// Full light-path convenience: locate the tx, then fetch its inclusion
  /// proof — what a wallet that only knows a txid does.
  void locate_and_prove(const Hash256& txid, ProofCallback cb);

  /// Installs a tx-index entry directly (preload fast path; live networks
  /// learn locations from commit deltas).
  void index_tx(const Hash256& txid, const Hash256& block_hash, std::uint64_t height);

  /// Total persistent footprint: headers + bodies + erasure shards + this
  /// node's slice of the cluster UTXO set (entries of outpoint 36 + value
  /// 8 + recipient 32 bytes, matching PrunedNode::snapshot_bytes).
  [[nodiscard]] std::uint64_t storage_bytes() const {
    return store_.total_bytes() + shard_store_.total_bytes() + shard_.size() * (36 + 8 + 32);
  }

  void set_fault(FaultProfile profile) { fault_ = profile; }
  [[nodiscard]] const FaultProfile& fault() const { return fault_; }

  /// Drops a stored body (repair migration). Returns bytes freed.
  std::uint64_t prune(const Hash256& hash) { return store_.prune_block(hash); }

 private:
  // -- head role --------------------------------------------------------
  struct PendingVerify {
    std::shared_ptr<const Block> block;
    std::size_t expected = 0;
    std::size_t votes_received = 0;  // every valid vote, however it counted
    std::unordered_set<sim::NodeId> voters;  // dedupes injected duplicates
    std::size_t approvals = 0;
    std::size_t rejections = 0;      // unsubstantiated rejections only
    std::size_t challenges_pending = 0;  // commits wait for open challenges
    bool decided = false;
    sim::SimTime started = 0;
  };
  void handle_full_block(sim::NodeId from, const FullBlockMsg& msg);
  void start_cluster_verification(std::shared_ptr<const Block> block);
  void handle_vote(sim::NodeId from, const VoteMsg& msg);
  void maybe_decide(const Hash256& block_hash);
  void commit_block(const Hash256& block_hash);
  void reject_block(const Hash256& block_hash, const char* counter);

  // Challenge (fraud-proof) verification at the head: re-check one tx.
  struct PendingChallenge {
    Hash256 block_hash;
    Transaction tx;
    std::size_t outstanding_lookups = 0;
    bool lookup_timeout = false;
    std::unordered_map<OutPoint, std::optional<TxOutput>, OutPointHasher> resolved;
    bool done = false;
  };
  void start_challenge(const Hash256& block_hash, const Hash256& txid);
  void finish_challenge(const Hash256& challenge_key);

  // -- member role ------------------------------------------------------
  struct PendingSlice {
    BlockHeader header;
    Hash256 block_hash;
    sim::NodeId head = 0;
    std::vector<Transaction> txs;
    std::size_t outstanding_lookups = 0;
    bool any_lookup_failed = false;
    bool done = false;
    /// First invalid tx found — sent as the rejection's challenge.
    std::optional<Hash256> offender;
    std::unordered_map<OutPoint, std::optional<TxOutput>, OutPointHasher> resolved;
    sim::SimTime received = 0;  // slice arrival, for verify-latency tracing
  };
  void handle_slice(sim::NodeId from, const SliceMsg& msg);
  void finish_slice(const Hash256& block_hash);
  void handle_utxo_lookup(sim::NodeId from, const UtxoLookupMsg& msg);
  void handle_utxo_response(sim::NodeId from, const UtxoResponseMsg& msg);
  void handle_commit(sim::NodeId from, const CommitMsg& msg);

  // -- streaming sync (sync::BulkPullSession::Env + serving) -------------
  void handle_sync_message(sim::NodeId from, const sync::SyncMessage& msg);
  /// Sends a serve-side sync response, deferred by the per-peer token
  /// bucket when --sync-serve-rate is set.
  void send_sync_response(sim::NodeId to, sim::MessagePtr msg,
                          std::uint64_t io_delay_us = 0);
  [[nodiscard]] sim::NodeId sync_self() const override { return id_; }
  [[nodiscard]] sim::Simulator& sync_simulator() override;
  void sync_send(sim::NodeId to, sim::MessagePtr msg) override;
  [[nodiscard]] std::size_t sync_message_overhead() const override;
  [[nodiscard]] bool sync_linked_headers() const override { return true; }
  [[nodiscard]] sync::PullMode sync_range_mode() const override {
    return sync::PullMode::kHeaders;
  }
  [[nodiscard]] bool sync_coded() const override;
  void sync_commit_header(const BlockHeader& header, const Hash256& hash) override;
  [[nodiscard]] bool sync_wants_body(const Hash256& hash, std::uint64_t height) override;
  void sync_commit_body(const std::shared_ptr<const Block>& block) override;
  [[nodiscard]] std::vector<sim::NodeId> sync_body_candidates(
      const Hash256& hash, std::uint64_t height) override;
  void sync_fetch_assigned_shard(
      const Hash256& hash, std::uint64_t height,
      std::function<void(std::shared_ptr<const Block>)> done) override;

  // -- server role ------------------------------------------------------
  void handle_block_request(sim::NodeId from, const BlockRequestMsg& msg);
  void handle_block_response(sim::NodeId from, const BlockResponseMsg& msg);
  void handle_headers_request(sim::NodeId from, const HeadersRequestMsg& msg);
  void handle_headers_response(sim::NodeId from, const HeadersResponseMsg& msg);
  void handle_inventory_request(sim::NodeId from, const InventoryRequestMsg& msg);

  struct PendingFetch {
    Hash256 hash;
    std::vector<sim::NodeId> candidates;  // fallback order
    std::size_t next_candidate = 0;
    sim::SimTime started = 0;
    sim::SimTime timeout_us = 0;      // per-attempt; grows by the backoff
    std::uint32_t attempts = 0;
    std::uint32_t timeouts = 0;
    std::uint32_t rounds_left = 0;    // retry passes still allowed
    std::uint32_t rounds_used = 0;
    FetchCallback cb;
    bool done = false;
  };
  void try_next_candidate(std::uint64_t request_id);
  void finish_fetch(std::uint64_t request_id, std::shared_ptr<const Block> block);

  // -- coded mode ---------------------------------------------------------
  void handle_block_shard(sim::NodeId from, const BlockShardMsg& msg);
  void handle_shard_request(sim::NodeId from, const ShardRequestMsg& msg);
  void handle_shard_response(sim::NodeId from, const ShardResponseMsg& msg);
  void fetch_block_coded(const Hash256& hash, std::uint64_t height, FetchCallback cb,
                         std::optional<std::uint32_t> store_index);
  void finish_coded_fetch(std::uint64_t request_id);

  struct PendingCodedFetch {
    Hash256 hash;
    std::uint64_t height = 0;
    std::vector<erasure::Shard> collected;
    std::vector<bool> have;  // by shard index
    std::vector<sim::NodeId> candidates;
    std::size_t next_candidate = 0;
    std::size_t outstanding = 0;
    sim::SimTime started = 0;
    sim::SimTime timeout_us = 0;
    std::uint32_t attempts = 0;
    std::uint32_t timeouts = 0;  // requests outstanding at an expired deadline
    std::uint32_t rounds_left = 0;
    std::uint32_t rounds_used = 0;
    std::optional<std::uint32_t> store_index;  // repair: keep this shard
    FetchCallback cb;
    bool done = false;
  };
  /// Issues shard requests until (in-flight + collected) covers d.
  void pump_coded_fetch(std::uint64_t request_id);
  /// Arms the decide-on-what-arrived deadline; a retry round re-arms it with
  /// the backed-off timeout instead of finishing.
  void arm_coded_deadline(std::uint64_t request_id);

  // -- SPV proof serving ----------------------------------------------------
  void handle_proof_request(sim::NodeId from, const ProofRequestMsg& msg);
  void handle_proof_response(sim::NodeId from, const ProofResponseMsg& msg);

  struct PendingProof {
    Hash256 txid;
    Hash256 block_hash;
    std::vector<sim::NodeId> candidates;
    std::size_t next_candidate = 0;
    sim::SimTime started = 0;
    ProofCallback cb;
    bool done = false;
  };
  void try_next_proof_candidate(std::uint64_t request_id);

  void handle_tx_locate_request(sim::NodeId from, const TxLocateRequestMsg& msg);
  void handle_tx_locate_response(sim::NodeId from, const TxLocateResponseMsg& msg);
  struct PendingLocate {
    LocateCallback cb;
    bool done = false;
  };

  IciNetwork& ctx_;
  cluster::NodeId id_;
  KeyPair key_;
  BlockStore store_;
  UtxoShard shard_;
  Validator validator_;
  FaultProfile fault_;

  struct BootstrapState {
    std::function<void(std::size_t)> on_done;
    std::size_t outstanding = 0;
    std::size_t bodies_fetched = 0;
    bool headers_synced = false;
    sim::SimTime started = 0;       // join start, for bootstrap tracing
    sim::SimTime headers_done = 0;  // headers phase end / fetch phase start
  };

  std::unordered_map<Hash256, PendingVerify, Hash256Hasher> verifying_;
  std::unordered_map<Hash256, PendingSlice, Hash256Hasher> slices_;
  std::unordered_map<Hash256, PendingChallenge, Hash256Hasher> challenges_;
  std::unordered_map<std::uint64_t, PendingFetch> fetches_;
  std::unordered_map<std::uint64_t, PendingCodedFetch> coded_fetches_;
  std::unordered_map<std::uint64_t, PendingProof> proofs_;
  std::unordered_map<std::uint64_t, PendingLocate> locates_;
  /// txid → (block hash, height) for txs whose first output this node owns.
  struct TxLocation {
    Hash256 block_hash;
    std::uint64_t height = 0;
  };
  std::unordered_map<Hash256, TxLocation, Hash256Hasher> tx_index_;
  std::optional<BootstrapState> bootstrap_;
  ShardStore shard_store_;
  std::shared_ptr<sync::BulkPullSession> sync_session_;
  std::uint64_t sync_epoch_ = 0;  // distinguishes sessions across resumes
  std::uint64_t next_request_id_ = 1;
};

}  // namespace ici::core
