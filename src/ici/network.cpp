#include "ici/network.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "metrics/sim_metrics.h"
#include "obs/trace.h"
#include "storage/store_metrics.h"
#include "sim/lbts.h"
#include "sim/shard.h"

namespace ici::core {

using cluster::NodeId;

namespace {

std::unique_ptr<cluster::Clusterer> make_clusterer(const std::string& name,
                                                   std::uint64_t seed) {
  if (name == "kmeans") return std::make_unique<cluster::KMeansClusterer>(seed);
  if (name == "random") return std::make_unique<cluster::RandomClusterer>(seed);
  if (name == "grid") return std::make_unique<cluster::GridClusterer>();
  throw std::invalid_argument("unknown clustering strategy: " + name);
}

}  // namespace

IciNetwork::IciNetwork(IciNetworkConfig cfg) : cfg_(std::move(cfg)) {
  std::string why;
  if (!cfg_.ici.valid(&why)) throw std::invalid_argument("IciConfig: " + why);
  if (cfg_.node_count < cfg_.ici.cluster_count)
    throw std::invalid_argument("node_count must be >= cluster_count");

  net_ = std::make_unique<sim::Network>(sim_, cfg_.net);
  infos_ = cluster::generate_topology(cfg_.node_count, cfg_.regions, cfg_.seed,
                                      /*world_size=*/100.0, cfg_.heterogeneous_capacity);

  const auto clusterer = make_clusterer(cfg_.ici.clustering, cfg_.ici.seed);
  cluster::Clustering clustering = clusterer->cluster(infos_, cfg_.ici.cluster_count);
  directory_ = std::make_unique<cluster::ClusterDirectory>(infos_, std::move(clustering));

  // Sharded event engine: whole clusters share a lane, so the dominant
  // intra-cluster traffic never crosses a lane boundary. Configured before
  // any node registers (the simulator requires an empty calendar).
  shards_ = cfg_.shards == 0 ? sim::default_shards() : cfg_.shards;
  if (shards_ > 1) {
    sim_.configure_shards(shards_, sim::lookahead_from(cfg_.net));
    sim_.set_barrier_hook([this] { flush_deferred_commits(); });
    deferred_commits_.resize(shards_);
  }
  if (cfg_.sync_serve_rate_bps > 0.0)
    serve_throttle_ = std::make_unique<sync::ServeThrottle>(cfg_.sync_serve_rate_bps);
  store_runtime_ = std::make_unique<StoreRuntime>(cfg_.store);

  assigner_ =
      std::make_unique<cluster::RendezvousAssigner>(cfg_.ici.capacity_weighted_assignment);
  shard_owner_assigner_ = std::make_unique<cluster::RendezvousAssigner>(false);
  if (cfg_.ici.erasure_data > 0) {
    codec_ = std::make_unique<erasure::ReedSolomon>(cfg_.ici.erasure_data,
                                                    cfg_.ici.erasure_parity);
  }

  net_->reserve_nodes(infos_.size());
  fleet_tally_.ensure_size(infos_.size());
  for (const cluster::NodeInfo& info : infos_) {
    IciNode& node = nodes_.emplace_back(*this, info.id);
    const sim::NodeId assigned = net_->add_node(&node, info.coord);
    if (assigned != info.id) throw std::logic_error("node id mismatch during registration");
    if (shards_ > 1) sim_.set_node_lane(info.id, directory_->shard_of(info.id, shards_));
    install_backend(node, info.id);
  }

  // The newest network drives the trace sink's sim clock; the token keeps a
  // dying network from yanking a newer one's clock in multi-network benches.
  trace_clock_token_ =
      obs::TraceSink::global().set_sim_clock([this] { return sim_.now(); });
}

IciNetwork::~IciNetwork() { obs::TraceSink::global().clear_sim_clock(trace_clock_token_); }

void IciNetwork::install_backend(IciNode& node, NodeId id) {
  std::unique_ptr<StorageBackend> backend = store_runtime_->make_backend(id);
  if (!backend) return;  // mem: the store's built-in backend is already right
  IoEnv env;
  env.now = [this] { return sim_.now(); };
  // Retirement events run on the owning node's lane: lane-local during
  // parallel windows, so IO completions stay shard-invariant.
  env.schedule_at = [this, id](std::uint64_t at, std::function<void()> fn) {
    sim_.schedule_for(id, at, std::move(fn));
  };
  backend->set_io_env(std::move(env));
  node.store().set_backend(std::move(backend));
}

std::vector<NodeId> IciNetwork::storers_of(const Hash256& hash, std::uint64_t height,
                                           std::size_t cluster, bool online_only) const {
  // Stable assignment over the full membership; offline assignees are
  // filtered (not replaced) unless nobody is left, in which case assignment
  // falls back to the online members (emergency placement).
  std::vector<NodeId> stable = assigner_->storers(
      hash, height, directory_->member_infos(cluster), cfg_.ici.replication);
  if (!online_only) return stable;

  std::vector<NodeId> online;
  for (NodeId id : stable) {
    if (directory_->online(id)) online.push_back(id);
  }
  if (!online.empty()) return online;

  const std::vector<cluster::NodeInfo> alive = directory_->online_members(cluster);
  if (alive.empty()) return {};
  return assigner_->storers(hash, height, alive, cfg_.ici.replication);
}

std::vector<NodeId> IciNetwork::fetch_candidates(const Hash256& hash, std::uint64_t height,
                                                 std::size_t cluster, NodeId exclude) const {
  const std::vector<NodeId> ranked = assigner_->storers(
      hash, height, directory_->member_infos(cluster), cfg_.ici.replication + 2);
  std::vector<NodeId> out;
  for (NodeId id : ranked) {
    if (id != exclude && directory_->online(id)) out.push_back(id);
  }

  if (cfg_.ici.cross_cluster_fallback) {
    // The network stores one copy per cluster: append the primary storers
    // of every other cluster as last-resort candidates (own cluster first —
    // they are closer under latency-aware clustering).
    for (std::size_t other = 0; other < directory_->cluster_count(); ++other) {
      if (other == cluster) continue;
      for (NodeId id : storers_of(hash, height, other, /*online_only=*/true)) {
        if (id != exclude) out.push_back(id);
      }
    }
  }
  return out;
}

namespace {

Hash256 utxo_owner_key(const OutPoint& op) {
  ByteWriter w(36);
  w.raw(op.txid.span());
  w.u32(op.index);
  return Hash256::tagged("ici/utxo", ByteSpan(w.bytes().data(), w.bytes().size()));
}

}  // namespace

NodeId IciNetwork::utxo_owner(const OutPoint& op, std::size_t cluster) const {
  return shard_owner_assigner_
      ->storers(utxo_owner_key(op), 0, directory_->member_infos(cluster), 1)
      .front();
}

void IciNetwork::init_with_genesis(const Block& genesis) {
  if (genesis_done_) throw std::logic_error("init_with_genesis called twice");
  genesis_done_ = true;
  const Hash256 hash = genesis.hash();

  std::vector<erasure::Shard> genesis_shards;
  if (coded()) {
    const Bytes payload = genesis.serialize();
    genesis_shards = codec_->encode(ByteSpan(payload.data(), payload.size()));
  }

  for (std::size_t c = 0; c < directory_->cluster_count(); ++c) {
    // One rendezvous pass per (cluster, outpoint) instead of one per
    // (node, outpoint): every member then seeds via map lookups.
    const std::vector<cluster::NodeInfo> members = directory_->member_infos(c);
    IciNode::GenesisOwnerMap owners;
    for (const Transaction& tx : genesis.txs()) {
      for (std::uint32_t i = 0; i < tx.outputs().size(); ++i) {
        const OutPoint op{tx.txid(), i};
        owners.emplace(
            op, shard_owner_assigner_->storers(utxo_owner_key(op), 0, members, 1).front());
      }
    }
    if (coded()) {
      const std::vector<NodeId> holders = shard_holders(hash, 0, c);
      std::unordered_map<NodeId, const erasure::Shard*> shard_of;
      for (std::size_t i = 0; i < holders.size(); ++i) {
        shard_of[holders[i]] = &genesis_shards[i];
      }
      for (NodeId id : directory_->members(c)) {
        const auto it = shard_of.find(id);
        nodes_[id].seed_genesis(genesis, /*is_storer=*/false,
                                 it == shard_of.end() ? nullptr : it->second, &owners);
      }
    } else {
      const std::vector<NodeId> storers = storers_of(hash, 0, c, /*online_only=*/false);
      for (NodeId id : directory_->members(c)) {
        const bool is_storer = std::find(storers.begin(), storers.end(), id) != storers.end();
        nodes_[id].seed_genesis(genesis, is_storer, nullptr, &owners);
      }
    }
  }
  committed_.push_back({hash, 0, genesis.serialized_size()});
  committed_index_.emplace(hash, 0);
}

std::vector<NodeId> IciNetwork::shard_holders(const Hash256& hash, std::uint64_t height,
                                              std::size_t cluster) const {
  if (!coded()) throw std::logic_error("shard_holders: coding disabled");
  return assigner_->storers(hash, height, directory_->member_infos(cluster),
                            codec_->total_shards());
}

void IciNetwork::disseminate(const Block& block) {
  if (!genesis_done_) throw std::logic_error("call init_with_genesis first");
  // Rotate through online proposers.
  NodeId proposer = cluster::kNoNode;
  for (std::size_t tries = 0; tries < nodes_.size(); ++tries) {
    const NodeId candidate = static_cast<NodeId>(proposer_cursor_++ % nodes_.size());
    if (directory_->online(candidate)) {
      proposer = candidate;
      break;
    }
  }
  if (proposer == cluster::kNoNode) throw std::runtime_error("no online proposer available");

  progress_[block.hash()] = CommitProgress{0, sim_.now(), 0};
  nodes_[proposer].propose(block);
}

void IciNetwork::settle() {
  sim_.run();
  metrics::sync_sim_counters(metrics_, sim_);
  if (faults_) metrics::sync_fault_counters(metrics_, faults_->stats());
  if (store_runtime_->disk()) sync_store_counters(metrics_, stores());
}

void IciNetwork::run_for(sim::SimTime us) {
  sim_.run_until(sim_.now() + us);
  metrics::sync_sim_counters(metrics_, sim_);
  if (faults_) metrics::sync_fault_counters(metrics_, faults_->stats());
  if (store_runtime_->disk()) sync_store_counters(metrics_, stores());
}

sim::SimTime IciNetwork::disseminate_and_settle(const Block& block) {
  disseminate(block);
  settle();
  const auto it = progress_.find(block.hash());
  if (it == progress_.end() || it->second.fully_committed_at == 0) return 0;
  const sim::SimTime latency = it->second.fully_committed_at - it->second.proposed_at;
  obs::TraceSink::global().record_sim("disseminate/full_commit", static_cast<double>(latency));
  return latency;
}

void IciNetwork::note_commit(std::size_t cluster, const Block& block) {
  (void)cluster;
  const Hash256 hash = block.hash();
  if (sim_.in_parallel_phase()) {
    // Commit handlers on different lanes would race on progress_/committed_;
    // buffer the record and apply it at the barrier in (at, key) order —
    // the same order the single-queue engine would have applied it.
    const sim::Simulator::EventRef ev = sim_.current_event();
    deferred_commits_[sim_.current_lane()].push_back(
        {ev.at, ev.key, hash, block.header().height, block.serialized_size()});
    return;
  }
  note_commit_now(hash, block.header().height, block.serialized_size(), sim_.now());
}

void IciNetwork::note_commit_now(const Hash256& hash, std::uint64_t height,
                                 std::size_t size_bytes, sim::SimTime at) {
  auto& prog = progress_[hash];
  prog.clusters_committed += 1;
  if (prog.clusters_committed == 1) {
    committed_index_.emplace(hash, committed_.size());
    committed_.push_back({hash, height, size_bytes});
  }
  if (prog.clusters_committed == directory_->cluster_count()) {
    prog.fully_committed_at = at;
  }
}

void IciNetwork::flush_deferred_commits() {
  std::vector<DeferredCommit> all;
  for (auto& lane : deferred_commits_) {
    all.insert(all.end(), lane.begin(), lane.end());
    lane.clear();
  }
  if (all.empty()) return;
  std::sort(all.begin(), all.end(), [](const DeferredCommit& a, const DeferredCommit& b) {
    return a.at != b.at ? a.at < b.at : a.key < b.key;
  });
  for (const DeferredCommit& c : all) note_commit_now(c.hash, c.height, c.size_bytes, c.at);
}

sim::SimTime IciNetwork::full_commit_time(const Hash256& hash) const {
  const auto it = progress_.find(hash);
  if (it == progress_.end()) return 0;
  return it->second.fully_committed_at;
}

void IciNetwork::preload_chain(const Chain& chain, bool build_tx_index) {
  if (!genesis_done_) throw std::logic_error("call init_with_genesis first");
  const std::size_t k = directory_->cluster_count();

  for (std::size_t h = 1; h < chain.blocks().size(); ++h) {
    const Block& block = chain.blocks()[h];
    const Hash256 hash = block.hash();
    if (coded()) {
      const Bytes payload = block.serialize();
      const auto shards = codec_->encode(ByteSpan(payload.data(), payload.size()));
      for (std::size_t c = 0; c < k; ++c) {
        const std::vector<NodeId> holders = shard_holders(hash, h, c);
        for (std::size_t i = 0; i < holders.size(); ++i) {
          nodes_[holders[i]].shards().put(hash, shards[i]);
        }
      }
    } else {
      // One shared object per block; every storer's accounting still
      // charges the full serialized size.
      auto shared = std::make_shared<const Block>(block);
      for (std::size_t c = 0; c < k; ++c) {
        for (NodeId id : storers_of(hash, h, c, /*online_only=*/false)) {
          nodes_[id].store().put(HashedBlock(shared, hash));
        }
      }
    }
    // One intern in the shared HeaderIndex, then a bitmap mark per node.
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      nodes_[id].store().put(StoredBlock::header_only(block.header(), hash));
    }
    if (build_tx_index) {
      for (const Transaction& tx : block.txs()) {
        const Hash256& txid = tx.txid();
        for (std::size_t c = 0; c < k; ++c) {
          nodes_[utxo_owner(OutPoint{txid, 0}, c)].index_tx(txid, hash, h);
        }
      }
    }
    committed_index_.emplace(hash, committed_.size());
    committed_.push_back({hash, h, block.serialized_size()});
  }
}

void IciNetwork::start_churn(sim::ChurnConfig cfg) {
  churn_ = std::make_unique<sim::ChurnModel>(*net_, cfg);
  std::vector<NodeId> all;
  all.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) all.push_back(static_cast<NodeId>(i));
  churn_->start(all, [this](NodeId id, bool online) { handle_churn_event(id, online); });
}

void IciNetwork::start_faults(const sim::FaultPlan& plan) {
  if (faults_) throw std::logic_error("start_faults called twice");
  faults_ = std::make_unique<sim::FaultInjector>(*net_, plan);
  std::vector<NodeId> all;
  all.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) all.push_back(static_cast<NodeId>(i));
  faults_->start(all, [this](NodeId id, bool online) { handle_churn_event(id, online); });
}

void IciNetwork::start_repair_daemon(sim::SimTime interval_us, sim::SimTime until_us) {
  repair_daemon_ = std::make_unique<cluster::RepairDaemon>(sim_, interval_us, until_us, [this] {
    for (std::size_t c = 0; c < directory_->cluster_count(); ++c) repair_cluster(c);
  });
  repair_daemon_->start();
}

void IciNetwork::handle_churn_event(NodeId id, bool online) {
  directory_->set_online(id, online);
  metrics_.counter(online ? "churn.up" : "churn.down").inc();
  repair_cluster(directory_->cluster_of(id));
  // Observers (e.g. a sync driver resuming a crashed joiner) run last, after
  // the directory and repair reflect the flip.
  if (status_observer_) status_observer_(id, online);
}

void IciNetwork::repair_cluster(std::size_t cluster) {
  if (coded()) {
    repair_cluster_coded(cluster);
    return;
  }
  const std::vector<cluster::NodeInfo> alive = directory_->online_members(cluster);
  std::vector<cluster::BlockRef> ledger;
  ledger.reserve(committed_.size());
  for (const CommittedBlock& b : committed_) ledger.push_back({b.hash, b.height});

  const cluster::RepairPlan plan = cluster::plan_repair(
      ledger, alive, *assigner_, cfg_.ici.replication,
      [this](NodeId id, const Hash256& h) { return nodes_[id].store().has_block(h); });

  for (const cluster::RepairAction& action : plan.actions) {
    nodes_[action.target].pull_from(action.source, action.block_hash);
    metrics_.counter("repair.copies_started").inc();
  }

  // Blocks every local holder lost: optionally restore them from another
  // cluster's storers (the network keeps one copy per cluster), so a cluster
  // wiped out by crashes regains its full ledger instead of waiting for
  // holders to come back.
  std::size_t unrecoverable = plan.lost.size();
  if (cfg_.ici.cross_cluster_repair && !plan.lost.empty() && !alive.empty()) {
    for (const cluster::BlockRef& ref : plan.lost) {
      NodeId source = cluster::kNoNode;
      for (std::size_t other = 0; other < directory_->cluster_count() && source == cluster::kNoNode;
           ++other) {
        if (other == cluster) continue;
        for (NodeId id : storers_of(ref.hash, ref.height, other, /*online_only=*/true)) {
          if (nodes_[id].store().has_block(ref.hash)) {
            source = id;
            break;
          }
        }
      }
      if (source == cluster::kNoNode) continue;  // lost network-wide
      const std::vector<NodeId> want =
          assigner_->storers(ref.hash, ref.height, alive, cfg_.ici.replication);
      if (want.empty()) continue;
      nodes_[want.front()].pull_from(source, ref.hash);
      metrics_.counter("repair.cross_cluster_copies").inc();
      --unrecoverable;
    }
  }
  metrics_.counter("repair.unavailable_blocks").inc(unrecoverable);
}

void IciNetwork::repair_cluster_coded(std::size_t cluster) {
  // For every block whose assigned holders include offline members, hand
  // the missing shard indices to the next alive ranked members, which
  // reconstruct from the surviving shards. Blocks with fewer than d online
  // shards are unrecoverable inside the cluster until holders return.
  const std::size_t d = codec_->data_shards();
  std::vector<cluster::NodeInfo> alive_members = directory_->online_members(cluster);

  for (const CommittedBlock& b : committed_) {
    const std::vector<NodeId> holders = shard_holders(b.hash, b.height, cluster);
    // Which shard indices are currently held by an online member anywhere?
    std::size_t online_shards = 0;
    std::vector<std::uint32_t> missing;
    for (std::uint32_t i = 0; i < holders.size(); ++i) {
      bool held_online = false;
      for (const cluster::NodeInfo& m : alive_members) {
        if (nodes_[m.id].shards().has(b.hash, i) && directory_->online(m.id)) {
          held_online = true;
          break;
        }
      }
      if (held_online) {
        ++online_shards;
      } else {
        missing.push_back(i);
      }
    }
    if (missing.empty()) continue;
    if (online_shards < d) {
      metrics_.counter("repair.unavailable_blocks").inc();
      continue;
    }
    // Replacements: alive members beyond the holder list, rendezvous order.
    const std::vector<NodeId> ranked =
        assigner_->storers(b.hash, b.height, alive_members, alive_members.size());
    std::size_t cursor = 0;
    for (std::uint32_t index : missing) {
      NodeId replacement = cluster::kNoNode;
      while (cursor < ranked.size()) {
        const NodeId candidate = ranked[cursor++];
        if (!nodes_[candidate].shards().has_any(b.hash)) {
          replacement = candidate;
          break;
        }
      }
      if (replacement == cluster::kNoNode) break;  // cluster too small/busy
      nodes_[replacement].repair_shard(b.hash, b.height, index);
      metrics_.counter("repair.shards_started").inc();
    }
  }
}

double IciNetwork::availability() const {
  if (committed_.empty()) return 1.0;
  std::size_t available = 0;
  std::size_t total = 0;
  for (std::size_t c = 0; c < directory_->cluster_count(); ++c) {
    const auto& members = directory_->members(c);
    for (const CommittedBlock& b : committed_) {
      ++total;
      if (coded()) {
        // Coded: the cluster can serve the block iff ≥ d distinct shard
        // indices live on online members.
        std::vector<bool> seen(codec_->total_shards(), false);
        std::size_t distinct = 0;
        for (NodeId id : members) {
          if (!directory_->online(id)) continue;
          for (std::uint32_t index : nodes_[id].shards().indices(b.hash)) {
            if (index < seen.size() && !seen[index]) {
              seen[index] = true;
              ++distinct;
            }
          }
        }
        if (distinct >= codec_->data_shards()) ++available;
      } else {
        for (NodeId id : members) {
          if (directory_->online(id) && nodes_[id].store().has_block(b.hash)) {
            ++available;
            break;
          }
        }
      }
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(available) / static_cast<double>(total);
}

double IciNetwork::network_availability() const {
  if (committed_.empty()) return 1.0;
  std::size_t available = 0;
  for (const CommittedBlock& b : committed_) {
    bool servable = false;
    if (coded()) {
      // Decodable iff ≥ d distinct shard indices are online across the
      // whole network (shard encodings are identical in every cluster).
      std::vector<bool> seen(codec_->total_shards(), false);
      std::size_t distinct = 0;
      for (std::size_t id = 0; id < nodes_.size() && !servable; ++id) {
        if (!directory_->online(static_cast<NodeId>(id))) continue;
        for (std::uint32_t index : nodes_[id].shards().indices(b.hash)) {
          if (index < seen.size() && !seen[index]) {
            seen[index] = true;
            if (++distinct >= codec_->data_shards()) {
              servable = true;
              break;
            }
          }
        }
      }
    } else {
      for (std::size_t id = 0; id < nodes_.size(); ++id) {
        if (directory_->online(static_cast<NodeId>(id)) &&
            nodes_[id].store().has_block(b.hash)) {
          servable = true;
          break;
        }
      }
    }
    if (servable) ++available;
  }
  return static_cast<double>(available) / static_cast<double>(committed_.size());
}

std::vector<const BlockStore*> IciNetwork::stores() const {
  std::vector<const BlockStore*> out;
  out.reserve(nodes_.size());
  for (std::size_t id = 0; id < nodes_.size(); ++id) out.push_back(&nodes_[id].store());
  return out;
}

StorageSnapshot IciNetwork::storage_snapshot() const {
  // Pure SoA scan: one pass over the contiguous tally rows, no node-object
  // pointer chasing. Matches IciNode::storage_bytes() per construction.
  StorageSnapshot snap;
  RunningStat stat;
  for (const NodeStorageTally& t : fleet_tally_.slots()) {
    const std::uint64_t bytes = t.body_bytes +
                                static_cast<std::uint64_t>(t.header_count) *
                                    BlockHeader::kWireSize +
                                t.shard_bytes + t.utxo_entries * (36 + 8 + 32);
    stat.add(static_cast<double>(bytes));
    snap.total_bytes += bytes;
  }
  snap.mean_bytes = stat.mean();
  snap.max_bytes = stat.max();
  snap.min_bytes = stat.min();
  snap.cv = stat.cv();
  snap.node_count = nodes_.size();
  return snap;
}

IciNetwork::ReconfigReport IciNetwork::reconfigure(std::uint64_t epoch_seed) {
  if (coded()) throw std::logic_error("reconfigure: coded-mode migration not supported");

  ReconfigReport report;

  // New epoch clustering over the current population.
  const auto clusterer = make_clusterer(cfg_.ici.clustering, epoch_seed);
  cluster::Clustering clustering = clusterer->cluster(infos_, cfg_.ici.cluster_count);

  // Label-invariant movement count: cluster indices are arbitrary labels, so
  // greedily match each new cluster to the old cluster it overlaps most and
  // count the members outside the matched overlap.
  {
    const std::size_t k = directory_->cluster_count();
    std::vector<std::vector<std::size_t>> overlap(clustering.clusters.size(),
                                                  std::vector<std::size_t>(k, 0));
    for (std::size_t nc = 0; nc < clustering.clusters.size(); ++nc) {
      for (NodeId id : clustering.clusters[nc]) {
        ++overlap[nc][directory_->cluster_of(id)];
      }
    }
    std::vector<bool> old_used(k, false);
    std::size_t matched = 0;
    for (std::size_t round = 0; round < clustering.clusters.size(); ++round) {
      std::size_t best_new = 0, best_old = 0, best = 0;
      bool found = false;
      for (std::size_t nc = 0; nc < overlap.size(); ++nc) {
        if (overlap[nc].empty()) continue;
        for (std::size_t oc = 0; oc < k; ++oc) {
          if (old_used[oc]) continue;
          if (overlap[nc][oc] >= best) {
            best = overlap[nc][oc];
            best_new = nc;
            best_old = oc;
            found = true;
          }
        }
      }
      if (!found) break;
      matched += best;
      old_used[best_old] = true;
      overlap[best_new].clear();
    }
    report.nodes_moved = infos_.size() - matched;
  }

  // Preserve liveness across the directory swap.
  std::vector<std::pair<NodeId, bool>> liveness;
  for (const cluster::NodeInfo& info : infos_) {
    liveness.emplace_back(info.id, directory_->online(info.id));
  }
  auto fresh = std::make_unique<cluster::ClusterDirectory>(infos_, std::move(clustering));
  for (const auto& [id, online] : liveness) fresh->set_online(id, online);
  directory_ = std::move(fresh);

  // Every new cluster must regain the full ledger: pull each block a new
  // assignee lacks from its nearest current holder (possibly cross-cluster
  // — the old placement is the data source for the epoch handover).
  for (const CommittedBlock& b : committed_) {
    // Holders anywhere in the network right now.
    std::vector<NodeId> holders;
    for (std::size_t id = 0; id < nodes_.size(); ++id) {
      if (nodes_[id].store().has_block(b.hash)) holders.push_back(static_cast<NodeId>(id));
    }
    if (holders.empty()) continue;  // unrecoverable; counted by availability
    for (std::size_t c = 0; c < directory_->cluster_count(); ++c) {
      for (NodeId target : storers_of(b.hash, b.height, c, /*online_only=*/false)) {
        if (nodes_[target].store().has_block(b.hash)) continue;
        NodeId source = holders.front();
        double best = std::numeric_limits<double>::max();
        for (NodeId h : holders) {
          if (!directory_->online(h)) continue;
          const double d = net_->propagation_us(target, h);
          if (d < best) {
            best = d;
            source = h;
          }
        }
        nodes_[target].pull_from(source, b.hash);
        ++report.copies_started;
        metrics_.counter("reconfig.copies_started").inc();
      }
    }
  }
  return report;
}

std::uint64_t IciNetwork::prune_unassigned() {
  std::uint64_t freed = 0;
  for (const CommittedBlock& b : committed_) {
    for (std::size_t c = 0; c < directory_->cluster_count(); ++c) {
      const std::vector<NodeId> want = storers_of(b.hash, b.height, c, /*online_only=*/false);
      // Only prune when the assigned set actually holds the block, so a
      // premature prune can never create a coverage hole.
      const bool covered = std::all_of(want.begin(), want.end(), [&](NodeId id) {
        return nodes_[id].store().has_block(b.hash);
      });
      if (!covered) continue;
      for (NodeId id : directory_->members(c)) {
        if (std::find(want.begin(), want.end(), id) != want.end()) continue;
        freed += nodes_[id].prune(b.hash);
      }
    }
  }
  if (freed > 0) metrics_.counter("reconfig.prunes").inc();
  return freed;
}

NodeId IciNetwork::add_joiner(sim::Coord coord, std::size_t cluster) {
  cluster::NodeInfo info;
  info.id = static_cast<NodeId>(nodes_.size());
  info.coord = coord;
  info.capacity = 1.0;
  infos_.push_back(info);
  directory_->add_member(info, cluster);
  fleet_tally_.ensure_size(static_cast<std::size_t>(info.id) + 1);
  IciNode& node = nodes_.emplace_back(*this, info.id);
  const sim::NodeId assigned = net_->add_node(&node, coord);
  if (assigned != info.id) throw std::logic_error("joiner id mismatch");
  if (shards_ > 1) sim_.set_node_lane(info.id, directory_->shard_of(info.id, shards_));
  install_backend(node, info.id);
  return info.id;
}

}  // namespace ici::core
