// Wire messages of the ICIStrategy protocol. Each message reports a
// realistic serialized size — the simulator charges exactly these bytes, so
// the communication-overhead experiments are byte-accurate.
//
// Dissemination flow (DESIGN.md D4/D5):
//   proposer --FullBlock--> cluster head (one per cluster)
//   head     --Slice-----> each online member (1/m of the body each)
//   member   --UtxoLookup-> shard owners, --UtxoResponse-- back
//   member   --Vote------> head
//   head     --FullBlock--> assigned storers, --Commit(delta)--> members
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "chain/block.h"
#include "erasure/rs.h"
#include "sim/network.h"
#include "spv/proof.h"

namespace ici::core {

enum class MsgKind : std::uint8_t {
  kFullBlock,
  kSlice,
  kUtxoLookup,
  kUtxoResponse,
  kVote,
  kCommit,
  kBlockRequest,
  kBlockResponse,
  kHeadersRequest,
  kHeadersResponse,
  kInventoryRequest,
  kInventoryResponse,
  kBlockShard,
  kShardRequest,
  kShardResponse,
  kProofRequest,
  kProofResponse,
  kTxLocateRequest,
  kTxLocateResponse,
};

struct IciMessage : sim::MessageBase {
  [[nodiscard]] virtual MsgKind kind() const = 0;
};

/// Full block body: proposer→head and head→storer. Carries a shared handle —
/// blocks are immutable and the simulator charges wire bytes regardless.
struct FullBlockMsg final : IciMessage {
  std::shared_ptr<const Block> block;
  /// True when the receiver should treat this as the start of cluster
  /// verification (head role) rather than a storage hand-off.
  bool for_verification = false;

  FullBlockMsg(std::shared_ptr<const Block> b, bool verify)
      : block(std::move(b)), for_verification(verify) {}
  [[nodiscard]] MsgKind kind() const override { return MsgKind::kFullBlock; }
  [[nodiscard]] std::size_t wire_size() const override { return block->serialized_size() + 1; }
  [[nodiscard]] const char* type_name() const override { return "FullBlock"; }
};

/// A member's verification slice: the header plus a contiguous tx range.
struct SliceMsg final : IciMessage {
  BlockHeader header;
  Hash256 block_hash;
  std::uint32_t first_index = 0;  // index of txs.front() within the block
  std::uint32_t total_txs = 0;
  std::vector<Transaction> txs;

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kSlice; }
  [[nodiscard]] std::size_t wire_size() const override {
    std::size_t sz = BlockHeader::kWireSize + 32 + 8;
    for (const Transaction& tx : txs) sz += 4 + tx.serialized_size();
    return sz;
  }
  [[nodiscard]] const char* type_name() const override { return "Slice"; }
};

/// Asks a UTXO-shard owner whether outpoints exist (and their outputs).
struct UtxoLookupMsg final : IciMessage {
  Hash256 block_hash;  // verification context
  std::vector<OutPoint> outpoints;

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kUtxoLookup; }
  [[nodiscard]] std::size_t wire_size() const override { return 32 + outpoints.size() * 36; }
  [[nodiscard]] const char* type_name() const override { return "UtxoLookup"; }
};

struct UtxoResponseEntry {
  OutPoint outpoint;
  bool exists = false;
  TxOutput output;  // valid when exists
};

struct UtxoResponseMsg final : IciMessage {
  Hash256 block_hash;
  std::vector<UtxoResponseEntry> entries;

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kUtxoResponse; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 32 + entries.size() * (36 + 1 + 8 + 32);
  }
  [[nodiscard]] const char* type_name() const override { return "UtxoResponse"; }
};

/// Member's verdict on its slice, signed. A rejection should carry a
/// *challenge*: the txid the member found invalid. The head re-verifies the
/// challenged transaction itself — a confirmed challenge vetoes the block
/// regardless of approvals, while an unverifiable one is ignored, so honest
/// detection wins and byzantine rejections gain no veto power.
struct VoteMsg final : IciMessage {
  Hash256 block_hash;
  bool approve = false;
  /// Commits the voter to the txids it verified.
  Hash256 slice_digest;
  std::optional<Hash256> challenged_txid;  // only meaningful when !approve
  PublicKey voter{};
  Signature sig{};

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kVote; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 32 + 1 + 32 + 1 + (challenged_txid ? 32 : 0) + 32 + 64;
  }
  [[nodiscard]] const char* type_name() const override { return "Vote"; }
};

/// Commit notice carrying the receiver's UTXO-shard delta.
struct CommitMsg final : IciMessage {
  BlockHeader header;
  Hash256 block_hash;
  std::vector<OutPoint> spent;                                // owned by receiver
  std::vector<std::pair<OutPoint, TxOutput>> created;         // owned by receiver

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kCommit; }
  [[nodiscard]] std::size_t wire_size() const override {
    // header + hash + two u32 array counts + entries.
    return BlockHeader::kWireSize + 32 + 8 + spent.size() * 36 + created.size() * (36 + 40);
  }
  [[nodiscard]] const char* type_name() const override { return "Commit"; }
};

/// Historical block fetch (retrieval protocol + bootstrap body download).
struct BlockRequestMsg final : IciMessage {
  Hash256 block_hash;
  std::uint64_t request_id = 0;

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kBlockRequest; }
  [[nodiscard]] std::size_t wire_size() const override { return 32 + 8; }
  [[nodiscard]] const char* type_name() const override { return "BlockRequest"; }
};

struct BlockResponseMsg final : IciMessage {
  Hash256 block_hash;
  std::uint64_t request_id = 0;
  std::shared_ptr<const Block> block;  // null = not stored here

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kBlockResponse; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 32 + 8 + 1 + (block ? block->serialized_size() : 0);
  }
  [[nodiscard]] const char* type_name() const override { return "BlockResponse"; }
};

/// Header sync for bootstrap: "give me headers from height X".
struct HeadersRequestMsg final : IciMessage {
  std::uint64_t from_height = 0;

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kHeadersRequest; }
  [[nodiscard]] std::size_t wire_size() const override { return 8; }
  [[nodiscard]] const char* type_name() const override { return "HeadersRequest"; }
};

struct HeadersResponseMsg final : IciMessage {
  std::vector<BlockHeader> headers;

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kHeadersResponse; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 4 + headers.size() * BlockHeader::kWireSize;
  }
  [[nodiscard]] const char* type_name() const override { return "HeadersResponse"; }
};

/// "Which of these blocks do you hold?" — used by repair and bootstrap.
struct InventoryRequestMsg final : IciMessage {
  std::vector<Hash256> hashes;

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kInventoryRequest; }
  [[nodiscard]] std::size_t wire_size() const override { return 4 + hashes.size() * 32; }
  [[nodiscard]] const char* type_name() const override { return "InventoryRequest"; }
};

struct InventoryResponseMsg final : IciMessage {
  std::vector<Hash256> held;

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kInventoryResponse; }
  [[nodiscard]] std::size_t wire_size() const override { return 4 + held.size() * 32; }
  [[nodiscard]] const char* type_name() const override { return "InventoryResponse"; }
};

/// Coded mode: one Reed-Solomon shard of a committed block, head → holder.
struct BlockShardMsg final : IciMessage {
  Hash256 block_hash;
  std::uint64_t height = 0;
  erasure::Shard shard;

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kBlockShard; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 32 + 8 + 8 + shard.bytes.size();
  }
  [[nodiscard]] const char* type_name() const override { return "BlockShard"; }
};

/// Coded mode: ask a holder for its shard of a block.
struct ShardRequestMsg final : IciMessage {
  Hash256 block_hash;
  std::uint64_t request_id = 0;

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kShardRequest; }
  [[nodiscard]] std::size_t wire_size() const override { return 32 + 8; }
  [[nodiscard]] const char* type_name() const override { return "ShardRequest"; }
};

struct ShardResponseMsg final : IciMessage {
  Hash256 block_hash;
  std::uint64_t request_id = 0;
  std::optional<erasure::Shard> shard;  // nullopt = not held here

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kShardResponse; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 32 + 8 + 1 + (shard ? 8 + shard->bytes.size() : 0);
  }
  [[nodiscard]] const char* type_name() const override { return "ShardResponse"; }
};

/// SPV: ask a body holder for a Merkle inclusion proof of `txid` in the
/// block at `block_hash`.
struct ProofRequestMsg final : IciMessage {
  Hash256 txid;
  Hash256 block_hash;
  std::uint64_t request_id = 0;

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kProofRequest; }
  [[nodiscard]] std::size_t wire_size() const override { return 32 + 32 + 8; }
  [[nodiscard]] const char* type_name() const override { return "ProofRequest"; }
};

struct ProofResponseMsg final : IciMessage {
  std::uint64_t request_id = 0;
  std::optional<spv::TxInclusionProof> proof;  // nullopt = cannot serve

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kProofResponse; }
  [[nodiscard]] std::size_t wire_size() const override {
    return 8 + 1 + (proof ? proof->wire_size() : 0);
  }
  [[nodiscard]] const char* type_name() const override { return "ProofResponse"; }
};

/// Transaction location: "which block holds txid?" — answered by the
/// cluster member that rendezvous-owns the tx's first output, which indexes
/// txid → (block, height) from the commit deltas it already receives.
struct TxLocateRequestMsg final : IciMessage {
  Hash256 txid;
  std::uint64_t request_id = 0;

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kTxLocateRequest; }
  [[nodiscard]] std::size_t wire_size() const override { return 32 + 8; }
  [[nodiscard]] const char* type_name() const override { return "TxLocateRequest"; }
};

struct TxLocateResponseMsg final : IciMessage {
  std::uint64_t request_id = 0;
  bool found = false;
  Hash256 block_hash;        // valid when found
  std::uint64_t height = 0;  // valid when found

  [[nodiscard]] MsgKind kind() const override { return MsgKind::kTxLocateResponse; }
  [[nodiscard]] std::size_t wire_size() const override { return 8 + 1 + 32 + 8; }
  [[nodiscard]] const char* type_name() const override { return "TxLocateResponse"; }
};

}  // namespace ici::core
