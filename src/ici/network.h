// IciNetwork: builds and owns a whole ICIStrategy deployment — topology,
// clustering, the simulated network, one IciNode per participant — and gives
// experiments a small driving API:
//
//   IciNetwork net(cfg);
//   net.init_with_genesis(genesis);
//   net.disseminate_and_settle(block);   // message-accurate dissemination
//   net.preload_chain(chain);            // fast path for storage-only runs
//
// Shared state (ClusterDirectory, assignment) models the membership service
// the deployed system would maintain per epoch.
#pragma once

#include <memory>

#include "chain/chain.h"
#include "cluster/assignment.h"
#include "cluster/directory.h"
#include "cluster/repair.h"
#include "common/arena.h"
#include "erasure/rs.h"
#include "ici/node.h"
#include "metrics/registry.h"
#include "sim/churn.h"
#include "sim/faults.h"
#include "storage/fleet_tally.h"
#include "storage/header_index.h"
#include "storage/storage_meter.h"
#include "storage/store_runtime.h"
#include "sync/serve.h"

namespace ici::core {

struct IciNetworkConfig {
  std::size_t node_count = 64;
  IciConfig ici;
  sim::NetworkConfig net;
  /// Geographic regions in the synthetic topology.
  std::size_t regions = 5;
  bool heterogeneous_capacity = false;
  std::uint64_t seed = 1;
  /// Event shards (parallel lanes) for the simulator; whole clusters map to
  /// one lane (cluster % shards). 0 means "use sim::default_shards()" (the
  /// --shards flag); 1 runs the classic single-queue engine.
  std::size_t shards = 0;
  /// Serve-side bulk-sync rate limit per (server, peer) pair in bytes per
  /// second of sim time; 0 disables throttling (--sync-serve-rate).
  double sync_serve_rate_bps = 0.0;
  /// Body-persistence backend per node (--store / --io-write-us /
  /// --io-read-us). The default mem backend changes nothing.
  StoreConfig store;
};

class IciNetwork {
 public:
  explicit IciNetwork(IciNetworkConfig cfg);
  ~IciNetwork();

  IciNetwork(const IciNetwork&) = delete;
  IciNetwork& operator=(const IciNetwork&) = delete;

  /// Installs the genesis block on every node (headers + assigned bodies +
  /// UTXO shards). Must be called exactly once before dissemination.
  void init_with_genesis(const Block& genesis);

  /// Ships `block` from a rotating proposer to every cluster head and runs
  /// the simulation until quiescent. Returns the sim time from proposal to
  /// the moment the last cluster committed (or the settle time on failure).
  sim::SimTime disseminate_and_settle(const Block& block);

  /// Ships `block` without waiting (pipelined dissemination).
  void disseminate(const Block& block);

  /// Runs the simulator until no events remain, then refreshes the "sim.*"
  /// event-core counters in metrics().
  void settle();

  /// Statically installs an already-built chain (headers everywhere, bodies
  /// on assigned storers, shards updated) with no message traffic. Storage
  /// experiments use this to reach long chains quickly. Skips the genesis
  /// (init_with_genesis covers it). `build_tx_index` also installs the
  /// txid→block index live networks learn from commit deltas (costs
  /// O(txs·k) hashing, so it is opt-in).
  void preload_chain(const Chain& chain, bool build_tx_index = false);

  /// Starts churn over all nodes; offline/online transitions trigger the
  /// repair protocol (actual copy traffic).
  void start_churn(sim::ChurnConfig cfg);

  /// Installs a fault injector (crashes, drops, duplicates, partitions) over
  /// the simulated network. Crash/restart transitions update the directory
  /// and trigger repair just like churn. Call at most once, before running.
  void start_faults(const sim::FaultPlan& plan);
  [[nodiscard]] const sim::FaultInjector* faults() const { return faults_.get(); }

  /// Starts a background repair daemon: every `interval_us` of sim time a
  /// full repair pass runs over every cluster, re-replicating slices lost to
  /// crashes. Bounded by `until_us` so settle()'s drain terminates.
  void start_repair_daemon(sim::SimTime interval_us, sim::SimTime until_us);

  /// Runs the simulator for `us` of simulated time (events may remain) and
  /// refreshes the mirrored sim/fault counters. Fault experiments advance in
  /// windows like this to sample availability over time.
  void run_for(sim::SimTime us);

  /// Availability snapshot: fraction of (cluster, committed block) pairs
  /// with at least one online holder.
  [[nodiscard]] double availability() const;

  /// Network-wide availability: fraction of committed blocks servable by
  /// SOME online holder anywhere (what cross-cluster fallback delivers —
  /// the network keeps one copy per cluster).
  [[nodiscard]] double network_availability() const;

  /// Runs a repair pass for a cluster now (also invoked by churn hooks).
  void repair_cluster(std::size_t cluster);

  // -- accessors used by IciNode and the experiment harnesses ------------
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::Network& network() { return *net_; }
  [[nodiscard]] cluster::ClusterDirectory& directory() { return *directory_; }
  [[nodiscard]] const IciConfig& config() const { return cfg_.ici; }
  [[nodiscard]] metrics::Registry& metrics() { return metrics_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] IciNode& node(cluster::NodeId id) { return nodes_.at(id); }
  [[nodiscard]] const IciNode& node(cluster::NodeId id) const { return nodes_.at(id); }

  /// The fleet-shared header table every node's BlockStore interns into.
  [[nodiscard]] const std::shared_ptr<HeaderIndex>& header_index() const {
    return header_index_;
  }
  /// Hot per-node storage scalars, contiguous by node id (see fleet_tally.h).
  [[nodiscard]] FleetTally& fleet_tally() { return fleet_tally_; }
  [[nodiscard]] const FleetTally& fleet_tally() const { return fleet_tally_; }

  /// Online storers responsible for a block within `cluster` (assignment
  /// over the full membership; offline assignees simply cannot serve).
  [[nodiscard]] std::vector<cluster::NodeId> storers_of(const Hash256& hash,
                                                        std::uint64_t height,
                                                        std::size_t cluster,
                                                        bool online_only) const;

  /// UTXO-shard owner of an outpoint within `cluster` (stable: rendezvous
  /// over the full membership).
  [[nodiscard]] cluster::NodeId utxo_owner(const OutPoint& op, std::size_t cluster) const;

  /// Online peers worth asking for a block body, rendezvous-ranked, with
  /// `exclude` (usually the asker) removed. Goes a couple of ranks past the
  /// replication factor so fetches survive holder churn and joins.
  [[nodiscard]] std::vector<cluster::NodeId> fetch_candidates(const Hash256& hash,
                                                              std::uint64_t height,
                                                              std::size_t cluster,
                                                              cluster::NodeId exclude) const;

  /// Record of blocks committed anywhere (hash, height) in commit order —
  /// ground truth for repair and availability scans.
  struct CommittedBlock {
    Hash256 hash;
    std::uint64_t height = 0;
    std::size_t size_bytes = 0;
  };
  [[nodiscard]] const std::vector<CommittedBlock>& committed() const { return committed_; }

  /// Called by heads when their cluster commits. Tracks per-block commit
  /// coverage for dissemination latency measurements. During a parallel
  /// shard window the record is buffered per lane and applied at the next
  /// barrier in deterministic (at, key) order, so commit bookkeeping is
  /// identical for every shard count.
  void note_commit(std::size_t cluster, const Block& block);

  /// Serve-side sync throttle, or nullptr when --sync-serve-rate is 0.
  [[nodiscard]] sync::ServeThrottle* serve_throttle() { return serve_throttle_.get(); }

  /// Sim time when all clusters had committed `hash` (0 if not yet).
  [[nodiscard]] sim::SimTime full_commit_time(const Hash256& hash) const;

  /// Per-node storage snapshot inputs (bodies + headers only).
  [[nodiscard]] std::vector<const BlockStore*> stores() const;

  /// Fleet storage snapshot including erasure shards (what a node really
  /// persists). Prefer this over StorageMeter when coding may be on.
  [[nodiscard]] StorageSnapshot storage_snapshot() const;

  // -- coded mode ---------------------------------------------------------
  /// True when blocks are stored as Reed-Solomon shards instead of copies.
  [[nodiscard]] bool coded() const { return cfg_.ici.erasure_data > 0; }
  /// The codec (only valid when coded()).
  [[nodiscard]] const erasure::ReedSolomon& codec() const { return *codec_; }
  /// The d+p shard holders of a block within `cluster`, ranked over the
  /// full membership; vector position == shard index.
  [[nodiscard]] std::vector<cluster::NodeId> shard_holders(const Hash256& hash,
                                                           std::uint64_t height,
                                                           std::size_t cluster) const;

  /// Adds a brand-new node (used by the bootstrap protocol); returns its id.
  /// The caller is responsible for running the join protocol.
  cluster::NodeId add_joiner(sim::Coord coord, std::size_t cluster);

  /// Marks a node byzantine/faulty for robustness experiments.
  void set_fault(cluster::NodeId id, FaultProfile profile) {
    nodes_.at(id).set_fault(profile);
  }

  /// Observer for online/offline flips from churn or fault injection, fired
  /// after the directory updated and repair ran. Sync drivers use it to
  /// abandon a crashed joiner's session and resume it on restart. Pass
  /// nullptr to uninstall.
  using StatusObserver = std::function<void(cluster::NodeId, bool online)>;
  void set_status_observer(StatusObserver observer) {
    status_observer_ = std::move(observer);
  }

  // -- epoch reconfiguration ------------------------------------------------
  struct ReconfigReport {
    /// Nodes whose cluster assignment changed.
    std::size_t nodes_moved = 0;
    /// Block copies started to restore intra-cluster integrity.
    std::size_t copies_started = 0;
  };
  /// Re-clusters the network with a fresh epoch seed (same strategy, same
  /// k), then starts the block migrations every new cluster needs to regain
  /// the full ledger. Call only when the simulation is quiescent; run
  /// settle() afterwards and then prune_unassigned() to drop stale copies.
  /// Replication mode only (coded-mode reconfiguration is future work).
  ReconfigReport reconfigure(std::uint64_t epoch_seed);

  /// Drops bodies from nodes that are no longer assigned storers under the
  /// current clustering. Returns bytes freed. Run after migrations settle.
  std::uint64_t prune_unassigned();

  /// The storage runtime (backend factory + on-disk root) for this network.
  [[nodiscard]] const StoreRuntime& store_runtime() const { return *store_runtime_; }

 private:
  void handle_churn_event(cluster::NodeId id, bool online);
  void install_backend(IciNode& node, cluster::NodeId id);
  void repair_cluster_coded(std::size_t cluster);
  void note_commit_now(const Hash256& hash, std::uint64_t height,
                       std::size_t size_bytes, sim::SimTime at);
  void flush_deferred_commits();

  IciNetworkConfig cfg_;
  std::size_t shards_ = 1;  // resolved (cfg_.shards or the --shards default)
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<cluster::NodeInfo> infos_;
  std::unique_ptr<cluster::ClusterDirectory> directory_;
  std::unique_ptr<cluster::BlockAssigner> assigner_;
  std::unique_ptr<cluster::BlockAssigner> shard_owner_assigner_;  // unweighted, r=1
  // Shared immutable snapshot + SoA tallies must outlive the nodes bound to
  // them (nodes_ is declared after both). The store runtime owns the on-disk
  // root, so it too must outlive the nodes whose backends write under it.
  std::shared_ptr<HeaderIndex> header_index_ = std::make_shared<HeaderIndex>();
  FleetTally fleet_tally_;
  std::unique_ptr<StoreRuntime> store_runtime_;
  ObjectArena<IciNode> nodes_;
  std::unique_ptr<sim::ChurnModel> churn_;
  // Declared after net_ so it uninstalls its network hook before the
  // network dies.
  std::unique_ptr<sim::FaultInjector> faults_;
  std::unique_ptr<cluster::RepairDaemon> repair_daemon_;
  std::unique_ptr<erasure::ReedSolomon> codec_;
  metrics::Registry metrics_;

  std::vector<CommittedBlock> committed_;
  std::unordered_map<Hash256, std::size_t, Hash256Hasher> committed_index_;
  struct CommitProgress {
    std::size_t clusters_committed = 0;
    sim::SimTime proposed_at = 0;
    sim::SimTime fully_committed_at = 0;
  };
  std::unordered_map<Hash256, CommitProgress, Hash256Hasher> progress_;
  /// Commits recorded inside a parallel shard window, buffered per lane and
  /// flushed at the barrier sorted by (at, key).
  struct DeferredCommit {
    sim::SimTime at = 0;
    std::uint64_t key = 0;
    Hash256 hash;
    std::uint64_t height = 0;
    std::size_t size_bytes = 0;
  };
  std::vector<std::vector<DeferredCommit>> deferred_commits_;
  std::unique_ptr<sync::ServeThrottle> serve_throttle_;
  std::uint64_t proposer_cursor_ = 0;
  bool genesis_done_ = false;
  std::uint64_t trace_clock_token_ = 0;
  StatusObserver status_observer_;
};

}  // namespace ici::core
