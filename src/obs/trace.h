#pragma once

// Lightweight tracing for the simulator and the protocol stacks built on
// it. Two complementary primitives:
//
//  - Span: RAII scope that measures wall-clock time (std::chrono::steady_
//    clock) for CPU-bound sections (slice verification, RS encode, codec
//    work). When a sim clock is installed and sim time advances inside the
//    scope, the sim delta is recorded too — but sim time only moves inside
//    the event loop, so synchronous spans normally contribute wall samples
//    only.
//  - TraceSink::record_sim: explicit sample for asynchronous protocol
//    phases (bootstrap, retrieval, gossip) whose duration is a sim-time
//    difference between two events; wall time is meaningless there.
//
// Labels are slash-separated paths ("verify/slice"). Spans nest: a Span
// opened while another is active prefixes its label with the parent's
// effective path, so "fetch" inside "bootstrap" aggregates under
// "bootstrap/fetch".
//
// Aggregation reuses metrics::Distribution, so percentiles are exact.

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/counters.h"

namespace ici::obs {

// Per-label aggregate exported to bench reports. A label can carry wall
// samples, sim samples, or both.
struct LabelAggregate {
  std::string label;
  bool has_wall = false;
  bool has_sim = false;
  metrics::DistributionSummary wall_us;
  metrics::DistributionSummary sim_us;
};

class TraceSink {
 public:
  using SimClock = std::function<std::uint64_t()>;

  // Process-wide sink used by default; benches reset() it between phases
  // when they want per-phase attribution.
  static TraceSink& global();

  void record_wall(std::string_view label, double wall_us);
  void record_sim(std::string_view label, double sim_us);

  // Installs the sim-time source (normally a network's simulator). Returns
  // a token; clear_sim_clock(token) uninstalls only if that clock is still
  // the current one, so a short-lived network destroyed while another is
  // live cannot yank the survivor's clock.
  std::uint64_t set_sim_clock(SimClock clock);
  void clear_sim_clock(std::uint64_t token);
  [[nodiscard]] bool has_sim_clock() const { return static_cast<bool>(sim_clock_); }
  [[nodiscard]] std::uint64_t sim_now() const { return sim_clock_ ? sim_clock_() : 0; }

  // Aggregates for every label seen since the last reset(), sorted by label.
  [[nodiscard]] std::vector<LabelAggregate> aggregates() const;
  [[nodiscard]] const metrics::Distribution* wall_distribution(std::string_view label) const;
  [[nodiscard]] const metrics::Distribution* sim_distribution(std::string_view label) const;

  // Drops all samples and the calling thread's span path stack; the sim
  // clock stays.
  void reset();

  // Span support: effective label of the innermost open span on the calling
  // thread ("" if none). Span stacks are per-thread so handlers on
  // concurrent event lanes nest independently.
  [[nodiscard]] const std::string& current_path() const;
  void push_span(std::string effective_label);
  void pop_span();

 private:
  struct LabelData {
    metrics::Distribution wall;
    metrics::Distribution sim;
  };

  /// Calling thread's span stack for this sink (lazily created).
  [[nodiscard]] std::vector<std::string>& span_stack() const;

  /// Guards labels_ lookups/inserts; std::map node stability keeps the
  /// per-label Distribution references valid across concurrent inserts,
  /// and Distribution::add is itself thread-safe.
  mutable std::mutex mu_;
  std::map<std::string, LabelData, std::less<>> labels_;
  SimClock sim_clock_;
  std::uint64_t clock_token_ = 0;
};

// RAII span. Spans opened on different threads (event lanes, docs/
// THREADING.md) nest per-thread; on each thread spans must be destroyed in
// LIFO order, which scoping guarantees.
class Span {
 public:
  explicit Span(std::string_view label, TraceSink& sink = TraceSink::global());
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] const std::string& label() const { return label_; }

 private:
  TraceSink& sink_;
  std::string label_;  // effective (nested) label
  std::chrono::steady_clock::time_point wall_start_;
  std::uint64_t sim_start_ = 0;
  bool sim_armed_ = false;
};

}  // namespace ici::obs
