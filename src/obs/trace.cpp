#include "obs/trace.h"

#include <stdexcept>

#include "common/thread_pool.h"

namespace ici::obs {

namespace {

// ThreadPool::parallel_for hands the coordinating thread one busy-time
// sample per chunk after the join; they aggregate under "<open span>/pool"
// ("verify/slice/pool", "encode/rs/pool", ...), so BENCH_*.json shows how
// many chunks each parallel section ran and how evenly the work split.
// Worker threads never touch the sink (see docs/THREADING.md).
void record_pool_chunks(const double* chunk_us, std::size_t count) {
  TraceSink& sink = TraceSink::global();
  const std::string& parent = sink.current_path();
  const std::string label = parent.empty() ? std::string("pool") : parent + "/pool";
  for (std::size_t i = 0; i < count; ++i) sink.record_wall(label, chunk_us[i]);
}

[[maybe_unused]] const bool g_pool_recorder_installed = [] {
  thread_pool_set_chunk_recorder(&record_pool_chunks);
  return true;
}();

}  // namespace

TraceSink& TraceSink::global() {
  static TraceSink sink;
  return sink;
}

void TraceSink::record_wall(std::string_view label, double wall_us) {
  metrics::Distribution* dist = nullptr;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    auto it = labels_.find(label);
    if (it == labels_.end()) it = labels_.emplace(std::string(label), LabelData{}).first;
    dist = &it->second.wall;  // map nodes are stable; add() outside the lock
  }
  dist->add(wall_us);
}

void TraceSink::record_sim(std::string_view label, double sim_us) {
  metrics::Distribution* dist = nullptr;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    auto it = labels_.find(label);
    if (it == labels_.end()) it = labels_.emplace(std::string(label), LabelData{}).first;
    dist = &it->second.sim;
  }
  dist->add(sim_us);
}

std::uint64_t TraceSink::set_sim_clock(SimClock clock) {
  sim_clock_ = std::move(clock);
  return ++clock_token_;
}

void TraceSink::clear_sim_clock(std::uint64_t token) {
  if (token == clock_token_) sim_clock_ = nullptr;
}

std::vector<LabelAggregate> TraceSink::aggregates() const {
  const std::lock_guard<std::mutex> lk(mu_);
  std::vector<LabelAggregate> out;
  out.reserve(labels_.size());
  for (const auto& [label, data] : labels_) {
    LabelAggregate agg;
    agg.label = label;
    agg.has_wall = data.wall.count() > 0;
    agg.has_sim = data.sim.count() > 0;
    if (agg.has_wall) agg.wall_us = metrics::summarize(data.wall);
    if (agg.has_sim) agg.sim_us = metrics::summarize(data.sim);
    if (agg.has_wall || agg.has_sim) out.push_back(std::move(agg));
  }
  return out;
}

const metrics::Distribution* TraceSink::wall_distribution(std::string_view label) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = labels_.find(label);
  if (it == labels_.end() || it->second.wall.count() == 0) return nullptr;
  return &it->second.wall;
}

const metrics::Distribution* TraceSink::sim_distribution(std::string_view label) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = labels_.find(label);
  if (it == labels_.end() || it->second.sim.count() == 0) return nullptr;
  return &it->second.sim;
}

void TraceSink::reset() {
  const std::lock_guard<std::mutex> lk(mu_);
  labels_.clear();
  span_stack().clear();
}

std::vector<std::string>& TraceSink::span_stack() const {
  // Keyed by sink so tests using private sinks next to the global one keep
  // separate nesting. Stacks are empty except mid-span, so a stale entry
  // for a destroyed sink's address is harmless.
  thread_local std::map<const TraceSink*, std::vector<std::string>> stacks;
  return stacks[this];
}

const std::string& TraceSink::current_path() const {
  static const std::string kEmpty;
  const std::vector<std::string>& stack = span_stack();
  return stack.empty() ? kEmpty : stack.back();
}

void TraceSink::push_span(std::string effective_label) {
  span_stack().push_back(std::move(effective_label));
}

void TraceSink::pop_span() {
  std::vector<std::string>& stack = span_stack();
  if (stack.empty()) throw std::logic_error("TraceSink: span stack underflow");
  stack.pop_back();
}

Span::Span(std::string_view label, TraceSink& sink)
    : sink_(sink), wall_start_(std::chrono::steady_clock::now()) {
  const std::string& parent = sink_.current_path();
  if (parent.empty()) {
    label_.assign(label);
  } else {
    label_.reserve(parent.size() + 1 + label.size());
    label_ = parent;
    label_ += '/';
    label_ += label;
  }
  if (sink_.has_sim_clock()) {
    sim_armed_ = true;
    sim_start_ = sink_.sim_now();
  }
  sink_.push_span(label_);
}

Span::~Span() {
  sink_.pop_span();
  const auto wall_end = std::chrono::steady_clock::now();
  const double wall_us =
      std::chrono::duration<double, std::micro>(wall_end - wall_start_).count();
  sink_.record_wall(label_, wall_us);
  if (sim_armed_ && sink_.has_sim_clock()) {
    const std::uint64_t sim_end = sink_.sim_now();
    if (sim_end > sim_start_) {
      sink_.record_sim(label_, static_cast<double>(sim_end - sim_start_));
    }
  }
}

}  // namespace ici::obs
