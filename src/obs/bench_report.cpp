#include "obs/bench_report.h"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "common/json.h"
#include "metrics/registry.h"

namespace ici::obs {

namespace {

void emit_value(JsonWriter& w, const BenchReport::Value& v) {
  std::visit([&w](const auto& x) { w.value(x); }, v);
}

void emit_summary(JsonWriter& w, const metrics::DistributionSummary& s) {
  w.begin_object();
  w.member("count", s.count);
  w.member("total", s.total);
  w.member("p50", s.p50);
  w.member("p99", s.p99);
  w.end_object();
}

}  // namespace

BenchReport::Row& BenchReport::Row::put(std::string_view key, Value v) {
  for (auto& [k, existing] : values_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  values_.emplace_back(std::string(key), std::move(v));
  return *this;
}

BenchReport::BenchReport(std::string name, std::uint64_t seed)
    : name_(std::move(name)), seed_(seed) {
  if (name_.empty()) throw std::invalid_argument("BenchReport: empty name");
}

void BenchReport::put_config(std::string_view key, Value v) {
  for (auto& [k, existing] : config_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  config_.emplace_back(std::string(key), std::move(v));
}

BenchReport::Row& BenchReport::add_row(std::string_view label) {
  rows_.emplace_back(std::string(label));
  return rows_.back();
}

void BenchReport::add_counter(std::string_view name, std::uint64_t value) {
  counters_.emplace_back(std::string(name), value);
}

void BenchReport::add_distribution(std::string_view name,
                                   const metrics::Distribution& dist) {
  distributions_.emplace_back(std::string(name), metrics::summarize(dist));
}

void BenchReport::capture_registry(const metrics::Registry& registry,
                                   std::string_view prefix) {
  for (const auto& [name, counter] : registry.counters()) {
    add_counter(std::string(prefix) + name, counter.value());
  }
  for (const auto& [name, dist] : registry.distributions()) {
    if (dist.count() == 0) continue;
    add_distribution(std::string(prefix) + name, dist);
  }
}

void BenchReport::capture_spans(const TraceSink& sink) {
  spans_ = sink.aggregates();
  spans_captured_ = true;
}

std::string BenchReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.member("schema", kBenchSchema);
  w.member("name", name_);
  w.member("seed", seed_);
  w.member("smoke", smoke_);

  w.key("config").begin_object();
  for (const auto& [k, v] : config_) {
    w.key(k);
    emit_value(w, v);
  }
  w.end_object();

  w.key("rows").begin_array();
  for (const Row& row : rows_) {
    w.begin_object();
    w.member("label", row.label());
    w.key("values").begin_object();
    for (const auto& [k, v] : row.values()) {
      w.key(k);
      emit_value(w, v);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();

  w.key("counters").begin_object();
  for (const auto& [k, v] : counters_) w.member(k, v);
  w.end_object();

  w.key("distributions").begin_object();
  for (const auto& [k, s] : distributions_) {
    w.key(k);
    emit_summary(w, s);
  }
  w.end_object();

  w.key("spans").begin_array();
  for (const LabelAggregate& span : spans_) {
    w.begin_object();
    w.member("label", span.label);
    w.key("wall_us");
    if (span.has_wall) {
      emit_summary(w, span.wall_us);
    } else {
      w.null();
    }
    w.key("sim_us");
    if (span.has_sim) {
      emit_summary(w, span.sim_us);
    } else {
      w.null();
    }
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

std::string BenchReport::write() {
  if (!spans_captured_) capture_spans();
  std::string path = "BENCH_" + name_ + ".json";
  if (const char* dir = std::getenv("ICI_BENCH_DIR"); dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("BenchReport: cannot open " + path);
  out << to_json() << '\n';
  if (!out) throw std::runtime_error("BenchReport: write failed for " + path);
  return path;
}

}  // namespace ici::obs
