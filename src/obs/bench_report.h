#pragma once

// Machine-readable bench artifact. Every bench/exp* binary and tools/icisim
// builds one of these alongside its human-readable tables and writes it as
// BENCH_<name>.json (schema "ici-bench-v1", see docs/OBSERVABILITY.md).
// The artifact carries the run configuration, the seed, the numeric rows
// backing each printed table, protocol counters/distributions, and the
// span aggregates collected by the TraceSink.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "obs/trace.h"

namespace ici::metrics {
class Registry;
}  // namespace ici::metrics

namespace ici::obs {

inline constexpr std::string_view kBenchSchema = "ici-bench-v1";

class BenchReport {
 public:
  using Value = std::variant<bool, std::int64_t, std::uint64_t, double, std::string>;

  // One table row: a label plus named numeric/string cells, emitted in
  // insertion order.
  class Row {
   public:
    explicit Row(std::string label) : label_(std::move(label)) {}

    Row& set(std::string_view key, double v) { return put(key, Value(v)); }
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>>>
    Row& set(std::string_view key, T v) {
      if constexpr (std::is_signed_v<T>) {
        return put(key, Value(static_cast<std::int64_t>(v)));
      } else {
        return put(key, Value(static_cast<std::uint64_t>(v)));
      }
    }
    Row& set(std::string_view key, bool v) { return put(key, Value(v)); }
    Row& set(std::string_view key, std::string_view v) {
      return put(key, Value(std::string(v)));
    }
    Row& set(std::string_view key, const char* v) {
      return put(key, Value(std::string(v)));
    }

    [[nodiscard]] const std::string& label() const { return label_; }
    [[nodiscard]] const std::vector<std::pair<std::string, Value>>& values() const {
      return values_;
    }

   private:
    Row& put(std::string_view key, Value v);

    std::string label_;
    std::vector<std::pair<std::string, Value>> values_;
  };

  BenchReport(std::string name, std::uint64_t seed);

  [[nodiscard]] const std::string& name() const { return name_; }

  void set_smoke(bool smoke) { smoke_ = smoke; }
  [[nodiscard]] bool smoke() const { return smoke_; }

  void set_config(std::string_view key, double v) { put_config(key, Value(v)); }
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>>>
  void set_config(std::string_view key, T v) {
    if constexpr (std::is_signed_v<T>) {
      put_config(key, Value(static_cast<std::int64_t>(v)));
    } else {
      put_config(key, Value(static_cast<std::uint64_t>(v)));
    }
  }
  void set_config(std::string_view key, bool v) { put_config(key, Value(v)); }
  void set_config(std::string_view key, std::string_view v) {
    put_config(key, Value(std::string(v)));
  }
  void set_config(std::string_view key, const char* v) {
    put_config(key, Value(std::string(v)));
  }

  // Stable reference: rows live in a deque, so earlier references survive
  // later add_row calls.
  Row& add_row(std::string_view label);

  void add_counter(std::string_view name, std::uint64_t value);
  void add_distribution(std::string_view name, const metrics::Distribution& dist);

  // Copies every counter and distribution out of a protocol registry,
  // prefixing names with `prefix` (e.g. "ici." / "fullrep.") so multiple
  // networks in one bench stay distinguishable.
  void capture_registry(const metrics::Registry& registry, std::string_view prefix = "");

  // Snapshots the sink's span aggregates (replacing any earlier snapshot).
  void capture_spans(const TraceSink& sink = TraceSink::global());

  [[nodiscard]] std::string to_json() const;

  // Writes BENCH_<name>.json into $ICI_BENCH_DIR (when set) or the current
  // directory; captures spans from the global sink first if capture_spans
  // was never called. Returns the path written.
  std::string write();

 private:
  void put_config(std::string_view key, Value v);

  std::string name_;
  std::uint64_t seed_;
  bool smoke_ = false;
  std::vector<std::pair<std::string, Value>> config_;
  std::deque<Row> rows_;
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, metrics::DistributionSummary>> distributions_;
  std::vector<LabelAggregate> spans_;
  bool spans_captured_ = false;
};

}  // namespace ici::obs
