// StoreRuntime: one per network facade — turns a StoreConfig into per-node
// StorageBackend instances and owns the on-disk root directory for the run.
// With the default "mem" backend it does nothing (make_backend returns null
// and BlockStore keeps its MemBackend). With "disk" each node gets
// <root>/node-<id>; when StoreConfig::dir is empty the root is a fresh
// temp directory removed on destruction, so benches leave nothing behind.
// A caller-supplied dir is kept on teardown, but its node-* subdirectories
// are cleared on construction — every run starts from empty per-node logs,
// never from a previous run's recovered segments.
#pragma once

#include <filesystem>
#include <memory>

#include "storage/backend.h"

namespace ici {

class StoreRuntime {
 public:
  /// Validates the backend name ("mem" or "disk"; throws
  /// std::invalid_argument otherwise) and, for disk, creates the root.
  explicit StoreRuntime(StoreConfig cfg);
  ~StoreRuntime();

  StoreRuntime(const StoreRuntime&) = delete;
  StoreRuntime& operator=(const StoreRuntime&) = delete;

  [[nodiscard]] bool disk() const { return cfg_.backend == "disk"; }
  [[nodiscard]] const StoreConfig& config() const { return cfg_; }
  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

  /// A fresh backend for node `id`, or null for the mem backend (the
  /// store's built-in MemBackend already is the right thing).
  [[nodiscard]] std::unique_ptr<StorageBackend> make_backend(std::size_t node_id) const;

 private:
  StoreConfig cfg_;
  std::filesystem::path root_;
  bool owns_root_ = false;
};

}  // namespace ici
