// Per-node storage: every node keeps all headers (cheap) plus the block
// bodies it is responsible for. Accounting is byte-accurate over the wire
// encodings — the quantity the paper's storage experiments compare.
//
// Bodies are held as shared_ptr<const Block>: blocks are immutable, so the
// thousands of simulated nodes share one object per block while each store's
// byte accounting still reflects what a real node would persist.
//
// Headers are interned in a HeaderIndex — by default a private one (so a
// standalone store behaves exactly as before), but the network facades pass
// every node's store one SHARED index, so a fleet of N nodes holding B
// headers costs B header objects plus N tiny occupancy bitmaps instead of
// N x B map entries. header_bytes() still reports what THIS node persists.
//
// Accounting scalars (body bytes, header count) live in a NodeStorageTally
// slot — private by default, or one row of the facade's FleetTally when
// bind_tally() was called (struct-of-arrays; see fleet_tally.h).
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.h"
#include "storage/fleet_tally.h"
#include "storage/header_index.h"

namespace ici {

class BlockStore {
 public:
  /// Standalone store with its own private header index.
  BlockStore() : index_(std::make_shared<HeaderIndex>()) {}
  /// Store sharing a fleet-wide header index (facade-constructed nodes).
  explicit BlockStore(std::shared_ptr<HeaderIndex> index) : index_(std::move(index)) {}

  /// Routes the accounting scalars into `fleet`'s slot (migrating any
  /// already-recorded bytes). `fleet` must outlive this store.
  void bind_tally(FleetTally* fleet, std::size_t slot);

  /// Stores a header (idempotent). Headers index by hash and height.
  void put_header(const BlockHeader& header);
  /// Same, with the hash precomputed by the caller (bulk-load fast path).
  void put_header(const BlockHeader& header, const Hash256& hash);
  [[nodiscard]] std::optional<BlockHeader> header_by_hash(const Hash256& hash) const;
  [[nodiscard]] std::optional<BlockHeader> header_at(std::uint64_t height) const;
  [[nodiscard]] std::size_t header_count() const { return tally().header_count; }
  /// Highest header height this node holds — what it advertises in a
  /// frontier exchange. nullopt for an empty store.
  [[nodiscard]] std::optional<std::uint64_t> tip_height() const {
    if (!has_tip_) return std::nullopt;
    return tip_height_;
  }

  /// Stores a full block body (idempotent; also records the header).
  void put_block(std::shared_ptr<const Block> block);
  void put_block(const Block& block);
  /// Same, with the hash precomputed by the caller (bulk-load fast path).
  void put_block(std::shared_ptr<const Block> block, const Hash256& hash);
  void put_block(const Block& block, const Hash256& hash);
  [[nodiscard]] bool has_block(const Hash256& hash) const { return bodies_.contains(hash); }
  [[nodiscard]] const Block* block_by_hash(const Hash256& hash) const;
  /// Zero-copy handle for serving the block over the network.
  [[nodiscard]] std::shared_ptr<const Block> block_ptr(const Hash256& hash) const;
  [[nodiscard]] const Block* block_at(std::uint64_t height) const;
  [[nodiscard]] std::size_t block_count() const { return bodies_.size(); }

  /// Drops a body (header retained). Returns bytes freed, 0 if absent.
  std::uint64_t prune_block(const Hash256& hash);

  /// Bytes of stored bodies.
  [[nodiscard]] std::uint64_t body_bytes() const { return tally().body_bytes; }
  /// Bytes of stored headers (what this node persists, not what the shared
  /// index holds).
  [[nodiscard]] std::uint64_t header_bytes() const {
    return static_cast<std::uint64_t>(tally().header_count) * BlockHeader::kWireSize;
  }
  /// Total footprint (bodies + headers).
  [[nodiscard]] std::uint64_t total_bytes() const { return body_bytes() + header_bytes(); }

  /// Hashes of all stored bodies (unordered).
  [[nodiscard]] std::vector<Hash256> stored_hashes() const;

  /// The header table this store interns into (shared across a fleet, or
  /// private for standalone stores).
  [[nodiscard]] const std::shared_ptr<HeaderIndex>& header_index() const { return index_; }

 private:
  [[nodiscard]] NodeStorageTally& tally() {
    return fleet_ != nullptr ? fleet_->slot(fleet_slot_) : own_;
  }
  [[nodiscard]] const NodeStorageTally& tally() const {
    return fleet_ != nullptr ? fleet_->slot(fleet_slot_) : own_;
  }
  [[nodiscard]] bool have_slot(std::uint32_t slot) const {
    const std::size_t word = slot >> 6;
    return word < have_.size() && (have_[word] >> (slot & 63)) & 1u;
  }
  void mark_slot(std::uint32_t slot) {
    const std::size_t word = slot >> 6;
    if (word >= have_.size()) have_.resize(word + 1, 0);
    have_[word] |= std::uint64_t{1} << (slot & 63);
  }

  std::shared_ptr<HeaderIndex> index_;
  std::vector<std::uint64_t> have_;  // occupancy bitmap over index slots
  std::unordered_map<Hash256, std::shared_ptr<const Block>, Hash256Hasher> bodies_;
  FleetTally* fleet_ = nullptr;
  std::size_t fleet_slot_ = 0;
  NodeStorageTally own_;
  bool has_tip_ = false;
  std::uint64_t tip_height_ = 0;
};

}  // namespace ici
