// Per-node storage: every node keeps all headers (cheap) plus the block
// bodies it is responsible for. Accounting is byte-accurate over the wire
// encodings — the quantity the paper's storage experiments compare.
//
// Bodies are held as shared_ptr<const Block>: blocks are immutable, so the
// thousands of simulated nodes share one object per block while each store's
// byte accounting still reflects what a real node would persist.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.h"

namespace ici {

class BlockStore {
 public:
  /// Stores a header (idempotent). Headers index by hash and height.
  void put_header(const BlockHeader& header);
  /// Same, with the hash precomputed by the caller (bulk-load fast path).
  void put_header(const BlockHeader& header, const Hash256& hash);
  [[nodiscard]] std::optional<BlockHeader> header_by_hash(const Hash256& hash) const;
  [[nodiscard]] std::optional<BlockHeader> header_at(std::uint64_t height) const;
  [[nodiscard]] std::size_t header_count() const { return headers_.size(); }

  /// Stores a full block body (idempotent; also records the header).
  void put_block(std::shared_ptr<const Block> block);
  void put_block(const Block& block);
  /// Same, with the hash precomputed by the caller (bulk-load fast path).
  void put_block(std::shared_ptr<const Block> block, const Hash256& hash);
  void put_block(const Block& block, const Hash256& hash);
  [[nodiscard]] bool has_block(const Hash256& hash) const { return bodies_.contains(hash); }
  [[nodiscard]] const Block* block_by_hash(const Hash256& hash) const;
  /// Zero-copy handle for serving the block over the network.
  [[nodiscard]] std::shared_ptr<const Block> block_ptr(const Hash256& hash) const;
  [[nodiscard]] const Block* block_at(std::uint64_t height) const;
  [[nodiscard]] std::size_t block_count() const { return bodies_.size(); }

  /// Drops a body (header retained). Returns bytes freed, 0 if absent.
  std::uint64_t prune_block(const Hash256& hash);

  /// Bytes of stored bodies.
  [[nodiscard]] std::uint64_t body_bytes() const { return body_bytes_; }
  /// Bytes of stored headers.
  [[nodiscard]] std::uint64_t header_bytes() const {
    return headers_.size() * BlockHeader::kWireSize;
  }
  /// Total footprint (bodies + headers).
  [[nodiscard]] std::uint64_t total_bytes() const { return body_bytes() + header_bytes(); }

  /// Hashes of all stored bodies (unordered).
  [[nodiscard]] std::vector<Hash256> stored_hashes() const;

 private:
  std::unordered_map<Hash256, BlockHeader, Hash256Hasher> headers_;
  std::unordered_map<std::uint64_t, Hash256> header_by_height_;
  std::unordered_map<Hash256, std::shared_ptr<const Block>, Hash256Hasher> bodies_;
  std::uint64_t body_bytes_ = 0;
};

}  // namespace ici
