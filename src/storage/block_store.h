// Per-node storage: every node keeps all headers (cheap) plus the block
// bodies it is responsible for. Accounting is byte-accurate over the wire
// encodings — the quantity the paper's storage experiments compare.
//
// Bodies live behind a pluggable StorageBackend (storage/backend.h): the
// default MemBackend shares one immutable Block object across the fleet
// with zero IO; the DiskBackend persists bodies in append-only segment
// files behind an async write queue (docs/STORAGE.md). The store's byte
// accounting is backend-independent — it reflects what a real node would
// persist either way.
//
// The write API is one entry point: put(StoredBlock&&), where a StoredBlock
// is either header-only or carries a body wrapped in a HashedBlock (hash
// computed exactly once, at wrap time). Reads hand out BlockRef — a handle
// that works for in-memory and disk-backed storage and reports the
// simulated IO cost the caller should charge before acting on the bytes.
// Serve/retrieval paths take BlockReader, a read-only view.
//
// Headers are interned in a HeaderIndex — by default a private one (so a
// standalone store behaves exactly as before), but the network facades pass
// every node's store one SHARED index, so a fleet of N nodes holding B
// headers costs B header objects plus N tiny occupancy bitmaps instead of
// N x B map entries. header_bytes() still reports what THIS node persists.
//
// Accounting scalars (body bytes, header count) live in a NodeStorageTally
// slot — private by default, or one row of the facade's FleetTally when
// bind_tally() was called (struct-of-arrays; see fleet_tally.h).
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "chain/block.h"
#include "storage/backend.h"
#include "storage/fleet_tally.h"
#include "storage/header_index.h"
#include "storage/mem_backend.h"

namespace ici {

/// A body plus its precomputed hash — the single point on the storage path
/// where block hashing happens. Callers that already know the hash (codec,
/// bulk-load, sync) pass it through; the others pay SHA-256 exactly once.
class HashedBlock {
 public:
  explicit HashedBlock(std::shared_ptr<const Block> block)
      : hash_(block->hash()), block_(std::move(block)) {}
  HashedBlock(std::shared_ptr<const Block> block, const Hash256& hash)
      : hash_(hash), block_(std::move(block)) {}
  explicit HashedBlock(const Block& block)
      : HashedBlock(std::make_shared<const Block>(block)) {}
  HashedBlock(const Block& block, const Hash256& hash)
      : hash_(hash), block_(std::make_shared<const Block>(block)) {}

  [[nodiscard]] const Hash256& hash() const { return hash_; }
  [[nodiscard]] const std::shared_ptr<const Block>& body() const { return block_; }
  [[nodiscard]] std::shared_ptr<const Block> take() && { return std::move(block_); }

 private:
  Hash256 hash_;
  std::shared_ptr<const Block> block_;
};

/// What one BlockStore::put admits: a header (always recorded) plus an
/// optional body. Build with StoredBlock::header_only(...) or implicitly
/// from a HashedBlock — there is no constructor taking a bare Block, so a
/// hash can never be recomputed behind the caller's back.
struct StoredBlock {
  BlockHeader header;
  Hash256 hash;
  std::shared_ptr<const Block> body;  // null = header-only

  // NOLINTNEXTLINE(google-explicit-constructor): put(HashedBlock{...}) is the API.
  StoredBlock(HashedBlock hb)
      : header(hb.body()->header()), hash(hb.hash()), body(std::move(hb).take()) {}

  [[nodiscard]] static StoredBlock header_only(const BlockHeader& h) {
    return StoredBlock(h, h.hash());
  }
  [[nodiscard]] static StoredBlock header_only(const BlockHeader& h, const Hash256& hash) {
    return StoredBlock(h, hash);
  }

 private:
  StoredBlock(const BlockHeader& h, const Hash256& hs) : header(h), hash(hs) {}
};

/// Read handle for one body lookup. Works for in-memory and disk-backed
/// stores: `cold`/`io_delay_us` report whether the bytes came off
/// persistent media and the simulated IO delay the caller should charge
/// (always 0 for MemBackend, so mem runs stay event-identical to the
/// pre-backend layout).
struct BlockRef {
  std::shared_ptr<const Block> block;
  bool cold = false;
  std::uint64_t io_delay_us = 0;

  [[nodiscard]] const Block* get() const { return block.get(); }
  [[nodiscard]] const Block& operator*() const { return *block; }
  [[nodiscard]] const Block* operator->() const { return block.get(); }
  explicit operator bool() const { return block != nullptr; }
  /// Ownership-sharing escape hatch (the old block_ptr); keeps the body
  /// alive past the store, e.g. inside a response message.
  [[nodiscard]] std::shared_ptr<const Block> share() const { return block; }
};

class BlockStore {
 public:
  /// Standalone store with its own private header index.
  BlockStore() : index_(std::make_shared<HeaderIndex>()) {}
  /// Store sharing a fleet-wide header index (facade-constructed nodes).
  explicit BlockStore(std::shared_ptr<HeaderIndex> index) : index_(std::move(index)) {}

  /// Routes the accounting scalars into `fleet`'s slot (migrating any
  /// already-recorded bytes). `fleet` must outlive this store.
  void bind_tally(FleetTally* fleet, std::size_t slot);

  /// Swaps the body backend in (facades call this at node construction,
  /// before any put). Null keeps the default MemBackend. Throws if bodies
  /// are already stored — backends don't migrate.
  void set_backend(std::unique_ptr<StorageBackend> backend);
  [[nodiscard]] StorageBackend& backend() { return *backend_; }
  [[nodiscard]] const StorageBackend& backend() const { return *backend_; }

  /// THE write entry point: records the header (idempotent; tip tracking)
  /// and, when a body is attached, admits it to the backend (idempotent;
  /// byte tally charged exactly when the backend accepts a first copy).
  void put(StoredBlock&& sb);

  [[nodiscard]] std::optional<BlockHeader> header_by_hash(const Hash256& hash) const;
  [[nodiscard]] std::optional<BlockHeader> header_at(std::uint64_t height) const;
  [[nodiscard]] std::size_t header_count() const { return tally().header_count; }
  /// Highest header height this node holds — what it advertises in a
  /// frontier exchange. nullopt for an empty store. Pruning a body never
  /// moves the tip: the header stays.
  [[nodiscard]] std::optional<std::uint64_t> tip_height() const {
    if (!has_tip_) return std::nullopt;
    return tip_height_;
  }

  [[nodiscard]] bool has_block(const Hash256& hash) const {
    return backend_->contains(hash);
  }
  [[nodiscard]] BlockRef block_by_hash(const Hash256& hash) const;
  [[nodiscard]] BlockRef block_at(std::uint64_t height) const;
  [[nodiscard]] std::size_t block_count() const { return backend_->count(); }

  /// Drops a body (header retained, so tip_height()/header_count() are
  /// unchanged — the prune-then-re-put regression contract). Returns the
  /// serialized bytes freed, 0 if absent; a later re-put of the same block
  /// restores body_bytes() to the exact pre-prune value.
  std::uint64_t prune_block(const Hash256& hash);

  /// Bytes of stored bodies.
  [[nodiscard]] std::uint64_t body_bytes() const { return tally().body_bytes; }
  /// Bytes of stored headers (what this node persists, not what the shared
  /// index holds).
  [[nodiscard]] std::uint64_t header_bytes() const {
    return static_cast<std::uint64_t>(tally().header_count) * BlockHeader::kWireSize;
  }
  /// Total footprint (bodies + headers).
  [[nodiscard]] std::uint64_t total_bytes() const { return body_bytes() + header_bytes(); }

  /// Hashes of all stored bodies (unordered).
  [[nodiscard]] std::vector<Hash256> stored_hashes() const;

  /// Retires queued writes and persists backend recovery state (no-op for
  /// MemBackend). Harness context only.
  void flush() { backend_->flush(); }

  /// The header table this store interns into (shared across a fleet, or
  /// private for standalone stores).
  [[nodiscard]] const std::shared_ptr<HeaderIndex>& header_index() const { return index_; }

 private:
  [[nodiscard]] NodeStorageTally& tally() {
    return fleet_ != nullptr ? fleet_->slot(fleet_slot_) : own_;
  }
  [[nodiscard]] const NodeStorageTally& tally() const {
    return fleet_ != nullptr ? fleet_->slot(fleet_slot_) : own_;
  }
  [[nodiscard]] bool have_slot(std::uint32_t slot) const {
    const std::size_t word = slot >> 6;
    return word < have_.size() && (have_[word] >> (slot & 63)) & 1u;
  }
  void mark_slot(std::uint32_t slot) {
    const std::size_t word = slot >> 6;
    if (word >= have_.size()) have_.resize(word + 1, 0);
    have_[word] |= std::uint64_t{1} << (slot & 63);
  }

  std::shared_ptr<HeaderIndex> index_;
  std::vector<std::uint64_t> have_;  // occupancy bitmap over index slots
  // Never null: MemBackend unless a facade swapped a backend in.
  std::unique_ptr<StorageBackend> backend_ = std::make_unique<MemBackend>();
  FleetTally* fleet_ = nullptr;
  std::size_t fleet_slot_ = 0;
  NodeStorageTally own_;
  bool has_tip_ = false;
  std::uint64_t tip_height_ = 0;
};

/// Read-only view over a BlockStore — what serve and retrieval paths take,
/// so the type system keeps them from writing. Implicitly constructible
/// from any (const) store; a thin pointer, pass by value.
class BlockReader {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): a view, by design.
  BlockReader(const BlockStore& store) : store_(&store) {}

  [[nodiscard]] bool has_block(const Hash256& hash) const { return store_->has_block(hash); }
  [[nodiscard]] BlockRef block_by_hash(const Hash256& hash) const {
    return store_->block_by_hash(hash);
  }
  [[nodiscard]] BlockRef block_at(std::uint64_t height) const {
    return store_->block_at(height);
  }
  [[nodiscard]] std::optional<BlockHeader> header_by_hash(const Hash256& hash) const {
    return store_->header_by_hash(hash);
  }
  [[nodiscard]] std::optional<BlockHeader> header_at(std::uint64_t height) const {
    return store_->header_at(height);
  }
  [[nodiscard]] std::optional<std::uint64_t> tip_height() const {
    return store_->tip_height();
  }
  [[nodiscard]] std::size_t block_count() const { return store_->block_count(); }
  [[nodiscard]] std::size_t header_count() const { return store_->header_count(); }
  [[nodiscard]] std::vector<Hash256> stored_hashes() const { return store_->stored_hashes(); }

 private:
  const BlockStore* store_;
};

/// Write view: the complement handed to ingest/repair paths that must admit
/// or prune bodies but have no business scanning the store.
class BlockWriter {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): a view, by design.
  BlockWriter(BlockStore& store) : store_(&store) {}

  void put(StoredBlock&& sb) const { store_->put(std::move(sb)); }
  std::uint64_t prune(const Hash256& hash) const { return store_->prune_block(hash); }
  [[nodiscard]] BlockReader reader() const { return BlockReader(*store_); }

 private:
  BlockStore* store_;
};

}  // namespace ici
