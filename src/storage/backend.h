// StorageBackend: the pluggable body-persistence layer behind BlockStore.
//
// A BlockStore owns exactly one backend. The default MemBackend keeps the
// seed behaviour (one shared_ptr per body, zero IO, zero latency); the
// DiskBackend persists bodies in append-only segment files behind an async
// write queue whose IO completions are *simulated-time* events, so the
// deterministic-metrics contract survives real byte movement
// (docs/STORAGE.md).
//
// Backends are sim-independent on purpose: time is plain uint64 microseconds
// and scheduling goes through the IoEnv callbacks a facade wires to its
// simulator. A backend with no IoEnv installed retires writes synchronously
// and charges flat read latency — standalone stores (unit tests, tools)
// never need a simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "chain/block.h"

namespace ici {

/// Construction knobs for a store backend, embedded in every facade config
/// and in core::StrategyConfig. Defaults select the in-memory backend, so an
/// unconfigured field changes nothing.
struct StoreConfig {
  /// "mem" (default, in-memory shared_ptr bodies) or "disk" (log-structured
  /// segment files, docs/STORAGE.md).
  std::string backend = "mem";
  /// Root directory for disk backends ("" = a fresh temp directory owned by
  /// the run and removed on teardown). Each node gets a subdirectory.
  std::string dir;
  /// Target size of one append-only segment file before it is sealed.
  std::uint64_t segment_bytes = 4u << 20;
  /// Simulated service time of one block append / one cold read. The write
  /// and read clocks serialize per node, so queueing delay emerges.
  std::uint64_t io_write_us = 100;
  std::uint64_t io_read_us = 150;
  /// Compact a node's log when dead bytes exceed this fraction of the log.
  double compact_threshold = 0.5;
};

/// Per-backend event tallies, summed over a fleet into the `store.*`
/// metrics. Plain (non-atomic) fields: a backend is only touched from its
/// owning node's event lane, and the export sums over nodes, so totals are
/// order-free and deterministic.
struct StoreCounters {
  std::uint64_t puts = 0;             ///< bodies accepted (first copy)
  std::uint64_t dup_puts = 0;         ///< idempotent re-puts rejected
  std::uint64_t staged_puts = 0;      ///< puts that went through the write queue
  std::uint64_t wq_enqueued = 0;      ///< write-queue admissions
  std::uint64_t wq_retired = 0;       ///< write-queue completions (incl. cancels)
  std::uint64_t wq_depth = 0;         ///< writes currently staged
  std::uint64_t wq_depth_peak = 0;    ///< high-water mark of wq_depth
  std::uint64_t warm_reads = 0;       ///< served from memory / the write queue
  std::uint64_t cold_reads = 0;       ///< served from a segment file
  std::uint64_t cold_read_bytes = 0;  ///< payload bytes read cold
  std::uint64_t segments = 0;         ///< live segment files
  std::uint64_t segment_bytes = 0;    ///< bytes across live segment files
  std::uint64_t appended_bytes = 0;   ///< cumulative bytes appended
  std::uint64_t tombstones = 0;       ///< erase records appended
  std::uint64_t compactions = 0;      ///< log rewrites triggered by dead space
  std::uint64_t reclaimed_bytes = 0;  ///< bytes dropped by compactions
  std::uint64_t manifest_writes = 0;  ///< crash-safe manifest rewrites
  std::uint64_t recovered_blocks = 0;     ///< index entries rebuilt on reopen
  std::uint64_t truncated_tail_bytes = 0; ///< partial-record bytes skipped on reopen

  StoreCounters& operator+=(const StoreCounters& o) {
    puts += o.puts;
    dup_puts += o.dup_puts;
    staged_puts += o.staged_puts;
    wq_enqueued += o.wq_enqueued;
    wq_retired += o.wq_retired;
    wq_depth += o.wq_depth;
    wq_depth_peak += o.wq_depth_peak;
    warm_reads += o.warm_reads;
    cold_reads += o.cold_reads;
    cold_read_bytes += o.cold_read_bytes;
    segments += o.segments;
    segment_bytes += o.segment_bytes;
    appended_bytes += o.appended_bytes;
    tombstones += o.tombstones;
    compactions += o.compactions;
    reclaimed_bytes += o.reclaimed_bytes;
    manifest_writes += o.manifest_writes;
    recovered_blocks += o.recovered_blocks;
    truncated_tail_bytes += o.truncated_tail_bytes;
    return *this;
  }
};

/// How a backend sees simulated time. A facade wires `now` to its simulator
/// clock and `schedule_at` to sim::Simulator::schedule_for(owner, ...), so
/// IO-retirement events run on the owning node's event lane (lane-local,
/// shard-invariant). Both callbacks empty = synchronous mode.
struct IoEnv {
  std::function<std::uint64_t()> now;
  std::function<void(std::uint64_t at, std::function<void()> fn)> schedule_at;

  [[nodiscard]] bool simulated() const { return static_cast<bool>(schedule_at); }
};

/// Body persistence behind one node's BlockStore. Headers, tips, and byte
/// tallies stay in BlockStore; the backend owns only hash -> body.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Admits a body (idempotent). Returns true when this is the first copy —
  /// the caller records serialized_size() against its byte tally exactly
  /// when the backend accepts.
  virtual bool put(const Hash256& hash, std::shared_ptr<const Block> block) = 0;

  /// True when the body is available (staged writes count: a reader behind
  /// the write queue must not miss its own recent put).
  [[nodiscard]] virtual bool contains(const Hash256& hash) const = 0;

  /// Looks a body up. `cold` / `delay_us` (either may be null) report
  /// whether the read came from persistent media and the simulated IO delay
  /// the caller should charge before acting on the bytes. Mutable read
  /// clocks make this const: serve paths hold read-only stores.
  [[nodiscard]] virtual std::shared_ptr<const Block> fetch(
      const Hash256& hash, bool* cold, std::uint64_t* delay_us) const = 0;

  /// Drops a body; returns the serialized bytes freed (0 if absent).
  /// Staged writes are cancelled before ever reaching media.
  virtual std::uint64_t erase(const Hash256& hash) = 0;

  [[nodiscard]] virtual std::size_t count() const = 0;

  virtual void for_each_hash(const std::function<void(const Hash256&)>& fn) const = 0;

  /// Retires any staged writes synchronously and persists recovery state
  /// (manifest). Harness-context only — never from inside an event handler.
  virtual void flush() {}

  [[nodiscard]] virtual const StoreCounters& counters() const = 0;

  virtual void set_io_env(IoEnv env) { (void)env; }
};

}  // namespace ici
