// Fleet-level storage accounting: aggregates per-node BlockStore footprints
// into the distributions the storage experiments report.
#pragma once

#include <vector>

#include "common/stats.h"
#include "storage/block_store.h"

namespace ici {

struct StorageSnapshot {
  std::uint64_t total_bytes = 0;
  double mean_bytes = 0.0;
  double max_bytes = 0.0;
  double min_bytes = 0.0;
  double cv = 0.0;  // load-balance quality: stddev/mean of per-node bytes
  std::size_t node_count = 0;
};

class StorageMeter {
 public:
  /// Snapshot over a set of stores (one per node).
  [[nodiscard]] static StorageSnapshot snapshot(const std::vector<const BlockStore*>& stores);
};

}  // namespace ici
