// Header-only glue mirroring fleet-summed StoreCounters into a protocol
// metrics registry as `store.*` — same overwrite-idempotent pattern as
// metrics/sim_metrics.h. storage/ itself stays metrics-free; the network
// facades (which already link ici_metrics) call this from settle/run_for so
// bench artifacts carry the backend instrumentation. All values are
// order-free sums over per-node counters, so they sit inside the
// bit-identical sim-metrics contract.
#pragma once

#include <vector>

#include "metrics/registry.h"
#include "storage/block_store.h"

namespace ici {

[[nodiscard]] inline StoreCounters sum_store_counters(
    const std::vector<const BlockStore*>& stores) {
  StoreCounters total;
  for (const BlockStore* s : stores) total += s->backend().counters();
  return total;
}

inline void sync_store_counters(metrics::Registry& reg,
                                const std::vector<const BlockStore*>& stores) {
  const StoreCounters t = sum_store_counters(stores);
  const auto set = [&reg](const char* name, std::uint64_t v) {
    metrics::Counter& c = reg.counter(name);
    c.reset();
    c.inc(v);
  };
  set("store.puts", t.puts);
  set("store.dup_puts", t.dup_puts);
  set("store.staged_puts", t.staged_puts);
  set("store.wq_enqueued", t.wq_enqueued);
  set("store.wq_retired", t.wq_retired);
  set("store.wq_depth", t.wq_depth);
  set("store.wq_depth_peak", t.wq_depth_peak);
  set("store.warm_reads", t.warm_reads);
  set("store.cold_reads", t.cold_reads);
  set("store.cold_read_bytes", t.cold_read_bytes);
  set("store.segments", t.segments);
  set("store.segment_bytes", t.segment_bytes);
  set("store.appended_bytes", t.appended_bytes);
  set("store.tombstones", t.tombstones);
  set("store.compactions", t.compactions);
  set("store.reclaimed_bytes", t.reclaimed_bytes);
  set("store.manifest_writes", t.manifest_writes);
  set("store.recovered_blocks", t.recovered_blocks);
  set("store.truncated_tail_bytes", t.truncated_tail_bytes);
}

}  // namespace ici
