// MemBackend: the seed storage model as a StorageBackend. Bodies live in one
// shared unordered_map of shared_ptr<const Block>; puts land instantly,
// reads are always warm with zero simulated delay, and nothing is ever
// scheduled — a run with `--store mem` is event-for-event identical to the
// pre-backend layout.
#pragma once

#include <unordered_map>

#include "storage/backend.h"

namespace ici {

class MemBackend final : public StorageBackend {
 public:
  [[nodiscard]] std::string_view name() const override { return "mem"; }

  bool put(const Hash256& hash, std::shared_ptr<const Block> block) override {
    if (bodies_.contains(hash)) {
      ++counters_.dup_puts;
      return false;
    }
    bodies_.emplace(hash, std::move(block));
    ++counters_.puts;
    return true;
  }

  [[nodiscard]] bool contains(const Hash256& hash) const override {
    return bodies_.contains(hash);
  }

  [[nodiscard]] std::shared_ptr<const Block> fetch(const Hash256& hash, bool* cold,
                                                   std::uint64_t* delay_us) const override {
    if (cold != nullptr) *cold = false;
    if (delay_us != nullptr) *delay_us = 0;
    const auto it = bodies_.find(hash);
    if (it == bodies_.end()) return nullptr;
    ++counters_.warm_reads;
    return it->second;
  }

  std::uint64_t erase(const Hash256& hash) override {
    const auto it = bodies_.find(hash);
    if (it == bodies_.end()) return 0;
    const std::uint64_t freed = it->second->serialized_size();
    bodies_.erase(it);
    return freed;
  }

  [[nodiscard]] std::size_t count() const override { return bodies_.size(); }

  void for_each_hash(const std::function<void(const Hash256&)>& fn) const override {
    for (const auto& [h, b] : bodies_) {
      (void)b;
      fn(h);
    }
  }

  [[nodiscard]] const StoreCounters& counters() const override { return counters_; }

 private:
  std::unordered_map<Hash256, std::shared_ptr<const Block>, Hash256Hasher> bodies_;
  mutable StoreCounters counters_;
};

}  // namespace ici
