// Per-node erasure-shard storage for ICIStrategy's coded mode: instead of
// whole block bodies, a member holds one Reed-Solomon shard per block
// (index = its rank in the block's holder list). Byte-accurate accounting,
// like BlockStore.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/hash.h"
#include "erasure/rs.h"

namespace ici {

class ShardStore {
 public:
  /// Stores (idempotent per (block, index)).
  void put(const Hash256& block, erasure::Shard shard);

  [[nodiscard]] bool has(const Hash256& block, std::uint32_t index) const;
  [[nodiscard]] bool has_any(const Hash256& block) const;
  [[nodiscard]] const erasure::Shard* get(const Hash256& block, std::uint32_t index) const;
  /// All shard indices held for a block (unordered).
  [[nodiscard]] std::vector<std::uint32_t> indices(const Hash256& block) const;

  /// Drops one shard; returns bytes freed.
  std::uint64_t prune(const Hash256& block, std::uint32_t index);

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }

 private:
  std::unordered_map<Hash256, std::unordered_map<std::uint32_t, erasure::Shard>, Hash256Hasher>
      shards_;
  std::uint64_t total_bytes_ = 0;
  std::size_t shard_count_ = 0;
};

}  // namespace ici
