// Per-node erasure-shard storage for ICIStrategy's coded mode: instead of
// whole block bodies, a member holds one Reed-Solomon shard per block
// (index = its rank in the block's holder list). Byte-accurate accounting,
// like BlockStore.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/hash.h"
#include "erasure/rs.h"
#include "storage/fleet_tally.h"

namespace ici {

class ShardStore {
 public:
  /// Routes the accounting scalars into `fleet`'s slot (struct-of-arrays;
  /// see fleet_tally.h). `fleet` must outlive this store.
  void bind_tally(FleetTally* fleet, std::size_t slot);

  /// Stores (idempotent per (block, index)).
  void put(const Hash256& block, erasure::Shard shard);

  [[nodiscard]] bool has(const Hash256& block, std::uint32_t index) const;
  [[nodiscard]] bool has_any(const Hash256& block) const;
  [[nodiscard]] const erasure::Shard* get(const Hash256& block, std::uint32_t index) const;
  /// All shard indices held for a block (unordered).
  [[nodiscard]] std::vector<std::uint32_t> indices(const Hash256& block) const;

  /// Drops one shard; returns bytes freed.
  std::uint64_t prune(const Hash256& block, std::uint32_t index);

  [[nodiscard]] std::uint64_t total_bytes() const { return tally().shard_bytes; }
  [[nodiscard]] std::size_t shard_count() const { return tally().shard_count; }

 private:
  [[nodiscard]] NodeStorageTally& tally() {
    return fleet_ != nullptr ? fleet_->slot(fleet_slot_) : own_;
  }
  [[nodiscard]] const NodeStorageTally& tally() const {
    return fleet_ != nullptr ? fleet_->slot(fleet_slot_) : own_;
  }

  std::unordered_map<Hash256, std::unordered_map<std::uint32_t, erasure::Shard>, Hash256Hasher>
      shards_;
  FleetTally* fleet_ = nullptr;
  std::size_t fleet_slot_ = 0;
  NodeStorageTally own_;
};

}  // namespace ici
