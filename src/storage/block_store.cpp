#include "storage/block_store.h"

namespace ici {

void BlockStore::put_header(const BlockHeader& header) { put_header(header, header.hash()); }

void BlockStore::put_header(const BlockHeader& header, const Hash256& hash) {
  if (headers_.emplace(hash, header).second) {
    header_by_height_[header.height] = hash;
  }
}

std::optional<BlockHeader> BlockStore::header_by_hash(const Hash256& hash) const {
  const auto it = headers_.find(hash);
  if (it == headers_.end()) return std::nullopt;
  return it->second;
}

std::optional<BlockHeader> BlockStore::header_at(std::uint64_t height) const {
  const auto it = header_by_height_.find(height);
  if (it == header_by_height_.end()) return std::nullopt;
  return header_by_hash(it->second);
}

void BlockStore::put_block(std::shared_ptr<const Block> block) {
  const Hash256 hash = block->hash();
  put_block(std::move(block), hash);
}

void BlockStore::put_block(const Block& block) {
  put_block(std::make_shared<const Block>(block));
}

void BlockStore::put_block(const Block& block, const Hash256& hash) {
  put_block(std::make_shared<const Block>(block), hash);
}

void BlockStore::put_block(std::shared_ptr<const Block> block, const Hash256& hash) {
  put_header(block->header(), hash);
  if (bodies_.contains(hash)) return;
  body_bytes_ += block->serialized_size();
  bodies_.emplace(hash, std::move(block));
}

const Block* BlockStore::block_by_hash(const Hash256& hash) const {
  const auto it = bodies_.find(hash);
  if (it == bodies_.end()) return nullptr;
  return it->second.get();
}

std::shared_ptr<const Block> BlockStore::block_ptr(const Hash256& hash) const {
  const auto it = bodies_.find(hash);
  if (it == bodies_.end()) return nullptr;
  return it->second;
}

const Block* BlockStore::block_at(std::uint64_t height) const {
  const auto it = header_by_height_.find(height);
  if (it == header_by_height_.end()) return nullptr;
  return block_by_hash(it->second);
}

std::uint64_t BlockStore::prune_block(const Hash256& hash) {
  const auto it = bodies_.find(hash);
  if (it == bodies_.end()) return 0;
  const std::uint64_t freed = it->second->serialized_size();
  body_bytes_ -= freed;
  bodies_.erase(it);
  return freed;
}

std::vector<Hash256> BlockStore::stored_hashes() const {
  std::vector<Hash256> out;
  out.reserve(bodies_.size());
  for (const auto& [h, b] : bodies_) {
    (void)b;
    out.push_back(h);
  }
  return out;
}

}  // namespace ici
