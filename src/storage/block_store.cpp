#include "storage/block_store.h"

#include <stdexcept>

namespace ici {

void BlockStore::bind_tally(FleetTally* fleet, std::size_t slot) {
  const NodeStorageTally recorded = own_;
  fleet_ = fleet;
  fleet_slot_ = slot;
  if (recorded.body_bytes != 0 || recorded.header_count != 0) {
    NodeStorageTally& t = tally();
    t.body_bytes += recorded.body_bytes;
    t.header_count += recorded.header_count;
    own_ = NodeStorageTally{};
  }
}

void BlockStore::set_backend(std::unique_ptr<StorageBackend> backend) {
  if (backend == nullptr) return;  // keep the MemBackend default
  if (backend_->count() != 0) {
    throw std::logic_error("BlockStore::set_backend: bodies already stored");
  }
  backend_ = std::move(backend);
}

void BlockStore::put(StoredBlock&& sb) {
  const std::uint32_t slot = index_->intern(sb.header, sb.hash);
  if (!have_slot(slot)) {
    mark_slot(slot);
    ++tally().header_count;
    if (!has_tip_ || sb.header.height > tip_height_) {
      has_tip_ = true;
      tip_height_ = sb.header.height;
    }
  }
  if (sb.body == nullptr) return;
  const std::uint64_t bytes = sb.body->serialized_size();
  if (backend_->put(sb.hash, std::move(sb.body))) tally().body_bytes += bytes;
}

std::optional<BlockHeader> BlockStore::header_by_hash(const Hash256& hash) const {
  const std::uint32_t slot = index_->slot_of(hash);
  if (slot == HeaderIndex::kNoSlot || !have_slot(slot)) return std::nullopt;
  return index_->header(slot);
}

std::optional<BlockHeader> BlockStore::header_at(std::uint64_t height) const {
  const std::uint32_t slot = index_->slot_at(height);
  if (slot == HeaderIndex::kNoSlot || !have_slot(slot)) return std::nullopt;
  return index_->header(slot);
}

BlockRef BlockStore::block_by_hash(const Hash256& hash) const {
  BlockRef ref;
  ref.block = backend_->fetch(hash, &ref.cold, &ref.io_delay_us);
  return ref;
}

BlockRef BlockStore::block_at(std::uint64_t height) const {
  const std::uint32_t slot = index_->slot_at(height);
  if (slot == HeaderIndex::kNoSlot) return {};
  return block_by_hash(index_->hash(slot));
}

std::uint64_t BlockStore::prune_block(const Hash256& hash) {
  const std::uint64_t freed = backend_->erase(hash);
  tally().body_bytes -= freed;
  return freed;
}

std::vector<Hash256> BlockStore::stored_hashes() const {
  std::vector<Hash256> out;
  out.reserve(backend_->count());
  backend_->for_each_hash([&out](const Hash256& h) { out.push_back(h); });
  return out;
}

}  // namespace ici
