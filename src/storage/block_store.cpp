#include "storage/block_store.h"

namespace ici {

void BlockStore::bind_tally(FleetTally* fleet, std::size_t slot) {
  const NodeStorageTally recorded = own_;
  fleet_ = fleet;
  fleet_slot_ = slot;
  if (recorded.body_bytes != 0 || recorded.header_count != 0) {
    NodeStorageTally& t = tally();
    t.body_bytes += recorded.body_bytes;
    t.header_count += recorded.header_count;
    own_ = NodeStorageTally{};
  }
}

void BlockStore::put_header(const BlockHeader& header) { put_header(header, header.hash()); }

void BlockStore::put_header(const BlockHeader& header, const Hash256& hash) {
  const std::uint32_t slot = index_->intern(header, hash);
  if (!have_slot(slot)) {
    mark_slot(slot);
    ++tally().header_count;
    if (!has_tip_ || header.height > tip_height_) {
      has_tip_ = true;
      tip_height_ = header.height;
    }
  }
}

std::optional<BlockHeader> BlockStore::header_by_hash(const Hash256& hash) const {
  const std::uint32_t slot = index_->slot_of(hash);
  if (slot == HeaderIndex::kNoSlot || !have_slot(slot)) return std::nullopt;
  return index_->header(slot);
}

std::optional<BlockHeader> BlockStore::header_at(std::uint64_t height) const {
  const std::uint32_t slot = index_->slot_at(height);
  if (slot == HeaderIndex::kNoSlot || !have_slot(slot)) return std::nullopt;
  return index_->header(slot);
}

void BlockStore::put_block(std::shared_ptr<const Block> block) {
  const Hash256 hash = block->hash();
  put_block(std::move(block), hash);
}

void BlockStore::put_block(const Block& block) {
  put_block(std::make_shared<const Block>(block));
}

void BlockStore::put_block(const Block& block, const Hash256& hash) {
  put_block(std::make_shared<const Block>(block), hash);
}

void BlockStore::put_block(std::shared_ptr<const Block> block, const Hash256& hash) {
  put_header(block->header(), hash);
  if (bodies_.contains(hash)) return;
  tally().body_bytes += block->serialized_size();
  bodies_.emplace(hash, std::move(block));
}

const Block* BlockStore::block_by_hash(const Hash256& hash) const {
  const auto it = bodies_.find(hash);
  if (it == bodies_.end()) return nullptr;
  return it->second.get();
}

std::shared_ptr<const Block> BlockStore::block_ptr(const Hash256& hash) const {
  const auto it = bodies_.find(hash);
  if (it == bodies_.end()) return nullptr;
  return it->second;
}

const Block* BlockStore::block_at(std::uint64_t height) const {
  const std::uint32_t slot = index_->slot_at(height);
  if (slot == HeaderIndex::kNoSlot) return nullptr;
  return block_by_hash(index_->hash(slot));
}

std::uint64_t BlockStore::prune_block(const Hash256& hash) {
  const auto it = bodies_.find(hash);
  if (it == bodies_.end()) return 0;
  const std::uint64_t freed = it->second->serialized_size();
  tally().body_bytes -= freed;
  bodies_.erase(it);
  return freed;
}

std::vector<Hash256> BlockStore::stored_hashes() const {
  std::vector<Hash256> out;
  out.reserve(bodies_.size());
  for (const auto& [h, b] : bodies_) {
    (void)b;
    out.push_back(h);
  }
  return out;
}

}  // namespace ici
