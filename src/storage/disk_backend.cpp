#include "storage/disk_backend.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

namespace ici {

namespace {

void put_u32le(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32le(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) | (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) | (static_cast<std::uint32_t>(in[3]) << 24);
}

}  // namespace

DiskBackend::DiskBackend(StoreConfig cfg, std::filesystem::path dir)
    : cfg_(std::move(cfg)), dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
  recover();
  // Appends always start a fresh segment: a recovered tail may end in a
  // torn record, and appending past one would shadow it forever.
  const std::uint32_t next =
      segments_.empty() ? 0 : segments_.rbegin()->first + 1;
  open_segment(next);
}

DiskBackend::~DiskBackend() {
  // No implicit flush: staged writes that never retired are exactly what a
  // crash loses, and the recovery tests rely on that. StoreRuntime removes
  // run-owned directories wholesale.
  if (cur_file_ != nullptr) std::fclose(cur_file_);
}

std::filesystem::path DiskBackend::segment_path(std::uint32_t id) const {
  char name[16];
  std::snprintf(name, sizeof(name), "seg-%06u", id);
  return dir_ / name;
}

void DiskBackend::recover() {
  // The manifest names the sealed segments; the scan below additionally
  // picks up any on-disk segment (or tail bytes) the manifest has not
  // caught up with, so post-manifest appends survive a crash too.
  std::map<std::uint32_t, std::uint64_t> manifested;
  if (std::FILE* mf = std::fopen((dir_ / "MANIFEST").string().c_str(), "rb")) {
    char line[128];
    while (std::fgets(line, sizeof(line), mf) != nullptr) {
      unsigned id = 0;
      unsigned long long len = 0;
      if (std::sscanf(line, "seg %u %llu", &id, &len) == 2) manifested[id] = len;
    }
    std::fclose(mf);
  }

  std::vector<std::uint32_t> ids;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) != 0) continue;
    // Only names segment_path() itself produces count: an all-digit suffix
    // (>= 6 digits from %06u, no leading zero past six, and short enough to
    // fit u32). Anything else — "seg-old", "seg-000001.bak" — is foreign;
    // a loose parse would either throw or alias onto a real segment id and
    // scan it twice, inflating dead_bytes_ and the counters.
    const std::string suffix = name.substr(4);
    const bool digits = !suffix.empty() &&
                        std::all_of(suffix.begin(), suffix.end(), [](unsigned char c) {
                          return c >= '0' && c <= '9';
                        });
    if (!digits || suffix.size() < 6 || suffix.size() > 9 ||
        (suffix.size() > 6 && suffix.front() == '0')) {
      continue;
    }
    ids.push_back(static_cast<std::uint32_t>(std::stoul(suffix)));
  }
  std::sort(ids.begin(), ids.end());

  std::uint64_t scanned = 0;
  std::uint64_t live_record_bytes = 0;
  for (const std::uint32_t id : ids) {
    std::FILE* f = std::fopen(segment_path(id).string().c_str(), "rb");
    if (f == nullptr) continue;
    std::fseek(f, 0, SEEK_END);
    const auto file_size = static_cast<std::uint64_t>(std::ftell(f));
    std::fseek(f, 0, SEEK_SET);

    std::uint64_t off = 0;
    std::uint8_t head[kRecordHeader];
    while (off + kRecordHeader <= file_size) {
      if (std::fread(head, 1, kRecordHeader, f) != kRecordHeader) break;
      const std::uint8_t type = head[0];
      const std::uint32_t len = get_u32le(head + 1);
      if ((type != kRecBlock && type != kRecTombstone) ||
          off + kRecordHeader + len > file_size) {
        break;  // torn or foreign bytes — everything before `off` stands
      }
      Digest256 digest;
      std::memcpy(digest.data(), head + 5, digest.size());
      const Hash256 hash(digest);
      if (type == kRecBlock) {
        // Later copies win (a compaction crash can leave both).
        const auto old = index_.find(hash);
        if (old != index_.end()) {
          dead_bytes_ += kRecordHeader + old->second.payload_len;
          live_record_bytes -= kRecordHeader + old->second.payload_len;
        }
        index_[hash] = Loc{id, off, len};
        live_record_bytes += kRecordHeader + len;
      } else {
        const auto old = index_.find(hash);
        if (old != index_.end()) {
          dead_bytes_ += kRecordHeader + old->second.payload_len;
          live_record_bytes -= kRecordHeader + old->second.payload_len;
          index_.erase(old);
        }
        dead_bytes_ += kRecordHeader;  // the tombstone itself
      }
      off += kRecordHeader + len;
      if (len != 0) std::fseek(f, static_cast<long>(off), SEEK_SET);
    }
    std::fclose(f);
    counters_.truncated_tail_bytes += file_size - off;
    if (off == 0 && file_size == 0 && !manifested.contains(id)) {
      // Empty unmanifested segment (a crash right after open): drop it.
      std::filesystem::remove(segment_path(id));
      continue;
    }
    segments_[id] = off;
    scanned += off;
  }
  counters_.segments = segments_.size();
  counters_.segment_bytes = scanned;
  counters_.recovered_blocks = index_.size();
  (void)live_record_bytes;
}

void DiskBackend::write_manifest() {
  const std::filesystem::path tmp = dir_ / "MANIFEST.tmp";
  std::FILE* f = std::fopen(tmp.string().c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("DiskBackend: cannot write " + tmp.string());
  std::fputs("ici-manifest-v1\n", f);
  for (const auto& [id, len] : segments_) {
    std::fprintf(f, "seg %u %llu\n", id, static_cast<unsigned long long>(len));
  }
  std::fflush(f);
  std::fclose(f);
  std::filesystem::rename(tmp, dir_ / "MANIFEST");
  ++counters_.manifest_writes;
}

void DiskBackend::open_segment(std::uint32_t id) {
  if (cur_file_ != nullptr) std::fclose(cur_file_);
  cur_seg_ = id;
  cur_file_ = std::fopen(segment_path(id).string().c_str(), "ab");
  if (cur_file_ == nullptr) {
    throw std::runtime_error("DiskBackend: cannot open " + segment_path(id).string());
  }
  segments_.try_emplace(id, 0);
  counters_.segments = segments_.size();
}

void DiskBackend::roll_segment_if_full(std::uint64_t next_record_bytes) {
  const std::uint64_t cur = segments_[cur_seg_];
  if (cur == 0 || cur + next_record_bytes <= cfg_.segment_bytes) return;
  // Seal: the manifest commits the exact length, then appends move on.
  write_manifest();
  open_segment(cur_seg_ + 1);
}

DiskBackend::Loc DiskBackend::append_record(std::uint8_t type, const Hash256& hash,
                                            const Bytes& payload) {
  roll_segment_if_full(kRecordHeader + payload.size());
  std::uint8_t head[kRecordHeader];
  head[0] = type;
  put_u32le(head + 1, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(head + 5, hash.bytes().data(), 32);
  std::fwrite(head, 1, kRecordHeader, cur_file_);
  if (!payload.empty()) std::fwrite(payload.data(), 1, payload.size(), cur_file_);
  std::fflush(cur_file_);
  std::uint64_t& committed = segments_[cur_seg_];
  const Loc loc{cur_seg_, committed, static_cast<std::uint32_t>(payload.size())};
  const std::uint64_t record = kRecordHeader + payload.size();
  committed += record;
  counters_.appended_bytes += record;
  counters_.segment_bytes += record;
  return loc;
}

void DiskBackend::append_block(const Hash256& hash, const Block& block) {
  index_[hash] = append_record(kRecBlock, hash, block.serialize());
}

bool DiskBackend::put(const Hash256& hash, std::shared_ptr<const Block> block) {
  if (contains(hash)) {
    ++counters_.dup_puts;
    return false;
  }
  ++counters_.puts;
  if (env_.simulated() && cfg_.io_write_us > 0) {
    const std::uint64_t ticket = ++ticket_seq_;
    staged_.insert_or_assign(hash, Staged{std::move(block), ticket});
    staged_order_.emplace_back(hash, ticket);
    ++counters_.staged_puts;
    ++counters_.wq_enqueued;
    ++counters_.wq_depth;
    counters_.wq_depth_peak = std::max(counters_.wq_depth_peak, counters_.wq_depth);
    // One serialized write head per node: each append occupies the device
    // for io_write_us, so queueing delay emerges under bursts.
    const std::uint64_t now = env_.now();
    write_busy_until_ = std::max(write_busy_until_, now) + cfg_.io_write_us;
    env_.schedule_at(write_busy_until_,
                     [this, hash, ticket] { retire(hash, ticket); });
  } else {
    append_block(hash, *block);
  }
  return true;
}

void DiskBackend::retire(const Hash256& hash, std::uint64_t ticket) {
  const auto it = staged_.find(hash);
  if (it == staged_.end() || it->second.ticket != ticket) return;  // cancelled
  append_block(hash, *it->second.block);
  staged_.erase(it);
  ++counters_.wq_retired;
  --counters_.wq_depth;
  if (staged_.empty()) staged_order_.clear();
}

bool DiskBackend::contains(const Hash256& hash) const {
  return staged_.contains(hash) || index_.contains(hash);
}

std::shared_ptr<const Block> DiskBackend::fetch(const Hash256& hash, bool* cold,
                                                std::uint64_t* delay_us) const {
  if (cold != nullptr) *cold = false;
  if (delay_us != nullptr) *delay_us = 0;
  if (const auto it = staged_.find(hash); it != staged_.end()) {
    ++counters_.warm_reads;
    return it->second.block;
  }
  const auto it = index_.find(hash);
  if (it == index_.end()) return nullptr;
  std::shared_ptr<const Block> block = read_block(it->second);
  ++counters_.cold_reads;
  counters_.cold_read_bytes += it->second.payload_len;
  std::uint64_t delay = cfg_.io_read_us;
  if (env_.now) {
    // Same serialized-head model as writes, on an independent read clock.
    const std::uint64_t now = env_.now();
    read_busy_until_ = std::max(read_busy_until_, now) + cfg_.io_read_us;
    delay = read_busy_until_ - now;
  }
  if (cold != nullptr) *cold = true;
  if (delay_us != nullptr) *delay_us = delay;
  return block;
}

std::shared_ptr<const Block> DiskBackend::read_block(const Loc& loc) const {
  std::FILE* f = std::fopen(segment_path(loc.segment).string().c_str(), "rb");
  if (f == nullptr) return nullptr;
  std::fseek(f, static_cast<long>(loc.offset + kRecordHeader), SEEK_SET);
  Bytes payload(loc.payload_len);
  const std::size_t got = std::fread(payload.data(), 1, payload.size(), f);
  std::fclose(f);
  if (got != payload.size()) return nullptr;
  return std::make_shared<const Block>(
      Block::deserialize(ByteSpan(payload.data(), payload.size())));
}

std::uint64_t DiskBackend::erase(const Hash256& hash) {
  if (const auto it = staged_.find(hash); it != staged_.end()) {
    // Never reached media: cancel the queued write (the pending retirement
    // event becomes a no-op via the ticket).
    const std::uint64_t freed = it->second.block->serialized_size();
    // If the cancelled write is the queue tail (tickets are issued in
    // enqueue order), give its device slot back so later writes don't
    // queue behind an append that never happens. A non-tail cancel keeps
    // its slot — the writes behind it were scheduled around it already.
    if (it->second.ticket == ticket_seq_ && write_busy_until_ >= cfg_.io_write_us) {
      write_busy_until_ -= cfg_.io_write_us;
    }
    staged_.erase(it);
    ++counters_.wq_retired;
    --counters_.wq_depth;
    return freed;
  }
  const auto it = index_.find(hash);
  if (it == index_.end()) return 0;
  const std::uint64_t freed = it->second.payload_len;
  dead_bytes_ += kRecordHeader + it->second.payload_len;
  index_.erase(it);
  append_record(kRecTombstone, hash, {});
  dead_bytes_ += kRecordHeader;
  ++counters_.tombstones;
  maybe_compact();
  return freed;
}

std::size_t DiskBackend::count() const { return staged_.size() + index_.size(); }

void DiskBackend::for_each_hash(const std::function<void(const Hash256&)>& fn) const {
  for (const auto& [h, s] : staged_) {
    (void)s;
    fn(h);
  }
  for (const auto& [h, loc] : index_) {
    (void)loc;
    fn(h);
  }
}

void DiskBackend::flush() {
  for (const auto& [hash, ticket] : staged_order_) {
    retire(hash, ticket);  // ticket mismatch / already-retired entries no-op
  }
  staged_order_.clear();
  write_manifest();
}

void DiskBackend::maybe_compact() {
  const std::uint64_t total = counters_.segment_bytes;
  if (total == 0 || dead_bytes_ == 0) return;
  if (static_cast<double>(dead_bytes_) <=
      cfg_.compact_threshold * static_cast<double>(total)) {
    return;
  }
  compact();
}

void DiskBackend::compact() {
  // Rewrite live records — in (segment, offset) order, so the new layout is
  // a pure function of the old one — into fresh segments, then delete the
  // old files. The manifest rewrite at the end commits the swap; a crash
  // before it leaves both copies on disk and recovery's later-copy-wins
  // scan converges to the same index.
  if (cur_file_ != nullptr) {
    std::fclose(cur_file_);
    cur_file_ = nullptr;
  }
  const std::map<std::uint32_t, std::uint64_t> old_segments = std::move(segments_);
  segments_.clear();
  const std::uint64_t old_total = counters_.segment_bytes;
  counters_.segment_bytes = 0;

  std::vector<std::pair<Hash256, Loc>> live;
  live.reserve(index_.size());
  for (const auto& [h, loc] : index_) live.emplace_back(h, loc);
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    return a.second.segment != b.second.segment ? a.second.segment < b.second.segment
                                                : a.second.offset < b.second.offset;
  });

  const std::uint32_t first_new =
      old_segments.empty() ? 0 : old_segments.rbegin()->first + 1;
  open_segment(first_new);
  for (const auto& [hash, loc] : live) {
    std::FILE* f = std::fopen(segment_path(loc.segment).string().c_str(), "rb");
    if (f == nullptr) continue;
    std::fseek(f, static_cast<long>(loc.offset + kRecordHeader), SEEK_SET);
    Bytes payload(loc.payload_len);
    const std::size_t got = std::fread(payload.data(), 1, payload.size(), f);
    std::fclose(f);
    if (got != payload.size()) continue;
    index_[hash] = append_record(kRecBlock, hash, payload);
  }
  for (const auto& [id, len] : old_segments) {
    (void)len;
    std::filesystem::remove(segment_path(id));
  }
  dead_bytes_ = 0;
  counters_.segments = segments_.size();
  counters_.reclaimed_bytes += old_total - counters_.segment_bytes;
  ++counters_.compactions;
  write_manifest();
}

}  // namespace ici
