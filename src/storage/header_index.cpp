#include "storage/header_index.h"

namespace ici {

std::uint32_t HeaderIndex::intern(const BlockHeader& header, const Hash256& hash) {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto [it, inserted] = by_hash_.emplace(hash, static_cast<std::uint32_t>(headers_.size()));
  if (inserted) {
    headers_.push_back(header);
    hashes_.push_back(hash);
    by_height_.emplace(header.height, it->second);  // first-wins per height
  }
  return it->second;
}

std::uint32_t HeaderIndex::slot_of(const Hash256& hash) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = by_hash_.find(hash);
  return it == by_hash_.end() ? kNoSlot : it->second;
}

std::uint32_t HeaderIndex::slot_at(std::uint64_t height) const {
  const std::lock_guard<std::mutex> lk(mu_);
  const auto it = by_height_.find(height);
  return it == by_height_.end() ? kNoSlot : it->second;
}

const BlockHeader& HeaderIndex::header(std::uint32_t slot) const {
  const std::lock_guard<std::mutex> lk(mu_);
  return headers_[slot];
}

const Hash256& HeaderIndex::hash(std::uint32_t slot) const {
  const std::lock_guard<std::mutex> lk(mu_);
  return hashes_[slot];
}

std::size_t HeaderIndex::size() const {
  const std::lock_guard<std::mutex> lk(mu_);
  return headers_.size();
}

}  // namespace ici
