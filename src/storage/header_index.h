// HeaderIndex: one interned, append-only table of block headers shared by
// every BlockStore in a simulated network.
//
// Every node keeps all headers, so storing them per node costs N x B map
// entries — the dominant per-node memory term at 100k+ nodes. The chain has
// no forks, so the header set is identical everywhere; the facades
// (IciNetwork, FullRepNetwork, RapidChainNetwork) hand each node's
// BlockStore a shared_ptr to one HeaderIndex, and the store keeps only a
// per-node occupancy bitmap over the interned slots. Byte ACCOUNTING is
// unchanged: a node that has N headers still reports N x kWireSize
// header_bytes, exactly what a real deployment would persist.
//
// First-wins per height: interning a second, different header at an
// already-mapped height keeps the first height mapping (hash lookups still
// find both). Fork-free chains never hit this case.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "chain/block.h"

namespace ici {

/// Thread-safe for concurrent event lanes (sim sharding): all accessors
/// take an internal mutex, and slot storage is deque-backed so references
/// returned by header()/hash() stay valid while other lanes intern new
/// slots. Interning is append-only and idempotent by hash, so the table's
/// content is order-free — identical for any lane interleaving.
class HeaderIndex {
 public:
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  /// Interns (idempotent by hash); returns the header's slot.
  std::uint32_t intern(const BlockHeader& header, const Hash256& hash);

  /// Slot of a hash/height, or kNoSlot.
  [[nodiscard]] std::uint32_t slot_of(const Hash256& hash) const;
  [[nodiscard]] std::uint32_t slot_at(std::uint64_t height) const;

  /// The returned reference is stable for the index's lifetime (deque
  /// elements never move); the lock only orders the access itself against
  /// concurrent interns.
  [[nodiscard]] const BlockHeader& header(std::uint32_t slot) const;
  /// The hash the slot was interned under (precomputed — no re-hashing).
  [[nodiscard]] const Hash256& hash(std::uint32_t slot) const;

  /// Distinct headers interned — the table's real footprint is size() x
  /// kWireSize regardless of how many nodes reference it.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t interned_bytes() const {
    return size() * BlockHeader::kWireSize;
  }

 private:
  mutable std::mutex mu_;
  std::deque<BlockHeader> headers_;
  std::deque<Hash256> hashes_;  // parallel to headers_
  std::unordered_map<Hash256, std::uint32_t, Hash256Hasher> by_hash_;
  std::unordered_map<std::uint64_t, std::uint32_t> by_height_;
};

}  // namespace ici
