// DiskBackend: a log-structured on-disk block store (docs/STORAGE.md).
//
//   <dir>/seg-000000, seg-000001, ...   append-only segment files
//   <dir>/MANIFEST                      crash-safe segment list (tmp+rename)
//
// Each segment is a sequence of length-prefixed records:
//
//   [u8 type][u32 payload_len LE][32B block hash][payload]
//
// type 1 = block (payload is Block::serialize()), type 2 = tombstone
// (payload_len 0). The in-memory index maps hash -> (segment, offset,
// payload_len) and is rebuilt on open by scanning the segments named in the
// manifest plus any on-disk tail the manifest has not caught up with; a
// partial record at a file's end (torn write) terminates that scan and is
// counted, never fatal.
//
// Writes go through an async write queue: put() stages the body in memory
// and schedules a retirement event at `max(now, write_busy) + io_write_us`
// on the owning node's event lane (IoEnv), so verification never blocks on
// IO and the append order/latency is simulated-time deterministic. Reads of
// staged bodies are warm (zero delay); reads from a segment are cold —
// pread + deserialize — and charge a serialized per-node read clock.
// Without an IoEnv the backend is synchronous (tests, tools).
//
// erase() cancels a staged write outright or appends a tombstone; when dead
// bytes exceed StoreConfig::compact_threshold of the log, the live records
// are rewritten into fresh segments and the old files deleted. Cancelling
// the write-queue tail rolls the write clock back (the device slot is
// reclaimed); cancelling mid-queue does not — retirement events for the
// writes behind it are already scheduled around the cancelled slot.
#pragma once

#include <cstdio>
#include <filesystem>
#include <map>
#include <unordered_map>
#include <vector>

#include "storage/backend.h"

namespace ici {

class DiskBackend final : public StorageBackend {
 public:
  /// Opens (or creates) the log under `dir`, rebuilding the index from any
  /// existing segments — the crash-recovery path is the ordinary open path.
  DiskBackend(StoreConfig cfg, std::filesystem::path dir);
  ~DiskBackend() override;

  DiskBackend(const DiskBackend&) = delete;
  DiskBackend& operator=(const DiskBackend&) = delete;

  [[nodiscard]] std::string_view name() const override { return "disk"; }
  bool put(const Hash256& hash, std::shared_ptr<const Block> block) override;
  [[nodiscard]] bool contains(const Hash256& hash) const override;
  [[nodiscard]] std::shared_ptr<const Block> fetch(const Hash256& hash, bool* cold,
                                                   std::uint64_t* delay_us) const override;
  std::uint64_t erase(const Hash256& hash) override;
  [[nodiscard]] std::size_t count() const override;
  void for_each_hash(const std::function<void(const Hash256&)>& fn) const override;
  /// Retires every staged write in admission order and persists the
  /// manifest. Harness context only.
  void flush() override;
  [[nodiscard]] const StoreCounters& counters() const override { return counters_; }
  void set_io_env(IoEnv env) override { env_ = std::move(env); }

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

  /// On-disk record header size: type byte + payload length + block hash.
  static constexpr std::uint64_t kRecordHeader = 1 + 4 + 32;
  static constexpr std::uint8_t kRecBlock = 1;
  static constexpr std::uint8_t kRecTombstone = 2;

 private:
  struct Loc {
    std::uint32_t segment = 0;
    std::uint64_t offset = 0;       // of the record header
    std::uint32_t payload_len = 0;  // == Block::serialized_size()
  };
  struct Staged {
    std::shared_ptr<const Block> block;
    std::uint64_t ticket = 0;  // invalidates stale retirement events
  };

  [[nodiscard]] std::filesystem::path segment_path(std::uint32_t id) const;
  void recover();
  void write_manifest();
  void open_segment(std::uint32_t id);
  void roll_segment_if_full(std::uint64_t next_record_bytes);
  Loc append_record(std::uint8_t type, const Hash256& hash, const Bytes& payload);
  void append_block(const Hash256& hash, const Block& block);
  void retire(const Hash256& hash, std::uint64_t ticket);
  void maybe_compact();
  void compact();
  [[nodiscard]] std::shared_ptr<const Block> read_block(const Loc& loc) const;

  StoreConfig cfg_;
  std::filesystem::path dir_;
  IoEnv env_;

  std::unordered_map<Hash256, Loc, Hash256Hasher> index_;
  std::unordered_map<Hash256, Staged, Hash256Hasher> staged_;
  std::vector<std::pair<Hash256, std::uint64_t>> staged_order_;  // admission order
  std::uint64_t ticket_seq_ = 0;

  std::map<std::uint32_t, std::uint64_t> segments_;  // id -> committed bytes
  std::uint32_t cur_seg_ = 0;
  std::FILE* cur_file_ = nullptr;
  std::uint64_t dead_bytes_ = 0;

  std::uint64_t write_busy_until_ = 0;
  mutable std::uint64_t read_busy_until_ = 0;
  mutable StoreCounters counters_;
};

}  // namespace ici
