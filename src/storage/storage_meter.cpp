#include "storage/storage_meter.h"

namespace ici {

StorageSnapshot StorageMeter::snapshot(const std::vector<const BlockStore*>& stores) {
  StorageSnapshot snap;
  RunningStat stat;
  for (const BlockStore* s : stores) {
    const auto bytes = static_cast<double>(s->total_bytes());
    stat.add(bytes);
    snap.total_bytes += s->total_bytes();
  }
  snap.mean_bytes = stat.mean();
  snap.max_bytes = stat.max();
  snap.min_bytes = stat.min();
  snap.cv = stat.cv();
  snap.node_count = stores.size();
  return snap;
}

}  // namespace ici
