// FleetTally: the hot per-node storage scalars of a whole simulated fleet,
// struct-of-arrays style — one contiguous vector indexed by node id instead
// of a field buried inside each heap-allocated node object.
//
// BlockStore/ShardStore write their accounting through a (FleetTally*,
// slot) binding, so fleet-wide scans (StorageSnapshot, balance stats) walk
// one cache-friendly array instead of pointer-chasing N node objects. A
// store that is never bound falls back to a private tally, keeping
// standalone use (unit tests, the pruned baseline) unchanged.
#pragma once

#include <cstdint>
#include <vector>

namespace ici {

/// One node's storage accounting. body/shard bytes are wire-accurate;
/// header storage is header_count x BlockHeader::kWireSize (the headers
/// themselves are interned in a shared HeaderIndex).
struct NodeStorageTally {
  std::uint64_t body_bytes = 0;
  std::uint64_t shard_bytes = 0;
  std::uint64_t utxo_entries = 0;
  std::uint32_t header_count = 0;
  std::uint32_t shard_count = 0;
};

class FleetTally {
 public:
  /// Grows to at least n slots (never shrinks; slot references are by
  /// index, so growth is safe for bound stores).
  void ensure_size(std::size_t n) {
    if (slots_.size() < n) slots_.resize(n);
  }

  [[nodiscard]] NodeStorageTally& slot(std::size_t i) { return slots_.at(i); }
  [[nodiscard]] const NodeStorageTally& slot(std::size_t i) const { return slots_.at(i); }
  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] const std::vector<NodeStorageTally>& slots() const { return slots_; }

 private:
  std::vector<NodeStorageTally> slots_;
};

}  // namespace ici
