#include "storage/shard_store.h"

namespace ici {

void ShardStore::bind_tally(FleetTally* fleet, std::size_t slot) {
  const NodeStorageTally recorded = own_;
  fleet_ = fleet;
  fleet_slot_ = slot;
  if (recorded.shard_bytes != 0 || recorded.shard_count != 0) {
    NodeStorageTally& t = tally();
    t.shard_bytes += recorded.shard_bytes;
    t.shard_count += recorded.shard_count;
    own_ = NodeStorageTally{};
  }
}

void ShardStore::put(const Hash256& block, erasure::Shard shard) {
  auto& per_block = shards_[block];
  const auto [it, inserted] = per_block.emplace(shard.index, std::move(shard));
  if (inserted) {
    tally().shard_bytes += it->second.bytes.size();
    ++tally().shard_count;
  }
}

bool ShardStore::has(const Hash256& block, std::uint32_t index) const {
  const auto it = shards_.find(block);
  return it != shards_.end() && it->second.contains(index);
}

bool ShardStore::has_any(const Hash256& block) const {
  const auto it = shards_.find(block);
  return it != shards_.end() && !it->second.empty();
}

const erasure::Shard* ShardStore::get(const Hash256& block, std::uint32_t index) const {
  const auto it = shards_.find(block);
  if (it == shards_.end()) return nullptr;
  const auto inner = it->second.find(index);
  return inner == it->second.end() ? nullptr : &inner->second;
}

std::vector<std::uint32_t> ShardStore::indices(const Hash256& block) const {
  std::vector<std::uint32_t> out;
  const auto it = shards_.find(block);
  if (it == shards_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [index, shard] : it->second) {
    (void)shard;
    out.push_back(index);
  }
  return out;
}

std::uint64_t ShardStore::prune(const Hash256& block, std::uint32_t index) {
  const auto it = shards_.find(block);
  if (it == shards_.end()) return 0;
  const auto inner = it->second.find(index);
  if (inner == it->second.end()) return 0;
  const std::uint64_t freed = inner->second.bytes.size();
  tally().shard_bytes -= freed;
  --tally().shard_count;
  it->second.erase(inner);
  if (it->second.empty()) shards_.erase(it);
  return freed;
}

}  // namespace ici
