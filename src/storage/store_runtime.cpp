#include "storage/store_runtime.h"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "storage/disk_backend.h"

namespace ici {

StoreRuntime::StoreRuntime(StoreConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.backend != "mem" && cfg_.backend != "disk") {
    throw std::invalid_argument("StoreConfig.backend must be mem or disk, got '" +
                                cfg_.backend + "'");
  }
  if (!disk()) return;
  if (!cfg_.dir.empty()) {
    root_ = cfg_.dir;
    std::filesystem::create_directories(root_);
    // A reused root must not leak a previous run's segments into this one:
    // DiskBackend recovery would silently resurrect stale blocks, changing
    // dup_puts/warm-read behaviour and run-to-run reproducibility. Start
    // every run from fresh node directories; the root itself survives
    // teardown so a caller-supplied dir can be inspected afterwards.
    for (const auto& entry : std::filesystem::directory_iterator(root_)) {
      if (entry.path().filename().string().rfind("node-", 0) == 0) {
        std::filesystem::remove_all(entry.path());
      }
    }
    return;
  }
  std::string tmpl =
      (std::filesystem::temp_directory_path() / "ici-store-XXXXXX").string();
  if (::mkdtemp(tmpl.data()) == nullptr) {
    throw std::runtime_error("StoreRuntime: mkdtemp failed for " + tmpl);
  }
  root_ = tmpl;
  owns_root_ = true;
}

StoreRuntime::~StoreRuntime() {
  if (!owns_root_) return;
  std::error_code ec;  // best-effort teardown; never throw from a dtor
  std::filesystem::remove_all(root_, ec);
}

std::unique_ptr<StorageBackend> StoreRuntime::make_backend(std::size_t node_id) const {
  if (!disk()) return nullptr;
  return std::make_unique<DiskBackend>(cfg_, root_ / ("node-" + std::to_string(node_id)));
}

}  // namespace ici
