// Cluster formation strategies. A Clusterer maps the node population to a
// partition into k clusters; ICIStrategy then enforces intra-cluster
// integrity on each part.
//
// Strategies:
//  * KMeansClusterer — latency-aware (default, DESIGN.md D1), with a size
//    balancing pass so no cluster is too small to share the ledger usefully.
//  * RandomClusterer — ablation baseline: uniformly random partition.
//  * GridClusterer   — static geographic grid (what a naive deployment does).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/node_info.h"

namespace ici::cluster {

/// A partition: clusters[c] = member node indices into the input vector.
struct Clustering {
  std::vector<std::vector<NodeId>> clusters;

  [[nodiscard]] std::size_t cluster_count() const { return clusters.size(); }
  [[nodiscard]] std::size_t smallest() const;
  [[nodiscard]] std::size_t largest() const;
};

class Clusterer {
 public:
  virtual ~Clusterer() = default;
  /// Partitions `nodes` into (about) k clusters. Every node appears in
  /// exactly one cluster; no cluster is empty.
  [[nodiscard]] virtual Clustering cluster(const std::vector<NodeInfo>& nodes,
                                           std::size_t k) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

class KMeansClusterer final : public Clusterer {
 public:
  explicit KMeansClusterer(std::uint64_t seed = 1, bool balance_sizes = true)
      : seed_(seed), balance_sizes_(balance_sizes) {}

  [[nodiscard]] Clustering cluster(const std::vector<NodeInfo>& nodes,
                                   std::size_t k) const override;
  [[nodiscard]] std::string name() const override { return "kmeans"; }

 private:
  std::uint64_t seed_;
  bool balance_sizes_;
};

class RandomClusterer final : public Clusterer {
 public:
  explicit RandomClusterer(std::uint64_t seed = 1) : seed_(seed) {}

  [[nodiscard]] Clustering cluster(const std::vector<NodeInfo>& nodes,
                                   std::size_t k) const override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  std::uint64_t seed_;
};

class GridClusterer final : public Clusterer {
 public:
  explicit GridClusterer(double world_size = 100.0) : world_size_(world_size) {}

  [[nodiscard]] Clustering cluster(const std::vector<NodeInfo>& nodes,
                                   std::size_t k) const override;
  [[nodiscard]] std::string name() const override { return "grid"; }

 private:
  double world_size_;
};

/// Mean pairwise propagation-style distance inside clusters — the quantity
/// k-means minimizes and the clustering-ablation experiment reports.
[[nodiscard]] double mean_intra_cluster_distance(const std::vector<NodeInfo>& nodes,
                                                 const Clustering& clustering);

}  // namespace ici::cluster
