#include "cluster/node_info.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace ici::cluster {

std::vector<NodeInfo> generate_topology(std::size_t n, std::size_t regions, std::uint64_t seed,
                                        double world_size, bool heterogeneous_capacity) {
  Rng rng(seed);
  // Region centers spread uniformly in the world square.
  std::vector<Coord> centers;
  centers.reserve(std::max<std::size_t>(regions, 1));
  for (std::size_t r = 0; r < std::max<std::size_t>(regions, 1); ++r) {
    centers.push_back({rng.uniform01() * world_size, rng.uniform01() * world_size});
  }

  std::vector<NodeInfo> nodes;
  nodes.reserve(n);
  const double spread = world_size / 12.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Coord& c = centers[rng.index(centers.size())];
    NodeInfo info;
    info.id = static_cast<NodeId>(i);
    info.coord.x = std::clamp(rng.normal(c.x, spread), 0.0, world_size);
    info.coord.y = std::clamp(rng.normal(c.y, spread), 0.0, world_size);
    if (heterogeneous_capacity) {
      // Lognormal-ish: most nodes near 1, a tail up to ~4x.
      info.capacity = std::clamp(std::exp(rng.normal(0.0, 0.5)), 0.25, 4.0);
    }
    nodes.push_back(info);
  }
  return nodes;
}

}  // namespace ici::cluster
