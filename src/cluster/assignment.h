// Intra-cluster block→node assignment (DESIGN.md D2/D3).
//
// Given a block hash and the current members of a cluster, an assigner picks
// the r members responsible for storing that block's body. The choice must
// be computable by *any* node from public information (hash + membership),
// so storers and readers agree without coordination.
//
//  * RendezvousAssigner — highest-random-weight hashing, optionally weighted
//    by node capacity. Minimal disruption on membership change: only blocks
//    whose top-r set contained the departed node move.
//  * RoundRobinAssigner — height mod members; simple, but every membership
//    change reshuffles everything (ablated in exp12).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/node_info.h"

namespace ici::cluster {

class BlockAssigner {
 public:
  virtual ~BlockAssigner() = default;

  /// Picks min(r, members.size()) distinct storers for the block.
  /// `members` must be the cluster's current membership (any order).
  [[nodiscard]] virtual std::vector<NodeId> storers(const Hash256& block_hash,
                                                    std::uint64_t height,
                                                    const std::vector<NodeInfo>& members,
                                                    std::size_t r) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

class RendezvousAssigner final : public BlockAssigner {
 public:
  explicit RendezvousAssigner(bool capacity_weighted = false)
      : capacity_weighted_(capacity_weighted) {}

  [[nodiscard]] std::vector<NodeId> storers(const Hash256& block_hash, std::uint64_t height,
                                            const std::vector<NodeInfo>& members,
                                            std::size_t r) const override;
  [[nodiscard]] std::string name() const override {
    return capacity_weighted_ ? "rendezvous-weighted" : "rendezvous";
  }

 private:
  bool capacity_weighted_;
};

class RoundRobinAssigner final : public BlockAssigner {
 public:
  [[nodiscard]] std::vector<NodeId> storers(const Hash256& block_hash, std::uint64_t height,
                                            const std::vector<NodeInfo>& members,
                                            std::size_t r) const override;
  [[nodiscard]] std::string name() const override { return "round-robin"; }
};

/// Rendezvous weight of (block, node): uniform in (0,1] from a tagged hash.
/// Exposed for tests of distribution properties.
[[nodiscard]] double rendezvous_weight(const Hash256& block_hash, NodeId node);

}  // namespace ici::cluster
