#include "cluster/kmeans.h"

#include <limits>
#include <stdexcept>

#include "common/rng.h"

namespace ici::cluster {

namespace {

double sq_dist(const sim::Coord& a, const sim::Coord& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// k-means++ seeding: first centroid uniform, subsequent ones proportional
/// to squared distance from the nearest chosen centroid.
std::vector<sim::Coord> seed_centroids(const std::vector<sim::Coord>& points, std::size_t k,
                                       Rng& rng) {
  std::vector<sim::Coord> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.index(points.size())]);

  std::vector<double> d2(points.size(), std::numeric_limits<double>::max());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], sq_dist(points[i], centroids.back()));
      total += d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centroids; duplicate one.
      centroids.push_back(points[rng.index(points.size())]);
      continue;
    }
    double target = rng.uniform01() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(const std::vector<sim::Coord>& points, std::size_t k, KMeansConfig cfg) {
  if (k == 0 || k > points.size())
    throw std::invalid_argument("kmeans: k must be in [1, points.size()]");

  Rng rng(cfg.seed);
  KMeansResult result;
  result.centroids = seed_centroids(points, k, rng);
  result.assignment.assign(points.size(), 0);

  for (std::size_t iter = 0; iter < cfg.max_iterations; ++iter) {
    bool changed = false;
    // Assign step.
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_dist(points[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;

    // Update step.
    std::vector<double> sx(k, 0.0), sy(k, 0.0);
    std::vector<std::size_t> count(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      sx[result.assignment[i]] += points[i].x;
      sy[result.assignment[i]] += points[i].y;
      ++count[result.assignment[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (count[c] == 0) {
        // Empty cluster: re-seed at the point farthest from its centroid.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d = sq_dist(points[i], result.centroids[result.assignment[i]]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        result.centroids[c] = points[far];
      } else {
        result.centroids[c] = {sx[c] / static_cast<double>(count[c]),
                               sy[c] / static_cast<double>(count[c])};
      }
    }
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia += sq_dist(points[i], result.centroids[result.assignment[i]]);
  }
  return result;
}

}  // namespace ici::cluster
