// Repair planning: when a member departs (or returns), intra-cluster
// integrity requires re-deriving the assignment over the surviving members
// and copying any block whose storer set lost the departed node.
#pragma once

#include <functional>
#include <vector>

#include "cluster/assignment.h"
#include "cluster/directory.h"
#include "sim/simulator.h"

namespace ici::cluster {

struct RepairAction {
  Hash256 block_hash;
  std::uint64_t height = 0;
  NodeId source = 0;  // an online holder to copy from
  NodeId target = 0;  // the new responsible member
};

struct BlockRef {
  Hash256 hash;
  std::uint64_t height = 0;
};

/// Plans the copies needed so that, over `alive` members, every block in
/// `ledger` has its full assigned storer set present among holders.
/// `holds(node, hash)` reports current possession (the caller knows node
/// stores). Blocks with no online holder are reported in `lost`.
struct RepairPlan {
  std::vector<RepairAction> actions;
  std::vector<BlockRef> lost;  // unrecoverable inside the cluster
};

[[nodiscard]] RepairPlan plan_repair(
    const std::vector<BlockRef>& ledger, const std::vector<NodeInfo>& alive,
    const BlockAssigner& assigner, std::size_t replication,
    const std::function<bool(NodeId, const Hash256&)>& holds);

/// Background repair process: runs `pass` every `interval_us` of simulated
/// time until `until_us`, so a network under churn re-replicates lost slices
/// continuously instead of only reacting to individual churn events. The
/// horizon is mandatory — an unbounded periodic event would keep settle()
/// (which drains the queue) from ever returning.
class RepairDaemon {
 public:
  RepairDaemon(sim::Simulator& sim, sim::SimTime interval_us, sim::SimTime until_us,
               std::function<void()> pass);

  /// Schedules the first tick. No-op when the horizon is already past.
  void start();

  [[nodiscard]] std::uint64_t passes() const { return passes_; }

 private:
  void tick();

  sim::Simulator& sim_;
  sim::SimTime interval_us_;
  sim::SimTime until_us_;
  std::function<void()> pass_;
  std::uint64_t passes_ = 0;
};

}  // namespace ici::cluster
