#include "cluster/clusterer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.h"

namespace ici::cluster {

std::size_t Clustering::smallest() const {
  std::size_t s = std::numeric_limits<std::size_t>::max();
  for (const auto& c : clusters) s = std::min(s, c.size());
  return clusters.empty() ? 0 : s;
}

std::size_t Clustering::largest() const {
  std::size_t s = 0;
  for (const auto& c : clusters) s = std::max(s, c.size());
  return s;
}

namespace {

void check_k(std::size_t n, std::size_t k) {
  if (k == 0 || k > n) throw std::invalid_argument("cluster: k must be in [1, n]");
}

std::vector<sim::Coord> coords_of(const std::vector<NodeInfo>& nodes) {
  std::vector<sim::Coord> pts;
  pts.reserve(nodes.size());
  for (const NodeInfo& n : nodes) pts.push_back(n.coord);
  return pts;
}

/// Moves members from oversized clusters to the nearest undersized one until
/// every cluster size is within [floor(n/k)/2, 2*ceil(n/k)]. Keeps k-means
/// locality mostly intact while preventing degenerate tiny clusters (a
/// 2-node cluster would have to store half the ledger each).
void balance(const std::vector<NodeInfo>& nodes, Clustering& clustering,
             const std::vector<sim::Coord>& centroids) {
  const std::size_t n = nodes.size();
  const std::size_t k = clustering.clusters.size();
  const std::size_t target = (n + k - 1) / k;
  const std::size_t lo = std::max<std::size_t>(1, target / 2);

  auto dist2 = [&](NodeId id, std::size_t c) {
    const double dx = nodes[id].coord.x - centroids[c].x;
    const double dy = nodes[id].coord.y - centroids[c].y;
    return dx * dx + dy * dy;
  };

  for (std::size_t c = 0; c < k; ++c) {
    while (clustering.clusters[c].size() < lo) {
      // Take the closest node from the currently largest cluster.
      std::size_t donor = c;
      for (std::size_t d = 0; d < k; ++d) {
        if (clustering.clusters[d].size() > clustering.clusters[donor].size()) donor = d;
      }
      if (donor == c || clustering.clusters[donor].size() <= lo) break;
      auto& from = clustering.clusters[donor];
      std::size_t best_i = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t i = 0; i < from.size(); ++i) {
        const double d = dist2(from[i], c);
        if (d < best_d) {
          best_d = d;
          best_i = i;
        }
      }
      clustering.clusters[c].push_back(from[best_i]);
      from[best_i] = from.back();
      from.pop_back();
    }
  }
}

}  // namespace

Clustering KMeansClusterer::cluster(const std::vector<NodeInfo>& nodes, std::size_t k) const {
  check_k(nodes.size(), k);
  const auto pts = coords_of(nodes);
  const KMeansResult km = kmeans(pts, k, KMeansConfig{.max_iterations = 100, .seed = seed_});

  Clustering out;
  out.clusters.assign(k, {});
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out.clusters[km.assignment[i]].push_back(nodes[i].id);
  }
  if (balance_sizes_) balance(nodes, out, km.centroids);
  // Deterministic member order.
  for (auto& c : out.clusters) std::sort(c.begin(), c.end());
  return out;
}

Clustering RandomClusterer::cluster(const std::vector<NodeInfo>& nodes, std::size_t k) const {
  check_k(nodes.size(), k);
  Rng rng(seed_);
  std::vector<NodeId> ids;
  ids.reserve(nodes.size());
  for (const NodeInfo& n : nodes) ids.push_back(n.id);
  rng.shuffle(ids);

  // Round-robin deal so sizes differ by at most 1 (never an empty cluster).
  Clustering out;
  out.clusters.assign(k, {});
  for (std::size_t i = 0; i < ids.size(); ++i) out.clusters[i % k].push_back(ids[i]);
  for (auto& c : out.clusters) std::sort(c.begin(), c.end());
  return out;
}

Clustering GridClusterer::cluster(const std::vector<NodeInfo>& nodes, std::size_t k) const {
  check_k(nodes.size(), k);
  // Grid of ceil(sqrt(k)) x enough rows; cells map to clusters mod k.
  const auto cols = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(k))));
  const auto rows = (k + cols - 1) / cols;
  Clustering out;
  out.clusters.assign(k, {});
  for (const NodeInfo& n : nodes) {
    auto cx = std::min(cols - 1, static_cast<std::size_t>(n.coord.x / world_size_ *
                                                          static_cast<double>(cols)));
    auto cy = std::min(rows - 1, static_cast<std::size_t>(n.coord.y / world_size_ *
                                                          static_cast<double>(rows)));
    out.clusters[(cy * cols + cx) % k].push_back(n.id);
  }
  // Grid cells can be empty; fold empties by stealing from the largest.
  for (auto& c : out.clusters) {
    if (!c.empty()) continue;
    auto& biggest = *std::max_element(
        out.clusters.begin(), out.clusters.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    c.push_back(biggest.back());
    biggest.pop_back();
  }
  for (auto& c : out.clusters) std::sort(c.begin(), c.end());
  return out;
}

double mean_intra_cluster_distance(const std::vector<NodeInfo>& nodes,
                                   const Clustering& clustering) {
  // nodes[i].id may differ from index i in principle; build a lookup.
  std::vector<const NodeInfo*> by_id(nodes.size(), nullptr);
  for (const NodeInfo& n : nodes) {
    if (n.id < by_id.size()) by_id[n.id] = &n;
  }
  double total = 0.0;
  std::size_t pairs = 0;
  for (const auto& members : clustering.clusters) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        const NodeInfo* a = by_id[members[i]];
        const NodeInfo* b = by_id[members[j]];
        if (a == nullptr || b == nullptr) continue;
        total += sim::distance(a->coord, b->coord);
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

}  // namespace ici::cluster
