#include "cluster/assignment.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ici::cluster {

double rendezvous_weight(const Hash256& block_hash, NodeId node) {
  ByteWriter w;
  w.raw(block_hash.span());
  w.u32(node);
  const Hash256 h = Hash256::tagged("ici/rendezvous", ByteSpan(w.bytes().data(), w.bytes().size()));
  // Map to (0, 1]: (low64+1) / 2^64.
  return (static_cast<double>(h.low64()) + 1.0) * 0x1.0p-64;
}

std::vector<NodeId> RendezvousAssigner::storers(const Hash256& block_hash, std::uint64_t height,
                                                const std::vector<NodeInfo>& members,
                                                std::size_t r) const {
  (void)height;
  if (members.empty()) throw std::invalid_argument("RendezvousAssigner: empty cluster");
  struct Scored {
    double score;
    NodeId id;
  };
  std::vector<Scored> scored;
  scored.reserve(members.size());
  for (const NodeInfo& m : members) {
    const double u = rendezvous_weight(block_hash, m.id);
    // Weighted rendezvous (Cache Array Routing Protocol form):
    // score = -capacity / ln(u); higher capacity wins proportionally often.
    const double score =
        capacity_weighted_ ? -m.capacity / std::log(u) : -1.0 / std::log(u);
    scored.push_back({score, m.id});
  }
  const std::size_t take = std::min(r, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(), [](const Scored& a, const Scored& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.id < b.id;
                    });
  std::vector<NodeId> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(scored[i].id);
  return out;
}

std::vector<NodeId> RoundRobinAssigner::storers(const Hash256& block_hash, std::uint64_t height,
                                                const std::vector<NodeInfo>& members,
                                                std::size_t r) const {
  (void)block_hash;
  if (members.empty()) throw std::invalid_argument("RoundRobinAssigner: empty cluster");
  // Stable order by id, start at height mod size, wrap for replicas.
  std::vector<NodeId> sorted;
  sorted.reserve(members.size());
  for (const NodeInfo& m : members) sorted.push_back(m.id);
  std::sort(sorted.begin(), sorted.end());
  const std::size_t take = std::min(r, sorted.size());
  std::vector<NodeId> out;
  out.reserve(take);
  const std::size_t start = static_cast<std::size_t>(height % sorted.size());
  for (std::size_t i = 0; i < take; ++i) out.push_back(sorted[(start + i) % sorted.size()]);
  return out;
}

}  // namespace ici::cluster
