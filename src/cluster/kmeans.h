// Plain 2-D k-means with k-means++ seeding — the geometric engine behind
// latency-aware cluster formation (DESIGN.md D1).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.h"

namespace ici::cluster {

struct KMeansResult {
  std::vector<std::size_t> assignment;  // point index -> cluster index [0,k)
  std::vector<sim::Coord> centroids;
  double inertia = 0.0;  // sum of squared distances to assigned centroid
  std::size_t iterations = 0;
};

struct KMeansConfig {
  std::size_t max_iterations = 100;
  /// Converged when no point changes cluster.
  std::uint64_t seed = 1;
};

/// Runs k-means over `points`. k must be in [1, points.size()].
[[nodiscard]] KMeansResult kmeans(const std::vector<sim::Coord>& points, std::size_t k,
                                  KMeansConfig cfg = {});

}  // namespace ici::cluster
