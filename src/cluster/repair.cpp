#include "cluster/repair.h"

#include <algorithm>

namespace ici::cluster {

RepairPlan plan_repair(const std::vector<BlockRef>& ledger, const std::vector<NodeInfo>& alive,
                       const BlockAssigner& assigner, std::size_t replication,
                       const std::function<bool(NodeId, const Hash256&)>& holds) {
  RepairPlan plan;
  if (alive.empty()) {
    plan.lost = ledger;
    return plan;
  }
  for (const BlockRef& ref : ledger) {
    const std::vector<NodeId> want = assigner.storers(ref.hash, ref.height, alive, replication);

    // Find any online holder to serve as copy source.
    NodeId source = kNoNode;
    for (const NodeInfo& m : alive) {
      if (holds(m.id, ref.hash)) {
        source = m.id;
        break;
      }
    }
    if (source == kNoNode) {
      plan.lost.push_back(ref);
      continue;
    }
    for (NodeId target : want) {
      if (!holds(target, ref.hash)) {
        plan.actions.push_back({ref.hash, ref.height, source, target});
      }
    }
  }
  return plan;
}

RepairDaemon::RepairDaemon(sim::Simulator& sim, sim::SimTime interval_us,
                           sim::SimTime until_us, std::function<void()> pass)
    : sim_(sim), interval_us_(interval_us), until_us_(until_us), pass_(std::move(pass)) {}

void RepairDaemon::start() {
  if (interval_us_ == 0 || sim_.now() + interval_us_ > until_us_) return;
  sim_.after(interval_us_, [this] { tick(); });
}

void RepairDaemon::tick() {
  ++passes_;
  pass_();
  if (sim_.now() + interval_us_ > until_us_) return;
  sim_.after(interval_us_, [this] { tick(); });
}

}  // namespace ici::cluster
