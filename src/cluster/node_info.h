// Node descriptors consumed by clustering and assignment: identity, network
// coordinate (for latency-aware clustering), and storage capacity weight
// (for capacity-aware assignment).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/hash.h"
#include "sim/network.h"

namespace ici::cluster {

using sim::Coord;
using sim::kNoNode;
using sim::NodeId;

struct NodeInfo {
  NodeId id = 0;
  Coord coord;
  /// Relative storage capacity (1.0 = standard node). Assignment weights by
  /// this so a 2.0 node holds ~2x the blocks.
  double capacity = 1.0;
};

/// Generates n nodes with coordinates from `clusters_hint` gaussian blobs
/// (mimicking geographic regions) and capacities lognormal-ish around 1.
/// Deterministic for a given seed — every experiment shares this topology
/// generator.
[[nodiscard]] std::vector<NodeInfo> generate_topology(std::size_t n, std::size_t regions,
                                                      std::uint64_t seed,
                                                      double world_size = 100.0,
                                                      bool heterogeneous_capacity = false);

}  // namespace ici::cluster
