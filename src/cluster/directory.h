// ClusterDirectory: the authoritative view of cluster membership every node
// shares (in a deployment this would be established per epoch by the
// reconfiguration protocol; in the simulation it is a shared object).
//
// Tracks liveness so assignment/repair can work over *online* members, and
// rotates the cluster-head role by block height to spread coordinator load.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/clusterer.h"

namespace ici::cluster {

class ClusterDirectory {
 public:
  ClusterDirectory(std::vector<NodeInfo> nodes, Clustering clustering);

  [[nodiscard]] std::size_t cluster_count() const { return clusters_.size(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Cluster index of a node.
  [[nodiscard]] std::size_t cluster_of(NodeId id) const;
  /// All members of a cluster (online or not).
  [[nodiscard]] const std::vector<NodeId>& members(std::size_t cluster) const;
  /// Members currently marked online.
  [[nodiscard]] std::vector<NodeInfo> online_members(std::size_t cluster) const;
  [[nodiscard]] const NodeInfo& info(NodeId id) const;

  void set_online(NodeId id, bool online);
  [[nodiscard]] bool online(NodeId id) const;

  /// Head for a given height: rotates deterministically through the online
  /// members so every node agrees without messages.
  [[nodiscard]] std::optional<NodeId> head(std::size_t cluster, std::uint64_t height) const;

  /// Adds a node to a cluster at runtime (bootstrap of a joiner).
  void add_member(NodeInfo info, std::size_t cluster);
  /// Permanently removes a node (distinct from transient offline).
  void remove_member(NodeId id);

 private:
  std::vector<NodeInfo> nodes_;  // indexed lookup via id_index_
  std::unordered_map<NodeId, std::size_t> id_index_;
  std::unordered_map<NodeId, std::size_t> node_cluster_;
  std::unordered_map<NodeId, bool> online_;
  std::vector<std::vector<NodeId>> clusters_;
};

}  // namespace ici::cluster
