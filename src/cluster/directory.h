// ClusterDirectory: the authoritative view of cluster membership every node
// shares (in a deployment this would be established per epoch by the
// reconfiguration protocol; in the simulation it is a shared object).
//
// Tracks liveness so assignment/repair can work over *online* members, and
// rotates the cluster-head role by block height to spread coordinator load.
//
// Node ids are dense (the facades assign 0..N-1), so the per-node lookups
// (record index, cluster, liveness) are flat vectors indexed by id instead
// of hash maps — at 100k+ nodes this is the difference between three map
// entries per node and a handful of bytes per node. Unknown and removed ids
// still throw, exactly as the map-based version did.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/clusterer.h"

namespace ici::cluster {

class ClusterDirectory {
 public:
  ClusterDirectory(std::vector<NodeInfo> nodes, Clustering clustering);

  [[nodiscard]] std::size_t cluster_count() const { return clusters_.size(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Cluster index of a node.
  [[nodiscard]] std::size_t cluster_of(NodeId id) const;
  /// All members of a cluster (online or not).
  [[nodiscard]] const std::vector<NodeId>& members(std::size_t cluster) const;
  /// Members currently marked online.
  [[nodiscard]] std::vector<NodeInfo> online_members(std::size_t cluster) const;
  /// Full NodeInfo of every member (online or not) — the assignment input.
  [[nodiscard]] std::vector<NodeInfo> member_infos(std::size_t cluster) const;
  [[nodiscard]] const NodeInfo& info(NodeId id) const;

  void set_online(NodeId id, bool online);
  [[nodiscard]] bool online(NodeId id) const;

  /// Head for a given height: rotates deterministically through the online
  /// members so every node agrees without messages.
  [[nodiscard]] std::optional<NodeId> head(std::size_t cluster, std::uint64_t height) const;

  /// Adds a node to a cluster at runtime (bootstrap of a joiner).
  void add_member(NodeInfo info, std::size_t cluster);
  /// Permanently removes a node (distinct from transient offline).
  void remove_member(NodeId id);

  /// Event-lane (shard) of a node when the simulator runs `shards` lanes:
  /// whole clusters map to one lane (cluster % shards), so intra-cluster
  /// traffic — the bulk of ICI's messages — never crosses a lane boundary.
  [[nodiscard]] std::uint32_t shard_of(NodeId id, std::size_t shards) const;
  /// Node-id-indexed lane assignment for every current member.
  [[nodiscard]] std::vector<std::uint32_t> shard_map(std::size_t shards) const;

 private:
  static constexpr std::uint32_t kAbsent = UINT32_MAX;

  /// Index into the per-id vectors, or kAbsent if the id was never seen or
  /// has been removed. Throws nothing; callers decide.
  [[nodiscard]] std::uint32_t slot_of(NodeId id) const {
    return id < index_by_id_.size() ? index_by_id_[id] : kAbsent;
  }

  std::vector<NodeInfo> nodes_;             // append-only record (kept past removal)
  std::vector<std::uint32_t> index_by_id_;  // id -> nodes_ index, kAbsent when removed
  std::vector<std::uint32_t> cluster_by_id_;  // id -> cluster, kAbsent when removed
  std::vector<std::uint8_t> online_by_id_;    // id -> liveness (valid while present)
  std::vector<std::vector<NodeId>> clusters_;
};

}  // namespace ici::cluster
