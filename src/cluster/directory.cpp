#include "cluster/directory.h"

#include <algorithm>
#include <stdexcept>

namespace ici::cluster {

ClusterDirectory::ClusterDirectory(std::vector<NodeInfo> nodes, Clustering clustering)
    : nodes_(std::move(nodes)), clusters_(std::move(clustering.clusters)) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    id_index_[nodes_[i].id] = i;
    online_[nodes_[i].id] = true;
  }
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    for (NodeId id : clusters_[c]) {
      if (!id_index_.contains(id))
        throw std::invalid_argument("ClusterDirectory: clustering references unknown node");
      node_cluster_[id] = c;
    }
  }
  if (node_cluster_.size() != nodes_.size())
    throw std::invalid_argument("ClusterDirectory: clustering does not cover all nodes");
}

std::size_t ClusterDirectory::cluster_of(NodeId id) const {
  const auto it = node_cluster_.find(id);
  if (it == node_cluster_.end()) throw std::out_of_range("cluster_of: unknown node");
  return it->second;
}

const std::vector<NodeId>& ClusterDirectory::members(std::size_t cluster) const {
  if (cluster >= clusters_.size()) throw std::out_of_range("members: bad cluster");
  return clusters_[cluster];
}

std::vector<NodeInfo> ClusterDirectory::online_members(std::size_t cluster) const {
  std::vector<NodeInfo> out;
  for (NodeId id : members(cluster)) {
    if (online(id)) out.push_back(info(id));
  }
  return out;
}

const NodeInfo& ClusterDirectory::info(NodeId id) const {
  const auto it = id_index_.find(id);
  if (it == id_index_.end()) throw std::out_of_range("info: unknown node");
  return nodes_[it->second];
}

void ClusterDirectory::set_online(NodeId id, bool on) {
  const auto it = online_.find(id);
  if (it == online_.end()) throw std::out_of_range("set_online: unknown node");
  it->second = on;
}

bool ClusterDirectory::online(NodeId id) const {
  const auto it = online_.find(id);
  if (it == online_.end()) throw std::out_of_range("online: unknown node");
  return it->second;
}

std::optional<NodeId> ClusterDirectory::head(std::size_t cluster, std::uint64_t height) const {
  const auto& ids = members(cluster);
  std::vector<NodeId> alive;
  alive.reserve(ids.size());
  for (NodeId id : ids) {
    if (online(id)) alive.push_back(id);
  }
  if (alive.empty()) return std::nullopt;
  std::sort(alive.begin(), alive.end());
  return alive[static_cast<std::size_t>(height % alive.size())];
}

void ClusterDirectory::add_member(NodeInfo info, std::size_t cluster) {
  if (cluster >= clusters_.size()) throw std::out_of_range("add_member: bad cluster");
  if (id_index_.contains(info.id)) throw std::invalid_argument("add_member: duplicate id");
  id_index_[info.id] = nodes_.size();
  node_cluster_[info.id] = cluster;
  online_[info.id] = true;
  clusters_[cluster].push_back(info.id);
  std::sort(clusters_[cluster].begin(), clusters_[cluster].end());
  nodes_.push_back(info);
}

void ClusterDirectory::remove_member(NodeId id) {
  const auto it = node_cluster_.find(id);
  if (it == node_cluster_.end()) throw std::out_of_range("remove_member: unknown node");
  auto& members = clusters_[it->second];
  members.erase(std::remove(members.begin(), members.end(), id), members.end());
  node_cluster_.erase(it);
  online_.erase(id);
  // nodes_/id_index_ keep the record for info() history; mark by leaving it.
  id_index_.erase(id);
}

}  // namespace ici::cluster
