#include "cluster/directory.h"

#include <algorithm>
#include <stdexcept>

namespace ici::cluster {

namespace {

/// Grows an id-indexed vector on demand so sparse ids stay addressable.
template <typename T>
void ensure_id(std::vector<T>& v, NodeId id, T fill) {
  if (id >= v.size()) v.resize(static_cast<std::size_t>(id) + 1, fill);
}

}  // namespace

ClusterDirectory::ClusterDirectory(std::vector<NodeInfo> nodes, Clustering clustering)
    : nodes_(std::move(nodes)), clusters_(std::move(clustering.clusters)) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeId id = nodes_[i].id;
    ensure_id(index_by_id_, id, kAbsent);
    ensure_id(cluster_by_id_, id, kAbsent);
    ensure_id<std::uint8_t>(online_by_id_, id, 0);
    index_by_id_[id] = static_cast<std::uint32_t>(i);
    online_by_id_[id] = 1;
  }
  std::size_t covered = 0;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    for (NodeId id : clusters_[c]) {
      if (slot_of(id) == kAbsent)
        throw std::invalid_argument("ClusterDirectory: clustering references unknown node");
      if (cluster_by_id_[id] == kAbsent) ++covered;
      cluster_by_id_[id] = static_cast<std::uint32_t>(c);
    }
  }
  if (covered != nodes_.size())
    throw std::invalid_argument("ClusterDirectory: clustering does not cover all nodes");
}

std::size_t ClusterDirectory::cluster_of(NodeId id) const {
  if (id >= cluster_by_id_.size() || cluster_by_id_[id] == kAbsent)
    throw std::out_of_range("cluster_of: unknown node");
  return cluster_by_id_[id];
}

const std::vector<NodeId>& ClusterDirectory::members(std::size_t cluster) const {
  if (cluster >= clusters_.size()) throw std::out_of_range("members: bad cluster");
  return clusters_[cluster];
}

std::vector<NodeInfo> ClusterDirectory::online_members(std::size_t cluster) const {
  std::vector<NodeInfo> out;
  for (NodeId id : members(cluster)) {
    if (online(id)) out.push_back(info(id));
  }
  return out;
}

std::vector<NodeInfo> ClusterDirectory::member_infos(std::size_t cluster) const {
  const auto& ids = members(cluster);
  std::vector<NodeInfo> out;
  out.reserve(ids.size());
  for (NodeId id : ids) out.push_back(info(id));
  return out;
}

const NodeInfo& ClusterDirectory::info(NodeId id) const {
  const std::uint32_t slot = slot_of(id);
  if (slot == kAbsent) throw std::out_of_range("info: unknown node");
  return nodes_[slot];
}

void ClusterDirectory::set_online(NodeId id, bool on) {
  if (slot_of(id) == kAbsent) throw std::out_of_range("set_online: unknown node");
  online_by_id_[id] = on ? 1 : 0;
}

bool ClusterDirectory::online(NodeId id) const {
  if (slot_of(id) == kAbsent) throw std::out_of_range("online: unknown node");
  return online_by_id_[id] != 0;
}

std::optional<NodeId> ClusterDirectory::head(std::size_t cluster, std::uint64_t height) const {
  const auto& ids = members(cluster);
  std::vector<NodeId> alive;
  alive.reserve(ids.size());
  for (NodeId id : ids) {
    if (online(id)) alive.push_back(id);
  }
  if (alive.empty()) return std::nullopt;
  std::sort(alive.begin(), alive.end());
  return alive[static_cast<std::size_t>(height % alive.size())];
}

void ClusterDirectory::add_member(NodeInfo info, std::size_t cluster) {
  if (cluster >= clusters_.size()) throw std::out_of_range("add_member: bad cluster");
  if (slot_of(info.id) != kAbsent) throw std::invalid_argument("add_member: duplicate id");
  const NodeId id = info.id;
  ensure_id(index_by_id_, id, kAbsent);
  ensure_id(cluster_by_id_, id, kAbsent);
  ensure_id<std::uint8_t>(online_by_id_, id, 0);
  index_by_id_[id] = static_cast<std::uint32_t>(nodes_.size());
  cluster_by_id_[id] = static_cast<std::uint32_t>(cluster);
  online_by_id_[id] = 1;
  clusters_[cluster].push_back(id);
  std::sort(clusters_[cluster].begin(), clusters_[cluster].end());
  nodes_.push_back(info);
}

void ClusterDirectory::remove_member(NodeId id) {
  if (id >= cluster_by_id_.size() || cluster_by_id_[id] == kAbsent)
    throw std::out_of_range("remove_member: unknown node");
  auto& members = clusters_[cluster_by_id_[id]];
  members.erase(std::remove(members.begin(), members.end(), id), members.end());
  cluster_by_id_[id] = kAbsent;
  online_by_id_[id] = 0;
  // nodes_ keeps the record for history; the id slots are tombstoned so
  // every per-id lookup throws, matching the map-erase semantics.
  index_by_id_[id] = kAbsent;
}

std::uint32_t ClusterDirectory::shard_of(NodeId id, std::size_t shards) const {
  if (shards <= 1) return 0;
  return static_cast<std::uint32_t>(cluster_of(id) % shards);
}

std::vector<std::uint32_t> ClusterDirectory::shard_map(std::size_t shards) const {
  std::vector<std::uint32_t> lanes(cluster_by_id_.size(), 0);
  for (NodeId id = 0; id < cluster_by_id_.size(); ++id) {
    if (cluster_by_id_[id] != kAbsent) lanes[id] = shard_of(id, shards);
  }
  return lanes;
}

}  // namespace ici::cluster
