#include "baseline/fullrep.h"

#include <gtest/gtest.h>

#include "chain/workload.h"
#include "storage/storage_meter.h"

namespace ici::baseline {
namespace {

struct Rig {
  explicit Rig(std::size_t nodes = 16, bool validate = true) {
    ChainGenConfig ccfg;
    ccfg.txs_per_block = 8;
    gen = std::make_unique<ChainGenerator>(ccfg);

    FullRepConfig cfg;
    cfg.node_count = nodes;
    cfg.validate = validate;
    net = std::make_unique<FullRepNetwork>(cfg);

    Block genesis = gen->workload().make_genesis();
    gen->workload().confirm(genesis);
    chain = std::make_unique<Chain>(genesis);
    net->init_with_genesis(genesis);
  }

  sim::SimTime step() {
    Block b = gen->next_block(*chain);
    chain->append(b);
    return net->disseminate_and_settle(chain->tip());
  }

  std::unique_ptr<ChainGenerator> gen;
  std::unique_ptr<FullRepNetwork> net;
  std::unique_ptr<Chain> chain;
};

TEST(FullRep, GossipReachesEveryNode) {
  Rig rig;
  const sim::SimTime latency = rig.step();
  EXPECT_GT(latency, 0u);
  const Hash256 hash = rig.chain->tip().hash();
  for (std::size_t id = 0; id < rig.net->node_count(); ++id) {
    EXPECT_TRUE(rig.net->node(static_cast<sim::NodeId>(id)).store().has_block(hash))
        << "node " << id;
  }
}

TEST(FullRep, EveryNodeValidates) {
  Rig rig;
  ASSERT_GT(rig.step(), 0u);
  // Everyone except the proposer validated via gossip; the proposer
  // validated on injection.
  EXPECT_EQ(rig.net->metrics().counter_value("fullrep.validated"), rig.net->node_count());
  EXPECT_EQ(rig.net->metrics().counter_value("fullrep.rejected"), 0u);
}

TEST(FullRep, EveryNodeReceivesBodyExactlyOnce) {
  Rig rig;
  rig.net->network().reset_traffic();
  ASSERT_GT(rig.step(), 0u);
  const auto traffic = rig.net->network().total_traffic();
  const double copies = static_cast<double>(traffic.bytes_sent) /
                        static_cast<double>(rig.chain->tip().serialized_size());
  // INV/GETDATA dedup means ~N-1 body transfers plus chatter.
  EXPECT_GT(copies, static_cast<double>(rig.net->node_count()) * 0.8);
  EXPECT_LT(copies, static_cast<double>(rig.net->node_count()) * 1.6);
}

TEST(FullRep, UtxoConsistentAcrossNodes) {
  Rig rig;
  for (int i = 0; i < 3; ++i) ASSERT_GT(rig.step(), 0u);
  const Amount expected = rig.net->node(0).utxo().total_value();
  for (std::size_t id = 1; id < rig.net->node_count(); ++id) {
    EXPECT_EQ(rig.net->node(static_cast<sim::NodeId>(id)).utxo().total_value(), expected);
    EXPECT_EQ(rig.net->node(static_cast<sim::NodeId>(id)).utxo().size(),
              rig.net->node(0).utxo().size());
  }
}

TEST(FullRep, StorageEqualsLedgerEverywhere) {
  Rig rig(10, /*validate=*/false);
  ChainGenConfig ccfg;
  ccfg.blocks = 6;
  const Chain chain = ChainGenerator(ccfg).generate();

  FullRepConfig cfg;
  cfg.node_count = 10;
  cfg.validate = false;
  FullRepNetwork net(cfg);
  net.init_with_genesis(chain.at_height(0));
  net.preload_chain(chain);

  const StorageSnapshot snap = StorageMeter::snapshot(net.stores());
  EXPECT_EQ(snap.mean_bytes, snap.max_bytes);  // identical everywhere
  EXPECT_GE(snap.mean_bytes, static_cast<double>(chain.total_bytes()));
}

TEST(FullRep, BootstrapDownloadsWholeChain) {
  Rig rig;
  for (int i = 0; i < 4; ++i) ASSERT_GT(rig.step(), 0u);
  const auto report = rig.net->bootstrap({50, 50});
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.bodies_fetched, rig.chain->size());
  EXPECT_GE(report.bytes_downloaded, rig.chain->total_bytes());
}

TEST(FullRep, PeerGraphDegreeAndSymmetry) {
  Rig rig(20);
  for (std::size_t id = 0; id < rig.net->node_count(); ++id) {
    const auto& peers = rig.net->peers(static_cast<sim::NodeId>(id));
    EXPECT_GE(peers.size(), rig.net->config().peer_degree);
    for (sim::NodeId p : peers) {
      const auto& back = rig.net->peers(p);
      EXPECT_NE(std::find(back.begin(), back.end(), static_cast<sim::NodeId>(id)), back.end())
          << "edge not symmetric";
    }
  }
}

TEST(FullRep, RejectsTinyNetworks) {
  FullRepConfig cfg;
  cfg.node_count = 1;
  EXPECT_THROW(FullRepNetwork net(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace ici::baseline
