#include "chain/utxo.h"

#include <gtest/gtest.h>

namespace ici {
namespace {

OutPoint op(std::uint64_t salt, std::uint32_t index = 0) {
  ByteWriter w;
  w.u64(salt);
  return {Hash256::of(ByteSpan(w.bytes().data(), w.bytes().size())), index};
}

TxOutput out(Amount v) { return TxOutput{v, KeyPair::from_seed(1).pub}; }

TEST(UtxoSet, AddFindSpend) {
  UtxoSet u;
  u.add(op(1), UtxoEntry{out(10), 5, false});
  EXPECT_TRUE(u.contains(op(1)));
  const auto entry = u.find(op(1));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->output.value, 10u);
  EXPECT_EQ(entry->created_height, 5u);
  EXPECT_TRUE(u.spend(op(1)));
  EXPECT_FALSE(u.contains(op(1)));
}

TEST(UtxoSet, SpendMissingReturnsFalse) {
  UtxoSet u;
  EXPECT_FALSE(u.spend(op(404)));
}

TEST(UtxoSet, DuplicateAddThrows) {
  UtxoSet u;
  u.add(op(2), UtxoEntry{out(1), 0, false});
  EXPECT_THROW(u.add(op(2), UtxoEntry{out(2), 0, false}), std::logic_error);
}

TEST(UtxoSet, ApplyTxSpendsAndCreates) {
  UtxoSet u;
  const KeyPair owner = KeyPair::from_seed(3);
  // Seed one output, spend it into two.
  Transaction seed({}, {TxOutput{100, owner.pub}}, 1);
  u.apply_tx(seed, 0);
  EXPECT_EQ(u.size(), 1u);

  Transaction spend({TxInput{OutPoint{seed.txid(), 0}, {}, {}}},
                    {TxOutput{60, owner.pub}, TxOutput{40, owner.pub}}, 2);
  spend.sign_all_inputs(owner);
  u.apply_tx(spend, 1);
  EXPECT_EQ(u.size(), 2u);
  EXPECT_FALSE(u.contains(OutPoint{seed.txid(), 0}));
  EXPECT_TRUE(u.contains(OutPoint{spend.txid(), 0}));
  EXPECT_TRUE(u.contains(OutPoint{spend.txid(), 1}));
}

TEST(UtxoSet, ApplyTxMissingInputThrows) {
  UtxoSet u;
  const KeyPair owner = KeyPair::from_seed(4);
  Transaction spend({TxInput{op(999), {}, {}}}, {TxOutput{1, owner.pub}}, 1);
  EXPECT_THROW(u.apply_tx(spend, 0), std::logic_error);
}

TEST(UtxoSet, ValueConservedByNonCoinbaseApply) {
  UtxoSet u;
  const KeyPair owner = KeyPair::from_seed(5);
  Transaction seed({}, {TxOutput{100, owner.pub}}, 1);
  u.apply_tx(seed, 0);
  const Amount before = u.total_value();

  Transaction spend({TxInput{OutPoint{seed.txid(), 0}, {}, {}}},
                    {TxOutput{99, owner.pub}, TxOutput{1, owner.pub}}, 2);
  spend.sign_all_inputs(owner);
  u.apply_tx(spend, 1);
  EXPECT_EQ(u.total_value(), before);
}

TEST(UtxoSet, CoinbaseFlagTracked) {
  UtxoSet u;
  const auto cb = Transaction::coinbase(KeyPair::from_seed(6).pub, 50, 3);
  u.apply_tx(cb, 3);
  const auto entry = u.find(OutPoint{cb.txid(), 0});
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->is_coinbase);
}

TEST(UtxoSet, CopySemantics) {
  UtxoSet u;
  u.add(op(7), UtxoEntry{out(5), 0, false});
  UtxoSet copy = u;
  EXPECT_TRUE(copy.spend(op(7)));
  EXPECT_TRUE(u.contains(op(7)));  // original untouched
}

}  // namespace
}  // namespace ici
